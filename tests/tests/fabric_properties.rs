//! Property-based tests over the fabric + engine: conservation,
//! losslessness, and monotonicity properties that must hold for *any*
//! topology/seed/load combination.

use irn_core::transport::cc::CcKind;
use irn_core::transport::config::TransportKind;
use irn_core::workload::SizeDistribution;
use irn_core::{run, ExperimentConfig, TopologySpec, TrafficModel};
use proptest::prelude::*;

fn cfg_for(k_idx: usize, flows: usize, load: f64, seed: u64) -> ExperimentConfig {
    let topology = match k_idx {
        0 => TopologySpec::SingleSwitch(6),
        1 => TopologySpec::Dumbbell(4, 4),
        _ => TopologySpec::FatTree(4),
    };
    ExperimentConfig {
        topology,
        traffic: TrafficModel::Poisson {
            load,
            sizes: SizeDistribution::HeavyTailed,
            flow_count: flows,
        },
        seed,
        ..ExperimentConfig::paper_default(flows)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Whatever the topology, seed and load: every flow completes, the
    /// summary is sane, and PFC runs lossless while no-PFC accounts all
    /// losses as buffer drops matched by retransmissions.
    #[test]
    fn engine_invariants_hold_everywhere(
        k_idx in 0usize..3,
        flows in 30usize..120,
        load in 0.2f64..0.95,
        seed in 1u64..10_000,
        pfc in prop::bool::ANY,
    ) {
        let cfg = cfg_for(k_idx, flows, load, seed)
            .with_transport(TransportKind::Irn)
            .with_pfc(pfc);
        let r = run(cfg);
        prop_assert_eq!(r.summary.flows, flows);
        prop_assert!(r.summary.avg_slowdown >= 0.999);
        prop_assert!(r.summary.p99_fct >= r.summary.avg_fct || r.summary.flows < 100);
        if pfc {
            prop_assert_eq!(r.fabric.buffer_drops, 0, "PFC must be lossless");
            prop_assert_eq!(r.fabric.pauses, r.fabric.resumes);
        } else if r.fabric.buffer_drops > 0 {
            prop_assert!(r.transport.retransmitted > 0,
                "drops without retransmissions would mean lost data");
        }
    }

    /// Go-back-N never retransmits less than selective repeat for the
    /// same scenario (the §4.3 inefficiency, as an inequality).
    #[test]
    fn gbn_retransmits_at_least_as_much(
        seed in 1u64..5_000,
        load in 0.5f64..0.9,
    ) {
        let base = cfg_for(2, 150, load, seed).with_pfc(false);
        let irn = run(base.clone().with_transport(TransportKind::Irn));
        let gbn = run(base.with_transport(TransportKind::IrnGoBackN));
        prop_assert_eq!(irn.summary.flows, 150);
        prop_assert_eq!(gbn.summary.flows, 150);
        prop_assert!(
            gbn.transport.retransmitted + 5 >= irn.transport.retransmitted,
            "GBN {} vs SACK {} (GBN must not retransmit materially less)",
            gbn.transport.retransmitted, irn.transport.retransmitted
        );
    }

    /// Determinism as a property: any config is a pure function of its
    /// inputs.
    #[test]
    fn any_config_is_deterministic(
        k_idx in 0usize..3,
        seed in 1u64..10_000,
        cc_idx in 0usize..3,
    ) {
        let cc = [CcKind::None, CcKind::Dcqcn, CcKind::Timely][cc_idx];
        let mk = || cfg_for(k_idx, 60, 0.7, seed).with_cc(cc);
        let a = run(mk());
        let b = run(mk());
        prop_assert_eq!(a.events, b.events);
        prop_assert_eq!(a.summary.avg_fct, b.summary.avg_fct);
    }
}
