//! Differential suite for the ladder-queue `Scheduler`.
//!
//! The scheduler's determinism contract — nondecreasing pop times,
//! strict FIFO among simultaneous events, cancelled timers never
//! surfacing — is pinned against the obviously-correct reference: a
//! binary-heap `EventQueue` whose timer expiries carry generation
//! tokens that are filtered at pop (exactly the `TimerSlot` mechanism
//! the engine used before the swap). Random interleavings of
//! push/pop/arm/cancel/peek must produce identical delivered sequences
//! on both implementations.
//!
//! The integration half asserts the engine-level guarantees the
//! scheduler buys: steady-state runs deliver **zero** stale timer
//! events, and nothing in the workspace schedules into the past
//! (`past_clamps == 0` — the observable counter release builds keep in
//! place of the debug panic).

use irn_core::transport::cc::CcKind;
use irn_core::transport::config::TransportKind;
use irn_core::workload::SizeDistribution;
use irn_core::{run, ExperimentConfig, TopologySpec, TrafficModel};
use irn_sim::{Duration, EventQueue, Scheduler, Time, TimerId, TimerSlot};
use proptest::prelude::*;

const TIMERS: usize = 4;

/// The reference: a binary heap of `(tag, Option<(timer, generation)>)`
/// events with stale generations filtered at pop — the pre-scheduler
/// engine's exact discipline.
struct Reference {
    queue: EventQueue<(u64, Option<(usize, u64)>)>,
    generations: [u64; TIMERS],
    armed: [Option<Time>; TIMERS],
}

impl Reference {
    fn new() -> Reference {
        Reference {
            queue: EventQueue::new(),
            generations: [0; TIMERS],
            armed: [None; TIMERS],
        }
    }

    fn push(&mut self, at: Time, tag: u64) {
        self.queue.push(at, (tag, None));
    }

    fn arm(&mut self, k: usize, deadline: Time, tag: u64) {
        self.generations[k] += 1;
        self.armed[k] = Some(deadline);
        self.queue
            .push(deadline, (tag, Some((k, self.generations[k]))));
    }

    fn cancel(&mut self, k: usize) {
        self.generations[k] += 1;
        self.armed[k] = None;
    }

    fn is_stale(&self, timer: Option<(usize, u64)>) -> bool {
        match timer {
            Some((k, generation)) => self.generations[k] != generation,
            None => false,
        }
    }

    /// Drop stale heads; the heap's front is then the next live event.
    fn settle(&mut self) {
        while let Some((_, &(_, timer))) = self.queue.peek() {
            if self.is_stale(timer) {
                self.queue.pop();
            } else {
                break;
            }
        }
    }

    fn peek_live(&mut self) -> Option<Time> {
        self.settle();
        self.queue.peek_time()
    }

    fn pop_live(&mut self) -> Option<(Time, u64)> {
        self.settle();
        let (t, (tag, timer)) = self.queue.pop()?;
        if let Some((k, _)) = timer {
            self.armed[k] = None; // a delivered expiry consumes the arm
        }
        Some((t, tag))
    }
}

/// Both queues driven in lockstep. `ops` is a flat op stream:
/// `(selector, timer index, time gap)`.
fn run_differential(ops: &[(usize, usize, u64)]) {
    let mut sched: Scheduler<u64> = Scheduler::new();
    let ids: Vec<TimerId> = (0..TIMERS).map(|_| sched.timer_create()).collect();
    let mut reference = Reference::new();
    // Times only move forward from the frontier: the latest time either
    // implementation has reported. This mirrors the engine contract
    // (handlers schedule relative to the popped "now") and keeps the
    // reference heap's past-clamp out of play.
    let mut frontier = Time::ZERO;
    let mut tag = 0u64;

    for &(sel, k, gap) in ops {
        let at = frontier + Duration::nanos(gap);
        match sel {
            // Plain push.
            0 => {
                tag += 1;
                sched.push(at, tag);
                reference.push(at, tag);
            }
            // Arm (supersede) timer k.
            1 => {
                tag += 1;
                sched.timer_arm(ids[k], at, tag);
                reference.arm(k, at, tag);
                assert_eq!(sched.timer_deadline(ids[k]), Some(at));
            }
            // Cancel timer k.
            2 => {
                sched.timer_cancel(ids[k]);
                reference.cancel(k);
                assert_eq!(sched.timer_deadline(ids[k]), None);
            }
            // Pop one delivered event.
            3 => {
                let got = sched.pop();
                let want = reference.pop_live();
                assert_eq!(got, want, "pop diverged");
                if let Some((t, _)) = got {
                    frontier = frontier.max(t);
                }
            }
            // Peek the next live timestamp.
            _ => {
                let got = sched.peek_time();
                let want = reference.peek_live();
                assert_eq!(got, want, "peek diverged");
                if let Some(t) = got {
                    frontier = frontier.max(t);
                }
            }
        }
        // The reference heap's clock advances over the *stale* entries
        // it drains (pre-scheduler engine semantics: stale expiries
        // were delivered and discarded, moving time). Keep the frontier
        // at or past it so generated times are legal for both sides —
        // the engine's own schedules always derive from a delivered
        // event's time, which satisfies this by construction.
        frontier = frontier.max(reference.queue.now());
        // The live-event count must track the reference's armed state
        // exactly (cheap invariant; full equality is checked by the
        // drain below).
        for (idx, id) in ids.iter().enumerate() {
            assert_eq!(
                sched.timer_deadline(*id),
                reference.armed[idx],
                "armed-deadline mirror diverged for timer {idx}"
            );
        }
    }

    // Full drain: every remaining live event must match, in order.
    loop {
        let got = sched.pop();
        let want = reference.pop_live();
        assert_eq!(got, want, "drain diverged");
        if got.is_none() {
            break;
        }
    }
    assert!(sched.is_empty());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Random push/pop/arm/cancel/peek interleavings: the ladder queue
    /// and the heap+generation reference must deliver identical event
    /// sequences (times, payloads, and FIFO tie-breaks).
    #[test]
    fn scheduler_matches_heap_reference(
        ops in proptest::collection::vec((0usize..5, 0usize..TIMERS, 0u64..3_000), 1..400),
    ) {
        run_differential(&ops);
    }

    /// Tie-heavy variant: tiny gap range forces many simultaneous
    /// events, exercising the FIFO tie-break across bucket sorts,
    /// due-run merges, and the heap's sequence numbers.
    #[test]
    fn scheduler_matches_reference_under_heavy_ties(
        ops in proptest::collection::vec((0usize..5, 0usize..TIMERS, 0u64..3), 1..400),
    ) {
        run_differential(&ops);
    }

    /// Far-horizon variant: gaps past the ring horizon (~1 ms) park
    /// events in the overflow level, exercising cascades against the
    /// reference.
    #[test]
    fn scheduler_matches_reference_across_cascades(
        ops in proptest::collection::vec((0usize..5, 0usize..TIMERS, 0u64..3_000_000), 1..200),
    ) {
        run_differential(&ops);
    }
}

/// A cancelled deadline never surfaces, even when re-arms raced it
/// through bucket boundaries (the unit-level guarantee the proptest
/// covers statistically, pinned deterministically here).
#[test]
fn cancelled_deadlines_never_surface() {
    let mut s: Scheduler<&'static str> = Scheduler::new();
    let t = s.timer_create();
    // Arm, supersede across the ring horizon, cancel, re-arm nearby.
    s.timer_arm(t, Time::from_nanos(100), "gen1");
    s.timer_arm(t, Time::ZERO + Duration::millis(50), "gen2-overflow");
    s.timer_cancel(t);
    s.timer_arm(t, Time::from_nanos(300), "gen3");
    s.push(Time::from_nanos(200), "data");
    let delivered: Vec<_> = std::iter::from_fn(|| s.pop()).collect();
    assert_eq!(
        delivered,
        vec![
            (Time::from_nanos(200), "data"),
            (Time::from_nanos(300), "gen3"),
        ]
    );
    assert_eq!(s.stats().stale_skips, 2, "both dead generations reclaimed");
}

/// The legacy `TimerSlot` reference semantics themselves (arm → stale
/// generation filtered) still hold — the differential suite depends on
/// the reference being right.
#[test]
fn timer_slot_reference_filters_stale_generations() {
    let mut slot = TimerSlot::new();
    let g1 = slot.arm(Time::from_nanos(10));
    let g2 = slot.arm(Time::from_nanos(20));
    assert!(!slot.fires(g1));
    assert!(slot.fires(g2));
}

// ---------------------------------------------------------------------
// Engine-level guarantees (the integration half).
// ---------------------------------------------------------------------

fn poisson_cfg(transport: TransportKind, pfc: bool, cc: CcKind) -> ExperimentConfig {
    ExperimentConfig {
        topology: TopologySpec::FatTree(4),
        traffic: TrafficModel::Poisson {
            load: 0.8,
            sizes: SizeDistribution::HeavyTailed,
            flow_count: 150,
        },
        ..ExperimentConfig::paper_default(150)
    }
    .with_transport(transport)
    .with_pfc(pfc)
    .with_cc(cc)
}

/// Steady-state runs pop zero stale timer events and clamp zero
/// past-scheduled events — across every transport family, with and
/// without losses (no-PFC runs retransmit heavily, churning timers).
#[test]
fn runs_deliver_no_stale_timers_and_no_past_clamps() {
    let matrix = [
        (TransportKind::Irn, false, CcKind::None),
        (TransportKind::Irn, true, CcKind::Timely),
        (TransportKind::Roce, false, CcKind::None),
        (TransportKind::Roce, true, CcKind::Dcqcn),
        (TransportKind::IwarpTcp, false, CcKind::None),
    ];
    for (transport, pfc, cc) in matrix {
        let r = run(poisson_cfg(transport, pfc, cc));
        assert_eq!(r.summary.flows, 150, "{transport:?} pfc={pfc}");
        assert_eq!(
            r.sched.stale_timer_events, 0,
            "{transport:?} pfc={pfc}: stale timer events must never surface"
        );
        assert_eq!(
            r.sched.past_clamps, 0,
            "{transport:?} pfc={pfc}: a model scheduled into the past"
        );
        // Per-kind counters partition the event total exactly.
        let sum = r.sched.flow_arrivals
            + r.sched.fabric_events
            + r.sched.qp_timer_events
            + r.sched.nic_wake_events;
        assert_eq!(sum, r.events, "{transport:?} pfc={pfc}: counter partition");
        assert_eq!(r.sched.flow_arrivals, 150);
        // Timer hygiene: fires never exceed arms; cancels never exceed
        // arms.
        assert!(r.sched.qp_timer_events + r.sched.nic_wake_events <= r.sched.timer_arms);
        assert!(r.sched.timer_cancels <= r.sched.timer_arms);
    }
}

/// Lossy runs churn retransmission timers hard: the scheduler must be
/// reclaiming superseded deadlines (the events the old engine scheduled,
/// popped, and discarded) without ever delivering one.
#[test]
fn lossy_run_reclaims_superseded_timers_internally() {
    let cfg = ExperimentConfig {
        topology: TopologySpec::FatTree(4),
        traffic: TrafficModel::Poisson {
            load: 0.9,
            sizes: SizeDistribution::HeavyTailed,
            flow_count: 300,
        },
        buffer_bytes: 60_000, // small buffers to force drops
        ..ExperimentConfig::paper_default(300)
    }
    .with_transport(TransportKind::Irn)
    .with_pfc(false);
    let r = run(cfg);
    assert!(
        r.transport.retransmitted > 0,
        "no-PFC with tiny buffers at 90% load must retransmit"
    );
    assert!(r.sched.timer_arms > 0, "retransmission timers were armed");
    assert!(
        r.sched.stale_timer_reclaims > 0,
        "superseded deadlines should be reclaimed internally, \
         not scheduled-and-filtered"
    );
    assert_eq!(r.sched.stale_timer_events, 0);
}

/// The incast path (fig9's workload) exercises cancel-on-completion for
/// hundreds of synchronized flows; none of those cancels may surface.
#[test]
fn incast_run_is_stale_free() {
    let cfg = ExperimentConfig {
        topology: TopologySpec::FatTree(4),
        traffic: TrafficModel::Incast {
            m: 8,
            total_bytes: 4_000_000,
        },
        ..ExperimentConfig::paper_default(8)
    }
    .with_transport(TransportKind::Irn)
    .with_pfc(false);
    let r = run(cfg);
    assert_eq!(r.summary.flows, 8);
    assert_eq!(r.sched.stale_timer_events, 0);
    assert_eq!(r.sched.past_clamps, 0);
}
