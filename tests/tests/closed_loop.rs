//! Determinism guard for the closed-loop application layer: flows
//! spawned *in reaction to* completion events must not perturb the
//! byte-identical-output contract. The driver seam runs inside the
//! event loop, so any hidden ordering dependency (batch boundaries,
//! job counts, wall clock) would show up here as diverging bytes.

use irn_core::sim::Duration;
use irn_core::transport::config::TransportKind;
use irn_core::{run, RunResult, Scenario, TopologySpec, TrafficModel};
use irn_experiments::{scenario_plan, Harness};
use serde::json;
use serde::{Deserialize, Serialize};

/// The three models, sized for debug-profile test budgets.
fn models() -> Vec<(&'static str, TrafficModel)> {
    vec![
        (
            "rpc",
            TrafficModel::RpcClosedLoop {
                clients: 3,
                ops_per_client: 6,
                window: 2,
                request_bytes: 20_000,
                response_bytes: 1_000,
                think: Duration::micros(40),
                fanout: 2,
            },
        ),
        (
            "allreduce",
            TrafficModel::Allreduce {
                algorithm: irn_core::AllreduceAlgo::Ring,
                participants: 6,
                bytes: 200_000,
                iterations: 2,
            },
        ),
        (
            "replicate",
            TrafficModel::LeaderReplicate {
                clients: 2,
                followers: 3,
                quorum: 2,
                ops_per_client: 5,
                request_bytes: 10_000,
                ack_bytes: 64,
                think: Duration::micros(20),
            },
        ),
    ]
}

fn scenario(name: &str, traffic: TrafficModel) -> Scenario {
    Scenario::builder(name)
        .topology(TopologySpec::SingleSwitch(8))
        .traffic(traffic)
        .seed(9)
        .build()
        .unwrap()
}

/// Full-result bit-identity through the serialized form (the same
/// equality the artifact envelopes and the work-v1 protocol rely on).
fn run_json(r: &RunResult) -> String {
    json::to_string(&r.to_json())
}

/// Two in-process runs of each closed-loop model are bit-identical,
/// including the app-metrics block.
#[test]
fn closed_loop_runs_are_bit_identical() {
    for (name, traffic) in models() {
        let s = scenario(name, traffic);
        let a = run(s.config().clone());
        let b = run(s.config().clone());
        assert_eq!(run_json(&a), run_json(&b), "{name} diverged run-to-run");
        let app = a.app.expect("closed-loop runs report app metrics");
        assert!(app.ops() > 0, "{name} completed no ops");
    }
}

/// The executor contract at the report level: a closed-loop scenario
/// plan renders byte-identical reports at `--jobs` 1 and 8.
#[test]
fn closed_loop_reports_are_byte_identical_at_jobs_1_vs_8() {
    for (name, traffic) in models() {
        let s = scenario(name, traffic);
        let a = scenario_plan(&s, 2).run(&Harness::new(1));
        let b = scenario_plan(&s, 2).run(&Harness::new(8));
        assert_eq!(
            a.render(),
            b.render(),
            "{name} report diverged between --jobs 1 and --jobs 8"
        );
    }
}

/// The closed-vs-open-loop divergence the rpc-loss artifact tables
/// rest on: under loss, RoCE's go-back-N recovery stalls the RPC
/// window and op latency diverges from IRN's selective repeat.
#[test]
fn transport_choice_moves_closed_loop_op_latency_under_loss() {
    let mk = |transport: TransportKind, pfc: bool| {
        let mut cfg = scenario("rpc-divergence", models()[0].1.clone())
            .config()
            .clone();
        cfg.loss_injection = 0.02;
        let r = run(cfg.with_transport(transport).with_pfc(pfc));
        r.app.expect("app metrics").mean_latency()
    };
    let irn = mk(TransportKind::Irn, false);
    let roce = mk(TransportKind::Roce, false);
    assert!(
        irn != roce,
        "transports must produce distinguishable op latency under loss"
    );
}

/// Closed-loop app metrics survive the work-v1 wire format: the
/// serialized RunResult round-trips bit-exactly, app block included.
#[test]
fn closed_loop_results_round_trip_the_wire_format() {
    let (name, traffic) = models().remove(0);
    let s = scenario(name, traffic);
    let r = run(s.config().clone());
    let text = run_json(&r);
    let v = json::from_str(&text).unwrap();
    let back = RunResult::from_json(&v).unwrap();
    assert_eq!(run_json(&back), text, "wire round trip must be bit-exact");
    assert_eq!(back.app.unwrap().ops(), r.app.unwrap().ops());
}
