//! §7 extensions: packet-spray load balancing and the NACK threshold.
//!
//! "IRN's OOO packet delivery support also allows for other load
//! balancing schemes that may cause packet reordering within a flow.
//! IRN's loss recovery mechanism can be made more robust to reordering
//! by triggering loss recovery only after a certain threshold of NACKs
//! are received."

use irn_core::net::LoadBalancing;
use irn_core::transport::cc::CcKind;
use irn_core::transport::config::TransportKind;
use irn_core::{run, RunResult};
use irn_integration::quick_cfg;

fn spray_cell(t: TransportKind, nack_threshold: u32) -> RunResult {
    let mut cfg = quick_cfg(250)
        .with_transport(t)
        .with_pfc(false)
        .with_cc(CcKind::None);
    cfg.load_balancing = LoadBalancing::PacketSpray;
    cfg.nack_threshold = nack_threshold;
    run(cfg)
}

#[test]
fn spraying_reorders_and_irn_still_completes() {
    let r = spray_cell(TransportKind::Irn, 1);
    assert_eq!(r.summary.flows, 250, "all flows must complete");
    // Reordering manifests as NACK traffic even where nothing dropped.
    assert!(
        r.transport.nacks > 0,
        "per-packet spraying must produce out-of-order NACKs"
    );
}

#[test]
fn nack_threshold_cuts_spurious_retransmissions() {
    let naive = spray_cell(TransportKind::Irn, 1);
    let robust = spray_cell(TransportKind::Irn, 5);
    assert_eq!(robust.summary.flows, 250);
    assert!(
        robust.transport.retransmitted < naive.transport.retransmitted,
        "threshold 5 must retransmit less than threshold 1 under spraying \
         ({} vs {})",
        robust.transport.retransmitted,
        naive.transport.retransmitted
    );
}

#[test]
fn irn_handles_spraying_better_than_go_back_n() {
    // A RoCE-style receiver discards every reordered packet; spraying is
    // pathological for it. IRN's OOO support is the enabler (§7).
    let irn = spray_cell(TransportKind::Irn, 5);
    let gbn = spray_cell(TransportKind::IrnGoBackN, 1);
    assert!(
        irn.summary.avg_fct < gbn.summary.avg_fct,
        "IRN under spraying {} must beat go-back-N {}",
        irn.summary.avg_fct,
        gbn.summary.avg_fct
    );
    assert!(irn.transport.retransmission_rate() < gbn.transport.retransmission_rate(),);
}

#[test]
fn spraying_with_ecmp_fallback_is_default() {
    // The default config must stay per-flow ECMP (no reordering).
    let cfg = quick_cfg(50);
    assert_eq!(cfg.load_balancing, LoadBalancing::EcmpPerFlow);
    assert_eq!(cfg.nack_threshold, 1);
    let r = run(cfg.with_transport(TransportKind::Irn).with_pfc(true));
    assert_eq!(
        r.transport.nacks, 0,
        "per-flow ECMP with PFC must never reorder or drop"
    );
}

#[test]
fn threshold_does_not_break_real_loss_recovery() {
    // With genuine drops (no PFC, ECMP), a threshold of 3 must still
    // recover everything — only the trigger is delayed.
    let mut cfg = quick_cfg(250)
        .with_transport(TransportKind::Irn)
        .with_pfc(false);
    cfg.nack_threshold = 3;
    let r = run(cfg);
    assert_eq!(r.summary.flows, 250);
    assert!(r.fabric.buffer_drops > 0);
    assert!(r.transport.retransmitted > 0);
}
