//! Cross-crate invariants: losslessness, conservation, recovery under
//! injected faults, determinism.

use irn_core::sim::Duration;
use irn_core::transport::cc::CcKind;
use irn_core::transport::config::TransportKind;
use irn_core::workload::SizeDistribution;
use irn_core::{run, TopologySpec, TrafficModel};
use irn_integration::{quick_cfg, run_cell};

#[test]
fn pfc_is_lossless_for_every_transport() {
    for t in [
        TransportKind::Irn,
        TransportKind::Roce,
        TransportKind::IrnGoBackN,
        TransportKind::IwarpTcp,
    ] {
        let r = run_cell(250, t, true, CcKind::None);
        assert_eq!(
            r.fabric.buffer_drops, 0,
            "{t:?}: PFC must never drop (got {} drops)",
            r.fabric.buffer_drops
        );
    }
}

#[test]
fn every_pause_is_resumed() {
    let r = run_cell(300, TransportKind::Roce, true, CcKind::None);
    assert!(r.fabric.pauses > 0, "need pauses for this test to bite");
    assert_eq!(
        r.fabric.pauses, r.fabric.resumes,
        "every X-OFF must eventually X-ON (no stuck ports)"
    );
}

#[test]
fn all_flows_complete_under_heavy_fault_injection() {
    // 1% random per-hop loss on top of congestion: loss recovery must
    // still deliver everything (the MELO/§7 robustness scenario).
    let mut cfg = quick_cfg(200);
    cfg.loss_injection = 0.01;
    let r = run(cfg
        .with_transport(TransportKind::Irn)
        .with_pfc(false)
        .with_cc(CcKind::None));
    assert_eq!(r.summary.flows, 200);
    assert!(r.fabric.injected_drops > 0, "injector must have fired");
    assert!(r.transport.retransmitted >= r.fabric.injected_drops / 2);
}

#[test]
fn fault_injection_with_pfc_still_completes() {
    // PFC prevents congestion drops but not injected (failure) losses:
    // IRN's recovery must handle the random-loss regime too.
    let mut cfg = quick_cfg(150);
    cfg.loss_injection = 0.005;
    let r = run(cfg.with_transport(TransportKind::Irn).with_pfc(true));
    assert_eq!(r.summary.flows, 150);
    assert_eq!(r.fabric.buffer_drops, 0);
    assert!(r.fabric.injected_drops > 0);
}

#[test]
fn go_back_n_survives_fault_injection() {
    let mut cfg = quick_cfg(100);
    cfg.loss_injection = 0.005;
    let r = run(cfg.with_transport(TransportKind::Roce).with_pfc(false));
    assert_eq!(r.summary.flows, 100);
    assert!(
        r.transport.retransmitted > r.fabric.injected_drops,
        "go-back-N must resend more than was lost"
    );
}

#[test]
fn tcp_survives_fault_injection() {
    let mut cfg = quick_cfg(100);
    cfg.loss_injection = 0.005;
    let r = run(cfg.with_transport(TransportKind::IwarpTcp).with_pfc(false));
    assert_eq!(r.summary.flows, 100);
}

#[test]
fn slowdowns_are_at_least_one() {
    // The ideal-FCT denominator must be a true lower bound. The
    // collector's minimum slowdown is exact (not bucketed), so this
    // still checks every flow.
    for t in [TransportKind::Irn, TransportKind::Roce] {
        let r = run_cell(200, t, t == TransportKind::Roce, CcKind::None);
        assert!(
            r.metrics.min_slowdown() >= 0.999,
            "{t:?}: min slowdown {:.4} < 1 — ideal FCT overestimates",
            r.metrics.min_slowdown()
        );
    }
}

#[test]
fn determinism_across_transports_and_cc() {
    for (t, cc) in [
        (TransportKind::Irn, CcKind::Dcqcn),
        (TransportKind::Roce, CcKind::Timely),
        (TransportKind::IwarpTcp, CcKind::None),
    ] {
        let a = run_cell(150, t, false, cc);
        let b = run_cell(150, t, false, cc);
        assert_eq!(a.events, b.events, "{t:?}/{cc:?} must be deterministic");
        assert_eq!(a.summary.avg_fct, b.summary.avg_fct);
        assert_eq!(a.fabric, b.fabric);
    }
}

#[test]
fn seeds_change_results() {
    let a = run(quick_cfg(150).with_seed(1));
    let b = run(quick_cfg(150).with_seed(2));
    assert_ne!(
        a.summary.avg_fct, b.summary.avg_fct,
        "different seeds must explore different workloads"
    );
}

#[test]
fn dcqcn_generates_cnps_under_congestion() {
    let r = run_cell(300, TransportKind::Irn, false, CcKind::Dcqcn);
    assert!(r.fabric.ecn_marked > 0, "ECN must mark under load");
    assert!(r.transport.cnps > 0, "marked packets must become CNPs");
}

#[test]
fn single_switch_and_dumbbell_topologies_work() {
    for topo in [TopologySpec::SingleSwitch(6), TopologySpec::Dumbbell(3, 3)] {
        let mut cfg = quick_cfg(100);
        cfg.topology = topo;
        let r = run(cfg);
        assert_eq!(r.summary.flows, 100, "{topo:?}");
    }
}

#[test]
fn uniform_workload_completes_on_all_transports() {
    for t in [TransportKind::Irn, TransportKind::Roce] {
        let mut cfg = quick_cfg(40);
        cfg.traffic = TrafficModel::Poisson {
            load: 0.6,
            sizes: SizeDistribution::Uniform500KbTo5Mb,
            flow_count: 40,
        };
        let r = run(cfg.with_transport(t).with_pfc(true));
        assert_eq!(r.summary.flows, 40);
        // Multi-MB flows: FCT must be at least the line-rate bound.
        assert!(r.summary.avg_fct > Duration::micros(100));
    }
}

#[test]
fn incast_with_cross_traffic_separates_populations() {
    let mut cfg = quick_cfg(100);
    cfg.traffic =
        TrafficModel::incast_with_cross(6, 6_000_000, 0.5, SizeDistribution::HeavyTailed, 100);
    let r = run(cfg);
    assert_eq!(r.summary.flows, 100, "background population");
    let incast = r.incast_metrics.as_ref().expect("incast population");
    assert_eq!(incast.len(), 6);
    assert!(r.rct() > Duration::micros(100));
}

#[test]
fn rto_high_trends_insensitive() {
    // Table 8's claim: multiplying RTO_high by 4 barely moves results.
    let base = run(quick_cfg(300));
    let mut cfg = quick_cfg(300);
    cfg.rto_high = Some(Duration::micros(1280));
    let big = run(cfg);
    let ratio = big.summary.avg_fct / base.summary.avg_fct;
    assert!(
        (0.8..1.35).contains(&ratio),
        "RTO_high x4 should change avg FCT little, ratio {ratio:.3}"
    );
}
