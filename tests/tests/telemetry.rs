//! Telemetry invariants across the vertical (see `docs/TRACING.md`):
//!
//! 1. **Tracing is an observer.** Running a cell with the flight
//!    recorder on must produce a `RunResult` bit-identical to the same
//!    cell with tracing off — the trace is derived *from* the run, it
//!    never steers it.
//! 2. **Trace bytes are deterministic.** For a deterministic batch the
//!    concatenated per-cell trace chunks are byte-identical at any
//!    `--jobs` level (the fleet-level equivalent lives in the
//!    worker-pool suite and CI's trace job).
//! 3. **Counter partitions.** The unified `telemetry` block is a pure
//!    sum of `RunResult` counters: drops partition into
//!    buffer + injected, and the per-transport-kind rows sum to the
//!    batch totals.

use irn_core::transport::config::TransportKind;
use irn_core::ExperimentConfig;
use irn_experiments::TelemetrySummary;
use irn_harness::{Cell, Executor, Harness, ThreadExecutor};
use irn_telemetry::{TraceFilter, TraceSpec};
use serde::Serialize;

/// A small mixed batch: cheap cells over several transports, PFC on and
/// off, so the trace exercises pause/resume, marks, and drops. Cells
/// are kept well under the default flight-recorder capacity so the
/// *unfiltered* traces here are never truncated (truncation gets its
/// own dedicated test below).
fn batch() -> Vec<Cell> {
    let kinds = [
        TransportKind::Irn,
        TransportKind::Roce,
        TransportKind::IrnGoBackN,
        TransportKind::Irn,
    ];
    kinds
        .iter()
        .enumerate()
        .map(|(i, kind)| {
            let mut cfg = ExperimentConfig::quick(10 + i)
                .with_seed(i as u64 + 1)
                .with_pfc(i % 2 == 0);
            cfg.transport = *kind;
            Cell::new(format!("cell{i}"), cfg)
        })
        .collect()
}

/// Concatenate per-cell chunks in submission order — the same
/// reassembly `repro --trace` performs before writing the file.
fn trace_bytes(outcomes: &[irn_harness::CellOutcome]) -> String {
    let mut out = String::new();
    for o in outcomes {
        let chunk = o.trace.as_ref().expect("traced outcome carries a chunk");
        for line in &chunk.lines {
            out.push_str(line);
            out.push('\n');
        }
    }
    out
}

#[test]
fn tracing_on_does_not_change_run_results() {
    let cells = batch();
    let spec = TraceSpec::default();
    let plain = ThreadExecutor::new(2).run_cells(&cells, None).unwrap();
    let traced = ThreadExecutor::new(2)
        .run_cells(&cells, Some(&spec))
        .unwrap();
    assert_eq!(plain.len(), traced.len());
    for (p, t) in plain.iter().zip(&traced) {
        assert_eq!(
            p.result.to_json(),
            t.result.to_json(),
            "flight recorder changed a RunResult"
        );
        assert!(p.trace.is_none(), "untraced run grew a chunk");
        let chunk = t.trace.as_ref().expect("traced run missing its chunk");
        assert!(
            !chunk.lines.is_empty(),
            "a quick cell still emits flow/packet events"
        );
    }
}

#[test]
fn trace_bytes_identical_at_jobs_1_and_8() {
    let cells = batch();
    let spec = TraceSpec::default();
    let serial = ThreadExecutor::new(1)
        .run_cells(&cells, Some(&spec))
        .unwrap();
    let parallel = ThreadExecutor::new(8)
        .run_cells(&cells, Some(&spec))
        .unwrap();
    let a = trace_bytes(&serial);
    let b = trace_bytes(&parallel);
    assert!(!a.is_empty());
    assert_eq!(a, b, "trace bytes depend on --jobs");
}

#[test]
fn trace_bytes_identical_through_the_harness_seam() {
    // `Harness::try_run_traced` is the path `repro run --trace` takes;
    // it must agree byte-for-byte with the raw executor.
    let cells = batch();
    let spec = TraceSpec::default();
    let via_harness = Harness::with_executor(std::sync::Arc::new(ThreadExecutor::new(4)))
        .try_run_traced(&cells, &spec)
        .unwrap();
    let direct = ThreadExecutor::new(1)
        .run_cells(&cells, Some(&spec))
        .unwrap();
    assert_eq!(trace_bytes(&via_harness), trace_bytes(&direct));
}

#[test]
fn filtered_trace_is_a_subset_and_results_still_match() {
    let cells = batch();
    let filtered = TraceSpec {
        filter: "kind=pfc.*,kind=pkt.drop".to_string(),
        ..TraceSpec::default()
    };
    let full = ThreadExecutor::new(2)
        .run_cells(&cells, Some(&TraceSpec::default()))
        .unwrap();
    let narrow = ThreadExecutor::new(2)
        .run_cells(&cells, Some(&filtered))
        .unwrap();
    for (f, n) in full.iter().zip(&narrow) {
        assert_eq!(f.result.to_json(), n.result.to_json());
        assert_eq!(f.trace.as_ref().unwrap().dropped, 0);
        let full_lines = &f.trace.as_ref().unwrap().lines;
        let narrow_lines = &n.trace.as_ref().unwrap().lines;
        assert!(narrow_lines.len() < full_lines.len());
        // Every filtered line exists verbatim in the unfiltered trace,
        // in the same relative order (the filter drops, never rewrites).
        let mut cursor = full_lines.iter();
        for line in narrow_lines {
            assert!(
                cursor.any(|l| l == line),
                "filtered line absent from full trace: {line}"
            );
            assert!(
                line.contains("\"kind\":\"pfc.") || line.contains("\"kind\":\"pkt.drop\""),
                "filter leaked a foreign kind: {line}"
            );
        }
    }
}

#[test]
fn trace_filter_grammar_round_trips() {
    assert!(TraceFilter::parse("").unwrap().is_all());
    assert!(TraceFilter::parse("kind=pkt.*,flow=3,host=1").is_ok());
    assert!(TraceFilter::parse("kind=pfc.pause,kind=pfc.resume").is_ok());
    assert!(TraceFilter::parse("flow=abc").is_err());
    assert!(TraceFilter::parse("color=red").is_err());
    assert!(TraceFilter::parse("pkt.tx").is_err());
}

#[test]
fn telemetry_summary_partitions_hold_over_a_real_batch() {
    let cells = batch();
    let results = Harness::serial().run(&cells);
    let mut summary = TelemetrySummary::default();
    for (cell, r) in cells.iter().zip(&results) {
        summary.add(cell.config().transport, r);
    }

    // The block is a pure sum of the per-cell counters.
    assert_eq!(summary.cells, cells.len() as u64);
    assert_eq!(
        summary.events,
        results.iter().map(|r| r.events).sum::<u64>()
    );
    assert_eq!(
        summary.delivered_pkts,
        results.iter().map(|r| r.fabric.delivered_pkts).sum::<u64>()
    );

    // Drop partition: total = buffer + injected, in the struct and in
    // the serialized block.
    assert_eq!(
        summary.drops_total(),
        summary.buffer_drops + summary.injected_drops
    );
    let v = summary.to_json_value();
    let drops = v.get("fabric").and_then(|f| f.get("drops")).unwrap();
    let get = |k: &str| drops.get(k).and_then(serde::json::Value::as_u64).unwrap();
    assert_eq!(get("total"), get("buffer") + get("injected"));

    // Per-kind rows partition the batch totals exactly.
    let totals = summary.transport_totals();
    assert_eq!(totals.cells, summary.cells);
    assert_eq!(
        totals.sent,
        results.iter().map(|r| r.transport.sent).sum::<u64>()
    );
    assert_eq!(
        totals.buffer_drops + totals.injected_drops,
        summary.drops_total()
    );
    assert_eq!(totals.pauses, summary.pauses);
    assert_eq!(totals.ecn_marked, summary.ecn_marked);

    // Three distinct kinds in the batch, first-appearance order.
    let kinds: Vec<TransportKind> = summary.by_kind.iter().map(|(k, _)| *k).collect();
    assert_eq!(
        kinds,
        vec![
            TransportKind::Irn,
            TransportKind::Roce,
            TransportKind::IrnGoBackN
        ]
    );
    let irn_row = &summary.by_kind[0].1;
    assert_eq!(irn_row.cells, 2, "both IRN cells charged to one row");
}

#[test]
fn flight_recorder_truncates_oldest_and_reports_drop_count() {
    let cells = batch();
    let tiny = TraceSpec {
        filter: String::new(),
        capacity: 16,
    };
    let full = ThreadExecutor::new(1)
        .run_cells(&cells, Some(&TraceSpec::default()))
        .unwrap();
    let clipped = ThreadExecutor::new(1)
        .run_cells(&cells, Some(&tiny))
        .unwrap();
    for (f, c) in full.iter().zip(&clipped) {
        assert_eq!(f.result.to_json(), c.result.to_json());
        let full_chunk = f.trace.as_ref().unwrap();
        assert_eq!(full_chunk.dropped, 0, "reference trace must not wrap");
        let clip = c.trace.as_ref().unwrap();
        assert_eq!(clip.lines.len(), 16 + 1, "16 kept + trace.truncated");
        assert_eq!(
            clip.dropped,
            full_chunk.lines.len() as u64 - 16,
            "dropped count accounts for every discarded line"
        );
        // The recorder keeps the *tail* of the run.
        let marker = clip.lines.last().unwrap();
        assert!(marker.contains("\"kind\":\"trace.truncated\""));
        assert!(marker.contains(&format!("\"dropped\":{}", clip.dropped)));
        assert_eq!(
            clip.lines[..16],
            full_chunk.lines[full_chunk.lines.len() - 16..],
            "truncation discarded the newest lines instead of the oldest"
        );
    }
}
