//! §5 semantics under adversarial channels: the verbs layer (WQEs, CQEs,
//! MSN, out-of-order placement) driven through lossy, reordering
//! delivery with the full requester/responder recovery protocol.

use irn_core::sim::SimRng;
use irn_rdma::qp::{QpConfig, ReadAckEmit, Requester, Responder, ResponderAction};
use irn_rdma::verbs::{RdmaOp, RequestWqe};
use proptest::prelude::*;

/// Drive requester → responder over a channel that drops each
/// first-transmission packet with probability `loss`, and shuffles
/// delivery within a bounded window. Retransmissions are driven by the
/// requester's knowledge (NACK-style feedback is immediate here — the
/// network-timing side is exercised by the simulation tests; this one
/// targets the *semantic* machinery).
fn run_session(
    wqes: Vec<RequestWqe>,
    receive_posts: usize,
    loss: f64,
    reorder_window: usize,
    seed: u64,
) -> (Requester, Responder) {
    let cfg = QpConfig::default();
    let mut req = Requester::new(cfg);
    let mut resp = Responder::new(cfg);
    let mut rng = SimRng::new(seed);

    for i in 0..receive_posts {
        resp.post_receive(1000 + i as u64, 0x10_0000 + (i as u64) * 0x1_0000);
    }
    for w in wqes {
        req.post(w);
    }

    // The in-flight "wire": packets awaiting delivery (reordered).
    let mut wire: Vec<irn_rdma::verbs::RequestPacket> = Vec::new();
    let mut read_wire: Vec<irn_rdma::verbs::ReadResponsePacket> = Vec::new();
    let mut rounds = 0;

    loop {
        rounds += 1;
        assert!(rounds < 10_000, "session failed to converge");

        // Generate fresh packets (BDP-FC-capped).
        while let Some(pkt) = req.next_new_packet() {
            if !rng.chance(loss) {
                wire.push(pkt);
            }
        }

        // Deliver a shuffled prefix of the wire.
        if wire.is_empty() && read_wire.is_empty() {
            if req.idle() {
                break;
            }
            // Loss recovery: replay every unacked packet (the transport
            // layer would do this selectively; semantics are identical).
            let cum = req.ctx.cum_acked;
            let next = req.ctx.next_to_send;
            for psn in cum..next {
                wire.push(req.packet_for_psn(psn));
            }
            // Lost read responses recover via the responder's read
            // timeout (§5.2): replay from the requester's expected rPSN.
            if req.reads_pending() {
                for a in resp.on_read_timeout(req.read_expected_rpsn()) {
                    if let ResponderAction::ReadResponse(rp) = a {
                        read_wire.push(rp);
                    }
                }
            }
            continue;
        }
        // Bounded reordering: pick a random packet within the window.
        while !wire.is_empty() {
            let k = rng.index(wire.len().min(reorder_window));
            let pkt = wire.remove(k);
            for action in resp.on_packet(pkt) {
                match action {
                    ResponderAction::Ack { cum, msn } => {
                        req.on_ack(cum, None, false, msn);
                    }
                    ResponderAction::Nack { cum, sack, msn } => {
                        req.on_ack(cum, Some(sack), true, msn);
                    }
                    ResponderAction::ReadResponse(rp) => {
                        if !rng.chance(loss) {
                            read_wire.push(rp);
                        }
                    }
                    ResponderAction::Completion(_) => {}
                }
            }
        }
        while !read_wire.is_empty() {
            let k = rng.index(read_wire.len().min(reorder_window));
            let rp = read_wire.remove(k);
            match req.on_read_response(rp) {
                ReadAckEmit::Nack { cum, sack } => {
                    for a in resp.on_read_nack(cum, sack) {
                        if let ResponderAction::ReadResponse(rp) = a {
                            read_wire.push(rp);
                        }
                    }
                }
                ReadAckEmit::Ack { .. } => {}
            }
        }
    }
    (req, resp)
}

#[test]
fn mixed_ops_complete_in_posting_order_under_loss_and_reorder() {
    let wqes = vec![
        RequestWqe {
            id: 1,
            op: RdmaOp::Write { len: 5_000 },
            remote_addr: 0x1000,
            recv_wqe_sn: None,
            read_wqe_sn: None,
        },
        RequestWqe {
            id: 2,
            op: RdmaOp::Send { len: 2_500 },
            remote_addr: 0,
            recv_wqe_sn: None,
            read_wqe_sn: None,
        },
        RequestWqe {
            id: 3,
            op: RdmaOp::Read { len: 4_000 },
            remote_addr: 0x9000,
            recv_wqe_sn: None,
            read_wqe_sn: None,
        },
        RequestWqe {
            id: 4,
            op: RdmaOp::WriteImm {
                len: 1_200,
                imm: 0xAB,
            },
            remote_addr: 0x2000,
            recv_wqe_sn: None,
            read_wqe_sn: None,
        },
        RequestWqe {
            id: 5,
            op: RdmaOp::Atomic,
            remote_addr: 0x3000,
            recv_wqe_sn: None,
            read_wqe_sn: None,
        },
    ];
    let (mut req, resp) = run_session(wqes, 4, 0.2, 8, 42);
    let cqes = req.poll_cq();
    let ids: Vec<u64> = cqes.iter().map(|c| c.wqe_id).collect();
    assert_eq!(ids, vec![1, 2, 3, 4, 5], "CQEs in posting order");
    assert_eq!(resp.msn(), 5, "one MSN increment per message");
    // Data integrity: every write's bytes placed.
    assert_eq!(resp.memory.bytes_of(0), 5_000);
    assert_eq!(resp.memory.bytes_of(1), 2_500);
    assert_eq!(resp.memory.bytes_of(3), 1_200);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any mix of Writes/Sends/Reads completes with ordered CQEs, a
    /// correct final MSN, and fully-placed memory, under arbitrary loss
    /// probability and reorder windows.
    #[test]
    fn semantics_hold_for_arbitrary_sessions(
        ops in proptest::collection::vec(0u8..4, 1..12),
        loss in 0.0f64..0.4,
        window in 1usize..12,
        seed in 0u64..u64::MAX,
    ) {
        let mut wqes = Vec::new();
        let mut sends = 0usize;
        for (i, kind) in ops.iter().enumerate() {
            let id = i as u64 + 1;
            let op = match kind {
                0 => RdmaOp::Write { len: 1 + (i as u32 * 997) % 6000 },
                1 => { sends += 1; RdmaOp::Send { len: 1 + (i as u32 * 331) % 3000 } }
                2 => RdmaOp::Read { len: 1 + (i as u32 * 613) % 4000 },
                _ => { sends += 1; RdmaOp::WriteImm { len: 1 + (i as u32 * 17) % 2000, imm: i as u32 } }
            };
            wqes.push(RequestWqe { id, op, remote_addr: 0x1000 * id, recv_wqe_sn: None, read_wqe_sn: None });
        }
        let n = wqes.len();
        let (mut req, resp) = run_session(wqes, sends, loss, window, seed);
        let cqes = req.poll_cq();
        prop_assert_eq!(cqes.len(), n, "every WQE must complete exactly once");
        let ids: Vec<u64> = cqes.iter().map(|c| c.wqe_id).collect();
        let expect: Vec<u64> = (1..=n as u64).collect();
        prop_assert_eq!(ids, expect, "completion order == posting order");
        prop_assert_eq!(resp.msn() as usize, n);
        prop_assert_eq!(resp.out_of_order_packets(), 0, "no stragglers in the 2-bitmap");
    }
}

#[test]
fn srq_and_credit_machinery_compose() {
    // SRQ allotment + credits: exercise the B.2/B.3 paths side by side.
    use irn_rdma::credits::{ProbeOutcome, ResponderCredits};
    use irn_rdma::srq::SharedReceiveQueue;

    let mut srq = SharedReceiveQueue::new();
    let mut credits = ResponderCredits::new();
    for i in 0..3 {
        srq.post(i, i * 0x100);
        credits.post_receive();
    }
    // Three in-sequence consumers succeed, the fourth RNR-NACKs.
    for sn in 0..3u32 {
        assert_eq!(credits.on_consume_attempt(true), ProbeOutcome::Execute);
        assert!(srq.wqe_for_sn(sn).is_some());
        assert!(srq.consume(sn).is_some());
    }
    assert_eq!(credits.on_consume_attempt(true), ProbeOutcome::RnrNack);
    assert!(srq.wqe_for_sn(3).is_none());
    // Out-of-sequence probe with no credits: silent drop (B.3).
    assert_eq!(credits.on_consume_attempt(false), ProbeOutcome::Drop);
}
