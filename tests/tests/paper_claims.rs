//! The paper's key claims, asserted directionally on CI-sized runs.
//!
//! These are the §4.2 takeaways: (1) IRN without PFC beats RoCE with
//! PFC; (2) IRN does not require PFC; (3) RoCE requires PFC — plus the
//! §4.3 factor analysis, §4.5/§4.6 comparisons and §6.3 overhead check.
//! Absolute factors differ from the paper (different substrate and
//! workload CDF); the *orderings* are what must hold.

use irn_core::transport::cc::CcKind;
use irn_core::transport::config::TransportKind;
use irn_integration::run_cell;

const FLOWS: usize = 400;

#[test]
fn takeaway_1_irn_beats_roce_with_pfc() {
    let irn = run_cell(FLOWS, TransportKind::Irn, false, CcKind::None);
    let roce = run_cell(FLOWS, TransportKind::Roce, true, CcKind::None);
    assert!(
        irn.summary.avg_slowdown < roce.summary.avg_slowdown,
        "IRN slowdown {} must beat RoCE+PFC {}",
        irn.summary.avg_slowdown,
        roce.summary.avg_slowdown
    );
    assert!(irn.summary.avg_fct < roce.summary.avg_fct);
    assert!(irn.summary.p99_fct < roce.summary.p99_fct);
}

#[test]
fn takeaway_2_irn_does_not_require_pfc() {
    // Enabling PFC must not *improve* IRN appreciably (the paper found
    // it actively hurts; at minimum it must not be required).
    let bare = run_cell(FLOWS, TransportKind::Irn, false, CcKind::None);
    let pfc = run_cell(FLOWS, TransportKind::Irn, true, CcKind::None);
    let gain = bare.summary.avg_fct / pfc.summary.avg_fct;
    assert!(
        gain < 1.15,
        "PFC should buy IRN little: IRN/IRN+PFC avg-FCT ratio {gain:.3}"
    );
    // And IRN's loss recovery genuinely runs without PFC:
    assert!(bare.fabric.buffer_drops > 0, "no-PFC congestion must drop");
    assert!(bare.transport.retransmitted > 0);
}

#[test]
fn takeaway_3_roce_requires_pfc() {
    let with = run_cell(FLOWS, TransportKind::Roce, true, CcKind::None);
    let without = run_cell(FLOWS, TransportKind::Roce, false, CcKind::None);
    assert!(
        without.summary.avg_fct > with.summary.avg_fct * 15 / 10,
        "go-back-N without PFC must degrade ≥1.5x (paper: 1.5-3x): {} vs {}",
        without.summary.avg_fct,
        with.summary.avg_fct
    );
    assert!(
        without.transport.retransmission_rate() > 0.05,
        "redundant go-back-N retransmissions are the mechanism"
    );
}

#[test]
fn factor_analysis_both_changes_matter() {
    // Figure 7: removing either IRN ingredient hurts average FCT.
    let irn = run_cell(FLOWS, TransportKind::Irn, false, CcKind::None);
    let gbn = run_cell(FLOWS, TransportKind::IrnGoBackN, false, CcKind::None);
    let nofc = run_cell(FLOWS, TransportKind::IrnNoBdpFc, false, CcKind::None);
    assert!(
        gbn.summary.avg_fct > irn.summary.avg_fct,
        "go-back-N must cost FCT: {} vs {}",
        gbn.summary.avg_fct,
        irn.summary.avg_fct
    );
    assert!(
        nofc.summary.avg_fct > irn.summary.avg_fct,
        "dropping BDP-FC must cost FCT: {} vs {}",
        nofc.summary.avg_fct,
        irn.summary.avg_fct
    );
    // Go-back-N wastes bandwidth on redundant retransmissions (§4.3).
    assert!(gbn.transport.retransmitted > irn.transport.retransmitted);
}

#[test]
fn irn_beats_roce_under_dcqcn() {
    // Figure 4 (DCQCN panel).
    let irn = run_cell(FLOWS, TransportKind::Irn, false, CcKind::Dcqcn);
    let roce = run_cell(FLOWS, TransportKind::Roce, true, CcKind::Dcqcn);
    assert!(irn.summary.avg_fct < roce.summary.avg_fct);
    assert!(irn.summary.avg_slowdown < roce.summary.avg_slowdown);
}

#[test]
fn pfc_matters_little_for_irn_under_cc() {
    // Figure 5: with explicit CC, PFC on/off is near-neutral for IRN.
    for cc in [CcKind::Timely, CcKind::Dcqcn] {
        let bare = run_cell(FLOWS, TransportKind::Irn, false, cc);
        let pfc = run_cell(FLOWS, TransportKind::Irn, true, cc);
        let ratio = bare.summary.avg_fct / pfc.summary.avg_fct;
        assert!(
            (0.7..1.3).contains(&ratio),
            "{cc:?}: IRN/IRN+PFC avg-FCT ratio {ratio:.3} should be ≈1"
        );
    }
}

#[test]
fn irn_beats_resilient_roce() {
    // Figure 10: Resilient RoCE = RoCE + DCQCN without PFC.
    let resilient = run_cell(FLOWS, TransportKind::Roce, false, CcKind::Dcqcn);
    let irn = run_cell(FLOWS, TransportKind::Irn, false, CcKind::None);
    assert!(irn.summary.avg_slowdown < resilient.summary.avg_slowdown);
    assert!(irn.summary.avg_fct < resilient.summary.avg_fct);
}

#[test]
fn irn_beats_iwarp_tcp_on_slowdown() {
    // Figure 11: no slow start (BDP-FC instead) helps short flows.
    let iwarp = run_cell(FLOWS, TransportKind::IwarpTcp, false, CcKind::None);
    let irn = run_cell(FLOWS, TransportKind::Irn, false, CcKind::None);
    assert!(
        irn.summary.avg_slowdown < iwarp.summary.avg_slowdown,
        "IRN slowdown {} must beat iWARP's TCP {}",
        irn.summary.avg_slowdown,
        iwarp.summary.avg_slowdown
    );
    // iWARP must have actually exercised slow start / TCP recovery.
    assert!(iwarp.summary.flows == FLOWS);
}

#[test]
fn worst_case_overheads_are_small() {
    // Figure 12: +16 B headers and 2 µs retransmission fetch cost only a
    // few percent (paper: 4-7%).
    let plain = run_cell(FLOWS, TransportKind::Irn, false, CcKind::None);
    let mut cfg = irn_integration::quick_cfg(FLOWS)
        .with_transport(TransportKind::Irn)
        .with_pfc(false);
    cfg.extra_header = 16;
    cfg.retx_fetch_delay = irn_core::sim::Duration::micros(2);
    let worst = irn_core::run(cfg);
    let ratio = worst.summary.avg_fct / plain.summary.avg_fct;
    assert!(
        (0.95..1.25).contains(&ratio),
        "worst-case overheads should cost only a few %, got ratio {ratio:.3}"
    );
    // And still beat RoCE with PFC (§6.3: 35-63% better).
    let roce = run_cell(FLOWS, TransportKind::Roce, true, CcKind::None);
    assert!(worst.summary.avg_fct < roce.summary.avg_fct);
}

#[test]
fn incast_parity_without_cross_traffic() {
    // Figure 9: PFC's best case — IRN must stay within a few percent.
    use irn_core::TrafficModel;
    let workload = TrafficModel::Incast {
        m: 8,
        total_bytes: 16_000_000,
    };
    let irn = irn_core::run(
        irn_integration::quick_cfg(8)
            .with_traffic(workload.clone())
            .with_transport(TransportKind::Irn)
            .with_pfc(false),
    );
    let roce = irn_core::run(
        irn_integration::quick_cfg(8)
            .with_traffic(workload)
            .with_transport(TransportKind::Roce)
            .with_pfc(true),
    );
    let ratio = irn.rct().as_nanos() as f64 / roce.rct().as_nanos() as f64;
    assert!(
        (0.9..1.1).contains(&ratio),
        "incast RCT ratio {ratio:.3} should be ≈1 (paper: within 2.5%)"
    );
}

#[test]
fn single_packet_tail_is_best_for_irn() {
    // Figure 8: IRN's RTO_low keeps the single-packet tail short.
    let irn = run_cell(600, TransportKind::Irn, false, CcKind::None);
    let roce = run_cell(600, TransportKind::Roce, true, CcKind::None);
    let irn_tail = irn.metrics.single_packet_messages().percentile_fct(0.999);
    let roce_tail = roce.metrics.single_packet_messages().percentile_fct(0.999);
    assert!(
        irn_tail < roce_tail,
        "IRN p99.9 {irn_tail} must beat RoCE+PFC {roce_tail}"
    );
}
