//! The zero-copy packet path, pinned against its pre-refactor
//! semantics.
//!
//! The switch refactor moved packets out of per-VOQ `VecDeque<Packet>`s
//! into one `PacketArena` with intrusive `PktId` queues. Nothing about
//! the *model* was allowed to change — same ECN draws, same RR
//! arbitration, same PFC edges, same drop decisions — so this suite
//! keeps a by-value copy of the old switch ([`RefSwitch`], frozen at
//! the pre-arena commit) and drives random operation sequences through
//! both implementations in lockstep, asserting every observable agrees.
//!
//! Alongside the differential, the arena's own contract is property
//! tested (every id retired exactly once, pool empty at quiescence) and
//! checked end-to-end through lossy engine runs, where fault-injection
//! and buffer drops release ids on paths the happy path never takes.

use std::collections::VecDeque;

use irn_core::net::switch::{Enqueue, SwitchState};
use irn_core::net::{EcnConfig, FlowId, HostId, Packet, PacketArena, PacketKind, PfcConfig};
use irn_core::sim::SimRng;
use irn_core::transport::config::TransportKind;
use irn_core::workload::SizeDistribution;
use irn_core::{run, ExperimentConfig, TopologySpec, TrafficModel};
use proptest::prelude::*;

// ---------------------------------------------------------------------
// Reference switch: the pre-refactor by-value implementation, verbatim
// modulo the fields the differential does not observe. Do not "improve"
// this code — its whole value is being the old semantics.
// ---------------------------------------------------------------------

struct RefSwitch {
    radix: usize,
    buffer_bytes: u64,
    pfc: Option<PfcConfig>,
    ecn: Option<EcnConfig>,
    input_occ: Vec<u64>,
    voq: Vec<VecDeque<Packet>>,
    egress_bytes: Vec<u64>,
    rr_cursor: Vec<usize>,
    xoff_active: Vec<bool>,
    buffer_drops: u64,
    ecn_marked: u64,
    forwarded: u64,
}

impl RefSwitch {
    fn new(
        radix: usize,
        buffer_bytes: u64,
        pfc: Option<PfcConfig>,
        ecn: Option<EcnConfig>,
    ) -> Self {
        RefSwitch {
            radix,
            buffer_bytes,
            pfc,
            ecn,
            input_occ: vec![0; radix],
            voq: (0..radix * radix).map(|_| VecDeque::new()).collect(),
            egress_bytes: vec![0; radix],
            rr_cursor: vec![0; radix],
            xoff_active: vec![false; radix],
            buffer_drops: 0,
            ecn_marked: 0,
            forwarded: 0,
        }
    }

    fn enqueue(
        &mut self,
        in_port: u16,
        out_port: u16,
        mut pkt: Packet,
        rng: &mut SimRng,
    ) -> Enqueue {
        let (inp, out) = (in_port as usize, out_port as usize);
        let size = pkt.wire_bytes as u64;
        if self.input_occ[inp] + size > self.buffer_bytes {
            self.buffer_drops += 1;
            return Enqueue::Dropped;
        }
        let mut marked = false;
        if let Some(ecn) = &self.ecn {
            if pkt.is_data() {
                let p = ecn.mark_probability(self.egress_bytes[out] + size);
                if rng.chance(p) {
                    pkt.ecn_ce = true;
                    self.ecn_marked += 1;
                    marked = true;
                }
            }
        }
        self.input_occ[inp] += size;
        self.egress_bytes[out] += size;
        self.voq[out * self.radix + inp].push_back(pkt);
        let mut send_xoff = false;
        if let Some(pfc) = &self.pfc {
            if !self.xoff_active[inp] && self.input_occ[inp] > pfc.xoff_bytes {
                self.xoff_active[inp] = true;
                send_xoff = true;
            }
        }
        Enqueue::Queued { send_xoff, marked }
    }

    fn dequeue(&mut self, out_port: u16) -> Option<(Packet, u16, bool)> {
        let out = out_port as usize;
        let start = self.rr_cursor[out];
        for off in 0..self.radix {
            let inp = (start + off) % self.radix;
            if let Some(pkt) = self.voq[out * self.radix + inp].pop_front() {
                self.rr_cursor[out] = (inp + 1) % self.radix;
                let size = pkt.wire_bytes as u64;
                self.input_occ[inp] -= size;
                self.egress_bytes[out] -= size;
                self.forwarded += 1;
                let mut send_xon = false;
                if let Some(pfc) = &self.pfc {
                    if self.xoff_active[inp] && self.input_occ[inp] <= pfc.xon_bytes {
                        self.xoff_active[inp] = false;
                        send_xon = true;
                    }
                }
                return Some((pkt, inp as u16, send_xon));
            }
        }
        None
    }

    fn has_traffic(&self, out_port: u16) -> bool {
        let out = out_port as usize;
        self.egress_bytes[out] > 0
            || (0..self.radix).any(|inp| !self.voq[out * self.radix + inp].is_empty())
    }
}

// ---------------------------------------------------------------------
// Differential driver
// ---------------------------------------------------------------------

/// One raw op tuple: `(kind, in, out, bytes, data?)`. `kind % 5 < 3`
/// means enqueue, else dequeue on `out` — a 3:2 mix keeps queues
/// populated while still draining often. `bytes % 9` of 0 means a
/// zero-byte control frame (legal: RoCE pure-signalling ACKs).
type RawOp = (u16, u16, u16, u32, bool);

fn mk_pkt(seq: u32, bytes: u32, data: bool) -> Packet {
    let mut p = Packet::data(FlowId(7), HostId(1), HostId(2), seq, bytes);
    if !data {
        p.kind = PacketKind::Ack;
    }
    p
}

/// Wire bytes for a raw op: mostly 40..9000, zero one time in nine.
fn op_bytes(raw: u32) -> u32 {
    if raw % 9 == 0 {
        0
    } else {
        40 + raw % 8960
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Random op schedules through the arena/SoA switch and the frozen
    /// by-value reference, with identically seeded RNGs: every outcome,
    /// packet field, occupancy, flag, and counter must agree at every
    /// step, and the arena must drain to empty once both switches do.
    #[test]
    fn arena_switch_matches_by_value_reference(
        radix in 2u16..6,
        pfc_on in prop::bool::ANY,
        ecn_on in prop::bool::ANY,
        seed in 1u64..100_000,
        ops in proptest::collection::vec((0u16..5, 0u16..8, 0u16..8, 0u32..1_000_000, prop::bool::ANY), 1..400),
    ) {
        let buffer = 60_000u64;
        let pfc = if pfc_on {
            Some(PfcConfig { xoff_bytes: 40_000, xon_bytes: 30_000 })
        } else {
            None
        };
        let ecn = if ecn_on {
            Some(EcnConfig { kmin_bytes: 4_000, kmax_bytes: 30_000, pmax: 0.8 })
        } else {
            None
        };
        let r = radix as usize;
        let mut new_sw = SwitchState::new(r, buffer, pfc, ecn);
        let mut old_sw = RefSwitch::new(r, buffer, pfc, ecn);
        let mut arena = PacketArena::new();
        let mut rng_new = SimRng::new(seed);
        let mut rng_old = SimRng::new(seed);

        for (seq, &(kind, i, o, raw, data)) in ops.iter().enumerate() {
            let op: RawOp = (kind, i, o, raw, data);
            if op.0 % 5 < 3 {
                let (inp, out) = (op.1 % radix, op.2 % radix);
                let pkt = mk_pkt(seq as u32, op_bytes(op.3), op.4);
                let id = arena.alloc(pkt);
                let got = new_sw.enqueue(inp, out, id, &mut arena, &mut rng_new);
                let want = old_sw.enqueue(inp, out, pkt, &mut rng_old);
                prop_assert_eq!(got, want, "enqueue outcome diverged at op {}: {:?} vs {:?}", seq, got, want);
                if got == Enqueue::Dropped {
                    // Ownership stays with the caller on a drop.
                    arena.release(id);
                }
            } else {
                let out = op.2 % radix;
                let got = new_sw.dequeue(out, &mut arena);
                let want = old_sw.dequeue(out);
                match (got, want) {
                    (None, None) => {}
                    (Some(d), Some((pkt, inp, xon))) => {
                        let got_pkt = *arena.get(d.pkt);
                        arena.release(d.pkt);
                        prop_assert_eq!(got_pkt, pkt, "packet diverged at op {}", seq);
                        prop_assert_eq!(d.in_port, inp);
                        prop_assert_eq!(d.send_xon, xon);
                    }
                    (g, w) => {
                        panic!(
                            "dequeue divergence at op {seq}: new={:?} old={:?}",
                            g.is_some(),
                            w.is_some()
                        );
                    }
                }
            }
            // Observable state agrees after every step.
            for p in 0..radix {
                prop_assert_eq!(new_sw.input_occupancy(p), old_sw.input_occ[p as usize]);
                prop_assert_eq!(new_sw.egress_occupancy(p), old_sw.egress_bytes[p as usize]);
                prop_assert_eq!(new_sw.holds_paused(p), old_sw.xoff_active[p as usize]);
                prop_assert_eq!(new_sw.has_traffic(p), old_sw.has_traffic(p));
            }
            prop_assert_eq!(new_sw.stats.buffer_drops, old_sw.buffer_drops);
            prop_assert_eq!(new_sw.stats.ecn_marked, old_sw.ecn_marked);
            prop_assert_eq!(new_sw.stats.forwarded, old_sw.forwarded);
        }

        // Drain both switches; the arena must end empty with every id
        // retired exactly once (release panics on a double retire).
        for p in 0..radix {
            loop {
                match (new_sw.dequeue(p, &mut arena), old_sw.dequeue(p)) {
                    (Some(d), Some((pkt, _, _))) => {
                        prop_assert_eq!(*arena.get(d.pkt), pkt);
                        arena.release(d.pkt);
                    }
                    (None, None) => break,
                    _ => panic!("drain divergence on port {p}"),
                }
            }
        }
        prop_assert_eq!(arena.live(), 0, "arena must be empty at quiescence, {} live", arena.live());
        prop_assert_eq!(arena.allocated(), arena.released());
    }

    /// The arena against a model set: `live()` always matches, ids
    /// never alias while live, and full release drains to zero.
    #[test]
    fn arena_matches_model_set(
        ops in proptest::collection::vec(prop::bool::ANY, 1..300),
        seed in 1u64..10_000,
    ) {
        let mut arena = PacketArena::new();
        let mut live = Vec::new();
        let mut rng = SimRng::new(seed);
        for (i, alloc) in ops.iter().enumerate() {
            if *alloc || live.is_empty() {
                let id = arena.alloc(mk_pkt(i as u32, 1000, true));
                prop_assert!(!live.contains(&id), "alloc returned a live id");
                live.push(id);
            } else {
                let k = (rng.uniform() * live.len() as f64) as usize % live.len();
                let id = live.swap_remove(k);
                prop_assert_eq!(arena.get(id).wire_bytes, 1000);
                arena.release(id);
            }
            prop_assert_eq!(arena.live() as usize, live.len());
        }
        for id in live.drain(..) {
            arena.release(id);
        }
        prop_assert_eq!(arena.live(), 0);
        prop_assert_eq!(arena.allocated(), arena.released());
    }
}

// ---------------------------------------------------------------------
// End-to-end arena hygiene: lossy engine runs
// ---------------------------------------------------------------------

fn lossy_cfg(seed: u64, loss: f64) -> ExperimentConfig {
    ExperimentConfig {
        topology: TopologySpec::FatTree(4),
        traffic: TrafficModel::Poisson {
            load: 0.8,
            sizes: SizeDistribution::HeavyTailed,
            flow_count: 80,
        },
        seed,
        loss_injection: loss,
        ..ExperimentConfig::paper_default(80)
    }
    .with_transport(TransportKind::Irn)
    .with_pfc(false)
}

/// Fault-injection and buffer drops release packet ids on the fabric's
/// internal paths; flow retirement must still leave the pool empty
/// (the fabric panics on a leaked or double-released id, so completing
/// at all is the quiescence proof). The gauge must also be
/// deterministic: same config, same peak occupancy.
#[test]
fn lossy_runs_report_deterministic_pool_peaks() {
    let a = run(lossy_cfg(11, 0.02));
    let b = run(lossy_cfg(11, 0.02));
    assert_eq!(a.summary.flows, 80, "every flow completes despite loss");
    assert!(a.fabric.injected_drops > 0, "loss injection must trigger");
    assert!(a.transport.retransmitted > 0, "drops force retransmissions");
    assert!(a.memory.pkt_pool_pkts > 0, "pool peak must be recorded");
    assert!(a.memory.pkt_pool_bytes > 0, "pool bytes must be recorded");
    assert_eq!(a.memory.pkt_pool_pkts, b.memory.pkt_pool_pkts);
    assert_eq!(a.memory.pkt_pool_bytes, b.memory.pkt_pool_bytes);
    assert_eq!(a.events, b.events, "lossy runs stay deterministic");
}

/// The pool peak is bounded by what the workload can keep in flight —
/// a leak (ids allocated but never retired) would push the peak toward
/// the cumulative allocation count instead.
#[test]
fn pool_peak_is_bounded_not_cumulative() {
    let r = run(lossy_cfg(5, 0.0));
    assert!(
        r.transport.sent > r.memory.pkt_pool_pkts * 4,
        "peak {} should be far below total sent {}",
        r.memory.pkt_pool_pkts,
        r.transport.sent
    );
}
