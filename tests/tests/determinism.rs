//! Tier-1 determinism guard for the event-queue/RNG layer: the same
//! `ExperimentConfig` (same seed) must produce **bit-identical**
//! `RunResult`s across two independent runs. A regression here —
//! iteration over an unordered map, a stray `HashMap` tie-break, wall
//! clock or OS entropy leaking in — silently invalidates every
//! experiment comparison in the paper reproduction, so it is pinned at
//! the cheapest possible scale.

use irn_core::transport::cc::CcKind;
use irn_core::transport::config::TransportKind;
use irn_core::{run, RunResult};
use irn_integration::quick_cfg;

/// Assert full bit-identity of two runs, field by field so a failure
/// names the layer that diverged.
fn assert_identical(a: &RunResult, b: &RunResult, what: &str) {
    assert_eq!(a.events, b.events, "{what}: event count diverged");
    assert_eq!(a.summary, b.summary, "{what}: summary diverged");
    assert_eq!(a.fabric, b.fabric, "{what}: fabric counters diverged");
    assert_eq!(
        a.transport, b.transport,
        "{what}: transport counters diverged"
    );
    assert_eq!(
        a.finished_at, b.finished_at,
        "{what}: completion time diverged"
    );
    assert_eq!(
        a.metrics, b.metrics,
        "{what}: streaming metrics state diverged"
    );
    assert_eq!(a.memory, b.memory, "{what}: memory gauge diverged");
}

/// Same config + seed ⇒ bit-identical results, for every transport and
/// both PFC settings.
#[test]
fn identical_seeds_give_identical_runs() {
    for (t, pfc) in [
        (TransportKind::Irn, false),
        (TransportKind::Roce, true),
        (TransportKind::IwarpTcp, false),
    ] {
        let mk = || quick_cfg(40).with_transport(t).with_pfc(pfc);
        let a = run(mk());
        let b = run(mk());
        assert_identical(&a, &b, &format!("{t:?} pfc={pfc}"));
    }
}

/// Congestion control adds its own clocks and coin flips; pin those too.
#[test]
fn identical_seeds_give_identical_runs_with_cc() {
    for cc in [CcKind::Timely, CcKind::Dcqcn] {
        let mk = || {
            quick_cfg(40)
                .with_transport(TransportKind::Irn)
                .with_pfc(false)
                .with_cc(cc)
        };
        assert_identical(&run(mk()), &run(mk()), &format!("{cc:?}"));
    }
}

/// Different seeds must actually change the run — otherwise the seed is
/// dead and the determinism assertions above prove nothing.
#[test]
fn different_seeds_give_different_runs() {
    let base = || {
        quick_cfg(40)
            .with_transport(TransportKind::Irn)
            .with_pfc(false)
    };
    let a = run(base().with_seed(1));
    let b = run(base().with_seed(2));
    assert_ne!(
        (a.events, a.finished_at),
        (b.events, b.finished_at),
        "changing the seed changed nothing — RNG is disconnected"
    );
}

/// A config clone run after another simulation has already executed in
/// the same process must still match: no hidden global state.
#[test]
fn runs_are_order_independent() {
    let mk = |seed: u64| {
        quick_cfg(30)
            .with_transport(TransportKind::Irn)
            .with_pfc(false)
            .with_seed(seed)
    };
    let first = run(mk(7));
    let _interleaved = run(mk(99));
    let again = run(mk(7));
    assert_identical(&first, &again, "seed 7 after interleaved run");
}
