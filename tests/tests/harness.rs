//! Determinism suite for the `irn-harness` orchestration layer.
//!
//! The tentpole guarantee: a report assembled from a harness batch —
//! and the JSON artifact serialized from it — is **byte-identical** at
//! any `--jobs` value, and multi-seed aggregation does not depend on
//! seed order. These tests run a deliberately small scale (the point is
//! scheduling, not statistics).

use irn_experiments::artifacts::{self, Determinism};
use irn_experiments::{runners, Scale};
use irn_harness::{Cell, Harness, Replicate};
use serde::json;
use serde::Serialize;

/// Smaller than `Scale::quick()`: these tests also run under the debug
/// profile in CI, where the simulator is ~10x slower. Two seed
/// replicates keep the multi-seed machinery engaged without doubling
/// the runtime again.
fn tiny() -> Scale {
    Scale {
        fat_tree_k: 4,
        flows: 120,
        incast_reps: 2,
        incast_bytes: 2_000_000,
        seeds: 2,
    }
}

/// The representative figure: fig4 exercises the sweep grid (variants ×
/// cc), seed replication, batched submission, and metrics-row assembly.
/// It is run through the registry, and must be flagged replicated there
/// — that class is the registry's promise this byte-identity test
/// relies on.
#[test]
fn report_render_is_byte_identical_across_job_counts() {
    let scale = tiny();
    let artifact = artifacts::find("fig4").unwrap();
    assert_eq!(
        artifact.determinism,
        Determinism::Replicated,
        "fig4 must be a replicated simulation artifact"
    );
    let serial = artifact.run(scale, &Harness::new(1));
    let parallel = artifact.run(scale, &Harness::new(8));
    assert_eq!(
        serial.render(),
        parallel.render(),
        "jobs=1 and jobs=8 must render byte-identically"
    );
}

/// The JSON artifact path must be byte-stable across job counts too,
/// and the emitted text must satisfy the CI verifier (schema v2:
/// seeds + determinism metadata alongside the report).
#[test]
fn json_artifact_is_byte_identical_across_job_counts() {
    let scale = tiny();
    let fig4 = artifacts::find("fig4").unwrap();
    let serial = artifacts::artifact_json(
        fig4,
        &scale,
        &runners::fig4(scale).run(&Harness::new(1)),
        None,
    );
    let parallel = artifacts::artifact_json(
        fig4,
        &scale,
        &runners::fig4(scale).run(&Harness::new(8)),
        None,
    );
    assert_eq!(serial, parallel);
    artifacts::verify_artifact_json("fig4", &serial).unwrap();
    // Full value-level round-trip through the vendored serde.
    let v = json::from_str(&serial).unwrap();
    assert_eq!(json::from_str(&json::to_string(&v)).unwrap(), v);
    assert_eq!(
        v.get("schema_version").and_then(json::Value::as_u64),
        Some(artifacts::SCHEMA_VERSION)
    );
    assert_eq!(
        v.get("seeds").and_then(json::Value::as_u64),
        Some(tiny().seeds as u64)
    );
}

/// Replicate aggregation over an incast traffic: the order seeds are
/// supplied in must not change any aggregate bit.
#[test]
fn replicate_aggregation_is_seed_order_independent() {
    let base = irn_core::ExperimentConfig {
        topology: irn_core::TopologySpec::FatTree(4),
        traffic: irn_core::TrafficModel::Incast {
            m: 6,
            total_bytes: 2_000_000,
        },
        ..irn_core::ExperimentConfig::paper_default(6)
    };
    let h = Harness::new(4);
    let forward = Replicate::new(Cell::new("incast", base.clone()), [1, 102, 203]).run(&h);
    let shuffled = Replicate::new(Cell::new("incast", base), [203, 1, 102]).run(&h);
    let f = forward.stats(|r| r.rct().as_nanos() as f64);
    let s = shuffled.stats(|r| r.rct().as_nanos() as f64);
    assert_eq!(f.mean.to_bits(), s.mean.to_bits());
    assert_eq!(f.std_dev.to_bits(), s.std_dev.to_bits());
    assert_eq!(f.ci95.to_bits(), s.ci95.to_bits());
    assert_eq!(f.n, 3);
}

/// A full RunResult round-trips through the vendored serde at the
/// JSON-value level.
#[test]
fn run_result_round_trips_through_serde() {
    let r = irn_core::run(irn_core::ExperimentConfig::quick(40));
    let v = r.to_json();
    let text = json::to_string(&v);
    let parsed = json::from_str(&text).unwrap();
    assert_eq!(parsed, v);
    // Spot-check the wire shape: summary metrics and fabric counters.
    assert_eq!(
        parsed
            .get("summary")
            .and_then(|s| s.get("flows"))
            .and_then(json::Value::as_u64),
        Some(40)
    );
    assert!(parsed.get("fabric").is_some_and(json::Value::is_object));
    assert_eq!(
        parsed.get("events").and_then(json::Value::as_u64),
        Some(r.events)
    );
    // The scheduler counters ride along (and the per-kind counts
    // partition the event total).
    let sched = parsed.get("sched").expect("sched counters serialized");
    let kind_sum: u64 = [
        "flow_arrivals",
        "fabric_events",
        "qp_timer_events",
        "nic_wake_events",
    ]
    .iter()
    .map(|k| sched.get(k).and_then(json::Value::as_u64).unwrap())
    .sum();
    assert_eq!(kind_sum, r.events);
    assert_eq!(
        sched.get("past_clamps").and_then(json::Value::as_u64),
        Some(0)
    );
}

/// The registry drives the repro CLI: every simulation-backed artifact
/// must be discoverable, and misspellings must be rejected.
#[test]
fn artifact_registry_rejects_unknown_names() {
    assert!(artifacts::find("fig9").is_some());
    assert!(artifacts::find("fig13").is_none());
    assert_eq!(artifacts::unknown_names(&["all", "fig1"]), [""; 0]);
    assert_eq!(artifacts::unknown_names(&["fig13"]), ["fig13"]);
}
