//! The `Scenario` API contract: serde round-trips are byte-identical,
//! a parsed scenario reproduces bit-identical results, and the two new
//! traffic models (bursty on/off Poisson, permutation shuffle) are
//! deterministic and correctly calibrated end to end.

use irn_core::sim::{Duration, SimRng, Time};
use irn_core::transport::cc::CcKind;
use irn_core::transport::config::TransportKind;
use irn_core::workload::{FlowSpec, SizeDistribution};
use irn_core::{
    run, AllreduceAlgo, Component, Population, Scenario, ScenarioError, Start, TopologySpec,
    TrafficError, TrafficModel,
};
use proptest::prelude::*;
use serde::json;
use serde::Serialize;

// ---------------------------------------------------------------------
// Random valid scenarios (seed-driven, so failures reproduce exactly)
// ---------------------------------------------------------------------

fn pick<T: Copy>(rng: &mut SimRng, options: &[T]) -> T {
    options[rng.index(options.len())]
}

fn arb_sizes(rng: &mut SimRng) -> SizeDistribution {
    match rng.index(3) {
        0 => SizeDistribution::HeavyTailed,
        1 => SizeDistribution::Uniform500KbTo5Mb,
        _ => SizeDistribution::Fixed(1 + rng.range(1, 1_000_000)),
    }
}

fn arb_leaf_model(rng: &mut SimRng, hosts: usize) -> TrafficModel {
    match rng.index(5) {
        0 => TrafficModel::Poisson {
            load: 0.05 + 0.95 * rng.uniform(),
            sizes: arb_sizes(rng),
            flow_count: 1 + rng.index(500),
        },
        1 => TrafficModel::BurstyPoisson {
            load: 0.05 + 0.95 * rng.uniform(),
            sizes: arb_sizes(rng),
            flow_count: 1 + rng.index(500),
            duty_cycle: 0.05 + 0.95 * rng.uniform(),
            burst_flows: 1 + rng.index(20),
        },
        2 => TrafficModel::Incast {
            m: 1 + rng.index(hosts - 1),
            total_bytes: 1 + rng.range(1, 100_000_000),
        },
        3 => TrafficModel::Shuffle {
            flow_bytes: 1 + rng.range(1, 10_000_000),
            rounds: 1 + rng.index(10),
            round_gap: Duration::nanos(rng.range(0, 1_000_000)),
        },
        _ => TrafficModel::Explicit(
            (0..1 + rng.index(5))
                .map(|_| {
                    let src = rng.index(hosts) as u32;
                    let mut dst = rng.index(hosts - 1) as u32;
                    if dst >= src {
                        dst += 1;
                    }
                    FlowSpec {
                        src,
                        dst,
                        bytes: 1 + rng.range(1, 1_000_000),
                        at: Time::from_nanos(rng.range(0, 1_000_000)),
                    }
                })
                .collect(),
        ),
    }
}

/// A random *closed-loop* model, valid at `hosts` by construction.
/// These never nest under Compose (validation forbids it), so they are
/// generated as top-level traffic only.
fn arb_closed_loop(rng: &mut SimRng, hosts: usize) -> TrafficModel {
    let kind = rng.index(3);
    if kind == 0 {
        let clients = 1 + rng.index(hosts - 1);
        let servers = hosts - clients;
        return TrafficModel::RpcClosedLoop {
            clients: clients as u32,
            ops_per_client: 1 + rng.index(30) as u32,
            window: 1 + rng.index(4) as u32,
            request_bytes: 1 + rng.range(1, 1_000_000),
            response_bytes: 1 + rng.range(1, 100_000),
            think: Duration::nanos(rng.range(0, 1_000_000)),
            fanout: 1 + rng.index(servers.min(4)) as u32,
        };
    }
    // LeaderReplicate needs leader + followers + clients distinct hosts.
    if kind == 2 && hosts >= 3 {
        let followers = 1 + rng.index(hosts - 2);
        let clients = 1 + rng.index(hosts - 1 - followers);
        return TrafficModel::LeaderReplicate {
            clients: clients as u32,
            followers: followers as u32,
            quorum: 1 + rng.index(followers) as u32,
            ops_per_client: 1 + rng.index(30) as u32,
            request_bytes: 1 + rng.range(1, 1_000_000),
            ack_bytes: 1 + rng.range(1, 10_000),
            think: Duration::nanos(rng.range(0, 1_000_000)),
        };
    }
    TrafficModel::Allreduce {
        algorithm: pick(rng, &[AllreduceAlgo::Ring, AllreduceAlgo::Tree]),
        participants: (2 + rng.index(hosts - 1)) as u32,
        bytes: 1 + rng.range(1, 10_000_000),
        iterations: 1 + rng.index(6) as u32,
    }
}

fn arb_scenario(seed: u64) -> Scenario {
    let mut rng = SimRng::new(seed);
    let topology = match rng.index(3) {
        0 => TopologySpec::SingleSwitch(2 + rng.index(14)),
        1 => TopologySpec::Dumbbell(1 + rng.index(6), 1 + rng.index(6)),
        _ => TopologySpec::FatTree(pick(&mut rng, &[4usize, 6, 8])),
    };
    let hosts = topology.hosts();
    let traffic = if rng.chance(0.25) {
        arb_closed_loop(&mut rng, hosts)
    } else if rng.chance(0.33) {
        TrafficModel::Compose(
            (0..1 + rng.index(3))
                .map(|_| Component {
                    model: arb_leaf_model(&mut rng, hosts),
                    population: pick(&mut rng, &[Population::Primary, Population::Incast]),
                    seed_salt: rng.next_u64(),
                    start: match rng.index(3) {
                        0 => Start::Zero,
                        1 => Start::PriorMedian,
                        _ => Start::At(Duration::nanos(rng.range(0, 10_000_000))),
                    },
                })
                .collect(),
        )
    } else {
        arb_leaf_model(&mut rng, hosts)
    };
    let name = format!("prop scenario #{seed} (weird/chars %+ok)");
    Scenario::builder(name)
        .topology(topology)
        .traffic(traffic)
        .transport(pick(
            &mut rng,
            &[
                TransportKind::Irn,
                TransportKind::Roce,
                TransportKind::IrnGoBackN,
                TransportKind::IrnNoBdpFc,
                TransportKind::IwarpTcp,
            ],
        ))
        .cc(pick(
            &mut rng,
            &[
                CcKind::None,
                CcKind::Timely,
                CcKind::Dcqcn,
                CcKind::Aimd,
                CcKind::Dctcp,
            ],
        ))
        .pfc(rng.chance(0.5))
        .seed(rng.next_u64())
        .configure(|c| {
            c.bandwidth = irn_core::net::Bandwidth::from_mbps(1 + rng.range(1, 400_000));
            c.prop_delay = Duration::nanos(rng.range(1, 100_000));
            c.buffer_bytes = 1 + rng.range(1, 1_000_000);
            c.mtu = 1 + rng.range(1, 9000) as u32;
            c.rto_high = rng
                .chance(0.5)
                .then(|| Duration::nanos(rng.range(1, 10_000_000)));
            c.rto_low = Duration::nanos(rng.range(1, 1_000_000));
            c.rto_low_n = 1 + rng.range(0, 20) as u32;
            c.extra_header = rng.range(0, 64) as u32;
            c.retx_fetch_delay = Duration::nanos(rng.range(0, 10_000));
            c.loss_injection = if rng.chance(0.3) {
                0.9 * rng.uniform()
            } else {
                0.0
            };
            c.load_balancing = pick(
                &mut rng,
                &[
                    irn_core::net::LoadBalancing::EcmpPerFlow,
                    irn_core::net::LoadBalancing::PacketSpray,
                ],
            );
            c.nack_threshold = 1 + rng.range(0, 8) as u32;
            c.max_events = 1 + rng.next_u64() % (1 << 40);
        })
        .build()
        .expect("generated scenarios are valid by construction")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// serialize → parse → serialize is byte-identical, and the parsed
    /// scenario equals the original (config and all).
    #[test]
    fn scenario_serde_round_trip_is_byte_identical(seed in 0u64..1_000_000) {
        let scenario = arb_scenario(seed);
        let text = scenario.to_json_string();
        let parsed = Scenario::from_json_str(&text).expect("own output must parse");
        prop_assert_eq!(&parsed, &scenario);
        prop_assert_eq!(parsed.to_json_string(), text);
    }
}

// ---------------------------------------------------------------------
// Parsed scenarios reproduce bit-identical results
// ---------------------------------------------------------------------

/// A run is a pure function of its config; a config that survived a
/// JSON round trip must therefore produce a bit-identical [`RunResult`]
/// (compared through its full serialized form — every metric, counter,
/// and timestamp).
#[test]
fn parsed_scenario_runs_bit_identical() {
    let scenarios = [
        Scenario::builder("round-trip poisson")
            .topology(TopologySpec::SingleSwitch(4))
            .traffic(TrafficModel::Poisson {
                load: 0.6,
                sizes: SizeDistribution::HeavyTailed,
                flow_count: 50,
            })
            .seed(11)
            .build()
            .unwrap(),
        Scenario::builder("round-trip bursty")
            .topology(TopologySpec::SingleSwitch(6))
            .traffic(TrafficModel::BurstyPoisson {
                load: 0.5,
                sizes: SizeDistribution::HeavyTailed,
                flow_count: 60,
                duty_cycle: 0.3,
                burst_flows: 6,
            })
            .cc(CcKind::Timely)
            .build()
            .unwrap(),
        Scenario::builder("round-trip shuffle")
            .topology(TopologySpec::FatTree(4))
            .traffic(TrafficModel::Shuffle {
                flow_bytes: 40_000,
                rounds: 2,
                round_gap: Duration::micros(20),
            })
            .build()
            .unwrap(),
        Scenario::builder("round-trip compose")
            .topology(TopologySpec::SingleSwitch(8))
            .traffic(TrafficModel::incast_with_cross(
                4,
                1_000_000,
                0.4,
                SizeDistribution::HeavyTailed,
                40,
            ))
            .build()
            .unwrap(),
        Scenario::builder("round-trip rpc closed loop")
            .topology(TopologySpec::SingleSwitch(6))
            .traffic(TrafficModel::RpcClosedLoop {
                clients: 2,
                ops_per_client: 6,
                window: 2,
                request_bytes: 10_000,
                response_bytes: 500,
                think: Duration::micros(25),
                fanout: 2,
            })
            .seed(3)
            .build()
            .unwrap(),
        Scenario::builder("round-trip allreduce")
            .topology(TopologySpec::SingleSwitch(8))
            .traffic(TrafficModel::Allreduce {
                algorithm: AllreduceAlgo::Tree,
                participants: 6,
                bytes: 300_000,
                iterations: 2,
            })
            .build()
            .unwrap(),
        Scenario::builder("round-trip leader replicate")
            .topology(TopologySpec::SingleSwitch(8))
            .traffic(TrafficModel::LeaderReplicate {
                clients: 2,
                followers: 3,
                quorum: 2,
                ops_per_client: 5,
                request_bytes: 8_000,
                ack_bytes: 64,
                think: Duration::micros(15),
            })
            .build()
            .unwrap(),
    ];
    for scenario in scenarios {
        let parsed = Scenario::from_json_str(&scenario.to_json_string()).unwrap();
        let a = run(scenario.config().clone());
        let b = run(parsed.into_config());
        assert_eq!(
            json::to_string(&a.to_json()),
            json::to_string(&b.to_json()),
            "{}: parsed config must reproduce the run bit-for-bit",
            scenario.name()
        );
    }
}

// ---------------------------------------------------------------------
// New traffic models, end to end
// ---------------------------------------------------------------------

/// Bursty on/off Poisson through the full engine: deterministic,
/// completes every flow, and offered load stays calibrated (the flows'
/// own bytes/horizon, measured per host in the generated stream, is
/// covered by unit tests; here the engine must finish the workload).
#[test]
fn bursty_scenario_is_deterministic_end_to_end() {
    let s = Scenario::builder("bursty e2e")
        .topology(TopologySpec::FatTree(4))
        .traffic(TrafficModel::BurstyPoisson {
            load: 0.6,
            sizes: SizeDistribution::HeavyTailed,
            flow_count: 120,
            duty_cycle: 0.25,
            burst_flows: 8,
        })
        .seed(5)
        .build()
        .unwrap();
    let a = run(s.config().clone());
    let b = run(s.config().clone());
    assert_eq!(a.summary.flows, 120, "every bursty flow must complete");
    assert_eq!(json::to_string(&a.to_json()), json::to_string(&b.to_json()));
    // Different seed ⇒ different realization.
    let c = run(s.with_seed(6).into_config());
    assert_ne!(json::to_string(&a.to_json()), json::to_string(&c.to_json()));
}

/// Permutation shuffle through the full engine: every host sends and
/// receives `rounds × flow_bytes`, nothing self-targets, runs are
/// deterministic.
#[test]
fn shuffle_scenario_is_deterministic_and_balanced() {
    let s = Scenario::builder("shuffle e2e")
        .topology(TopologySpec::SingleSwitch(10))
        .traffic(TrafficModel::Shuffle {
            flow_bytes: 30_000,
            rounds: 3,
            round_gap: Duration::micros(10),
        })
        .seed(2)
        .build()
        .unwrap();
    let a = run(s.config().clone());
    assert_eq!(a.summary.flows, 30, "rounds × hosts flows");
    let b = run(s.config().clone());
    assert_eq!(json::to_string(&a.to_json()), json::to_string(&b.to_json()));
}

// ---------------------------------------------------------------------
// Committed example files
// ---------------------------------------------------------------------

/// Every committed `examples/*.json` scenario must parse and validate
/// (the CI smoke test also executes them at release speed).
#[test]
fn committed_example_scenarios_are_valid() {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../examples");
    let mut count = 0;
    for entry in std::fs::read_dir(&dir).expect("examples/ directory exists") {
        let path = entry.unwrap().path();
        if path.extension().is_none_or(|e| e != "json") {
            continue;
        }
        let text = std::fs::read_to_string(&path).unwrap();
        let scenario =
            Scenario::from_json_str(&text).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        assert!(
            !scenario.name().is_empty(),
            "{} must carry a name",
            path.display()
        );
        count += 1;
    }
    assert!(
        count >= 7,
        "expected the committed example set, found {count}"
    );
}

/// The beyond-paper k=10 shuffle example really is beyond the paper's
/// matrix: 250 hosts, a pattern §4 never runs.
#[test]
fn shuffle_example_is_beyond_paper_scale() {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../examples");
    let text = std::fs::read_to_string(dir.join("shuffle-k10.json")).unwrap();
    let s = Scenario::from_json_str(&text).unwrap();
    assert_eq!(s.config().topology.hosts(), 250);
    assert!(matches!(
        s.config().traffic,
        TrafficModel::Shuffle { rounds: 2, .. }
    ));
}

// ---------------------------------------------------------------------
// Typed errors, not panics
// ---------------------------------------------------------------------

/// The user-reachable misconfiguration space maps to typed errors —
/// never a panic — including through the JSON path.
#[test]
fn config_mistakes_surface_as_typed_errors() {
    let cases: Vec<(&str, ScenarioError)> = vec![
        (
            r#"{"schema": "scenario-v1", "name": "x",
                "topology": {"fat_tree": {"k": 7}},
                "traffic": {"poisson": {"load": 0.5, "sizes": "heavy_tailed", "flows": 5}}}"#,
            ScenarioError::OddFatTree { k: 7 },
        ),
        (
            r#"{"schema": "scenario-v1", "name": "x", "mtu": 0,
                "topology": {"fat_tree": {"k": 4}},
                "traffic": {"poisson": {"load": 0.5, "sizes": "heavy_tailed", "flows": 5}}}"#,
            ScenarioError::ZeroMtu,
        ),
        (
            r#"{"schema": "scenario-v1", "name": "x",
                "topology": {"fat_tree": {"k": 4}},
                "traffic": {"poisson": {"load": 0.0, "sizes": "heavy_tailed", "flows": 5}}}"#,
            ScenarioError::Traffic(TrafficError::LoadOutOfRange { load: 0.0 }),
        ),
        (
            r#"{"schema": "scenario-v1", "name": "x",
                "topology": {"single_switch": {"hosts": 6}},
                "traffic": {"incast": {"m": 6, "total_bytes": 100}}}"#,
            ScenarioError::Traffic(TrafficError::IncastFanIn { m: 6, hosts: 6 }),
        ),
    ];
    for (text, expect) in cases {
        assert_eq!(Scenario::from_json_str(text).unwrap_err(), expect);
    }
}
