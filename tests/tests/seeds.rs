//! Seed-count sensitivity and global-scheduler equivalence.
//!
//! Two promises from the replicate-everywhere layer are pinned here:
//!
//! 1. **Seed semantics.** Raising `--seeds` on a Poisson artifact adds
//!    `<metric>_ci95` columns with genuinely nonzero run-to-run
//!    variance, while seed-independent artifacts (and the single-seed
//!    shape of every artifact) are completely unaffected.
//! 2. **Scheduling is invisible.** `repro all`'s global interleaved
//!    batch produces byte-identical reports to running each artifact
//!    sequentially, at any job count.

use irn_experiments::artifacts::{self, Artifact};
use irn_experiments::{Harness, Scale};

/// Debug-profile-friendly scale (CI runs these tests unoptimized too).
fn tiny() -> Scale {
    Scale {
        fat_tree_k: 4,
        flows: 120,
        incast_reps: 2,
        incast_bytes: 2_000_000,
        seeds: 1,
    }
}

fn select(names: &[&str]) -> Vec<&'static Artifact> {
    names
        .iter()
        .map(|n| artifacts::find(n).expect("known artifact"))
        .collect()
}

/// fig1 at `--seeds 1` has the classic single-value rows (no ci95
/// columns); at `--seeds 5` every metric gains a ci95 companion that is
/// nonzero — Poisson workload realizations genuinely differ by seed.
/// The per-metric *means* move between the two seed counts (they
/// average different run sets), but the row labels and metric names
/// stay fixed.
#[test]
fn poisson_artifact_gains_nonzero_ci95_with_seeds() {
    let h = Harness::new(4);
    let one = artifacts::find("fig1").unwrap().run(tiny(), &h);
    let five = artifacts::find("fig1")
        .unwrap()
        .run(tiny().with_seeds(5), &h);

    assert_eq!(one.rows.len(), five.rows.len());
    for (r1, r5) in one.rows.iter().zip(&five.rows) {
        assert_eq!(r1.label, r5.label);
        // seeds=1: no ci95 columns at all.
        assert!(
            r1.values.iter().all(|(n, _)| !n.ends_with("_ci95")),
            "single-seed rows must not carry ci95 columns: {r1:?}"
        );
        // seeds=5: every metric has a ci95 companion, and at least one
        // is strictly positive (Poisson noise exists).
        for (name, _) in &r1.values {
            assert!(
                r5.values.iter().any(|(n, _)| n == &format!("{name}_ci95")),
                "metric {name} lost its ci95 companion at seeds=5"
            );
        }
        let max_ci = r5
            .values
            .iter()
            .filter(|(n, _)| n.ends_with("_ci95"))
            .map(|(_, v)| *v)
            .fold(0.0f64, f64::max);
        assert!(
            max_ci > 0.0,
            "row '{}' reports zero variance over 5 Poisson seeds",
            r5.label
        );
    }
}

/// The replicated mean over N seeds includes the seed-1 run: at
/// `--seeds 1` the mean *is* that run's value, so the two seed counts
/// agree only when the artifact is seed-independent. state-budget is —
/// its bytes must not move at all.
#[test]
fn deterministic_artifact_is_seed_count_invariant() {
    let h = Harness::new(2);
    let budget = artifacts::find("state-budget").unwrap();
    let one = budget.run(tiny(), &h).render();
    let five = budget.run(tiny().with_seeds(5), &h).render();
    assert_eq!(one, five, "state-budget must ignore --seeds entirely");
}

/// The global interleaved batch is pure scheduling: for a mixed
/// selection (small figures, an appendix table, an inline artifact),
/// `run_batched` must render byte-identically to one-artifact-at-a-time
/// runs, and byte-identically between jobs=1 and jobs=8.
#[test]
fn global_batch_matches_sequential_at_any_job_count() {
    let scale = tiny().with_seeds(2);
    let names = ["fig1", "fig3", "table9", "state-budget"];
    let selected = select(&names);

    let render_all = |reports: Vec<irn_experiments::Report>| -> String {
        reports
            .iter()
            .map(|r| r.render())
            .collect::<Vec<_>>()
            .join("\n")
    };

    // Sequential baseline: each artifact runs alone on a serial harness.
    let sequential: String = render_all(
        selected
            .iter()
            .map(|a| a.run(scale, &Harness::new(1)))
            .collect(),
    );
    let batched_serial =
        render_all(artifacts::run_batched(&selected, scale, &Harness::new(1)).reports);
    let batched_parallel =
        render_all(artifacts::run_batched(&selected, scale, &Harness::new(8)).reports);

    assert_eq!(
        sequential, batched_serial,
        "global batching at jobs=1 must be invisible in the output"
    );
    assert_eq!(
        batched_serial, batched_parallel,
        "global batch output must be byte-identical at jobs=1 vs jobs=8"
    );
}

/// The batch really is global: the cell count `run_batched` reports is
/// the sum of the per-artifact plans, and demux hands every artifact
/// exactly its own slice (spot-checked by comparing against the
/// single-artifact path above).
#[test]
fn batch_cell_count_sums_per_artifact_plans() {
    let scale = tiny().with_seeds(2);
    let names = ["fig1", "fig2", "fig9", "state-budget"];
    let selected = select(&names);
    let batch = artifacts::run_batched(&selected, scale, &Harness::new(8));
    assert_eq!(batch.reports.len(), selected.len());
    let total = batch.cell_count;
    let per_artifact: usize = selected
        .iter()
        .filter_map(|a| a.plan(scale))
        .map(|p| p.cell_count())
        .sum();
    assert_eq!(total, per_artifact);
    // fig1 = 2 variants × 2 seeds, fig2 likewise; fig9 = 3cc × 3M × 2
    // transports × 2 reps; state-budget contributes nothing.
    assert_eq!(total, 4 + 4 + 36);
}

/// The scheduler-swap pin: **every** registered deterministic artifact
/// — the full `repro all` surface minus the two CPU-timing substitutes
/// — renders byte-identical stdout and byte-identical schema-v2 JSON
/// at jobs=1 vs jobs=8, through the global batch. This is the
/// acceptance gate that lets the event-scheduler implementation change
/// underneath the artifacts: any drift in event order (tie-breaks,
/// timer delivery, arrival streaming) shows up here as a byte diff.
#[test]
fn every_deterministic_artifact_is_byte_stable_across_job_counts() {
    // Debug-profile budget: this runs the whole registry twice (jobs=1
    // and jobs=8), so the scale is the smallest that still exercises
    // every artifact's full cell matrix.
    let scale = Scale {
        flows: 60,
        incast_bytes: 1_000_000,
        ..tiny()
    };
    let selected: Vec<&'static Artifact> = artifacts::ARTIFACTS
        .iter()
        .filter(|a| a.deterministic())
        .collect();
    assert!(selected.len() >= 20, "registry unexpectedly shrank");

    let render = |jobs: usize| -> Vec<(String, String)> {
        let batch = artifacts::run_batched(&selected, scale, &Harness::new(jobs));
        selected
            .iter()
            .zip(&batch.reports)
            .map(|(a, rep)| (rep.render(), artifacts::artifact_json(a, &scale, rep, None)))
            .collect()
    };
    let serial = render(1);
    let parallel = render(8);
    for ((a, (s_txt, s_json)), (p_txt, p_json)) in selected.iter().zip(&serial).zip(&parallel) {
        assert_eq!(s_txt, p_txt, "{}: stdout differs jobs=1 vs jobs=8", a.name);
        assert_eq!(s_json, p_json, "{}: JSON differs jobs=1 vs jobs=8", a.name);
        artifacts::verify_artifact_json(a.name, s_json).unwrap();
    }
}

/// `--seeds` flows through the JSON envelope: the `seeds` field tracks
/// the override while the scale label stays a preset name.
#[test]
fn seeds_override_lands_in_envelope_not_scale_label() {
    let scale = Scale::quick().with_seeds(3);
    assert_eq!(scale.label(), "quick");
    let fig1 = artifacts::find("fig1").unwrap();
    let mut rep = irn_experiments::Report::new("Figure 1", "t", "p");
    rep.add(irn_experiments::Row::new("IRN").push("avg_slowdown", 1.0));
    let text = artifacts::artifact_json(fig1, &scale, &rep, None);
    let v = serde::json::from_str(&text).unwrap();
    assert_eq!(v.get("seeds").and_then(serde::json::Value::as_u64), Some(3));
    assert_eq!(
        v.get("scale").and_then(serde::json::Value::as_str),
        Some("quick")
    );
}
