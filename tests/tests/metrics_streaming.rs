//! The accuracy-contract differential suite for the streaming metrics
//! vertical (`irn-metrics`): random flow populations are folded into
//! the fixed-memory [`MetricsCollector`] *and* into an exact
//! record-vector reference, and every reported number must be either
//! bit-identical (the documented exact paths) or within the documented
//! quantile bound ([`QUANTILE_RELATIVE_ERROR`]). A second tier pins the
//! executor invariant: the streaming state serializes byte-identically
//! at `--jobs 1`, `--jobs 8`, and across a 3-worker TCP fleet.

use irn_core::transport::cc::CcKind;
use irn_core::transport::config::TransportKind;
use irn_core::workload::SizeDistribution;
use irn_core::{ExperimentConfig, TrafficModel};
use irn_harness::{Cell, Executor, PoolConfig, ThreadExecutor, WorkerPool, WorkerSpec};
use irn_metrics::{
    FlowRecord, LogHistogram, MetricsCollector, MAX_RELATIVE_ERROR, QUANTILE_RELATIVE_ERROR,
};
use irn_sim::{Duration, Time};
use proptest::prelude::*;
use serde::Serialize;

// ---------------------------------------------------------------------
// The exact-vector reference: the semantics of the pre-streaming
// implementation, kept here as the oracle the collector is diffed
// against.
// ---------------------------------------------------------------------

/// What the old record-vector collector computed.
struct ExactReference {
    fcts_ns: Vec<u64>,
    slowdowns: Vec<f64>,
    slowdown_sum: f64,
    fct_sum_ns: u64,
    first_start_ns: u64,
    last_finish_ns: u64,
}

impl ExactReference {
    fn new(records: &[FlowRecord]) -> ExactReference {
        let mut fcts_ns: Vec<u64> = records.iter().map(|r| r.fct().as_nanos()).collect();
        let mut slowdowns: Vec<f64> = records.iter().map(|r| r.slowdown()).collect();
        // Record-order sums first (the collector folds in record
        // order, so bit-exactness is against this order).
        let slowdown_sum = slowdowns.iter().sum();
        let fct_sum_ns = fcts_ns.iter().fold(0u64, |a, &b| a.saturating_add(b));
        fcts_ns.sort_unstable();
        slowdowns.sort_by(|a, b| a.partial_cmp(b).unwrap());
        ExactReference {
            fcts_ns,
            slowdowns,
            slowdown_sum,
            fct_sum_ns,
            first_start_ns: records.iter().map(|r| r.start.as_nanos()).min().unwrap(),
            last_finish_ns: records.iter().map(|r| r.finish.as_nanos()).max().unwrap(),
        }
    }

    /// The old nearest-rank index (same formula the collector's
    /// histograms use on exact counts).
    fn rank(q: f64, n: usize) -> usize {
        (((q * n as f64).ceil() as usize).max(1) - 1).min(n - 1)
    }

    fn percentile_fct_ns(&self, q: f64) -> u64 {
        self.fcts_ns[ExactReference::rank(q, self.fcts_ns.len())]
    }

    fn percentile_slowdown(&self, q: f64) -> f64 {
        self.slowdowns[ExactReference::rank(q, self.slowdowns.len())]
    }
}

/// The raw per-flow tuple the strategy generates:
/// `(fct_ns, start_ns, ideal_divisor, packets)`. The vendored proptest
/// subset has no `prop_map`, so [`records_from`] builds the
/// [`FlowRecord`]s inside the test body.
type RawFlow = (u64, u64, u64, u32);

/// Strategy for a random flow population's raw tuples.
#[allow(clippy::type_complexity)]
fn arb_rows(
    max_len: usize,
) -> proptest::collection::VecStrategy<(
    std::ops::Range<u64>,
    std::ops::Range<u64>,
    std::ops::Range<u64>,
    std::ops::Range<u32>,
)> {
    proptest::collection::vec(
        (
            1u64..2_000_000_000_000, // fct span: 1 ns .. ~33 min
            0u64..1_000_000_000_000, // start time
            1u64..101,               // ideal = fct / divisor, so slowdown ≈ divisor ≥ 1
            1u32..400,               // packets (1 ⇒ the Figure 8 sub-population)
        ),
        1..max_len,
    )
}

/// Records with the simulator's invariants: positive FCT, ideal ≤ FCT
/// (slowdown ≥ 1).
fn records_from(rows: &[RawFlow]) -> Vec<FlowRecord> {
    rows.iter()
        .enumerate()
        .map(|(i, &(fct_ns, start_ns, divisor, packets))| {
            let start = Time::from_nanos(start_ns);
            FlowRecord {
                flow: i as u32,
                bytes: packets as u64 * 1000,
                packets,
                start,
                finish: start + Duration::nanos(fct_ns),
                ideal: Duration::nanos((fct_ns / divisor).max(1)),
            }
        })
        .collect()
}

fn collect(records: &[FlowRecord]) -> MetricsCollector {
    let mut c = MetricsCollector::new();
    for r in records {
        c.record(*r);
    }
    c
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// The heart of the accuracy contract: every exact path is
    /// bit-identical to the record-vector reference, and every interior
    /// quantile is within [`QUANTILE_RELATIVE_ERROR`] of the exact
    /// nearest-rank value.
    #[test]
    fn streaming_collector_matches_exact_vector_reference(
        rows in arb_rows(400),
        q in 0.001f64..0.999,
    ) {
        let records = records_from(&rows);
        let c = collect(&records);
        let exact = ExactReference::new(&records);
        let n = records.len();

        // Exact paths: bit-identical, no tolerance.
        prop_assert_eq!(c.len(), n);
        prop_assert_eq!(c.min_fct().as_nanos(), exact.fcts_ns[0]);
        prop_assert_eq!(c.max_fct().as_nanos(), exact.fcts_ns[n - 1]);
        prop_assert_eq!(c.min_slowdown().to_bits(), exact.slowdowns[0].to_bits());
        prop_assert_eq!(c.max_slowdown().to_bits(), exact.slowdowns[n - 1].to_bits());
        prop_assert_eq!(
            c.summary().avg_slowdown.to_bits(),
            (exact.slowdown_sum / n as f64).to_bits()
        );
        // The historical average: f64 division of the exact nanosecond
        // sum, rounded (the collector keeps that formula bit-for-bit).
        prop_assert_eq!(
            c.summary().avg_fct.as_nanos(),
            (exact.fct_sum_ns as f64 / n as f64).round() as u64
        );
        prop_assert_eq!(
            c.rct().as_nanos(),
            exact.last_finish_ns - exact.first_start_ns
        );
        // Quantile boundaries are exact by contract.
        prop_assert_eq!(c.percentile_fct(0.0).as_nanos(), exact.fcts_ns[0]);
        prop_assert_eq!(c.percentile_fct(1.0).as_nanos(), exact.fcts_ns[n - 1]);
        prop_assert_eq!(c.percentile_slowdown(0.0).to_bits(), exact.slowdowns[0].to_bits());
        prop_assert_eq!(c.percentile_slowdown(1.0).to_bits(), exact.slowdowns[n - 1].to_bits());

        // Bucketed paths: within the documented bound at fixed and
        // generated quantiles.
        for q in [0.5, 0.9, 0.99, 0.999, q] {
            let exact_fct = exact.percentile_fct_ns(q) as f64;
            let got_fct = c.percentile_fct(q).as_nanos() as f64;
            prop_assert!(
                (got_fct - exact_fct).abs() <= exact_fct * QUANTILE_RELATIVE_ERROR,
                "FCT q={q}: streaming {got_fct} vs exact {exact_fct} exceeds the contract"
            );
            let exact_sd = exact.percentile_slowdown(q);
            let got_sd = c.percentile_slowdown(q);
            prop_assert!(
                (got_sd - exact_sd).abs() <= exact_sd * QUANTILE_RELATIVE_ERROR,
                "slowdown q={q}: streaming {got_sd} vs exact {exact_sd} exceeds the contract"
            );
        }
    }

    /// Histogram bucketing invariants for arbitrary u64 values: a value
    /// always lands in a bucket whose bounds contain it, and the
    /// reported representative is within [`MAX_RELATIVE_ERROR`].
    #[test]
    fn histogram_buckets_contain_their_values(v in 0u64..u64::MAX) {
        let idx = LogHistogram::bucket_index(v);
        let (lo, hi) = LogHistogram::bucket_bounds(idx);
        prop_assert!(lo <= v && v <= hi, "value {v} outside bucket [{lo}, {hi}]");
        let rep = LogHistogram::representative(idx);
        prop_assert!(
            (rep as f64 - v as f64).abs() <= v as f64 * MAX_RELATIVE_ERROR,
            "representative {rep} of {v} exceeds the bucket error bound"
        );
    }

    /// The wire form round-trips the full streaming state bit-exactly —
    /// this is what lets a remote worker ship its collector without
    /// perturbing byte-identical envelopes.
    #[test]
    fn collector_round_trips_bit_exactly(rows in arb_rows(200)) {
        let c = collect(&records_from(&rows));
        let json = serde::json::to_string(&c);
        let back: MetricsCollector =
            serde::from_json_str(&json).expect("collector JSON round-trips");
        prop_assert_eq!(back, c);
    }
}

// ---------------------------------------------------------------------
// Executor differentials: the streaming state must not observe how the
// batch was scheduled.
// ---------------------------------------------------------------------

/// A small mixed batch exercising every streaming population: Poisson
/// heavy-tailed (single- and multi-packet flows), an incast (the
/// secondary collector), and a lossy cell (retransmission paths).
fn differential_batch() -> Vec<Cell> {
    let mut cells = vec![
        Cell::new(
            "poisson-irn",
            ExperimentConfig::quick(60)
                .with_transport(TransportKind::Irn)
                .with_pfc(false)
                .with_seed(3),
        ),
        Cell::new(
            "poisson-roce",
            ExperimentConfig::quick(50)
                .with_transport(TransportKind::Roce)
                .with_pfc(true)
                .with_cc(CcKind::Dcqcn)
                .with_seed(5),
        ),
    ];
    let mut incast = ExperimentConfig::quick(40);
    incast.traffic =
        TrafficModel::incast_with_cross(6, 600_000, 0.5, SizeDistribution::HeavyTailed, 40);
    cells.push(Cell::new("incast", incast.with_seed(7)));
    let mut lossy = ExperimentConfig::quick(40);
    lossy.loss_injection = 0.01;
    cells.push(Cell::new(
        "lossy",
        lossy
            .with_transport(TransportKind::Irn)
            .with_pfc(false)
            .with_seed(9),
    ));
    cells
}

/// Serialize outcomes to the same JSON trees the artifact envelopes are
/// built from (collector wire form included).
fn result_trees(outcomes: &[irn_harness::CellOutcome]) -> Vec<serde::json::Value> {
    outcomes.iter().map(|o| o.result.to_json()).collect()
}

#[test]
fn streaming_state_is_identical_at_jobs_1_and_8() {
    let cells = differential_batch();
    let a = ThreadExecutor::new(1).run_cells(&cells, None).unwrap();
    let b = ThreadExecutor::new(8).run_cells(&cells, None).unwrap();
    assert_eq!(
        result_trees(&a),
        result_trees(&b),
        "streaming metrics/memory diverged between --jobs 1 and --jobs 8"
    );
    for o in &a {
        // The gauge rides along every result and must be populated.
        assert!(o.result.memory.flows > 0, "memory gauge lost its flows");
        assert!(o.result.memory.peak_bytes() > 0);
    }
}

#[test]
fn committed_k16_scenario_meets_the_memory_diet_budget() {
    // The PR's acceptance gauge: the committed k=16 fat-tree scenario
    // (1024 hosts, 20k flows) must complete with peak bytes/flow at or
    // under 10% of what the pre-refactor per-flow records cost — the
    // slab high-water mark plus histogram heap, amortized over flows.
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../examples/memory-diet-k16.json"
    );
    let text = std::fs::read_to_string(path).expect("committed example scenario");
    let scenario = irn_core::Scenario::from_json_str(&text).expect("scenario parses");
    let r = irn_core::run(scenario.into_config());
    assert_eq!(r.summary.flows, 20_000, "every flow must complete");
    let legacy = irn_core::legacy_per_flow_bytes() as f64;
    let bpf = r.memory.bytes_per_flow();
    assert!(
        bpf <= 0.10 * legacy,
        "memory diet broken: {bpf:.1} bytes/flow exceeds 10% of the \
         {legacy:.0}-byte legacy per-flow record"
    );
    assert!(bpf > 0.0, "gauge must be populated");
}

#[test]
fn streaming_state_survives_a_3_worker_tcp_fleet_byte_identically() {
    // Three in-process `worker::serve` loops over real TCP sockets
    // stand in for `repro worker --listen`: the collector's wire form
    // must cross the work-v1 protocol bit-exactly, so a fleet of any
    // size reassembles envelopes byte-identical to the in-process run.
    let cells = differential_batch();
    let reference = ThreadExecutor::new(2).run_cells(&cells, None).unwrap();

    let mut specs = Vec::new();
    let mut servers = Vec::new();
    for _ in 0..3 {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        specs.push(WorkerSpec::Connect { addr });
        servers.push(std::thread::spawn(move || {
            let (stream, _) = listener.accept().expect("coordinator connects");
            let reader = std::io::BufReader::new(stream.try_clone().unwrap());
            let _ =
                irn_harness::worker::serve(reader, &stream, irn_harness::WorkerOptions::default());
        }));
    }
    let pool = WorkerPool::new(PoolConfig::new(specs));
    let got = pool.run_cells(&cells, None).unwrap();
    assert_eq!(
        result_trees(&got),
        result_trees(&reference),
        "3-worker fleet diverged from the in-process streaming state"
    );
    drop(pool);
    for s in servers {
        let _ = s.join();
    }
}
