//! # irn-integration — workspace-level integration tests
//!
//! The tests live in `tests/tests/*.rs` and span every crate: paper-claim
//! assertions over full simulations, losslessness invariants, RDMA
//! semantic checks under adversarial channels, and determinism sweeps.
//! This library hosts the shared helpers.

#![forbid(unsafe_code)]

use irn_core::transport::cc::CcKind;
use irn_core::transport::config::TransportKind;
use irn_core::workload::SizeDistribution;
use irn_core::{ExperimentConfig, RunResult, TopologySpec, TrafficModel};

/// A small fat-tree scenario sized for CI: 16 hosts, heavy-tailed flows.
pub fn quick_cfg(flows: usize) -> ExperimentConfig {
    ExperimentConfig {
        topology: TopologySpec::FatTree(4),
        traffic: TrafficModel::Poisson {
            load: 0.7,
            sizes: SizeDistribution::HeavyTailed,
            flow_count: flows,
        },
        ..ExperimentConfig::paper_default(flows)
    }
}

/// Run a (transport, pfc, cc) cell on the quick scenario.
pub fn run_cell(flows: usize, t: TransportKind, pfc: bool, cc: CcKind) -> RunResult {
    irn_core::run(quick_cfg(flows).with_transport(t).with_pfc(pfc).with_cc(cc))
}
