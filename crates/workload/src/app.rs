//! Closed-loop application drivers.
//!
//! Open-loop models ([`crate::TrafficModel::generate`]) emit every flow
//! up front, so offered load never reacts to network behaviour. The
//! drivers in this module close the loop: the next flow is spawned *in
//! reaction to* a flow-completion event, at virtual time, inside the
//! engine's retirement path. A lossy transport that stalls one flow now
//! stalls all the work that depends on it — the result axis the paper
//! never measured.
//!
//! ## The determinism contract
//!
//! Every driver is a pure state machine over `(seed, retire order)`:
//!
//! - **All randomness is pre-drawn at construction.** Think times and
//!   server selections are materialised into vectors before the
//!   simulation starts, from a [`SimRng`] forked per client. A driver
//!   never holds a live RNG, so the engine's retire order cannot
//!   perturb the random stream.
//! - **Flow identity is positional.** The engine passes `next_index`
//!   (the global flow count before this callback's spawns); the spec a
//!   driver pushes at sink position `k` becomes global flow
//!   `next_index + k`. Drivers mirror this by pushing one role record
//!   per spawned flow, so `roles.len()` always equals the engine's
//!   flow count.
//! - **Spawned flows never start in the past.** Every spec's `at` is
//!   `now` or `now + think`; the engine schedules them through the
//!   ordinary event queue, so a run is byte-identical at any `--jobs`
//!   and across worker fleets.

use crate::FlowSpec;
use irn_sim::{Duration, SimRng, Time};

/// Domain seed salt for [`RpcDriver`] randomness.
const RPC_SALT: u64 = 0x5250_4301;
/// Domain seed salt for [`LeaderReplicateDriver`] randomness.
const REPLICATE_SALT: u64 = 0x5245_5001;

/// An application-level event emitted by a driver alongside spawned
/// flows. The engine turns these into trace records and per-operation
/// metrics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AppEvent {
    /// An operation was issued (its first flow enters the fabric at
    /// `at`, which may be in the virtual future when a think time
    /// separates completion from the next issue).
    OpStart {
        /// Globally unique operation id.
        op: u64,
        /// Issuing client (driver-local index, not a host id).
        client: u32,
        /// Virtual time at which the operation's flows start.
        at: Time,
    },
    /// An operation completed: all flows it depends on retired.
    OpDone {
        /// Globally unique operation id.
        op: u64,
        /// Issuing client (driver-local index).
        client: u32,
        /// Virtual time the operation was issued.
        started: Time,
        /// Virtual time the operation completed.
        at: Time,
    },
    /// A collective phase barrier was crossed (all chunk flows of the
    /// phase retired).
    Phase {
        /// Monotonic global phase counter.
        phase: u64,
        /// Virtual time the barrier was crossed.
        at: Time,
    },
}

/// Output collector handed to a driver callback.
///
/// Flows pushed here are inserted into the live flow table in order:
/// the spec at position `k` becomes global flow `next_index + k`.
#[derive(Debug, Default)]
pub struct AppSink {
    /// Flows to spawn, in global-index order.
    pub flows: Vec<FlowSpec>,
    /// Application events to trace and record.
    pub events: Vec<AppEvent>,
}

impl AppSink {
    /// An empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Drop accumulated flows and events (the engine reuses one sink).
    pub fn clear(&mut self) {
        self.flows.clear();
        self.events.clear();
    }
}

/// The engine-side seam for closed-loop applications.
///
/// The engine calls [`AppDriver::on_start`] once before the event loop
/// and [`AppDriver::on_flow_retired`] from its flow-retirement path.
/// Implementations must be pure functions of `(seed, retire order)` —
/// see the module docs for the full contract.
pub trait AppDriver: Send {
    /// Called once at virtual time zero, before any flow starts.
    /// Emits [`AppEvent::OpStart`] records for the seed flows (which
    /// are already in the flow table); must not spawn flows.
    fn on_start(&mut self, sink: &mut AppSink);

    /// Called when global flow `flow` retires at virtual time `now`.
    /// `next_index` is the global flow count before this callback's
    /// spawns; each spec pushed to `sink.flows` at position `k`
    /// becomes global flow `next_index + k`.
    fn on_flow_retired(&mut self, now: Time, flow: u32, next_index: u32, sink: &mut AppSink);
}

/// A fully constructed closed-loop workload: the seed flows that prime
/// the loop plus the driver that reacts to their completions.
pub struct ClosedLoop {
    /// Flows present at simulation start (the initial window of every
    /// client, or phase 0 of the first collective iteration).
    pub seed_flows: Vec<FlowSpec>,
    /// The reactive driver the engine consults on every retirement.
    pub driver: Box<dyn AppDriver>,
}

// ---------------------------------------------------------------------------
// RPC request/response
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, Copy)]
enum RpcRole {
    /// A request flow; completion spawns the response from `server`.
    Request { client: u32, op: u32, server: u32 },
    /// A response flow; completion retires one unit of the op's fanout.
    Response { client: u32, op: u32 },
}

/// Closed-loop request/response RPC with per-client windows, optional
/// fanout, and exponential think times.
///
/// Hosts `0..clients` are clients; hosts `clients..hosts` are servers.
/// Each client keeps up to `window` operations outstanding. An
/// operation issues `fanout` request flows to distinct servers; each
/// request's completion spawns the matching response; the operation
/// completes when all responses retire, whereupon the client thinks
/// (exponential, mean `think`) and issues its next operation.
pub struct RpcDriver {
    clients: u32,
    ops_per_client: u32,
    request_bytes: u64,
    response_bytes: u64,
    fanout: u32,
    /// Pre-drawn think time for (client, op); consumed at issue time.
    think: Vec<Duration>,
    /// Pre-drawn server host ids, `fanout` per (client, op).
    servers: Vec<u32>,
    /// Role of every global flow, appended in spawn order.
    roles: Vec<RpcRole>,
    /// Per-client index of the next unissued operation.
    next_op: Vec<u32>,
    /// Issue time of each (client, op).
    op_started: Vec<Time>,
    /// Outstanding response count of each (client, op).
    op_pending: Vec<u32>,
}

impl RpcDriver {
    /// Build the driver and its seed flows (the initial window of every
    /// client). `hosts` must exceed `clients` by at least `fanout`.
    #[allow(clippy::too_many_arguments)] // mirrors the scenario field list
    pub fn build(
        hosts: usize,
        clients: u32,
        ops_per_client: u32,
        window: u32,
        request_bytes: u64,
        response_bytes: u64,
        think: Duration,
        fanout: u32,
        seed: u64,
    ) -> ClosedLoop {
        let servers_avail = hosts as u32 - clients;
        let ops = clients as usize * ops_per_client as usize;
        let mut root = SimRng::new(seed ^ RPC_SALT);
        let mut think_v = Vec::with_capacity(ops);
        let mut servers = Vec::with_capacity(ops * fanout as usize);
        for c in 0..clients {
            let mut rng = root.fork(c as u64);
            for _ in 0..ops_per_client {
                think_v.push(rng.exp_duration(think));
                for s in rng.sample_distinct(servers_avail as usize, fanout as usize) {
                    servers.push(clients + s as u32);
                }
            }
        }
        let mut d = RpcDriver {
            clients,
            ops_per_client,
            request_bytes,
            response_bytes,
            fanout,
            think: think_v,
            servers,
            roles: Vec::new(),
            next_op: vec![0; clients as usize],
            op_started: vec![Time::ZERO; ops],
            op_pending: vec![0; ops],
        };
        // Seed flows: each client issues its initial window, separated
        // by its pre-drawn think times (cumulative, so issue order is
        // well defined even with identical draws).
        let mut seed_flows = Vec::new();
        let initial = window.min(ops_per_client);
        for c in 0..clients {
            let mut at = Time::ZERO;
            for _ in 0..initial {
                let j = d.next_op[c as usize];
                at += d.think[Self::slot(&d, c, j)];
                d.issue(c, j, at, &mut seed_flows);
            }
        }
        ClosedLoop {
            seed_flows,
            driver: Box::new(d),
        }
    }

    fn slot(&self, client: u32, op: u32) -> usize {
        client as usize * self.ops_per_client as usize + op as usize
    }

    /// Record issuance of (client, op) at `at` and push its request
    /// flows (one per fanout unit) onto `flows`.
    fn issue(&mut self, client: u32, op: u32, at: Time, flows: &mut Vec<FlowSpec>) {
        let slot = self.slot(client, op);
        self.next_op[client as usize] = op + 1;
        self.op_started[slot] = at;
        self.op_pending[slot] = self.fanout;
        let base = slot * self.fanout as usize;
        for f in 0..self.fanout as usize {
            let server = self.servers[base + f];
            flows.push(FlowSpec {
                src: client,
                dst: server,
                bytes: self.request_bytes,
                at,
            });
            self.roles.push(RpcRole::Request { client, op, server });
        }
    }

    fn op_id(&self, client: u32, op: u32) -> u64 {
        client as u64 * self.ops_per_client as u64 + op as u64
    }
}

impl AppDriver for RpcDriver {
    fn on_start(&mut self, sink: &mut AppSink) {
        // One OpStart per seed operation, in (client, op) order.
        for c in 0..self.clients {
            for j in 0..self.next_op[c as usize] {
                sink.events.push(AppEvent::OpStart {
                    op: self.op_id(c, j),
                    client: c,
                    at: self.op_started[self.slot(c, j)],
                });
            }
        }
    }

    fn on_flow_retired(&mut self, now: Time, flow: u32, next_index: u32, sink: &mut AppSink) {
        debug_assert_eq!(self.roles.len(), next_index as usize);
        match self.roles[flow as usize] {
            RpcRole::Request { client, op, server } => {
                sink.flows.push(FlowSpec {
                    src: server,
                    dst: client,
                    bytes: self.response_bytes,
                    at: now,
                });
                self.roles.push(RpcRole::Response { client, op });
            }
            RpcRole::Response { client, op } => {
                let slot = self.slot(client, op);
                self.op_pending[slot] -= 1;
                if self.op_pending[slot] > 0 {
                    return;
                }
                sink.events.push(AppEvent::OpDone {
                    op: self.op_id(client, op),
                    client,
                    started: self.op_started[slot],
                    at: now,
                });
                let next = self.next_op[client as usize];
                if next < self.ops_per_client {
                    let at = now + self.think[self.slot(client, next)];
                    sink.events.push(AppEvent::OpStart {
                        op: self.op_id(client, next),
                        client,
                        at,
                    });
                    self.issue(client, next, at, &mut sink.flows);
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Allreduce collectives
// ---------------------------------------------------------------------------

/// Communication schedule of an [`AllreduceDriver`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AllreduceAlgo {
    /// Ring allreduce: `2(N-1)` phases of `N` chunk flows each, every
    /// participant sending `bytes / N` to its ring successor.
    Ring,
    /// Tree allreduce over a complete binary tree: reduce up the tree
    /// (deepest level first), then broadcast back down, full `bytes`
    /// per edge flow.
    Tree,
}

/// Phase-synchronous allreduce over hosts `0..participants`.
///
/// Each iteration runs the algorithm's phase schedule; a phase's flows
/// all start when the previous phase's flows have all retired (a
/// barrier), so one straggling chunk delays the whole collective — the
/// canonical closed-loop sensitivity. One iteration is one operation
/// for metrics purposes.
pub struct AllreduceDriver {
    /// Flow lists per phase within one iteration: `(src, dst, bytes)`.
    phase_flows: Vec<Vec<(u32, u32, u64)>>,
    iterations: u32,
    iter: u32,
    phase_in_iter: u32,
    /// Monotonic phase counter across iterations.
    global_phase: u64,
    /// Flows of the current phase still in flight.
    pending: u32,
    iter_started: Time,
}

impl AllreduceDriver {
    /// Build the driver and its seed flows (phase 0 of iteration 0).
    /// `participants` must be at least 2 and at most `hosts`.
    pub fn build(
        algorithm: AllreduceAlgo,
        participants: u32,
        bytes: u64,
        iterations: u32,
    ) -> ClosedLoop {
        let n = participants;
        let phase_flows: Vec<Vec<(u32, u32, u64)>> = match algorithm {
            AllreduceAlgo::Ring => {
                let chunk = (bytes / n as u64).max(1);
                let ring: Vec<(u32, u32, u64)> = (0..n).map(|i| (i, (i + 1) % n, chunk)).collect();
                vec![ring; 2 * (n as usize - 1)]
            }
            AllreduceAlgo::Tree => {
                // Complete binary tree: parent(i) = (i-1)/2,
                // depth(i) = floor(log2(i+1)).
                let depth = |i: u32| (i + 1).ilog2();
                let max_depth = depth(n - 1);
                let mut phases = Vec::with_capacity(2 * max_depth as usize);
                // Reduce: deepest level first, each node to its parent.
                for d in (1..=max_depth).rev() {
                    phases.push(
                        (1..n)
                            .filter(|&i| depth(i) == d)
                            .map(|i| (i, (i - 1) / 2, bytes))
                            .collect(),
                    );
                }
                // Broadcast: back down, each node from its parent.
                for d in 1..=max_depth {
                    phases.push(
                        (1..n)
                            .filter(|&i| depth(i) == d)
                            .map(|i| ((i - 1) / 2, i, bytes))
                            .collect(),
                    );
                }
                phases
            }
        };
        let seed_flows: Vec<FlowSpec> = phase_flows[0]
            .iter()
            .map(|&(src, dst, bytes)| FlowSpec {
                src,
                dst,
                bytes,
                at: Time::ZERO,
            })
            .collect();
        let pending = seed_flows.len() as u32;
        ClosedLoop {
            seed_flows,
            driver: Box::new(AllreduceDriver {
                phase_flows,
                iterations,
                iter: 0,
                phase_in_iter: 0,
                global_phase: 0,
                pending,
                iter_started: Time::ZERO,
            }),
        }
    }

    /// Push the flows of `self.phase_in_iter` starting at `now`.
    fn spawn_phase(&mut self, now: Time, sink: &mut AppSink) {
        let flows = &self.phase_flows[self.phase_in_iter as usize];
        self.pending = flows.len() as u32;
        for &(src, dst, bytes) in flows {
            sink.flows.push(FlowSpec {
                src,
                dst,
                bytes,
                at: now,
            });
        }
    }
}

impl AppDriver for AllreduceDriver {
    fn on_start(&mut self, sink: &mut AppSink) {
        sink.events.push(AppEvent::OpStart {
            op: 0,
            client: 0,
            at: Time::ZERO,
        });
    }

    fn on_flow_retired(&mut self, now: Time, _flow: u32, _next_index: u32, sink: &mut AppSink) {
        // The barrier makes roles unnecessary: every live flow belongs
        // to the current phase.
        self.pending -= 1;
        if self.pending > 0 {
            return;
        }
        sink.events.push(AppEvent::Phase {
            phase: self.global_phase,
            at: now,
        });
        self.global_phase += 1;
        self.phase_in_iter += 1;
        if (self.phase_in_iter as usize) < self.phase_flows.len() {
            self.spawn_phase(now, sink);
            return;
        }
        sink.events.push(AppEvent::OpDone {
            op: self.iter as u64,
            client: 0,
            started: self.iter_started,
            at: now,
        });
        self.iter += 1;
        if self.iter < self.iterations {
            sink.events.push(AppEvent::OpStart {
                op: self.iter as u64,
                client: 0,
                at: now,
            });
            self.iter_started = now;
            self.phase_in_iter = 0;
            self.spawn_phase(now, sink);
        }
    }
}

// ---------------------------------------------------------------------------
// Leader-based replication
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, Copy)]
enum ReplicateRole {
    /// Client request reached the leader; fan out to followers.
    Request { client: u32, op: u32 },
    /// Leader's replicate reached `follower`; send the ack back.
    Replicate { client: u32, op: u32, follower: u32 },
    /// A follower ack reached the leader; count toward quorum.
    Ack { client: u32, op: u32 },
    /// Leader's response reached the client; the op is committed.
    Response { client: u32, op: u32 },
}

/// Leader-based replication: client → leader → followers → quorum-ack
/// → client, one outstanding operation per client.
///
/// Host 0 is the leader, hosts `1..=followers` are followers, and
/// client `c` is host `1 + followers + c`. An operation commits when
/// `quorum` follower acks have retired at the leader; replicate and
/// ack flows beyond the quorum retire as stragglers with no effect.
pub struct LeaderReplicateDriver {
    followers: u32,
    quorum: u32,
    ops_per_client: u32,
    request_bytes: u64,
    ack_bytes: u64,
    /// Pre-drawn think time for (client, op); consumed at issue time.
    think: Vec<Duration>,
    /// Role of every global flow, appended in spawn order.
    roles: Vec<ReplicateRole>,
    /// Per-client index of the next unissued operation.
    next_op: Vec<u32>,
    /// Issue time of each (client, op).
    op_started: Vec<Time>,
    /// Follower acks retired so far for each (client, op).
    op_acks: Vec<u32>,
}

impl LeaderReplicateDriver {
    /// Build the driver and its seed flows (the first request of every
    /// client). Requires `1 + followers + clients` hosts.
    #[allow(clippy::too_many_arguments)] // mirrors the scenario field list
    pub fn build(
        clients: u32,
        followers: u32,
        quorum: u32,
        ops_per_client: u32,
        request_bytes: u64,
        ack_bytes: u64,
        think: Duration,
        seed: u64,
    ) -> ClosedLoop {
        let ops = clients as usize * ops_per_client as usize;
        let mut root = SimRng::new(seed ^ REPLICATE_SALT);
        let mut think_v = Vec::with_capacity(ops);
        for c in 0..clients {
            let mut rng = root.fork(c as u64);
            for _ in 0..ops_per_client {
                think_v.push(rng.exp_duration(think));
            }
        }
        let mut d = LeaderReplicateDriver {
            followers,
            quorum,
            ops_per_client,
            request_bytes,
            ack_bytes,
            think: think_v,
            roles: Vec::new(),
            next_op: vec![0; clients as usize],
            op_started: vec![Time::ZERO; ops],
            op_acks: vec![0; ops],
        };
        let mut seed_flows = Vec::new();
        for c in 0..clients {
            let at = Time::ZERO + d.think[d.slot(c, 0)];
            d.issue(c, 0, at, &mut seed_flows);
        }
        ClosedLoop {
            seed_flows,
            driver: Box::new(d),
        }
    }

    fn slot(&self, client: u32, op: u32) -> usize {
        client as usize * self.ops_per_client as usize + op as usize
    }

    fn client_host(&self, client: u32) -> u32 {
        1 + self.followers + client
    }

    /// Record issuance of (client, op) at `at` and push its request
    /// flow onto `flows`.
    fn issue(&mut self, client: u32, op: u32, at: Time, flows: &mut Vec<FlowSpec>) {
        let slot = self.slot(client, op);
        self.next_op[client as usize] = op + 1;
        self.op_started[slot] = at;
        self.op_acks[slot] = 0;
        flows.push(FlowSpec {
            src: self.client_host(client),
            dst: 0,
            bytes: self.request_bytes,
            at,
        });
        self.roles.push(ReplicateRole::Request { client, op });
    }

    fn op_id(&self, client: u32, op: u32) -> u64 {
        client as u64 * self.ops_per_client as u64 + op as u64
    }
}

impl AppDriver for LeaderReplicateDriver {
    fn on_start(&mut self, sink: &mut AppSink) {
        for c in 0..self.next_op.len() as u32 {
            sink.events.push(AppEvent::OpStart {
                op: self.op_id(c, 0),
                client: c,
                at: self.op_started[self.slot(c, 0)],
            });
        }
    }

    fn on_flow_retired(&mut self, now: Time, flow: u32, next_index: u32, sink: &mut AppSink) {
        debug_assert_eq!(self.roles.len(), next_index as usize);
        match self.roles[flow as usize] {
            ReplicateRole::Request { client, op } => {
                for f in 1..=self.followers {
                    sink.flows.push(FlowSpec {
                        src: 0,
                        dst: f,
                        bytes: self.request_bytes,
                        at: now,
                    });
                    self.roles.push(ReplicateRole::Replicate {
                        client,
                        op,
                        follower: f,
                    });
                }
            }
            ReplicateRole::Replicate {
                client,
                op,
                follower,
            } => {
                sink.flows.push(FlowSpec {
                    src: follower,
                    dst: 0,
                    bytes: self.ack_bytes,
                    at: now,
                });
                self.roles.push(ReplicateRole::Ack { client, op });
            }
            ReplicateRole::Ack { client, op } => {
                let slot = self.slot(client, op);
                self.op_acks[slot] += 1;
                if self.op_acks[slot] != self.quorum {
                    // Below quorum: keep waiting. Beyond: straggler.
                    return;
                }
                sink.flows.push(FlowSpec {
                    src: 0,
                    dst: self.client_host(client),
                    bytes: self.ack_bytes,
                    at: now,
                });
                self.roles.push(ReplicateRole::Response { client, op });
            }
            ReplicateRole::Response { client, op } => {
                let slot = self.slot(client, op);
                sink.events.push(AppEvent::OpDone {
                    op: self.op_id(client, op),
                    client,
                    started: self.op_started[slot],
                    at: now,
                });
                let next = self.next_op[client as usize];
                if next < self.ops_per_client {
                    let at = now + self.think[self.slot(client, next)];
                    sink.events.push(AppEvent::OpStart {
                        op: self.op_id(client, next),
                        client,
                        at,
                    });
                    self.issue(client, next, at, &mut sink.flows);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Drive a ClosedLoop to completion with a toy "network" that
    /// retires the earliest-starting flow first (FIFO on ties), adding
    /// a fixed service time. Returns (all flows, all events).
    fn drain(mut cl: ClosedLoop) -> (Vec<FlowSpec>, Vec<AppEvent>) {
        let service = Duration::micros(10);
        let mut flows: Vec<FlowSpec> = cl.seed_flows.clone();
        let mut events = Vec::new();
        let mut sink = AppSink::new();
        cl.driver.on_start(&mut sink);
        assert!(sink.flows.is_empty(), "on_start must not spawn flows");
        events.append(&mut sink.events);
        // (retire_time, idx) of every live flow.
        let mut live: Vec<(Time, u32)> = flows
            .iter()
            .enumerate()
            .map(|(i, f)| (f.at + service, i as u32))
            .collect();
        while !live.is_empty() {
            let k = live
                .iter()
                .enumerate()
                .min_by_key(|(_, &(t, i))| (t, i))
                .map(|(k, _)| k)
                .unwrap();
            let (now, idx) = live.remove(k);
            sink.clear();
            cl.driver
                .on_flow_retired(now, idx, flows.len() as u32, &mut sink);
            for spec in &sink.flows {
                assert!(spec.at >= now, "spawned flow must not start in the past");
                live.push((spec.at + service, flows.len() as u32));
                flows.push(*spec);
            }
            events.append(&mut sink.events);
        }
        (flows, events)
    }

    fn count(events: &[AppEvent]) -> (usize, usize, usize) {
        let starts = events
            .iter()
            .filter(|e| matches!(e, AppEvent::OpStart { .. }))
            .count();
        let dones = events
            .iter()
            .filter(|e| matches!(e, AppEvent::OpDone { .. }))
            .count();
        let phases = events
            .iter()
            .filter(|e| matches!(e, AppEvent::Phase { .. }))
            .count();
        (starts, dones, phases)
    }

    #[test]
    fn rpc_completes_every_op_and_flow_count_is_exact() {
        let cl = RpcDriver::build(8, 2, 5, 2, 4096, 256, Duration::micros(50), 3, 7);
        assert_eq!(
            cl.seed_flows.len(),
            2 * 2 * 3,
            "2 clients × window 2 × fanout 3"
        );
        let (flows, events) = drain(cl);
        // Every op is fanout requests + fanout responses.
        assert_eq!(flows.len(), 2 * 5 * 3 * 2);
        let (starts, dones, phases) = count(&events);
        assert_eq!((starts, dones, phases), (10, 10, 0));
        // Done events carry positive latency.
        for e in &events {
            if let AppEvent::OpDone { started, at, .. } = e {
                assert!(*at > *started);
            }
        }
    }

    #[test]
    fn rpc_window_limits_outstanding_ops() {
        // Window 1 serialises each client's ops: with zero think time
        // op k's start must not precede op k-1's completion.
        let cl = RpcDriver::build(4, 1, 4, 1, 1000, 100, Duration::ZERO, 1, 3);
        assert_eq!(cl.seed_flows.len(), 1);
        let (_, events) = drain(cl);
        let mut last_done = Time::ZERO;
        for e in &events {
            match e {
                AppEvent::OpStart { at, .. } => assert!(*at >= last_done),
                AppEvent::OpDone { at, .. } => last_done = *at,
                _ => {}
            }
        }
    }

    #[test]
    fn allreduce_ring_phase_and_flow_accounting() {
        let n = 4u32;
        let iters = 2u32;
        let cl = AllreduceDriver::build(AllreduceAlgo::Ring, n, 4000, iters);
        assert_eq!(cl.seed_flows.len(), n as usize);
        assert_eq!(cl.seed_flows[0].bytes, 1000, "chunk = bytes / n");
        let (flows, events) = drain(cl);
        let phases_per_iter = 2 * (n as usize - 1);
        assert_eq!(flows.len(), iters as usize * phases_per_iter * n as usize);
        let (starts, dones, phases) = count(&events);
        assert_eq!(
            (starts, dones, phases),
            (2, 2, iters as usize * phases_per_iter)
        );
    }

    #[test]
    fn allreduce_tree_schedule_is_reduce_then_broadcast() {
        // 5 participants: node 0 root; 1,2 at depth 1; 3,4 at depth 2.
        let cl = AllreduceDriver::build(AllreduceAlgo::Tree, 5, 1 << 20, 1);
        // Phase 0 = deepest reduce level: 3→1 and 4→1.
        assert_eq!(cl.seed_flows.len(), 2);
        assert_eq!((cl.seed_flows[0].src, cl.seed_flows[0].dst), (3, 1));
        assert_eq!((cl.seed_flows[1].src, cl.seed_flows[1].dst), (4, 1));
        let (flows, events) = drain(cl);
        // Reduce: (3→1, 4→1), (1→0, 2→0); broadcast mirrors it.
        assert_eq!(flows.len(), 8);
        let (_, dones, phases) = count(&events);
        assert_eq!((dones, phases), (1, 4));
        // Broadcast edges reverse the reduce edges.
        assert_eq!((flows[4].src, flows[4].dst), (0, 1));
        assert_eq!((flows[6].src, flows[6].dst), (1, 3));
    }

    #[test]
    fn leader_replicate_quorum_commits_before_stragglers() {
        let (clients, followers, quorum, ops) = (2u32, 3u32, 2u32, 3u32);
        let cl = LeaderReplicateDriver::build(
            clients,
            followers,
            quorum,
            ops,
            2048,
            64,
            Duration::micros(20),
            11,
        );
        assert_eq!(cl.seed_flows.len(), clients as usize);
        let (flows, events) = drain(cl);
        // Per op: 1 request + F replicates + F acks + 1 response.
        assert_eq!(
            flows.len(),
            (clients * ops) as usize * (2 * followers as usize + 2)
        );
        let (starts, dones, _) = count(&events);
        assert_eq!((starts, dones), (6, 6));
    }

    #[test]
    fn drivers_are_deterministic_given_seed() {
        let mk = || RpcDriver::build(10, 3, 6, 2, 8192, 512, Duration::micros(100), 2, 42);
        let (fa, ea) = drain(mk());
        let (fb, eb) = drain(mk());
        assert_eq!(fa, fb);
        assert_eq!(ea, eb);
        // A different seed draws different think times.
        let other = RpcDriver::build(10, 3, 6, 2, 8192, 512, Duration::micros(100), 2, 43);
        assert_ne!(mk().seed_flows, other.seed_flows);
    }
}
