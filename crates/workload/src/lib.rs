//! # irn-workload — traffic generation for the IRN experiments (§4.1)
//!
//! "Each end host generates new flows with Poisson inter-arrival times.
//! Each flow's destination is picked randomly and size is drawn from a
//! realistic heavy-tailed distribution derived from \[19\]. … The network
//! load is set at 70% utilization for our default case."
//!
//! This crate provides:
//!
//! * [`SizeDistribution`] — the paper's heavy-tailed mix (50 % small
//!   RPC-like single-packet messages of 32 B–1 KB, 15 % large 200 KB–3 MB
//!   background/storage transfers, the rest in between) and the Table 6
//!   uniform 500 KB–5 MB alternative, plus fixed sizes for tests;
//! * [`WorkloadSpec::generate`] — Poisson open-loop flow arrival
//!   schedules calibrated so offered load hits a target fraction of each
//!   host's line rate;
//! * [`incast`] — the §4.4.3 incast pattern: a 150 MB response striped
//!   over M randomly-chosen senders toward one destination, optionally
//!   on top of cross-traffic;
//! * [`TrafficModel`] — the pluggable, validated, composable traffic
//!   API every experiment describes its workload with: the paper's
//!   shapes plus bursty on/off Poisson, permutation shuffles, explicit
//!   flow lists, and general composition (see [`model`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod app;
pub mod model;

pub use app::{
    AllreduceAlgo, AllreduceDriver, AppDriver, AppEvent, AppSink, ClosedLoop,
    LeaderReplicateDriver, RpcDriver,
};
pub use model::{Component, FlowStream, Population, Start, TrafficCtx, TrafficError, TrafficModel};

use irn_sim::{Duration, SimRng, Time};

/// One flow to simulate: who, whom, how much, when.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlowSpec {
    /// Source host index.
    pub src: u32,
    /// Destination host index (≠ src).
    pub dst: u32,
    /// Payload size in bytes.
    pub bytes: u64,
    /// Arrival (start) time.
    pub at: Time,
}

/// Flow-size distributions used in the paper.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SizeDistribution {
    /// §4.1's heavy-tailed enterprise/datacenter mix derived from
    /// Benson et al. \[19\]: 50 % of flows are single-packet RPCs
    /// (32 B–1 KB, think key-value lookups [21, 25]), 15 % are large
    /// 200 KB–3 MB background/storage flows carrying most of the bytes,
    /// and the remaining 35 % sit in between (1 KB–200 KB), all
    /// log-uniform within their bands.
    HeavyTailed,
    /// Table 6's uniform 500 KB–5 MB mix ("storage or background
    /// tasks").
    Uniform500KbTo5Mb,
    /// Every flow the same size (tests, microbenchmarks).
    Fixed(u64),
}

impl SizeDistribution {
    /// Draw one flow size.
    pub fn sample(&self, rng: &mut SimRng) -> u64 {
        match self {
            SizeDistribution::HeavyTailed => {
                let band = rng.uniform();
                if band < 0.50 {
                    log_uniform(rng, 32, 1_000)
                } else if band < 0.85 {
                    log_uniform(rng, 1_000, 200_000)
                } else {
                    log_uniform(rng, 200_000, 3_000_000)
                }
            }
            SizeDistribution::Uniform500KbTo5Mb => rng.range(500_000, 5_000_001),
            SizeDistribution::Fixed(b) => *b,
        }
    }

    /// Analytic mean of the distribution in bytes (used to calibrate the
    /// Poisson arrival rate to a load target).
    pub fn mean_bytes(&self) -> f64 {
        match self {
            SizeDistribution::HeavyTailed => {
                0.50 * log_uniform_mean(32.0, 1_000.0)
                    + 0.35 * log_uniform_mean(1_000.0, 200_000.0)
                    + 0.15 * log_uniform_mean(200_000.0, 3_000_000.0)
            }
            SizeDistribution::Uniform500KbTo5Mb => (500_000.0 + 5_000_000.0) / 2.0,
            SizeDistribution::Fixed(b) => *b as f64,
        }
    }
}

/// Log-uniform integer draw in `[lo, hi]`.
fn log_uniform(rng: &mut SimRng, lo: u64, hi: u64) -> u64 {
    debug_assert!(lo > 0 && hi > lo);
    let (a, b) = ((lo as f64).ln(), (hi as f64).ln());
    let x = (a + rng.uniform() * (b - a)).exp();
    (x.round() as u64).clamp(lo, hi)
}

/// Mean of a log-uniform distribution on `[a, b]`: `(b-a)/ln(b/a)`.
fn log_uniform_mean(a: f64, b: f64) -> f64 {
    (b - a) / (b / a).ln()
}

/// An open-loop Poisson workload over a set of hosts.
#[derive(Debug, Clone)]
pub struct WorkloadSpec {
    /// Number of hosts generating (and receiving) traffic.
    pub hosts: usize,
    /// Target average utilization of each host's access link (0, 1].
    pub load: f64,
    /// Host line rate in bits per second.
    pub line_rate_bps: f64,
    /// Flow sizes.
    pub sizes: SizeDistribution,
    /// Total number of flows to generate across all hosts.
    pub flow_count: usize,
    /// RNG seed (workloads are reproducible).
    pub seed: u64,
}

impl WorkloadSpec {
    /// The paper's default-case workload at the given scale: heavy-tailed
    /// sizes, 70 % load, 40 Gbps access links.
    pub fn paper_default(hosts: usize, flow_count: usize, seed: u64) -> WorkloadSpec {
        WorkloadSpec {
            hosts,
            load: 0.7,
            line_rate_bps: 40e9,
            sizes: SizeDistribution::HeavyTailed,
            flow_count,
            seed,
        }
    }

    /// Mean inter-arrival time per *host* for the configured load.
    ///
    /// Load calibration: each host must *send* `load × line_rate` on
    /// average, so the per-host flow rate is `load × rate / (8 × E[size])`
    /// flows per second.
    pub fn mean_interarrival(&self) -> Duration {
        assert!(self.load > 0.0 && self.load <= 1.0, "load must be in (0,1]");
        let flows_per_sec = self.load * self.line_rate_bps / (8.0 * self.sizes.mean_bytes());
        Duration::from_secs_f64(1.0 / flows_per_sec)
    }

    /// Generate the flow schedule: every host runs an independent
    /// Poisson process; destinations are uniform over the other hosts.
    /// The result is sorted by arrival time.
    pub fn generate(&self) -> Vec<FlowSpec> {
        assert!(self.hosts >= 2, "need at least two hosts for traffic");
        let mut rng = SimRng::new(self.seed);
        let mean_gap = self.mean_interarrival();
        let per_host = self.flow_count.div_ceil(self.hosts);

        let mut flows = Vec::with_capacity(per_host * self.hosts);
        for src in 0..self.hosts as u32 {
            let mut host_rng = rng.fork(src as u64);
            let mut t = Time::ZERO;
            for _ in 0..per_host {
                t += host_rng.exp_duration(mean_gap);
                let mut dst = host_rng.range(0, self.hosts as u64 - 1) as u32;
                if dst >= src {
                    dst += 1; // skip self
                }
                flows.push(FlowSpec {
                    src,
                    dst,
                    bytes: self.sizes.sample(&mut host_rng).max(1),
                    at: t,
                });
            }
        }
        flows.sort_by_key(|f| (f.at, f.src, f.dst));
        flows.truncate(self.flow_count);
        flows
    }
}

/// The §4.4.3 incast pattern: `total_bytes` striped equally across `m`
/// distinct senders, all answering `dst` at `at`.
///
/// "We simulate the incast workload on our default topology by striping
/// 150MB of data across M randomly chosen sender nodes that send it to a
/// fixed destination node."
pub fn incast(
    hosts: usize,
    m: usize,
    dst: u32,
    total_bytes: u64,
    at: Time,
    seed: u64,
) -> Vec<FlowSpec> {
    assert!(m >= 1 && m < hosts, "need 1 ≤ M < hosts senders");
    assert!((dst as usize) < hosts);
    let mut rng = SimRng::new(seed);
    // Sample senders from the hosts other than dst.
    let senders = rng.sample_distinct(hosts - 1, m);
    let per_sender = total_bytes / m as u64;
    senders
        .into_iter()
        .map(|raw| {
            let src = if (raw as u32) >= dst {
                raw as u32 + 1
            } else {
                raw as u32
            };
            FlowSpec {
                src,
                dst,
                bytes: per_sender,
                at,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn heavy_tailed_band_fractions() {
        let d = SizeDistribution::HeavyTailed;
        let mut rng = SimRng::new(7);
        let n = 50_000;
        let mut small = 0;
        let mut large = 0;
        for _ in 0..n {
            let s = d.sample(&mut rng);
            assert!((32..=3_000_000).contains(&s));
            if s <= 1_000 {
                small += 1;
            } else if s >= 200_000 {
                large += 1;
            }
        }
        let fs = small as f64 / n as f64;
        let fl = large as f64 / n as f64;
        assert!(
            (fs - 0.50).abs() < 0.02,
            "§4.1: ~50% single-packet, got {fs}"
        );
        assert!((fl - 0.15).abs() < 0.02, "§4.1: ~15% large flows, got {fl}");
    }

    #[test]
    fn most_bytes_in_large_flows() {
        // §4.1: "most of the bytes are in large flows".
        let d = SizeDistribution::HeavyTailed;
        let mut rng = SimRng::new(8);
        let mut total = 0u64;
        let mut large = 0u64;
        for _ in 0..50_000 {
            let s = d.sample(&mut rng);
            total += s;
            if s >= 200_000 {
                large += s;
            }
        }
        assert!(
            large as f64 / total as f64 > 0.7,
            "large flows must dominate bytes"
        );
    }

    #[test]
    fn uniform_band() {
        let d = SizeDistribution::Uniform500KbTo5Mb;
        let mut rng = SimRng::new(9);
        for _ in 0..1000 {
            let s = d.sample(&mut rng);
            assert!((500_000..=5_000_000).contains(&s));
        }
    }

    #[test]
    fn mean_bytes_close_to_sampled_mean() {
        for d in [
            SizeDistribution::HeavyTailed,
            SizeDistribution::Uniform500KbTo5Mb,
        ] {
            let mut rng = SimRng::new(3);
            let n = 200_000u64;
            let total: u64 = (0..n).map(|_| d.sample(&mut rng)).sum();
            let sampled = total as f64 / n as f64;
            let analytic = d.mean_bytes();
            assert!(
                (sampled - analytic).abs() / analytic < 0.05,
                "{d:?}: sampled {sampled:.0} vs analytic {analytic:.0}"
            );
        }
    }

    #[test]
    fn load_calibration_hits_target() {
        // Generated traffic over the horizon must offer ≈70 % load.
        let spec = WorkloadSpec::paper_default(16, 4000, 11);
        let flows = spec.generate();
        assert_eq!(flows.len(), 4000);
        let horizon = flows.last().unwrap().at.as_nanos() as f64 / 1e9;
        let bytes: u64 = flows.iter().map(|f| f.bytes).sum();
        let offered_bps = bytes as f64 * 8.0 / horizon;
        let capacity_bps = 16.0 * 40e9;
        let load = offered_bps / capacity_bps;
        assert!(
            (load - 0.7).abs() < 0.12,
            "offered load {load:.3} should be ≈0.70"
        );
    }

    #[test]
    fn flows_never_self_target() {
        let spec = WorkloadSpec::paper_default(8, 2000, 5);
        for f in spec.generate() {
            assert_ne!(f.src, f.dst);
            assert!((f.dst as usize) < 8);
        }
    }

    #[test]
    fn schedule_is_sorted_and_deterministic() {
        let spec = WorkloadSpec::paper_default(8, 500, 42);
        let a = spec.generate();
        let b = spec.generate();
        assert_eq!(a, b, "same seed ⇒ same workload");
        assert!(a.windows(2).all(|w| w[0].at <= w[1].at));
        let spec2 = WorkloadSpec { seed: 43, ..spec };
        assert_ne!(a, spec2.generate());
    }

    #[test]
    fn incast_stripes_evenly_excluding_dst() {
        let flows = incast(54, 30, 7, 150_000_000, Time::ZERO, 1);
        assert_eq!(flows.len(), 30);
        let mut seen = std::collections::HashSet::new();
        for f in &flows {
            assert_eq!(f.dst, 7);
            assert_ne!(f.src, 7, "destination must not send to itself");
            assert!(seen.insert(f.src), "senders must be distinct");
            assert_eq!(f.bytes, 5_000_000);
        }
    }

    #[test]
    #[should_panic]
    fn incast_with_too_many_senders_panics() {
        incast(10, 10, 0, 1000, Time::ZERO, 1);
    }
}
