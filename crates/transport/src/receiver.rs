//! The receiving half of a flow's queue pair.
//!
//! The receiver is where IRN and RoCE diverge first (§2.1 vs §3.1): an
//! IRN receiver keeps out-of-order packets (DMA'd straight to memory,
//! §5.3) and answers every OOO arrival with a NACK carrying cumulative +
//! SACK information; a RoCE receiver discards OOO packets and NACKs once
//! per sequence error. Both behaviours come from
//! [`irn_rdma::modules::receive_data`] — the same logic the Table 2
//! benchmarks measure.
//!
//! The receiver also hosts DCQCN's *notification point*: ECN-marked
//! arrivals generate CNPs at most once per 50 µs (§4.1, \[37\]).

use irn_net::{FlowId, HostId, Packet, PacketKind};
use irn_rdma::modules::{self, AckEmit, QpContext, ReceiverMode};
use irn_sim::Time;

use crate::cc::dcqcn::CnpGenerator;
use crate::cc::CcKind;
use crate::config::{LossRecovery, TransportConfig};

/// What a data arrival produced.
#[derive(Debug, Clone, Default)]
pub struct RecvOutcome {
    /// Acknowledgement to queue on the reverse path (at most one).
    pub ack: Option<Packet>,
    /// CNP to queue (DCQCN, marked packet within the CNP interval).
    pub cnp: Option<Packet>,
    /// The flow just completed — every payload byte has arrived. The
    /// completion time is the arrival `now` of this packet (the FCT
    /// measurement point, §4.1).
    pub completed: bool,
}

/// Per-flow receiver statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReceiverStats {
    /// Data packets accepted (in order or buffered).
    pub accepted: u64,
    /// Out-of-order packets buffered (IRN only).
    pub buffered_ooo: u64,
    /// Out-of-order packets discarded (RoCE only).
    pub discarded_ooo: u64,
    /// Duplicates seen.
    pub duplicates: u64,
    /// NACKs emitted.
    pub nacks_sent: u64,
    /// CNPs emitted.
    pub cnps_sent: u64,
}

/// The receiving half of one flow.
#[derive(Debug)]
pub struct ReceiverQp {
    flow: FlowId,
    /// The data sender (destination for our ACKs).
    sender: HostId,
    /// This endhost.
    me: HostId,
    total_packets: u32,
    mode: ReceiverMode,
    ack_bytes: u32,
    ctx: QpContext,
    cnp_gen: Option<CnpGenerator>,
    completed_at: Option<Time>,
    /// Counters.
    pub stats: ReceiverStats,
}

impl ReceiverQp {
    /// Receiver for a flow of `total_packets` from `sender` to `me`.
    pub fn new(
        cfg: &TransportConfig,
        flow: FlowId,
        sender: HostId,
        me: HostId,
        total_packets: u32,
        cc_kind: CcKind,
    ) -> ReceiverQp {
        let mode = match cfg.recovery {
            LossRecovery::SelectiveRepeat => ReceiverMode::Irn,
            LossRecovery::GoBackN => ReceiverMode::RoceGoBackN,
        };
        let bitmap_bits = cfg.bdp_cap.unwrap_or(0).clamp(256, 4096);
        ReceiverQp {
            flow,
            sender,
            me,
            total_packets,
            mode,
            ack_bytes: cfg.ack_mode.bytes(),
            ctx: QpContext::new(bitmap_bits as usize),
            cnp_gen: (cc_kind == CcKind::Dcqcn)
                .then(|| CnpGenerator::new(crate::cc::DcqcnParams::paper().cnp_interval)),
            completed_at: None,
            stats: ReceiverStats::default(),
        }
    }

    /// When the flow completed, if it has.
    pub fn completed_at(&self) -> Option<Time> {
        self.completed_at
    }

    /// Next expected sequence number (tests).
    pub fn expected_seq(&self) -> u32 {
        self.ctx.expected_seq
    }

    /// Process an arriving data packet.
    #[inline]
    pub fn on_data(&mut self, now: Time, pkt: &Packet) -> RecvOutcome {
        debug_assert_eq!(pkt.kind, PacketKind::Data);
        debug_assert_eq!(pkt.flow, self.flow);
        let mut out = RecvOutcome::default();

        let r = modules::receive_data(&mut self.ctx, pkt.psn, pkt.is_last, self.mode);

        // Stats bookkeeping.
        if r.duplicate {
            self.stats.duplicates += 1;
        } else if r.advanced > 0 || r.buffered_ooo {
            self.stats.accepted += 1;
            if r.buffered_ooo {
                self.stats.buffered_ooo += 1;
            }
        } else if !r.beyond_window && self.mode == ReceiverMode::RoceGoBackN {
            self.stats.discarded_ooo += 1;
        }

        // Build the acknowledgement. It echoes the data packet's send
        // timestamp (Timely RTT) and its ECN mark (DCTCP).
        out.ack = match r.ack {
            AckEmit::Ack { cum } => Some(self.make_ack(PacketKind::Ack, cum, 0, pkt)),
            AckEmit::Nack { cum, sack } => {
                self.stats.nacks_sent += 1;
                Some(self.make_ack(PacketKind::Nack, cum, sack, pkt))
            }
            AckEmit::None => None,
        };

        // DCQCN notification point.
        if pkt.ecn_ce {
            if let Some(gen) = &mut self.cnp_gen {
                if gen.on_marked_packet(now) {
                    self.stats.cnps_sent += 1;
                    out.cnp = Some(Packet::control(
                        PacketKind::Cnp,
                        self.flow,
                        self.me,
                        self.sender,
                        0,
                        64,
                    ));
                }
            }
        }

        // Completion: all packets delivered in order.
        if self.completed_at.is_none() && self.ctx.expected_seq >= self.total_packets {
            self.completed_at = Some(now);
            out.completed = true;
        }
        out
    }

    fn make_ack(&self, kind: PacketKind, cum: u32, sack: u32, data: &Packet) -> Packet {
        let mut ack = Packet::control(kind, self.flow, self.me, self.sender, cum, self.ack_bytes);
        ack.sack = sack;
        ack.sent_at = data.sent_at; // RTT echo
        ack.ecn_echo = data.ecn_ce; // DCTCP echo
        ack
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TransportConfig;

    fn data(psn: u32, last: bool) -> Packet {
        let mut p = Packet::data(FlowId(0), HostId(0), HostId(1), psn, 1048);
        p.is_last = last;
        p.sent_at = Time::from_nanos(42);
        p
    }

    fn irn_receiver(total: u32) -> ReceiverQp {
        ReceiverQp::new(
            &TransportConfig::irn_default(),
            FlowId(0),
            HostId(0),
            HostId(1),
            total,
            CcKind::None,
        )
    }

    fn roce_receiver(total: u32) -> ReceiverQp {
        ReceiverQp::new(
            &TransportConfig::roce_default(true),
            FlowId(0),
            HostId(0),
            HostId(1),
            total,
            CcKind::None,
        )
    }

    #[test]
    fn in_order_completion_with_acks() {
        let mut r = irn_receiver(3);
        for psn in 0..3 {
            let out = r.on_data(Time::from_nanos(psn as u64 * 100), &data(psn, psn == 2));
            let ack = out.ack.expect("per-packet ACKs");
            assert_eq!(ack.kind, PacketKind::Ack);
            assert_eq!(ack.psn, psn + 1);
            assert_eq!(ack.wire_bytes, 64, "IRN pays ACK bandwidth");
            assert_eq!(out.completed, psn == 2);
        }
        assert_eq!(r.completed_at(), Some(Time::from_nanos(200)));
    }

    #[test]
    fn ack_echoes_timestamp_and_ecn() {
        let mut r = irn_receiver(2);
        let mut d = data(0, false);
        d.ecn_ce = true;
        d.sent_at = Time::from_nanos(777);
        let out = r.on_data(Time::from_nanos(1000), &d);
        let ack = out.ack.unwrap();
        assert_eq!(ack.sent_at, Time::from_nanos(777), "RTT echo for Timely");
        assert!(ack.ecn_echo, "mark echo for DCTCP");
    }

    #[test]
    fn irn_buffers_ooo_and_nacks() {
        let mut r = irn_receiver(3);
        let out = r.on_data(Time::ZERO, &data(2, true));
        let nack = out.ack.unwrap();
        assert_eq!(nack.kind, PacketKind::Nack);
        assert_eq!((nack.psn, nack.sack), (0, 2));
        assert_eq!(r.stats.buffered_ooo, 1);
        // Filling the holes completes without re-delivering psn 2.
        r.on_data(Time::from_nanos(10), &data(0, false));
        let out = r.on_data(Time::from_nanos(20), &data(1, false));
        assert!(out.completed);
    }

    #[test]
    fn roce_discards_ooo_and_needs_full_redelivery() {
        let mut r = roce_receiver(3);
        let out = r.on_data(Time::ZERO, &data(2, true));
        assert_eq!(out.ack.unwrap().kind, PacketKind::Nack);
        assert_eq!(r.stats.discarded_ooo, 1);
        r.on_data(Time::from_nanos(10), &data(0, false));
        r.on_data(Time::from_nanos(20), &data(1, false));
        // Packet 2 was discarded: not complete until it arrives again.
        assert_eq!(r.completed_at(), None);
        let out = r.on_data(Time::from_nanos(30), &data(2, true));
        assert!(out.completed);
    }

    #[test]
    fn roce_acks_are_free() {
        let mut r = roce_receiver(2);
        let out = r.on_data(Time::ZERO, &data(0, false));
        assert_eq!(
            out.ack.unwrap().wire_bytes,
            0,
            "§5.2: RoCE baseline ACKs carry no bandwidth cost"
        );
    }

    #[test]
    fn cnp_generated_once_per_interval() {
        let mut r = ReceiverQp::new(
            &TransportConfig::irn_default(),
            FlowId(0),
            HostId(0),
            HostId(1),
            100,
            CcKind::Dcqcn,
        );
        let mut marked = data(0, false);
        marked.ecn_ce = true;
        let out = r.on_data(Time::ZERO, &marked);
        assert!(out.cnp.is_some(), "first mark → CNP");
        let mut marked2 = data(1, false);
        marked2.ecn_ce = true;
        let out = r.on_data(Time::from_nanos(1000), &marked2);
        assert!(out.cnp.is_none(), "within 50 µs → suppressed");
        assert_eq!(r.stats.cnps_sent, 1);
        let cnp = r
            .on_data(Time::ZERO + irn_sim::Duration::micros(51), &{
                let mut d = data(2, false);
                d.ecn_ce = true;
                d
            })
            .cnp;
        assert!(cnp.is_some(), "next interval → CNP");
    }

    #[test]
    fn no_cnp_without_dcqcn() {
        let mut r = irn_receiver(2);
        let mut marked = data(0, false);
        marked.ecn_ce = true;
        assert!(r.on_data(Time::ZERO, &marked).cnp.is_none());
    }

    #[test]
    fn duplicate_data_reacks_without_double_completion() {
        let mut r = irn_receiver(2);
        r.on_data(Time::ZERO, &data(0, false));
        let out = r.on_data(Time::from_nanos(5), &data(1, true));
        assert!(out.completed);
        let out = r.on_data(Time::from_nanos(10), &data(1, true));
        assert!(!out.completed, "completion fires exactly once");
        assert_eq!(out.ack.unwrap().psn, 2, "duplicates still re-ACK");
        assert_eq!(r.stats.duplicates, 1);
    }
}
