//! The iWARP comparator: a full TCP stack in the NIC (§4.6).
//!
//! iWARP \[32\] implements TCP in hardware and layers RDMA on top. The
//! paper compares IRN against "full-blown TCP stack's" behaviour (INET's
//! TCP in their simulator): slow start, AIMD congestion avoidance,
//! triple-duplicate-ACK fast retransmit with NewReno fast recovery, and
//! an RTT-estimated retransmission timeout. §4.6's findings — IRN's lack
//! of slow start (BDP-FC instead) gives ~21 % better slowdowns, and
//! adding AIMD to IRN beats iWARP outright — come from exactly these
//! mechanisms, reproduced here at packet granularity.
//!
//! Simplifications, documented for honesty: sequence numbers count
//! packets (not bytes; the MTU segmentation is fixed), the advertised
//! receive window is unbounded (iWARP NICs size it to the pipe), and
//! delayed ACKs are off (per-packet ACKs, as RDMA-class fabrics use).
//! None of these affect the slow-start / loss-recovery dynamics the
//! comparison is about.

use irn_net::{FlowId, HostId, Packet, PacketKind};
use irn_rdma::modules::{self, AckEmit, QpContext, ReceiverMode};
use irn_sim::{Duration, Time};

use crate::config::TransportConfig;
use crate::sender::{SenderPoll, TimerCmd};

/// TCP sender congestion state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TcpState {
    SlowStart,
    CongestionAvoidance,
    FastRecovery,
}

/// Initial window (packets) — conservative, classic NewReno.
const INITIAL_WINDOW: f64 = 2.0;
/// Duplicate-ACK threshold for fast retransmit.
const DUPACK_THRESHOLD: u32 = 3;
/// RTO bounds: floor matches the RDMA transports' RTO_high for a fair
/// §4.6 comparison; ceiling stops exponential backoff from freezing
/// flows for the whole run.
const MIN_RTO: Duration = Duration::micros(320);
const MAX_RTO: Duration = Duration::millis(16);

/// Per-flow TCP sender statistics.
#[derive(Debug, Clone, Copy, Default)]
pub struct TcpStats {
    /// Packets transmitted, including retransmissions.
    pub sent: u64,
    /// Fast retransmits triggered.
    pub fast_retransmits: u64,
    /// RTO events.
    pub timeouts: u64,
}

/// The sending half of an iWARP-style TCP connection carrying one flow.
#[derive(Debug)]
pub struct TcpSender {
    cfg: TransportConfig,
    flow: FlowId,
    src: HostId,
    dst: HostId,
    size_bytes: u64,
    total_packets: u32,

    cwnd: f64,
    ssthresh: f64,
    state: TcpState,

    cum_acked: u32,
    next_to_send: u32,
    highest_sent: u32,
    dup_acks: u32,
    /// NewReno recovery point: highest sequence sent at FR entry.
    recover: u32,
    /// Fast/partial-ack retransmission queued for the next poll.
    retx_pending: Option<u32>,

    // RTT estimation (Jacobson/Karels).
    srtt_ns: Option<f64>,
    rttvar_ns: f64,
    rto: Duration,
    /// Karn's algorithm: suppress sampling while retransmissions are in
    /// the window.
    tainted_until: u32,

    /// Deadline mirror of the flow's scheduler timer (`Some` while an
    /// expiry is pending out in the simulation).
    timer_deadline: Option<Time>,
    pending_timer: Option<TimerCmd>,
    /// Lazy timer reset: expiries before `last_progress + rto` re-arm.
    last_progress: Time,
    done: bool,
    /// Counters.
    pub stats: TcpStats,
}

impl TcpSender {
    /// New connection for one flow; slow start from the initial window
    /// (2 packets, classic NewReno).
    pub fn new(
        cfg: TransportConfig,
        flow: FlowId,
        src: HostId,
        dst: HostId,
        size_bytes: u64,
    ) -> TcpSender {
        let total_packets = cfg.packets_for(size_bytes);
        TcpSender {
            flow,
            src,
            dst,
            size_bytes,
            total_packets,
            cwnd: INITIAL_WINDOW,
            ssthresh: f64::INFINITY,
            state: TcpState::SlowStart,
            cum_acked: 0,
            next_to_send: 0,
            highest_sent: 0,
            dup_acks: 0,
            recover: 0,
            retx_pending: None,
            srtt_ns: None,
            rttvar_ns: 0.0,
            rto: MIN_RTO,
            tainted_until: 0,
            timer_deadline: None,
            pending_timer: None,
            last_progress: Time::ZERO,
            done: false,
            cfg,
            stats: TcpStats::default(),
        }
    }

    /// Total packets in the flow.
    pub fn total_packets(&self) -> u32 {
        self.total_packets
    }

    /// True once fully acknowledged.
    pub fn is_done(&self) -> bool {
        self.done
    }

    /// Current congestion window in packets (tests).
    pub fn cwnd_packets(&self) -> u32 {
        self.cwnd as u32
    }

    /// Ask for the next packet.
    pub fn poll(&mut self, now: Time) -> SenderPoll {
        if self.done {
            return SenderPoll::Done;
        }
        if let Some(psn) = self.retx_pending.take() {
            return SenderPoll::Packet(self.make_packet(now, psn));
        }
        let in_flight = self.next_to_send.saturating_sub(self.cum_acked);
        if (in_flight as f64) < self.cwnd.max(1.0) && self.next_to_send < self.total_packets {
            let psn = self.next_to_send;
            self.next_to_send += 1;
            return SenderPoll::Packet(self.make_packet(now, psn));
        }
        SenderPoll::Blocked
    }

    fn make_packet(&mut self, now: Time, psn: u32) -> Packet {
        let payload = self.cfg.payload_of(self.size_bytes, psn);
        let mut pkt = Packet::data(
            self.flow,
            self.src,
            self.dst,
            psn,
            self.cfg.data_wire_bytes(payload),
        );
        pkt.sent_at = now;
        pkt.is_last = psn + 1 == self.total_packets;
        pkt.is_retx = psn < self.highest_sent;
        if pkt.is_retx {
            self.tainted_until = self.highest_sent; // Karn
        }
        self.highest_sent = self.highest_sent.max(psn + 1);
        self.stats.sent += 1;
        if self.timer_deadline.is_none() {
            self.last_progress = now;
            self.arm_timer(now);
        }
        pkt
    }

    fn arm_timer(&mut self, now: Time) {
        self.timer_deadline = Some(now + self.rto);
        self.pending_timer = Some(TimerCmd::Arm(now + self.rto));
    }

    /// Drain a pending timer arm/cancel request.
    pub fn take_timer_request(&mut self) -> Option<TimerCmd> {
        self.pending_timer.take()
    }

    /// Feed a (cumulative) ACK. Returns `true` when the flow completes.
    pub fn on_ack_packet(&mut self, now: Time, pkt: &Packet) -> bool {
        let cum = pkt.psn;

        if cum > self.cum_acked {
            let newly = cum - self.cum_acked;
            self.cum_acked = cum;
            // A post-rewind late ACK can pass the transmit cursor.
            self.next_to_send = self.next_to_send.max(cum);
            self.dup_acks = 0;

            // RTT sampling (Karn: skip while retransmissions are out).
            if cum > self.tainted_until || self.srtt_ns.is_none() {
                self.rtt_sample(now.saturating_since(pkt.sent_at));
            }

            match self.state {
                TcpState::FastRecovery => {
                    if cum > self.recover {
                        // Full ACK: leave recovery.
                        self.state = TcpState::CongestionAvoidance;
                        self.cwnd = self.ssthresh;
                    } else {
                        // NewReno partial ACK: retransmit the next hole,
                        // deflate by the amount acked.
                        self.retx_pending = Some(cum);
                        self.cwnd = (self.cwnd - newly as f64 + 1.0).max(1.0);
                    }
                }
                TcpState::SlowStart => {
                    self.cwnd += newly as f64; // exponential
                    if self.cwnd >= self.ssthresh {
                        self.state = TcpState::CongestionAvoidance;
                    }
                }
                TcpState::CongestionAvoidance => {
                    self.cwnd += newly as f64 / self.cwnd.max(1.0);
                }
            }

            if self.cum_acked >= self.total_packets {
                self.pending_timer = self.timer_deadline.take().map(|_| TimerCmd::Cancel);
                self.done = true;
                return true;
            }
            self.last_progress = now;
            if self.timer_deadline.is_none() {
                self.arm_timer(now);
            }
        } else if cum == self.cum_acked && self.highest_sent > cum {
            // Duplicate ACK.
            match self.state {
                TcpState::FastRecovery => {
                    self.cwnd += 1.0; // inflation
                }
                _ => {
                    self.dup_acks += 1;
                    if self.dup_acks == DUPACK_THRESHOLD {
                        // Fast retransmit + enter fast recovery.
                        self.stats.fast_retransmits += 1;
                        let flight = (self.next_to_send - self.cum_acked) as f64;
                        self.ssthresh = (flight / 2.0).max(2.0);
                        self.cwnd = self.ssthresh + DUPACK_THRESHOLD as f64;
                        self.recover = self.highest_sent;
                        self.retx_pending = Some(cum);
                        self.state = TcpState::FastRecovery;
                    }
                }
            }
        }
        false
    }

    fn rtt_sample(&mut self, rtt: Duration) {
        let r = rtt.as_nanos() as f64;
        match self.srtt_ns {
            None => {
                self.srtt_ns = Some(r);
                self.rttvar_ns = r / 2.0;
            }
            Some(srtt) => {
                // RFC 6298 constants.
                self.rttvar_ns = 0.75 * self.rttvar_ns + 0.25 * (srtt - r).abs();
                self.srtt_ns = Some(0.875 * srtt + 0.125 * r);
            }
        }
        let rto_ns = self.srtt_ns.unwrap() + 4.0 * self.rttvar_ns;
        self.rto = Duration::nanos(rto_ns as u64).max(MIN_RTO).min(MAX_RTO);
    }

    /// The connection's (live) retransmission timer expired; cancelled
    /// deadlines never reach here. Returns `true` if the sender acted.
    pub fn on_timer(&mut self, now: Time) -> bool {
        if self.done {
            return false;
        }
        self.timer_deadline = None; // the pending expiry was consumed
        if self.cum_acked >= self.highest_sent {
            return false; // nothing outstanding
        }
        // Lazy reset: defer if acknowledgements arrived since arming.
        let effective_deadline = self.last_progress + self.rto;
        if effective_deadline > now {
            self.timer_deadline = Some(effective_deadline);
            self.pending_timer = Some(TimerCmd::Arm(effective_deadline));
            return true;
        }
        self.last_progress = now;
        // RTO: multiplicative backoff, collapse to slow start, go-back-N.
        self.stats.timeouts += 1;
        let flight = (self.next_to_send - self.cum_acked) as f64;
        self.ssthresh = (flight / 2.0).max(2.0);
        self.cwnd = 1.0;
        self.state = TcpState::SlowStart;
        self.next_to_send = self.cum_acked;
        self.dup_acks = 0;
        self.rto = (self.rto * 2).min(MAX_RTO);
        self.arm_timer(now);
        true
    }
}

/// The receiving half: buffers out-of-order segments, emits cumulative
/// (duplicate) ACKs per packet.
#[derive(Debug)]
pub struct TcpReceiver {
    flow: FlowId,
    sender: HostId,
    me: HostId,
    total_packets: u32,
    ack_bytes: u32,
    ctx: QpContext,
    completed_at: Option<Time>,
}

impl TcpReceiver {
    /// Receiver for `total_packets` from `sender`.
    pub fn new(
        cfg: &TransportConfig,
        flow: FlowId,
        sender: HostId,
        me: HostId,
        total_packets: u32,
    ) -> TcpReceiver {
        TcpReceiver {
            flow,
            sender,
            me,
            total_packets,
            ack_bytes: cfg.ack_mode.bytes().max(64),
            ctx: QpContext::new(4096),
            completed_at: None,
        }
    }

    /// When the flow completed, if it has.
    pub fn completed_at(&self) -> Option<Time> {
        self.completed_at
    }

    /// Process a data segment; returns `(ack, completed_now)`.
    pub fn on_data(&mut self, now: Time, pkt: &Packet) -> (Packet, bool) {
        let r = modules::receive_data(&mut self.ctx, pkt.psn, pkt.is_last, ReceiverMode::Irn);
        // TCP acks are always cumulative; an OOO arrival yields a
        // duplicate ACK (same cum), which is what drives dupack counting.
        let cum = match r.ack {
            AckEmit::Ack { cum } => cum,
            AckEmit::Nack { cum, .. } => cum,
            AckEmit::None => self.ctx.expected_seq,
        };
        let mut ack = Packet::control(
            PacketKind::Ack,
            self.flow,
            self.me,
            self.sender,
            cum,
            self.ack_bytes,
        );
        ack.sent_at = pkt.sent_at;
        ack.ecn_echo = pkt.ecn_ce;
        let completed =
            if self.completed_at.is_none() && self.ctx.expected_seq >= self.total_packets {
                self.completed_at = Some(now);
                true
            } else {
                false
            };
        (ack, completed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sender(size: u64) -> TcpSender {
        TcpSender::new(
            TransportConfig::irn_default(),
            FlowId(0),
            HostId(0),
            HostId(1),
            size,
        )
    }

    fn ack_at(cum: u32, sent_at: Time) -> Packet {
        let mut p = Packet::control(PacketKind::Ack, FlowId(0), HostId(1), HostId(0), cum, 64);
        p.sent_at = sent_at;
        p
    }

    fn drain(s: &mut TcpSender, now: Time) -> Vec<Packet> {
        let mut v = Vec::new();
        while let SenderPoll::Packet(p) = s.poll(now) {
            v.push(p);
        }
        v
    }

    #[test]
    fn slow_start_limits_initial_burst() {
        let mut s = sender(1_000_000); // 1000 packets
        let burst = drain(&mut s, Time::ZERO);
        assert_eq!(
            burst.len(),
            INITIAL_WINDOW as usize,
            "§4.6: iWARP pays slow start where IRN starts at the BDP"
        );
    }

    #[test]
    fn slow_start_doubles_per_rtt() {
        let mut s = sender(1_000_000);
        let mut time = Time::ZERO;
        let mut in_flight = drain(&mut s, time);
        let mut window_sizes = vec![in_flight.len()];
        for _ in 0..4 {
            time += Duration::micros(25);
            for p in std::mem::take(&mut in_flight) {
                s.on_ack_packet(time, &ack_at(p.psn + 1, p.sent_at));
            }
            in_flight = drain(&mut s, time);
            window_sizes.push(in_flight.len());
        }
        // Geometric growth: each window roughly doubles.
        for w in window_sizes.windows(2) {
            assert!(
                w[1] >= w[0] * 2 - 1,
                "slow start must ≈double: {window_sizes:?}"
            );
        }
    }

    #[test]
    fn triple_dupack_fast_retransmits() {
        let mut s = sender(20_000); // 20 packets
                                    // Grow the window a bit first.
        let mut t = Time::ZERO;
        let burst = drain(&mut s, t);
        t += Duration::micros(25);
        for p in &burst {
            s.on_ack_packet(t, &ack_at(p.psn + 1, p.sent_at));
        }
        let burst2 = drain(&mut s, t);
        assert!(burst2.len() >= 4, "need ≥4 in flight for 3 dupacks");
        // Packet burst2[0] lost: receiver dupacks at its cum.
        let lost = burst2[0].psn;
        t += Duration::micros(25);
        for _ in 0..3 {
            s.on_ack_packet(t, &ack_at(lost, burst2[1].sent_at));
        }
        assert_eq!(s.stats.fast_retransmits, 1);
        let retx = drain(&mut s, t);
        assert!(!retx.is_empty());
        assert_eq!(retx[0].psn, lost);
        assert!(retx[0].is_retx);
    }

    #[test]
    fn rto_collapses_to_slow_start() {
        let mut s = sender(50_000);
        drain(&mut s, Time::ZERO);
        let deadline = s.take_timer_request().unwrap().deadline().unwrap();
        assert!(s.on_timer(deadline));
        assert_eq!(s.stats.timeouts, 1);
        assert_eq!(s.cwnd_packets(), 1, "RTO ⇒ loss window of 1");
        let retx = drain(&mut s, deadline);
        assert_eq!(retx.len(), 1, "cwnd=1 allows exactly the head");
        assert_eq!(retx[0].psn, 0);
    }

    #[test]
    fn rto_backs_off_exponentially() {
        let mut s = sender(50_000);
        drain(&mut s, Time::ZERO);
        let d1 = s.take_timer_request().unwrap().deadline().unwrap();
        s.on_timer(d1);
        let d2 = s.take_timer_request().unwrap().deadline().unwrap();
        assert!(d2.since(d1) >= MIN_RTO * 2, "backoff must double the RTO");
    }

    #[test]
    fn receiver_dupacks_on_ooo() {
        let cfg = TransportConfig::irn_default();
        let mut r = TcpReceiver::new(&cfg, FlowId(0), HostId(0), HostId(1), 4);
        let mk = |psn: u32, last: bool| {
            let mut p = Packet::data(FlowId(0), HostId(0), HostId(1), psn, 1048);
            p.is_last = last;
            p
        };
        let (a0, _) = r.on_data(Time::ZERO, &mk(0, false));
        assert_eq!(a0.psn, 1);
        // 1 lost; 2 and 3 arrive → duplicate ACKs at cum=1.
        let (a1, _) = r.on_data(Time::ZERO, &mk(2, false));
        let (a2, _) = r.on_data(Time::ZERO, &mk(3, true));
        assert_eq!((a1.psn, a2.psn), (1, 1), "duplicate cumulative ACKs");
        // Retransmitted 1 completes everything (2,3 were buffered).
        let (a3, done) = r.on_data(Time::from_nanos(10), &mk(1, false));
        assert_eq!(a3.psn, 4);
        assert!(done, "OOO segments were buffered, not discarded");
    }

    #[test]
    fn newreno_partial_ack_retransmits_next_hole() {
        let mut s = sender(30_000);
        // Open the window: two slow-start rounds (2 → 4 → 8 in flight).
        let mut t = Time::ZERO;
        let mut b2 = drain(&mut s, t);
        for _ in 0..2 {
            t += Duration::micros(25);
            for p in std::mem::take(&mut b2) {
                s.on_ack_packet(t, &ack_at(p.psn + 1, p.sent_at));
            }
            b2 = drain(&mut s, t);
        }
        assert!(b2.len() >= 6);
        let first = b2[0].psn;
        // Two losses: first and first+2. Dupacks carry cum=first.
        t += Duration::micros(25);
        for _ in 0..3 {
            s.on_ack_packet(t, &ack_at(first, b2[1].sent_at));
        }
        let retx1 = drain(&mut s, t);
        assert_eq!(retx1[0].psn, first);
        // Partial ack up to the second hole.
        t += Duration::micros(25);
        s.on_ack_packet(t, &ack_at(first + 2, retx1[0].sent_at));
        let retx2 = drain(&mut s, t);
        assert_eq!(retx2[0].psn, first + 2, "NewReno retransmits the next hole");
    }

    #[test]
    fn completion_cancels_timer() {
        let mut s = sender(1_000);
        let pkts = drain(&mut s, Time::ZERO);
        let done = s.on_ack_packet(Time::from_nanos(5_000), &ack_at(1, pkts[0].sent_at));
        assert!(done);
        // Completion supersedes the arm from the send with a cancel, so
        // the embedding scheduler removes the deadline outright.
        assert_eq!(s.take_timer_request(), Some(TimerCmd::Cancel));
    }
}
