//! Window-based congestion control: TCP-style AIMD and DCTCP (§4.4.4).
//!
//! "We also implemented conventional window-based congestion control
//! schemes such as TCP's AIMD and DCTCP with IRN and observed similar
//! trends… In fact, when IRN is used with TCP's AIMD, the benefits of
//! disabling PFC were even stronger, because it exploits packet drops as
//! a congestion signal, which is lost when PFC is enabled."
//!
//! Both controllers bound in-flight *packets* (the simulator's
//! congestion unit) and start at the line-rate window (the BDP) per
//! §4.1's flows-start-at-line-rate rule.

use super::params::{AimdParams, DctcpParams};

/// TCP-style additive-increase / multiplicative-decrease window.
#[derive(Debug, Clone)]
pub struct Aimd {
    p: AimdParams,
    cwnd: f64,
    /// Loss events taken (stats).
    pub losses: u64,
}

impl Aimd {
    /// Start with a window of `initial` packets (the BDP for line-rate
    /// start).
    pub fn new(p: AimdParams, initial: u32) -> Aimd {
        Aimd {
            p,
            cwnd: initial.max(1) as f64,
            losses: 0,
        }
    }

    /// `n` packets newly acknowledged: congestion-avoidance increase
    /// (`increase_per_rtt / cwnd` per packet ⇒ ≈ +1 per RTT).
    pub fn on_ack(&mut self, n: u32) {
        self.cwnd += n as f64 * self.p.increase_per_rtt / self.cwnd.max(1.0);
    }

    /// A loss event (NACK-detected or timeout): multiplicative decrease.
    /// The sender reports one event per recovery episode, not per lost
    /// packet (standard fast-recovery semantics).
    pub fn on_loss(&mut self) {
        self.losses += 1;
        self.cwnd = (self.cwnd * self.p.decrease_factor).max(self.p.min_cwnd);
    }

    /// Current window, whole packets.
    pub fn cwnd_packets(&self) -> u32 {
        self.cwnd.max(self.p.min_cwnd) as u32
    }
}

/// DCTCP \[15\]: window scaled by the EWMA fraction of ECN-marked ACKs.
#[derive(Debug, Clone)]
pub struct Dctcp {
    p: DctcpParams,
    cwnd: f64,
    alpha: f64,
    /// Marked / total ACKs in the current observation window.
    acked: u32,
    marked: u32,
    /// Window boundary: when `acked` crosses `cwnd`, fold the estimate.
    window_acked: f64,
    /// Loss events (DCTCP falls back to halving on loss).
    pub losses: u64,
}

impl Dctcp {
    /// Start with a window of `initial` packets.
    pub fn new(p: DctcpParams, initial: u32) -> Dctcp {
        Dctcp {
            p,
            cwnd: initial.max(1) as f64,
            alpha: 0.0,
            acked: 0,
            marked: 0,
            window_acked: 0.0,
            losses: 0,
        }
    }

    /// `n` packets acknowledged; `ecn_echo` = the ACK carried a mark.
    pub fn on_ack(&mut self, n: u32, ecn_echo: bool) {
        self.acked += n;
        if ecn_echo {
            self.marked += n;
        }
        self.window_acked += n as f64;
        // Congestion avoidance growth.
        self.cwnd += n as f64 / self.cwnd.max(1.0);

        if self.window_acked >= self.cwnd {
            // One observation window elapsed: update α and react.
            let f = if self.acked > 0 {
                self.marked as f64 / self.acked as f64
            } else {
                0.0
            };
            self.alpha = (1.0 - self.p.g) * self.alpha + self.p.g * f;
            if self.marked > 0 {
                self.cwnd = (self.cwnd * (1.0 - self.alpha / 2.0)).max(self.p.min_cwnd);
            }
            self.acked = 0;
            self.marked = 0;
            self.window_acked = 0.0;
        }
    }

    /// Loss event: Reno-style halving.
    pub fn on_loss(&mut self) {
        self.losses += 1;
        self.cwnd = (self.cwnd * 0.5).max(self.p.min_cwnd);
    }

    /// Current window, whole packets.
    pub fn cwnd_packets(&self) -> u32 {
        self.cwnd.max(self.p.min_cwnd) as u32
    }

    /// The marked-fraction estimate (tests).
    pub fn alpha(&self) -> f64 {
        self.alpha
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aimd_grows_one_per_window() {
        let mut a = Aimd::new(AimdParams::default_params(), 10);
        // Two windows' worth of ACKs grow cwnd by ≈2 (10 → ≈12).
        for _ in 0..21 {
            a.on_ack(1);
        }
        let c = a.cwnd_packets();
        assert!(
            (11..=12).contains(&c),
            "two windows of ACKs grow cwnd by ≈2, got {c}"
        );
    }

    #[test]
    fn aimd_halves_on_loss() {
        let mut a = Aimd::new(AimdParams::default_params(), 100);
        a.on_loss();
        assert_eq!(a.cwnd_packets(), 50);
        for _ in 0..10 {
            a.on_loss();
        }
        assert_eq!(a.cwnd_packets(), 1, "floor at min_cwnd");
    }

    #[test]
    fn dctcp_unmarked_traffic_keeps_growing() {
        let mut d = Dctcp::new(DctcpParams::default_params(), 10);
        for _ in 0..100 {
            d.on_ack(1, false);
        }
        assert!(d.cwnd_packets() > 10);
        assert_eq!(d.alpha(), 0.0);
    }

    #[test]
    fn dctcp_fully_marked_traffic_throttles_gently_then_hard() {
        let mut d = Dctcp::new(DctcpParams::default_params(), 64);
        let start = d.cwnd_packets();
        for _ in 0..2000 {
            d.on_ack(1, true);
        }
        assert!(d.alpha() > 0.5, "α must converge up, got {}", d.alpha());
        assert!(d.cwnd_packets() < start / 4);
    }

    #[test]
    fn dctcp_partial_marking_scales_proportionally() {
        let mut d = Dctcp::new(DctcpParams::default_params(), 64);
        // ~12.5 % marks.
        for i in 0..4000u32 {
            d.on_ack(1, i % 8 == 0);
        }
        let a = d.alpha();
        assert!(
            (0.02..0.4).contains(&a),
            "α should track the marked fraction loosely, got {a}"
        );
    }

    #[test]
    fn dctcp_loss_halves() {
        let mut d = Dctcp::new(DctcpParams::default_params(), 40);
        d.on_loss();
        assert_eq!(d.cwnd_packets(), 20);
    }
}
