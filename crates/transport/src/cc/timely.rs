//! Timely \[29\]: RTT-gradient rate control.
//!
//! Timely needs no switch support: the NIC timestamps every completion
//! and steers the rate by the *gradient* of the RTT series —
//! a positive gradient (queues building) triggers multiplicative
//! decrease, a flat/negative one additive increase, with guard bands
//! `T_low` (below: always increase) and `T_high` (above: always
//! decrease) and a hyperactive-increase (HAI) mode after several
//! consecutive negative-gradient completions.
//!
//! In this simulator the "completion event" is an arriving ACK, whose
//! `sent_at` echo gives the RTT sample, exactly like the NIC hardware
//! timestamps the paper's implementation relies on.

use irn_net::Bandwidth;
use irn_sim::{Duration, Time};

use super::params::TimelyParams;

/// Per-flow Timely state.
#[derive(Debug, Clone)]
pub struct Timely {
    p: TimelyParams,
    line_mbps: f64,
    rate: f64,
    prev_rtt_ns: Option<f64>,
    /// EWMA of the RTT differences.
    rtt_diff_ns: f64,
    /// Consecutive completions with non-positive gradient.
    negative_streak: u32,
    /// Last rate-update instant: Timely reacts per *completion event*
    /// (a segment of data, not every ACK \[29\]); we rate-limit updates
    /// to one per minimum RTT, matching the paper's 16–64 KB segments.
    last_update: Option<Time>,
    /// Completion events seen (stats).
    pub completions: u64,
}

impl Timely {
    /// A flow starting at line rate (§4.1).
    pub fn new(p: TimelyParams, line_rate: Bandwidth) -> Timely {
        Timely {
            p,
            line_mbps: line_rate.as_mbps() as f64,
            rate: line_rate.as_mbps() as f64,
            prev_rtt_ns: None,
            rtt_diff_ns: 0.0,
            negative_streak: 0,
            last_update: None,
            completions: 0,
        }
    }

    /// Feed an ACK's RTT sample at time `now`. When
    /// `TimelyParams::update_interval` is nonzero, samples arriving
    /// within the interval of the previous update are dropped
    /// (per-completion-event cadence). The default is per-ACK updates:
    /// Timely \[29\] updates per completion event, and with 1 KB MTU
    /// segments every ACK *is* a completion event.
    pub fn on_ack(&mut self, now: Time, rtt: Duration) {
        if !self.p.update_interval.is_zero() {
            if let Some(last) = self.last_update {
                if now.saturating_since(last) < self.p.update_interval {
                    return;
                }
            }
        }
        self.last_update = Some(now);
        self.on_completion(rtt);
    }

    /// Feed one completion's RTT sample (unconditional update).
    pub fn on_completion(&mut self, rtt: Duration) {
        self.completions += 1;
        let rtt_ns = rtt.as_nanos() as f64;

        let new_diff = match self.prev_rtt_ns {
            Some(prev) => rtt_ns - prev,
            None => 0.0,
        };
        self.prev_rtt_ns = Some(rtt_ns);
        self.rtt_diff_ns =
            (1.0 - self.p.ewma_alpha) * self.rtt_diff_ns + self.p.ewma_alpha * new_diff;
        let gradient = self.rtt_diff_ns / self.p.min_rtt.as_nanos() as f64;

        if rtt < self.p.t_low {
            // Below the floor: unconditional additive increase.
            self.negative_streak = self.negative_streak.saturating_add(1);
            self.additive_increase(1.0);
            return;
        }
        if rtt > self.p.t_high {
            // Above the ceiling: decrease regardless of gradient,
            // proportional to how far past T_high we are.
            self.negative_streak = 0;
            let factor = 1.0 - self.p.beta * (1.0 - self.p.t_high.as_nanos() as f64 / rtt_ns);
            self.rate = (self.rate * factor).max(self.p.min_rate_mbps);
            return;
        }
        if gradient <= 0.0 {
            self.negative_streak += 1;
            // HAI mode: after N consecutive decreases in RTT, climb in
            // multiples of δ.
            let scale = if self.negative_streak >= self.p.hai_threshold {
                self.p.hai_threshold as f64
            } else {
                1.0
            };
            self.additive_increase(scale);
        } else {
            self.negative_streak = 0;
            self.rate =
                (self.rate * (1.0 - self.p.beta * gradient.min(1.0))).max(self.p.min_rate_mbps);
        }
    }

    fn additive_increase(&mut self, scale: f64) {
        self.rate = (self.rate + scale * self.p.delta_mbps).min(self.line_mbps);
    }

    /// Current pacing rate.
    pub fn rate_mbps(&self) -> f64 {
        self.rate
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mk() -> Timely {
        Timely::new(TimelyParams::paper(), Bandwidth::from_gbps(40))
    }

    #[test]
    fn starts_at_line_rate() {
        assert_eq!(mk().rate_mbps(), 40_000.0);
    }

    #[test]
    fn low_rtt_keeps_line_rate() {
        let mut t = mk();
        for _ in 0..100 {
            t.on_completion(Duration::micros(30)); // < T_low
        }
        assert_eq!(t.rate_mbps(), 40_000.0, "increase is clamped at line rate");
    }

    #[test]
    fn rising_rtt_decreases_rate() {
        let mut t = mk();
        // RTT ramps 60 → 460 µs: positive gradient inside the band.
        for i in 0..40 {
            t.on_completion(Duration::micros(60 + i * 10));
        }
        assert!(
            t.rate_mbps() < 20_000.0,
            "sustained queue growth must throttle hard, got {}",
            t.rate_mbps()
        );
    }

    #[test]
    fn rtt_above_thigh_decreases_even_when_falling() {
        let mut t = mk();
        // Falling series, but all above T_high = 500 µs.
        let r0 = t.rate_mbps();
        for us in [900u64, 850, 800, 750, 700] {
            t.on_completion(Duration::micros(us));
        }
        assert!(t.rate_mbps() < r0);
    }

    #[test]
    fn falling_rtt_in_band_recovers_rate() {
        let mut t = mk();
        for i in 0..40 {
            t.on_completion(Duration::micros(60 + i * 10));
        }
        let low = t.rate_mbps();
        // Falling RTTs inside the band: additive recovery, then HAI.
        for i in 0..200 {
            t.on_completion(Duration::micros(300u64.saturating_sub(i) + 60));
        }
        assert!(
            t.rate_mbps() > low + 5.0 * TimelyParams::paper().delta_mbps,
            "HAI must speed recovery: {low} → {}",
            t.rate_mbps()
        );
    }

    #[test]
    fn rate_never_below_floor() {
        let mut t = mk();
        for _ in 0..1000 {
            t.on_completion(Duration::millis(5));
        }
        assert!(t.rate_mbps() >= TimelyParams::paper().min_rate_mbps);
    }
}
