//! Congestion-control parameters, as specified by the source papers.
//!
//! §4.1: "When using RoCE or IRN with Timely or DCQCN, we use the same
//! congestion control parameters as specified in \[29\] and \[37\]
//! respectively." Those values are encoded here verbatim where the
//! papers give them; where a paper gives only a 10 Gbps configuration we
//! keep the value and note it (the reproduction target is the *shape* of
//! the comparisons, and every transport under test shares the same
//! parameters).

use irn_sim::Duration;

/// DCQCN \[37\] reaction-point / notification-point parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DcqcnParams {
    /// EWMA gain for the alpha estimate (g = 1/256 in \[37\]).
    pub g: f64,
    /// Alpha update timer: alpha decays every such period without CNPs
    /// (55 µs in \[37\]).
    pub alpha_timer: Duration,
    /// Rate-increase timer period (55 µs, the fast-recovery clock).
    pub increase_timer: Duration,
    /// Byte counter: a rate-increase event per this many bytes sent
    /// (10 MB in \[37\]).
    pub byte_counter: u64,
    /// Fast-recovery threshold F: increase events before leaving fast
    /// recovery (5 in \[37\]).
    pub fast_recovery_threshold: u32,
    /// Additive-increase step (40 Mbps in \[37\]).
    pub rai_mbps: f64,
    /// Hyper-increase step (400 Mbps in \[37\]).
    pub rhai_mbps: f64,
    /// Rate floor — DCQCN never pushes a flow below this.
    pub min_rate_mbps: f64,
    /// Notification point: minimum gap between CNPs per flow (50 µs).
    pub cnp_interval: Duration,
}

impl DcqcnParams {
    /// The values from the DCQCN paper \[37\].
    pub fn paper() -> DcqcnParams {
        DcqcnParams {
            g: 1.0 / 256.0,
            alpha_timer: Duration::micros(55),
            increase_timer: Duration::micros(55),
            byte_counter: 10 * 1024 * 1024,
            fast_recovery_threshold: 5,
            rai_mbps: 40.0,
            rhai_mbps: 400.0,
            min_rate_mbps: 40.0,
            cnp_interval: Duration::micros(50),
        }
    }
}

/// Timely \[29\] parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimelyParams {
    /// Additive increment δ (10 Mbps in \[29\]).
    pub delta_mbps: f64,
    /// Multiplicative-decrease factor β (0.8 in \[29\]).
    pub beta: f64,
    /// EWMA weight α for the RTT-difference filter (0.46 per \[29\]'s
    /// patched implementation).
    pub ewma_alpha: f64,
    /// Below this RTT: pure additive increase (50 µs in \[29\]).
    pub t_low: Duration,
    /// Above this RTT: multiplicative decrease independent of gradient
    /// (500 µs in \[29\]).
    pub t_high: Duration,
    /// Consecutive negative-gradient completions before hyperactive
    /// increase (5 in \[29\]).
    pub hai_threshold: u32,
    /// Minimum RTT used to normalize the gradient (the paper's fabric
    /// floor; 20 µs here ≈ the 24 µs propagation RTT minus queuing-free
    /// slack).
    pub min_rtt: Duration,
    /// Rate floor.
    pub min_rate_mbps: f64,
    /// Minimum spacing between rate updates; `ZERO` = update on every
    /// ACK (each MTU-sized segment is a completion event, \[29\]).
    pub update_interval: Duration,
}

impl TimelyParams {
    /// The values from the Timely paper \[29\].
    pub fn paper() -> TimelyParams {
        TimelyParams {
            delta_mbps: 10.0,
            beta: 0.8,
            ewma_alpha: 0.46,
            t_low: Duration::micros(50),
            t_high: Duration::micros(500),
            hai_threshold: 5,
            min_rtt: Duration::micros(20),
            min_rate_mbps: 10.0,
            update_interval: Duration::ZERO,
        }
    }
}

/// TCP-style AIMD window parameters (§4.4.4).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AimdParams {
    /// Additive increase per window's worth of ACKs, in packets.
    pub increase_per_rtt: f64,
    /// Multiplicative-decrease factor on a loss event.
    pub decrease_factor: f64,
    /// Window floor, packets.
    pub min_cwnd: f64,
}

impl AimdParams {
    /// Standard Reno-style constants.
    pub fn default_params() -> AimdParams {
        AimdParams {
            increase_per_rtt: 1.0,
            decrease_factor: 0.5,
            min_cwnd: 1.0,
        }
    }
}

/// DCTCP \[15\] parameters (§4.4.4).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DctcpParams {
    /// EWMA gain for the marked fraction (1/16 in \[15\]).
    pub g: f64,
    /// Window floor, packets.
    pub min_cwnd: f64,
}

impl DctcpParams {
    /// The values from the DCTCP paper \[15\].
    pub fn default_params() -> DctcpParams {
        DctcpParams {
            g: 1.0 / 16.0,
            min_cwnd: 1.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dcqcn_paper_values() {
        let p = DcqcnParams::paper();
        assert!((p.g - 0.00390625).abs() < 1e-12);
        assert_eq!(p.alpha_timer, Duration::micros(55));
        assert_eq!(p.byte_counter, 10 * 1024 * 1024);
        assert_eq!(p.fast_recovery_threshold, 5);
        assert_eq!(p.cnp_interval, Duration::micros(50));
    }

    #[test]
    fn timely_paper_values() {
        let p = TimelyParams::paper();
        assert_eq!(p.t_low, Duration::micros(50));
        assert_eq!(p.t_high, Duration::micros(500));
        assert_eq!(p.beta, 0.8);
        assert_eq!(p.delta_mbps, 10.0);
    }
}
