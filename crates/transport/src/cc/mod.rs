//! Congestion control for RDMA transports (§4.2.4, §4.4.4).
//!
//! The paper evaluates RoCE and IRN bare and in combination with the two
//! deployed RDMA congestion-control schemes — DCQCN \[37\] (ECN/CNP,
//! rate-based) and Timely \[29\] (RTT-gradient, rate-based) — plus
//! conventional window schemes (TCP AIMD and DCTCP) in §4.4.4. All four
//! live here behind one enum, [`CcState`], so a sender composes with any
//! of them (or none: flows start and stay at line rate, §4.1).
//!
//! Rate-based controllers pace packets ([`CcState::pacing_rate_mbps`]);
//! window-based controllers bound in-flight packets ([`CcState::cwnd`]).
//! Both gates apply on top of IRN's BDP-FC cap when enabled — the paper
//! stresses these are orthogonal (§3).
//!
//! None of the controllers schedules events: DCQCN's periodic alpha
//! decay and rate-increase timers are applied lazily with closed-form
//! catch-up when the flow is touched, which is equivalent for pacing
//! purposes and keeps the hot path event-free.

pub mod dcqcn;
pub mod params;
pub mod timely;
pub mod window;

use irn_net::Bandwidth;
use irn_sim::{Duration, Time};

pub use dcqcn::Dcqcn;
pub use params::{AimdParams, DcqcnParams, DctcpParams, TimelyParams};
pub use timely::Timely;
pub use window::{Aimd, Dctcp};

/// Which congestion-control algorithm to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CcKind {
    /// No explicit congestion control (§4.2.1–4.2.3): flows run at line
    /// rate, bounded only by BDP-FC / the fabric.
    None,
    /// Timely \[29\]: RTT-gradient rate control.
    Timely,
    /// DCQCN \[37\]: ECN-marking + CNP rate control.
    Dcqcn,
    /// TCP-style AIMD window (§4.4.4).
    Aimd,
    /// DCTCP window scaling by marked fraction (§4.4.4).
    Dctcp,
}

impl CcKind {
    /// Does this algorithm react to ECN marks (and therefore require the
    /// fabric to mark)?
    pub fn needs_ecn(self) -> bool {
        matches!(self, CcKind::Dcqcn | CcKind::Dctcp)
    }

    /// Human-readable name as used in the paper's figures.
    pub fn label(self) -> &'static str {
        match self {
            CcKind::None => "NoCC",
            CcKind::Timely => "Timely",
            CcKind::Dcqcn => "DCQCN",
            CcKind::Aimd => "AIMD",
            CcKind::Dctcp => "DCTCP",
        }
    }
}

/// Per-flow congestion-control state.
#[derive(Debug, Clone)]
pub enum CcState {
    /// Line-rate, unpaced.
    None,
    /// Timely rate control.
    Timely(Timely),
    /// DCQCN rate control.
    Dcqcn(Dcqcn),
    /// AIMD window.
    Aimd(Aimd),
    /// DCTCP window.
    Dctcp(Dctcp),
}

impl CcState {
    /// Instantiate `kind` with its default parameters for a flow
    /// starting at `now` on a link of `line_rate`. `bdp_packets` seeds
    /// window controllers (flows start at line rate, §4.1).
    pub fn new(kind: CcKind, line_rate: Bandwidth, bdp_packets: u32, now: Time) -> CcState {
        match kind {
            CcKind::None => CcState::None,
            CcKind::Timely => CcState::Timely(Timely::new(TimelyParams::paper(), line_rate)),
            CcKind::Dcqcn => CcState::Dcqcn(Dcqcn::new(DcqcnParams::paper(), line_rate, now)),
            CcKind::Aimd => CcState::Aimd(Aimd::new(AimdParams::default_params(), bdp_packets)),
            CcKind::Dctcp => CcState::Dctcp(Dctcp::new(DctcpParams::default_params(), bdp_packets)),
        }
    }

    /// Feed an acknowledgement: `newly_acked` packets, measured `rtt`,
    /// and whether the ACK echoed an ECN mark (DCTCP).
    pub fn on_ack(&mut self, now: Time, newly_acked: u32, rtt: Duration, ecn_echo: bool) {
        match self {
            CcState::None => {}
            CcState::Timely(t) => t.on_ack(now, rtt),
            CcState::Dcqcn(d) => d.touch(now),
            CcState::Aimd(a) => a.on_ack(newly_acked),
            CcState::Dctcp(d) => d.on_ack(newly_acked, ecn_echo),
        }
    }

    /// Feed a loss signal (NACK-detected loss or timeout).
    pub fn on_loss(&mut self, now: Time) {
        match self {
            CcState::None => {}
            // Rate-based schemes do not treat loss as a signal (§4.4.4
            // notes AIMD regains the drop signal that PFC removes).
            CcState::Timely(_) => {}
            CcState::Dcqcn(d) => d.touch(now),
            CcState::Aimd(a) => a.on_loss(),
            CcState::Dctcp(d) => d.on_loss(),
        }
    }

    /// Feed a DCQCN congestion-notification packet.
    pub fn on_cnp(&mut self, now: Time) {
        if let CcState::Dcqcn(d) = self {
            d.on_cnp(now);
        }
    }

    /// Account transmitted bytes (drives DCQCN's byte-counter clock).
    pub fn on_send(&mut self, now: Time, bytes: u64) {
        if let CcState::Dcqcn(d) = self {
            d.on_send(now, bytes);
        }
    }

    /// Pacing rate, if this controller paces. `None` ⇒ unpaced.
    pub fn pacing_rate_mbps(&mut self, now: Time) -> Option<f64> {
        match self {
            CcState::None => None,
            CcState::Timely(t) => Some(t.rate_mbps()),
            CcState::Dcqcn(d) => Some(d.rate_mbps(now)),
            CcState::Aimd(_) | CcState::Dctcp(_) => None,
        }
    }

    /// Congestion window in packets, if this controller windows.
    pub fn cwnd(&self) -> Option<u32> {
        match self {
            CcState::Aimd(a) => Some(a.cwnd_packets()),
            CcState::Dctcp(d) => Some(d.cwnd_packets()),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn needs_ecn_only_for_marking_schemes() {
        assert!(CcKind::Dcqcn.needs_ecn());
        assert!(CcKind::Dctcp.needs_ecn());
        assert!(!CcKind::Timely.needs_ecn());
        assert!(!CcKind::None.needs_ecn());
        assert!(!CcKind::Aimd.needs_ecn());
    }

    #[test]
    fn none_is_unpaced_and_unwindowed() {
        let mut cc = CcState::new(CcKind::None, Bandwidth::from_gbps(40), 110, Time::ZERO);
        assert_eq!(cc.pacing_rate_mbps(Time::ZERO), None);
        assert_eq!(cc.cwnd(), None);
    }

    #[test]
    fn rate_schemes_start_at_line_rate() {
        let line = Bandwidth::from_gbps(40);
        for kind in [CcKind::Timely, CcKind::Dcqcn] {
            let mut cc = CcState::new(kind, line, 110, Time::ZERO);
            let r = cc.pacing_rate_mbps(Time::ZERO).unwrap();
            assert_eq!(r, 40_000.0, "{kind:?} must start at line rate (§4.1)");
        }
    }

    #[test]
    fn window_schemes_start_at_bdp() {
        for kind in [CcKind::Aimd, CcKind::Dctcp] {
            let cc = CcState::new(kind, Bandwidth::from_gbps(40), 110, Time::ZERO);
            assert_eq!(cc.cwnd(), Some(110), "{kind:?} starts at line rate");
        }
    }
}
