//! DCQCN \[37\]: the ECN-based rate control shipped in ConnectX NICs.
//!
//! Switches RED-mark data packets (the fabric's `EcnConfig`); the
//! receiving NIC converts marks into Congestion Notification Packets
//! (CNPs) at most once per `cnp_interval` per flow; the sending NIC is
//! the *reaction point* implemented here:
//!
//! * **Rate decrease** on CNP: `α ← (1−g)α + g`, target `Rt ← Rc`,
//!   current `Rc ← Rc(1 − α/2)`.
//! * **Alpha decay**: without CNPs, `α ← (1−g)α` every `alpha_timer`.
//! * **Rate increase**: two clocks — a timer (`increase_timer`) and a
//!   byte counter (`byte_counter`). Each event runs one increase step:
//!   *fast recovery* (first F events: `Rc ← (Rt+Rc)/2`), then *additive*
//!   (`Rt += R_AI`), then *hyper* (`Rt += R_HAI`) once both clocks pass
//!   F, always followed by `Rc ← (Rt+Rc)/2`.
//!
//! Timer clocks are applied lazily: [`Dcqcn::touch`]/[`Dcqcn::rate_mbps`]
//! catch up every elapsed period deterministically, so the controller
//! needs no scheduled events.

use irn_net::Bandwidth;
use irn_sim::Time;

use super::params::DcqcnParams;

/// Per-flow DCQCN reaction-point state.
#[derive(Debug, Clone)]
pub struct Dcqcn {
    p: DcqcnParams,
    line_mbps: f64,
    /// Current rate Rc.
    rc: f64,
    /// Target rate Rt.
    rt: f64,
    /// Congestion estimate α.
    alpha: f64,
    /// Increase events seen on the timer clock since the last decrease.
    timer_events: u32,
    /// Increase events seen on the byte clock since the last decrease.
    byte_events: u32,
    /// Bytes sent since the last byte-counter event.
    bytes_since: u64,
    /// Last time the alpha timer was serviced.
    alpha_clock: Time,
    /// Last time the increase timer was serviced.
    inc_clock: Time,
    /// CNPs received (stats).
    pub cnps: u64,
}

impl Dcqcn {
    /// A flow starting at line rate (§4.1) at time `now`.
    pub fn new(p: DcqcnParams, line_rate: Bandwidth, now: Time) -> Dcqcn {
        let line_mbps = line_rate.as_mbps() as f64;
        Dcqcn {
            p,
            line_mbps,
            rc: line_mbps,
            rt: line_mbps,
            alpha: 1.0,
            timer_events: 0,
            byte_events: 0,
            bytes_since: 0,
            alpha_clock: now,
            inc_clock: now,
            cnps: 0,
        }
    }

    /// Apply lazily-elapsed alpha decays and timer-driven increases.
    pub fn touch(&mut self, now: Time) {
        // Alpha decay: α ← (1-g)α per elapsed period, in closed form.
        let periods = now.saturating_since(self.alpha_clock).as_nanos()
            / self.p.alpha_timer.as_nanos().max(1);
        if periods > 0 {
            let decay = (1.0 - self.p.g).powi(periods.min(10_000) as i32);
            self.alpha *= decay;
            self.alpha_clock += self.p.alpha_timer * periods;
        }
        // Timer-driven increase events, one step per period.
        let inc_periods = now.saturating_since(self.inc_clock).as_nanos()
            / self.p.increase_timer.as_nanos().max(1);
        for _ in 0..inc_periods.min(1_000) {
            self.timer_events += 1;
            self.increase_step();
        }
        if inc_periods > 0 {
            self.inc_clock += self.p.increase_timer * inc_periods;
        }
    }

    /// Account `bytes` transmitted: drives the byte-counter clock.
    pub fn on_send(&mut self, now: Time, bytes: u64) {
        self.touch(now);
        self.bytes_since += bytes;
        while self.bytes_since >= self.p.byte_counter {
            self.bytes_since -= self.p.byte_counter;
            self.byte_events += 1;
            self.increase_step();
        }
    }

    /// A CNP arrived: cut the rate (§ the RP decrease rule).
    pub fn on_cnp(&mut self, now: Time) {
        self.touch(now);
        self.cnps += 1;
        self.alpha = (1.0 - self.p.g) * self.alpha + self.p.g;
        self.rt = self.rc;
        self.rc = (self.rc * (1.0 - self.alpha / 2.0)).max(self.p.min_rate_mbps);
        // Reset the increase state machine.
        self.timer_events = 0;
        self.byte_events = 0;
        self.bytes_since = 0;
        self.alpha_clock = now;
        self.inc_clock = now;
    }

    /// One rate-increase event (from either clock).
    fn increase_step(&mut self) {
        let f = self.p.fast_recovery_threshold;
        let t = self.timer_events;
        let b = self.byte_events;
        if t > f && b > f {
            // Hyper increase.
            self.rt = (self.rt + self.p.rhai_mbps).min(self.line_mbps);
        } else if t > f || b > f {
            // Additive increase.
            self.rt = (self.rt + self.p.rai_mbps).min(self.line_mbps);
        }
        // Fast recovery and both increase stages converge Rc toward Rt.
        self.rc = ((self.rt + self.rc) / 2.0).min(self.line_mbps);
    }

    /// Current pacing rate.
    pub fn rate_mbps(&mut self, now: Time) -> f64 {
        self.touch(now);
        self.rc.clamp(self.p.min_rate_mbps, self.line_mbps)
    }

    /// Current α (tests / introspection).
    pub fn alpha(&self) -> f64 {
        self.alpha
    }
}

/// Notification-point state: CNP pacing at the receiver (one CNP per
/// `cnp_interval` at most, per flow).
#[derive(Debug, Clone)]
pub struct CnpGenerator {
    interval: irn_sim::Duration,
    last: Option<Time>,
    /// CNPs emitted (stats).
    pub emitted: u64,
}

impl CnpGenerator {
    /// Notification point with the given minimum CNP spacing.
    pub fn new(interval: irn_sim::Duration) -> CnpGenerator {
        CnpGenerator {
            interval,
            last: None,
            emitted: 0,
        }
    }

    /// An ECN-marked data packet arrived; should a CNP go out?
    pub fn on_marked_packet(&mut self, now: Time) -> bool {
        let due = match self.last {
            None => true,
            Some(t) => now.saturating_since(t) >= self.interval,
        };
        if due {
            self.last = Some(now);
            self.emitted += 1;
        }
        due
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use irn_sim::Duration;

    fn mk(now: Time) -> Dcqcn {
        Dcqcn::new(DcqcnParams::paper(), Bandwidth::from_gbps(40), now)
    }

    #[test]
    fn starts_at_line_rate() {
        let mut d = mk(Time::ZERO);
        assert_eq!(d.rate_mbps(Time::ZERO), 40_000.0);
    }

    #[test]
    fn first_cnp_halves_roughly() {
        // α starts at 1.0: first CNP cuts Rc by α/2 = 50 %... but α is
        // updated first: α = (1-g)·1 + g = 1 ⇒ cut to ~50 %.
        let mut d = mk(Time::ZERO);
        d.on_cnp(Time::from_nanos(1000));
        let r = d.rate_mbps(Time::from_nanos(1000));
        assert!((19_000.0..21_000.0).contains(&r), "rate {r} not ≈ half");
    }

    #[test]
    fn alpha_decays_without_cnps() {
        let mut d = mk(Time::ZERO);
        d.on_cnp(Time::from_nanos(1));
        let a0 = d.alpha();
        // 100 alpha periods later…
        d.touch(Time::ZERO + Duration::micros(55 * 100));
        assert!(d.alpha() < a0 * 0.8, "α must decay: {a0} → {}", d.alpha());
    }

    #[test]
    fn rate_recovers_toward_line_rate() {
        let mut d = mk(Time::ZERO);
        d.on_cnp(Time::from_nanos(1));
        let cut = d.rate_mbps(Time::from_nanos(2));
        // Fast recovery: five timer periods halve the gap to Rt each.
        let later = Time::ZERO + Duration::micros(55 * 6);
        let rec = d.rate_mbps(later);
        assert!(rec > cut, "rate must recover: {cut} → {rec}");
        // Long quiet period: additive + hyper increases restore line rate.
        let much_later = Time::ZERO + Duration::millis(50);
        let full = d.rate_mbps(much_later);
        assert!(
            full > 39_000.0,
            "rate must return to ≈line rate, got {full}"
        );
    }

    #[test]
    fn repeated_cnps_push_toward_floor() {
        let mut d = mk(Time::ZERO);
        let mut t = Time::ZERO;
        for _ in 0..60 {
            t += Duration::micros(50);
            d.on_cnp(t);
        }
        let r = d.rate_mbps(t);
        assert!(r < 1_000.0, "sustained congestion must throttle: {r}");
        assert!(r >= DcqcnParams::paper().min_rate_mbps);
    }

    #[test]
    fn byte_counter_drives_increase() {
        let mut d = mk(Time::ZERO);
        let t = Time::from_nanos(10);
        d.on_cnp(t);
        let cut = d.rc;
        // 10 MB sent in (virtually) no time: one byte event, Rc moves
        // toward Rt.
        d.on_send(t, 10 * 1024 * 1024);
        assert!(d.rc > cut);
    }

    #[test]
    fn cnp_generator_paces() {
        let mut g = CnpGenerator::new(Duration::micros(50));
        assert!(g.on_marked_packet(Time::from_nanos(0)));
        assert!(!g.on_marked_packet(Time::from_nanos(1_000)));
        assert!(!g.on_marked_packet(Time::ZERO + Duration::micros(49)));
        assert!(g.on_marked_packet(Time::ZERO + Duration::micros(50)));
        assert_eq!(g.emitted, 2);
    }
}
