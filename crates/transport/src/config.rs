//! Transport configuration: everything §4.1 fixes for the experiments.

use irn_net::Bandwidth;
use irn_sim::Duration;

use crate::cc::CcKind;

/// Loss-recovery scheme of a sender/receiver pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LossRecovery {
    /// IRN's SACK-based selective retransmission (§3.1).
    SelectiveRepeat,
    /// Go-back-N: the receiver discards out-of-order packets; the sender
    /// rewinds to the NACKed sequence (current RoCE NICs, §2.1).
    GoBackN,
}

/// How much reverse bandwidth acknowledgements consume.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AckMode {
    /// Per-packet ACKs occupying wire bytes (IRN pays this overhead —
    /// §5.2: "our results take into account the overhead of per-packet
    /// ACKs in IRN").
    PerPacket {
        /// ACK/NACK frame size on the wire.
        wire_bytes: u32,
    },
    /// Signalling-only acknowledgements consuming no bandwidth — the
    /// paper's RoCE baseline ("did not use ACKs … modelling the extreme
    /// case of all Reads", §5.2). Loss-recovery state still flows.
    Free,
}

impl AckMode {
    /// Wire size of one acknowledgement frame.
    pub fn bytes(self) -> u32 {
        match self {
            AckMode::PerPacket { wire_bytes } => wire_bytes,
            AckMode::Free => 0,
        }
    }
}

/// Named transport presets from the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransportKind {
    /// IRN: selective repeat + BDP-FC + RTO_low/high (§3).
    Irn,
    /// Current RoCE NICs: go-back-N, no BDP-FC (§2.1).
    Roce,
    /// IRN with go-back-N instead of SACKs (Figure 7's first ablation).
    IrnGoBackN,
    /// IRN without BDP-FC (Figure 7's second ablation).
    IrnNoBdpFc,
    /// iWARP-style full TCP stack (§4.6); see [`crate::tcp`].
    IwarpTcp,
}

/// Full transport-layer configuration for one experiment.
#[derive(Debug, Clone)]
pub struct TransportConfig {
    /// Loss recovery scheme.
    pub recovery: LossRecovery,
    /// Cap in-flight packets at the network BDP (§3.2). `None` disables
    /// (RoCE; Fig 7 ablation).
    pub bdp_cap: Option<u32>,
    /// MTU payload bytes per data packet (§3.2: typically 1 KB).
    pub mtu: u32,
    /// Header overhead added to every data packet (RoCEv2 stack:
    /// Eth+IP+UDP+BTH+ICRC ≈ 48 B in our accounting).
    pub data_header: u32,
    /// Extra per-packet header for IRN's OOO support (Fig 12: worst case
    /// +16 B RETH on every Write packet; 0 in the no-overhead model).
    pub extra_header: u32,
    /// Acknowledgement accounting.
    pub ack_mode: AckMode,
    /// Retransmission timeout when many packets are in flight, and the
    /// only timeout for RoCE (§4.1: ≈320 µs default).
    pub rto_high: Duration,
    /// Short timeout for ≤ N in-flight packets (§3.1: 100 µs).
    pub rto_low: Duration,
    /// The N threshold for RTO_low (§3.1: 3).
    pub rto_low_n: u32,
    /// Master switch: §4.1 disables timeouts entirely for RoCE-with-PFC
    /// to avoid spurious retransmissions.
    pub timeouts_enabled: bool,
    /// Congestion control algorithm.
    pub cc: CcKind,
    /// Line rate (pacing ceiling; flows start at line rate, §4.1).
    pub line_rate: Bandwidth,
    /// Delay between detecting a loss and the retransmission being
    /// available, modelling the PCIe fetch (§6.3: worst case 2 µs;
    /// zero in the no-overhead model).
    pub retx_fetch_delay: Duration,
    /// §7 reordering robustness: enter loss recovery only after this
    /// many NACKs arrive outside recovery. 1 reproduces the paper's
    /// default (every NACK signals loss); raise it when the fabric
    /// sprays packets over multiple paths and reorders benignly.
    pub nack_threshold: u32,
}

impl TransportConfig {
    /// IRN at the paper's default parameters (§4.1) for a 40 Gbps
    /// network with a 120 KB BDP.
    pub fn irn_default() -> TransportConfig {
        TransportConfig {
            recovery: LossRecovery::SelectiveRepeat,
            bdp_cap: Some(110),
            mtu: 1000,
            data_header: 48,
            extra_header: 0,
            ack_mode: AckMode::PerPacket { wire_bytes: 64 },
            rto_high: Duration::micros(320),
            rto_low: Duration::micros(100),
            rto_low_n: 3,
            timeouts_enabled: true,
            cc: CcKind::None,
            line_rate: Bandwidth::from_gbps(40),
            retx_fetch_delay: Duration::ZERO,
            nack_threshold: 1,
        }
    }

    /// Current-RoCE-NIC transport at the paper's defaults. `with_pfc`
    /// selects the §4.1 timeout policy (timeouts off with PFC, RTO_high
    /// without).
    pub fn roce_default(with_pfc: bool) -> TransportConfig {
        TransportConfig {
            recovery: LossRecovery::GoBackN,
            bdp_cap: None,
            ack_mode: AckMode::Free,
            timeouts_enabled: !with_pfc,
            ..TransportConfig::irn_default()
        }
    }

    /// Apply a named preset on top of IRN/RoCE defaults.
    pub fn preset(kind: TransportKind, with_pfc: bool) -> TransportConfig {
        match kind {
            TransportKind::Irn => TransportConfig::irn_default(),
            TransportKind::Roce => TransportConfig::roce_default(with_pfc),
            TransportKind::IrnGoBackN => TransportConfig {
                recovery: LossRecovery::GoBackN,
                ..TransportConfig::irn_default()
            },
            TransportKind::IrnNoBdpFc => TransportConfig {
                bdp_cap: None,
                ..TransportConfig::irn_default()
            },
            // The TCP stack has its own state machine; the shared fields
            // (MTU, headers, acks, line rate) still come from here.
            TransportKind::IwarpTcp => TransportConfig {
                recovery: LossRecovery::SelectiveRepeat,
                bdp_cap: None,
                ack_mode: AckMode::PerPacket { wire_bytes: 64 },
                ..TransportConfig::irn_default()
            },
        }
    }

    /// Wire bytes of the data packet carrying `payload` bytes.
    pub fn data_wire_bytes(&self, payload: u32) -> u32 {
        payload + self.data_header + self.extra_header
    }

    /// Number of data packets for a flow of `bytes`.
    pub fn packets_for(&self, bytes: u64) -> u32 {
        (bytes.max(1)).div_ceil(self.mtu as u64) as u32
    }

    /// Payload carried by packet `psn` of a flow of `bytes` (the last
    /// packet may be partial).
    pub fn payload_of(&self, bytes: u64, psn: u32) -> u32 {
        let total = self.packets_for(bytes);
        debug_assert!(psn < total);
        if psn + 1 < total {
            self.mtu
        } else {
            (bytes - (total as u64 - 1) * self.mtu as u64).max(1) as u32
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn irn_default_matches_paper() {
        let c = TransportConfig::irn_default();
        assert_eq!(c.bdp_cap, Some(110));
        assert_eq!(c.rto_high, Duration::micros(320));
        assert_eq!(c.rto_low, Duration::micros(100));
        assert_eq!(c.rto_low_n, 3);
        assert_eq!(c.ack_mode.bytes(), 64);
        assert_eq!(c.recovery, LossRecovery::SelectiveRepeat);
    }

    #[test]
    fn roce_default_matches_paper() {
        let with_pfc = TransportConfig::roce_default(true);
        assert!(!with_pfc.timeouts_enabled, "§4.1: timeouts off with PFC");
        assert_eq!(with_pfc.ack_mode.bytes(), 0, "§5.2: no ACK overhead");
        assert_eq!(with_pfc.bdp_cap, None);
        let without = TransportConfig::roce_default(false);
        assert!(without.timeouts_enabled, "§4.1: RTO_high without PFC");
    }

    #[test]
    fn packet_math() {
        let c = TransportConfig::irn_default();
        assert_eq!(c.packets_for(1), 1);
        assert_eq!(c.packets_for(1000), 1);
        assert_eq!(c.packets_for(1001), 2);
        assert_eq!(c.packets_for(3_000_000), 3000);
        assert_eq!(c.payload_of(1500, 0), 1000);
        assert_eq!(c.payload_of(1500, 1), 500);
        assert_eq!(c.data_wire_bytes(1000), 1048);
    }

    #[test]
    fn fig7_presets() {
        let gbn = TransportConfig::preset(TransportKind::IrnGoBackN, false);
        assert_eq!(gbn.recovery, LossRecovery::GoBackN);
        assert_eq!(gbn.bdp_cap, Some(110), "ablation keeps BDP-FC");
        assert_eq!(gbn.ack_mode.bytes(), 64, "ablations keep IRN's acks");
        let nofc = TransportConfig::preset(TransportKind::IrnNoBdpFc, false);
        assert_eq!(nofc.bdp_cap, None);
        assert_eq!(nofc.recovery, LossRecovery::SelectiveRepeat);
    }

    #[test]
    fn fig12_overhead_knobs() {
        let mut c = TransportConfig::irn_default();
        c.extra_header = 16;
        c.retx_fetch_delay = Duration::micros(2);
        assert_eq!(c.data_wire_bytes(1000), 1064);
    }
}
