//! # irn-transport — NIC transport logic (§3 of the paper)
//!
//! The protocols under evaluation in "Revisiting Network Support for
//! RDMA" (SIGCOMM 2018), as endhost state machines:
//!
//! * **RoCE** (§2.1): go-back-N loss recovery — the receiver discards
//!   out-of-order packets and NACKs; the sender rewinds. Timeouts use a
//!   single RTO_high and are disabled when PFC is on (§4.1).
//! * **IRN** (§3): selective retransmission driven by the SACK bitmap
//!   (reusing the *same* packet-processing modules `irn-rdma` implements
//!   and benches for Table 2), plus **BDP-FC**, the static
//!   bandwidth-delay-product cap on in-flight packets (§3.2), and the
//!   two-level RTO_low/RTO_high timeout scheme (§3.1).
//! * **Congestion control** (§4.2.4, optional for both transports):
//!   [`cc::dcqcn`] and [`cc::timely`] rate control, and window-based
//!   TCP-AIMD / DCTCP (§4.4.4) — all with the parameters the source
//!   papers specify (see [`cc::params`]).
//! * **iWARP's philosophy** (§4.6): a full TCP stack in the NIC,
//!   modelled as a NewReno sender/receiver pair ([`tcp`]) with slow
//!   start, fast retransmit/recovery and RTO estimation.
//!
//! [`sender::SenderQp`] / [`receiver::ReceiverQp`] expose a poll-based
//! interface: the embedding simulation asks for the next packet when the
//! NIC port is free ([`nic::HostNic`] arbitrates control-priority and
//! per-QP round-robin like the ConnectX model in §4.1), and feeds
//! arriving packets and timer expirations back in. Everything is
//! clock-explicit and deterministic.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cc;
pub mod config;
pub mod nic;
pub mod receiver;
pub mod sender;
pub mod tcp;

pub use config::{AckMode, LossRecovery, TransportConfig, TransportKind};
pub use nic::{HostNic, NicPoll};
pub use receiver::{ReceiverQp, RecvOutcome};
pub use sender::{SenderPoll, SenderQp, TimerCmd};
