//! The sending half of a flow's queue pair.
//!
//! One [`SenderQp`] drives one flow (§4.1's unit of transfer). It
//! composes four orthogonal mechanisms, mirroring the paper's factoring:
//!
//! 1. **Loss recovery** — either IRN's SACK-driven selective repeat
//!    (§3.1), executed by the *same* `irn-rdma` packet-processing
//!    modules the paper synthesizes for Table 2, or RoCE's go-back-N
//!    rewind (§2.1);
//! 2. **BDP-FC** — the static in-flight cap (§3.2);
//! 3. **Congestion control** — optional rate pacing (Timely/DCQCN) or
//!    window bounding (AIMD/DCTCP),§4.2.4/§4.4.4;
//! 4. **Timeouts** — IRN's RTO_low/RTO_high split (§3.1) or RoCE's
//!    single RTO_high; disabled for RoCE-with-PFC (§4.1).
//!
//! The interface is poll-based: the NIC asks for the next packet when
//! the uplink frees ([`SenderQp::poll`]); ACK/NACK/CNP arrivals and
//! timer expirations are fed in; timer arm/cancel requests are drained
//! via [`SenderQp::take_timer_request`] and applied by the embedding
//! simulation to its scheduler's cancellable timer for this flow — a
//! cancelled deadline is removed in O(1) and [`SenderQp::on_timer`] is
//! only ever invoked for live expiries (no generation filtering).

use irn_net::{FlowId, HostId, Packet, PacketKind};
use irn_rdma::modules::{self, QpContext, TimeoutOut, TxFreeOut};
use irn_sim::{Duration, Time};

use crate::cc::{CcKind, CcState};
use crate::config::{LossRecovery, TransportConfig};

/// Result of asking the sender for its next packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SenderPoll {
    /// Transmit this packet now.
    Packet(Packet),
    /// Nothing until the given time (pacing gap or retransmission-fetch
    /// delay); poll again then.
    Wait(Time),
    /// Window/BDP-FC full, or all data sent: an ACK must arrive before
    /// anything more can happen.
    Blocked,
    /// Flow fully acknowledged; the QP can be torn down.
    Done,
}

/// A retransmission-timer request the embedding simulation must apply
/// to its scheduler (one cancellable timer per flow).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TimerCmd {
    /// Arm (or re-arm) the flow's timer to expire at the given absolute
    /// time, superseding any pending deadline.
    Arm(Time),
    /// Cancel the pending deadline; the expiry must never be delivered.
    Cancel,
}

impl TimerCmd {
    /// The armed deadline, if this is an arm request (test helper).
    pub fn deadline(self) -> Option<Time> {
        match self {
            TimerCmd::Arm(t) => Some(t),
            TimerCmd::Cancel => None,
        }
    }
}

/// Per-flow sender statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SenderStats {
    /// Data packets transmitted (including retransmissions).
    pub sent: u64,
    /// Retransmitted packets.
    pub retransmitted: u64,
    /// NACKs received.
    pub nacks: u64,
    /// Timeouts fired.
    pub timeouts: u64,
    /// CNPs received.
    pub cnps: u64,
}

/// The sending half of one flow.
#[derive(Debug)]
pub struct SenderQp {
    cfg: TransportConfig,
    flow: FlowId,
    src: HostId,
    dst: HostId,
    size_bytes: u64,
    total_packets: u32,
    /// Transport context (SACK bitmap, cumulative state, recovery FSM).
    ctx: QpContext,
    /// Go-back-N transmit cursor (rewinds on NACK); mirrors
    /// `ctx.next_to_send` in selective-repeat mode.
    gbn_cursor: u32,
    /// Highest sequence ever transmitted + 1 (for retransmit marking).
    highest_sent: u32,
    /// Congestion-control state.
    cc: CcState,
    /// Pacing: earliest next transmission.
    next_allowed: Time,
    /// Retransmissions become available at this time (PCIe fetch model,
    /// §6.3).
    retx_ready_at: Time,
    /// Pending head retransmission forced by a timeout (§3.1: timeout
    /// retransmits from the cumulative ack even without SACKs).
    force_head_retx: bool,
    /// Deadline mirror of the flow's scheduler timer (`Some` while an
    /// expiry is pending out in the simulation).
    timer_deadline: Option<Time>,
    pending_timer: Option<TimerCmd>,
    /// Last acknowledgement progress; timer expiries earlier than
    /// `last_progress + RTO` re-arm instead of firing (the standard
    /// lazy-reset optimization — avoids scheduling an event per ACK).
    last_progress: Time,
    /// In a loss episode for window-CC purposes (one `on_loss` per
    /// episode).
    cc_loss_reported: bool,
    /// NACKs seen outside recovery (for §7's reordering threshold).
    nacks_outside_recovery: u32,
    /// Last congestion window emitted as a `cc.cwnd` trace event; only
    /// touched while tracing is enabled, so behaviour is identical when
    /// it is off.
    last_traced_cwnd: Option<u32>,
    done: bool,
    /// Counters.
    pub stats: SenderStats,
}

impl SenderQp {
    /// Create the sender for a flow of `size_bytes` from `src` to `dst`,
    /// starting (at line rate, §4.1) at time `now`.
    pub fn new(
        cfg: TransportConfig,
        flow: FlowId,
        src: HostId,
        dst: HostId,
        size_bytes: u64,
        cc_kind: CcKind,
        now: Time,
    ) -> SenderQp {
        let total_packets = cfg.packets_for(size_bytes);
        let bitmap_bits = cfg
            .bdp_cap
            .unwrap_or(0)
            .max(256)
            .max(total_packets.min(4096));
        let cc = CcState::new(cc_kind, cfg.line_rate, cfg.bdp_cap.unwrap_or(110), now);
        SenderQp {
            flow,
            src,
            dst,
            size_bytes,
            total_packets,
            ctx: QpContext::new(bitmap_bits as usize),
            gbn_cursor: 0,
            highest_sent: 0,
            cc,
            next_allowed: Time::ZERO,
            retx_ready_at: Time::ZERO,
            force_head_retx: false,
            timer_deadline: None,
            pending_timer: None,
            last_progress: now,
            cc_loss_reported: false,
            nacks_outside_recovery: 0,
            last_traced_cwnd: None,
            done: false,
            cfg,
            stats: SenderStats::default(),
        }
    }

    /// The flow this sender drives.
    pub fn flow(&self) -> FlowId {
        self.flow
    }

    /// Total data packets in the flow.
    pub fn total_packets(&self) -> u32 {
        self.total_packets
    }

    /// Flow size in payload bytes.
    pub fn size_bytes(&self) -> u64 {
        self.size_bytes
    }

    /// True once every packet is cumulatively acknowledged.
    pub fn is_done(&self) -> bool {
        self.done
    }

    /// Packets currently unacknowledged.
    pub fn in_flight(&self) -> u32 {
        self.ctx.in_flight()
    }

    /// Effective window: the tightest of BDP-FC (§3.2) and the CC
    /// window (§4.4.4). `u32::MAX` when unbounded (plain RoCE).
    fn window(&self) -> u32 {
        let bdp = self.cfg.bdp_cap.unwrap_or(u32::MAX);
        let cwnd = self.cc.cwnd().unwrap_or(u32::MAX);
        bdp.min(cwnd)
    }

    /// Ask for the next packet to put on the wire.
    #[inline]
    pub fn poll(&mut self, now: Time) -> SenderPoll {
        if self.done {
            return SenderPoll::Done;
        }
        // Pacing gate (rate-based CC).
        if now < self.next_allowed {
            return SenderPoll::Wait(self.next_allowed);
        }

        // Timeout-forced head retransmission takes priority.
        if self.force_head_retx {
            if now < self.retx_ready_at {
                return SenderPoll::Wait(self.retx_ready_at);
            }
            self.force_head_retx = false;
            let psn = self.ctx.cum_acked;
            // Only an *outstanding* packet may go out through the retx
            // path. A timeout can race a fully acknowledged window
            // (in-flight 0 with unsent data still gated by pacing);
            // head-"retransmitting" psn == next_to_send here would ship
            // new data without advancing the send cursor, and the ack
            // for it would push cum_acked past next_to_send —
            // underflowing in_flight() and wedging the window
            // accounting. Fall through to regular transmission instead.
            if psn < self.ctx.next_to_send {
                return SenderPoll::Packet(self.make_packet(now, psn));
            }
        }

        match self.cfg.recovery {
            LossRecovery::SelectiveRepeat => self.poll_sack(now),
            LossRecovery::GoBackN => self.poll_gbn(now),
        }
    }

    fn poll_sack(&mut self, now: Time) -> SenderPoll {
        let can_send_new =
            self.ctx.in_flight() < self.window() && self.ctx.next_to_send < self.total_packets;
        match modules::tx_free(&mut self.ctx, can_send_new) {
            TxFreeOut::Retransmit { psn } => {
                if now < self.retx_ready_at {
                    // Not fetched yet (§6.3): undo the cursor advance and
                    // come back when the DMA completes.
                    self.ctx.retx_cursor = psn;
                    return SenderPoll::Wait(self.retx_ready_at);
                }
                SenderPoll::Packet(self.make_packet(now, psn))
            }
            TxFreeOut::SendNew { psn } => SenderPoll::Packet(self.make_packet(now, psn)),
            TxFreeOut::Idle => SenderPoll::Blocked,
        }
    }

    fn poll_gbn(&mut self, now: Time) -> SenderPoll {
        if self.gbn_cursor >= self.total_packets {
            return SenderPoll::Blocked;
        }
        if self.gbn_cursor.saturating_sub(self.ctx.cum_acked) >= self.window() {
            return SenderPoll::Blocked;
        }
        if self.gbn_cursor < self.highest_sent && now < self.retx_ready_at {
            return SenderPoll::Wait(self.retx_ready_at);
        }
        let psn = self.gbn_cursor;
        self.gbn_cursor += 1;
        // Keep the shared context's send cursor at the high-water mark so
        // in-flight accounting stays correct across rewinds.
        if self.gbn_cursor > self.ctx.next_to_send {
            self.ctx.next_to_send = self.gbn_cursor;
        }
        SenderPoll::Packet(self.make_packet(now, psn))
    }

    fn make_packet(&mut self, now: Time, psn: u32) -> Packet {
        let payload = self.cfg.payload_of(self.size_bytes, psn);
        let wire = self.cfg.data_wire_bytes(payload);
        let mut pkt = Packet::data(self.flow, self.src, self.dst, psn, wire);
        pkt.sent_at = now;
        pkt.is_last = psn + 1 == self.total_packets;
        pkt.is_retx = psn < self.highest_sent;
        if pkt.is_retx {
            self.stats.retransmitted += 1;
        }
        self.highest_sent = self.highest_sent.max(psn + 1);
        self.stats.sent += 1;

        // Pacing: open the next slot per the current rate.
        if let Some(rate) = self.cc.pacing_rate_mbps(now) {
            let gap_ns = (wire as f64 * 8000.0 / rate).ceil() as u64;
            self.next_allowed = now + Duration::nanos(gap_ns);
        }
        self.cc.on_send(now, wire as u64);

        // Make sure a retransmission timer is running.
        if self.cfg.timeouts_enabled && self.timer_deadline.is_none() {
            self.last_progress = now;
            self.arm_timer(now);
        }
        pkt
    }

    /// Pick the §3.1 timeout: RTO_low only when few packets are in
    /// flight (and only for IRN-style recovery).
    fn arm_timer(&mut self, now: Time) {
        let low = self.cfg.recovery == LossRecovery::SelectiveRepeat
            && self.ctx.in_flight() < self.cfg.rto_low_n;
        let dur = if low {
            self.cfg.rto_low
        } else {
            self.cfg.rto_high
        };
        self.ctx.rto_low_armed = low;
        self.timer_deadline = Some(now + dur);
        self.pending_timer = Some(TimerCmd::Arm(now + dur));
    }

    /// Drain the timer request produced by the last call, if any. The
    /// embedding simulation applies it to this flow's scheduler timer.
    pub fn take_timer_request(&mut self) -> Option<TimerCmd> {
        self.pending_timer.take()
    }

    /// Feed an arriving ACK or NACK. Returns `true` if the flow just
    /// completed (all data acknowledged).
    pub fn on_ack_packet(&mut self, now: Time, pkt: &Packet) -> bool {
        debug_assert!(matches!(pkt.kind, PacketKind::Ack | PacketKind::Nack));
        let is_nack = pkt.kind == PacketKind::Nack;
        let cum = pkt.psn;
        let sack = is_nack.then_some(pkt.sack);
        if is_nack {
            self.stats.nacks += 1;
        }

        // §7 reordering robustness: with a threshold > 1, the first
        // NACKs outside recovery record their SACK information but do
        // not trigger retransmission — spraying fabrics NACK benignly.
        let mut effective_nack = is_nack;
        if is_nack && self.cfg.recovery == LossRecovery::SelectiveRepeat && !self.ctx.in_recovery {
            self.nacks_outside_recovery += 1;
            if self.nacks_outside_recovery < self.cfg.nack_threshold {
                effective_nack = false;
            }
        }
        let out = modules::receive_ack(&mut self.ctx, cum, sack, effective_nack);

        if out.entered_recovery || out.exited_recovery {
            self.nacks_outside_recovery = 0;
        }
        if out.entered_recovery {
            self.retx_ready_at = now + self.cfg.retx_fetch_delay;
            self.report_cc_loss(now);
        }
        if out.exited_recovery {
            self.cc_loss_reported = false;
        }

        match self.cfg.recovery {
            LossRecovery::SelectiveRepeat => {}
            LossRecovery::GoBackN => {
                if is_nack {
                    // §2.1: retransmit all packets sent after the last
                    // acknowledged one.
                    if cum < self.gbn_cursor {
                        self.gbn_cursor = cum.max(self.ctx.cum_acked);
                        self.retx_ready_at = now + self.cfg.retx_fetch_delay;
                        self.report_cc_loss(now);
                    }
                } else if cum > self.gbn_cursor {
                    self.gbn_cursor = cum;
                }
            }
        }

        // Congestion-control feedback: RTT echo + ECN echo.
        let rtt = now.saturating_since(pkt.sent_at);
        self.cc.on_ack(now, out.newly_acked, rtt, pkt.ecn_echo);
        self.trace_cwnd(now);

        // Timer discipline: progress re-arms, completion cancels (the
        // scheduler removes the pending deadline in O(1) — it will
        // never pop).
        if self.ctx.cum_acked >= self.total_packets {
            self.pending_timer = self.timer_deadline.take().map(|_| TimerCmd::Cancel);
            self.done = true;
            return true;
        }
        if out.newly_acked > 0 {
            // Lazy timer reset: the expiry handler defers against this.
            self.last_progress = now;
            if self.cfg.timeouts_enabled && self.timer_deadline.is_none() {
                self.arm_timer(now);
            }
        }
        false
    }

    fn report_cc_loss(&mut self, now: Time) {
        if !self.cc_loss_reported {
            self.cc_loss_reported = true;
            self.cc.on_loss(now);
            self.trace_cwnd(now);
        }
    }

    /// Emit a `cc.cwnd` trace event when the congestion window changed
    /// since the last one. No-op (and no state change) unless tracing is
    /// live on this thread, so determinism with tracing off is untouched.
    fn trace_cwnd(&mut self, now: Time) {
        if !irn_telemetry::enabled() {
            return;
        }
        if let Some(cwnd) = self.cc.cwnd() {
            if self.last_traced_cwnd != Some(cwnd) {
                self.last_traced_cwnd = Some(cwnd);
                irn_telemetry::trace!(
                    "cc.cwnd",
                    t = now.as_nanos(),
                    flow = self.flow.0,
                    host = self.src.0,
                    cwnd = cwnd,
                );
            }
        }
    }

    /// Feed a DCQCN congestion-notification packet.
    pub fn on_cnp(&mut self, now: Time) {
        self.stats.cnps += 1;
        self.cc.on_cnp(now);
        self.trace_cwnd(now);
    }

    /// The flow's (live) retransmission timer expired. The embedding
    /// simulation's scheduler guarantees cancelled or superseded
    /// deadlines never reach here. Returns `true` if the sender acted
    /// (fired or re-armed) — i.e. a follow-up poll/drain is warranted.
    pub fn on_timer(&mut self, now: Time) -> bool {
        if self.done {
            return false;
        }
        self.timer_deadline = None; // the pending expiry was consumed
        if self.ctx.in_flight() == 0 && self.ctx.next_to_send >= self.total_packets {
            return false; // nothing outstanding; quiescent
        }
        // Lazy reset: if progress happened since this expiry was armed,
        // push the deadline out instead of firing.
        let rto_now = if self.cfg.recovery == LossRecovery::SelectiveRepeat
            && self.ctx.in_flight() < self.cfg.rto_low_n
        {
            self.cfg.rto_low
        } else {
            self.cfg.rto_high
        };
        let effective_deadline = self.last_progress + rto_now;
        if effective_deadline > now {
            self.ctx.rto_low_armed = rto_now == self.cfg.rto_low;
            self.timer_deadline = Some(effective_deadline);
            self.pending_timer = Some(TimerCmd::Arm(effective_deadline));
            return true;
        }
        match self.cfg.recovery {
            LossRecovery::SelectiveRepeat => {
                match modules::timeout(&mut self.ctx, self.cfg.rto_low_n) {
                    TimeoutOut::ExtendToHigh => {
                        // Re-arm with the long timeout; no action (§6.2).
                        self.ctx.rto_low_armed = false;
                        self.timer_deadline = Some(now + self.cfg.rto_high);
                        self.pending_timer = Some(TimerCmd::Arm(now + self.cfg.rto_high));
                        return true;
                    }
                    TimeoutOut::Fired { .. } => {
                        self.stats.timeouts += 1;
                        self.force_head_retx = true;
                        self.retx_ready_at = now + self.cfg.retx_fetch_delay;
                        self.report_cc_loss(now);
                    }
                }
            }
            LossRecovery::GoBackN => {
                self.stats.timeouts += 1;
                self.gbn_cursor = self.ctx.cum_acked;
                self.retx_ready_at = now + self.cfg.retx_fetch_delay;
                self.report_cc_loss(now);
            }
        }
        self.last_progress = now;
        self.arm_timer(now);
        true
    }

    /// Expose the congestion-control state (tests, ablation metrics).
    pub fn cc(&self) -> &CcState {
        &self.cc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    fn irn_sender(size: u64) -> SenderQp {
        SenderQp::new(
            TransportConfig::irn_default(),
            FlowId(0),
            HostId(0),
            HostId(1),
            size,
            CcKind::None,
            Time::ZERO,
        )
    }

    fn roce_sender(size: u64, with_pfc: bool) -> SenderQp {
        SenderQp::new(
            TransportConfig::roce_default(with_pfc),
            FlowId(0),
            HostId(0),
            HostId(1),
            size,
            CcKind::None,
            Time::ZERO,
        )
    }

    fn ack(cum: u32, sent_at: Time) -> Packet {
        let mut p = Packet::control(PacketKind::Ack, FlowId(0), HostId(1), HostId(0), cum, 64);
        p.sent_at = sent_at;
        p
    }

    fn nack(cum: u32, sack: u32, sent_at: Time) -> Packet {
        let mut p = Packet::control(PacketKind::Nack, FlowId(0), HostId(1), HostId(0), cum, 64);
        p.sack = sack;
        p.sent_at = sent_at;
        p
    }

    fn drain(s: &mut SenderQp, now: Time) -> Vec<Packet> {
        let mut pkts = Vec::new();
        while let SenderPoll::Packet(p) = s.poll(now) {
            pkts.push(p);
        }
        pkts
    }

    #[test]
    fn bdp_fc_caps_initial_burst() {
        // 1 MB flow = 1000 packets, but only 110 may be outstanding.
        let mut s = irn_sender(1_000_000);
        let burst = drain(&mut s, Time::ZERO);
        assert_eq!(burst.len(), 110, "§3.2: BDP cap");
        assert_eq!(s.poll(Time::ZERO), SenderPoll::Blocked);
        // ACKs open the window one-for-one.
        s.on_ack_packet(Time::from_nanos(100), &ack(5, Time::ZERO));
        let more = drain(&mut s, Time::from_nanos(100));
        assert_eq!(more.len(), 5);
    }

    #[test]
    fn roce_has_no_bdp_cap() {
        let mut s = roce_sender(1_000_000, true);
        let burst = drain(&mut s, Time::ZERO);
        assert_eq!(burst.len(), 1000, "RoCE blasts the whole message");
    }

    #[test]
    fn packets_have_correct_sizes_and_last_flag() {
        let mut s = irn_sender(2_500);
        let pkts = drain(&mut s, Time::ZERO);
        assert_eq!(pkts.len(), 3);
        assert_eq!(pkts[0].wire_bytes, 1048);
        assert_eq!(pkts[2].wire_bytes, 500 + 48);
        assert!(pkts[2].is_last);
        assert!(!pkts[0].is_last);
    }

    #[test]
    fn sack_recovery_retransmits_only_losses() {
        let mut s = irn_sender(10_000); // 10 packets
        let t0 = Time::ZERO;
        drain(&mut s, t0);
        // Receiver got 0,1; 2 lost; 3..9 arrived (SACKed).
        let t1 = Time::from_nanos(10_000);
        s.on_ack_packet(t1, &ack(2, t0));
        for sacked in 3..10 {
            s.on_ack_packet(t1, &nack(2, sacked, t0));
        }
        let retx = drain(&mut s, t1);
        assert_eq!(retx.len(), 1, "only the lost packet retransmits");
        assert_eq!(retx[0].psn, 2);
        assert!(retx[0].is_retx);
        // Ack for the retransmission completes the flow.
        let done = s.on_ack_packet(Time::from_nanos(20_000), &ack(10, t1));
        assert!(done);
        assert!(s.is_done());
        assert_eq!(s.stats.retransmitted, 1);
    }

    #[test]
    fn gbn_rewinds_everything_after_loss() {
        let mut s = roce_sender(10_000, false);
        let t0 = Time::ZERO;
        let first = drain(&mut s, t0);
        assert_eq!(first.len(), 10);
        // Receiver NACKs at expected=2 (packet 2 lost).
        let t1 = Time::from_nanos(10_000);
        s.on_ack_packet(t1, &nack(2, 3, t0));
        let retx = drain(&mut s, t1);
        // Go-back-N: retransmits 2..9 (8 packets).
        assert_eq!(retx.len(), 8, "§2.1: all packets after the loss resend");
        assert_eq!(retx[0].psn, 2);
        assert!(retx.iter().all(|p| p.is_retx));
        assert_eq!(s.stats.retransmitted, 8);
    }

    #[test]
    fn timeout_forces_head_retransmission() {
        let mut s = irn_sender(2_000); // 2 packets: in-flight 2 < N=3 → RTO_low
        let pkts = drain(&mut s, Time::ZERO);
        assert_eq!(pkts.len(), 2);
        let req = s.take_timer_request().expect("timer armed on send");
        let deadline = req.deadline().expect("arm, not cancel");
        assert_eq!(deadline, Time::ZERO + Duration::micros(100), "RTO_low");
        assert!(s.on_timer(deadline));
        assert_eq!(s.stats.timeouts, 1);
        let retx = drain(&mut s, deadline);
        assert_eq!(retx[0].psn, 0, "§3.1: timeout retransmits the cum. ack");
        assert!(retx[0].is_retx);
    }

    #[test]
    fn rto_low_extends_to_high_when_flight_grows() {
        let mut s = irn_sender(200_000); // 200 packets
        drain(&mut s, Time::ZERO);
        // Timer armed at the first send while in-flight was 0 → RTO_low.
        let deadline = s.take_timer_request().unwrap().deadline().unwrap();
        assert_eq!(deadline, Time::ZERO + Duration::micros(100));
        // At expiry 110 packets are in flight (≥ N): must extend to
        // RTO_high (measured from the arming point), not fire.
        assert!(s.on_timer(deadline));
        assert_eq!(s.stats.timeouts, 0, "no spurious timeout");
        let req2 = s.take_timer_request().expect("re-armed with RTO_high");
        assert_eq!(
            req2.deadline().unwrap(),
            Time::ZERO + Duration::micros(320),
            "extended to RTO_high"
        );
    }

    #[test]
    fn ack_progress_defers_timeout() {
        let mut s = irn_sender(5_000);
        drain(&mut s, Time::ZERO);
        let d1 = s.take_timer_request().unwrap().deadline().unwrap();
        // Progress at 5 µs: the expiry at the original deadline must
        // defer (re-arm), not fire a timeout.
        s.on_ack_packet(Time::ZERO + Duration::micros(5), &ack(2, Time::ZERO));
        assert!(s.on_timer(d1), "live but deferred");
        assert_eq!(s.stats.timeouts, 0);
        let d2 = s
            .take_timer_request()
            .expect("deferred re-arm")
            .deadline()
            .expect("arm");
        assert!(d2 > d1);
        // The deferred deadline eventually fires for real.
        assert!(s.on_timer(d2));
        assert_eq!(s.stats.timeouts, 1);
    }

    #[test]
    fn completion_requests_timer_cancel() {
        let mut s = irn_sender(2_000);
        drain(&mut s, Time::ZERO);
        assert!(matches!(
            s.take_timer_request(),
            Some(TimerCmd::Arm(_)),
            // armed on first send
        ));
        assert!(s.on_ack_packet(Time::from_nanos(5_000), &ack(2, Time::ZERO)));
        assert_eq!(
            s.take_timer_request(),
            Some(TimerCmd::Cancel),
            "completion must cancel the pending deadline in the scheduler"
        );
    }

    #[test]
    fn timeouts_disabled_for_roce_with_pfc() {
        let mut s = roce_sender(5_000, true);
        drain(&mut s, Time::ZERO);
        assert!(s.take_timer_request().is_none(), "§4.1: no timers with PFC");
    }

    #[test]
    fn pacing_spaces_packets_at_cc_rate() {
        let cfg = TransportConfig::irn_default();
        let mut s = SenderQp::new(
            cfg,
            FlowId(0),
            HostId(0),
            HostId(1),
            10_000,
            CcKind::Timely,
            Time::ZERO,
        );
        // Line rate 40 Gbps: 1048 B gap = 1048*8/40000 µs ≈ 210 ns.
        let SenderPoll::Packet(_) = s.poll(Time::ZERO) else {
            panic!()
        };
        match s.poll(Time::ZERO) {
            SenderPoll::Wait(t) => {
                assert_eq!(t, Time::from_nanos(210), "pacing gap at line rate")
            }
            other => panic!("expected pacing wait, got {other:?}"),
        }
        // At the allowed time the next packet flows.
        assert!(matches!(
            s.poll(Time::from_nanos(210)),
            SenderPoll::Packet(_)
        ));
    }

    #[test]
    fn cnp_cuts_dcqcn_rate_and_pacing_slows() {
        let cfg = TransportConfig::irn_default();
        let mut s = SenderQp::new(
            cfg,
            FlowId(0),
            HostId(0),
            HostId(1),
            100_000,
            CcKind::Dcqcn,
            Time::ZERO,
        );
        let SenderPoll::Packet(_) = s.poll(Time::ZERO) else {
            panic!()
        };
        s.on_cnp(Time::from_nanos(50));
        // Pull the next packet at its allowed time, then measure the gap.
        let t1 = match s.poll(Time::from_nanos(50)) {
            SenderPoll::Wait(t) => t,
            SenderPoll::Packet(_) => Time::from_nanos(50),
            other => panic!("{other:?}"),
        };
        let SenderPoll::Packet(_) = s.poll(t1) else {
            panic!()
        };
        match s.poll(t1) {
            SenderPoll::Wait(t2) => {
                let gap = t2.since(t1);
                assert!(
                    gap >= Duration::nanos(400),
                    "post-CNP gap must reflect the halved rate, got {gap}"
                );
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn retx_fetch_delay_postpones_retransmissions_only() {
        let mut cfg = TransportConfig::irn_default();
        cfg.retx_fetch_delay = Duration::micros(2);
        let mut s = SenderQp::new(
            cfg,
            FlowId(0),
            HostId(0),
            HostId(1),
            10_000,
            CcKind::None,
            Time::ZERO,
        );
        drain(&mut s, Time::ZERO);
        let t1 = Time::from_nanos(10_000);
        s.on_ack_packet(t1, &nack(2, 5, Time::ZERO));
        match s.poll(t1) {
            SenderPoll::Wait(t) => assert_eq!(t, t1 + Duration::micros(2)),
            other => panic!("retransmission must wait for the fetch: {other:?}"),
        }
        let retx = drain(&mut s, t1 + Duration::micros(2));
        assert_eq!(retx[0].psn, 2);
    }

    #[test]
    fn aimd_window_halves_on_loss() {
        let cfg = TransportConfig::irn_default();
        let mut s = SenderQp::new(
            cfg,
            FlowId(0),
            HostId(0),
            HostId(1),
            1_000_000,
            CcKind::Aimd,
            Time::ZERO,
        );
        let burst = drain(&mut s, Time::ZERO);
        assert_eq!(burst.len(), 110, "min(BDP cap, cwnd)");
        let t1 = Time::from_nanos(10_000);
        s.on_ack_packet(t1, &nack(0, 1, Time::ZERO));
        // After halving, the window is 55: with 110 in flight the sender
        // can only retransmit the hole, not send new data.
        let pkts = drain(&mut s, t1);
        assert!(pkts.iter().all(|p| p.is_retx));
    }

    #[test]
    fn done_flow_reports_done() {
        let mut s = irn_sender(1_000);
        drain(&mut s, Time::ZERO);
        assert!(s.on_ack_packet(Time::from_nanos(5_000), &ack(1, Time::ZERO)));
        assert_eq!(s.poll(Time::from_nanos(6_000)), SenderPoll::Done);
    }

    #[test]
    fn single_packet_flow_uses_rto_low() {
        let mut s = irn_sender(100);
        let pkts = drain(&mut s, Time::ZERO);
        assert_eq!(pkts.len(), 1);
        let req = s.take_timer_request().unwrap();
        assert_eq!(
            req.deadline().unwrap(),
            Time::ZERO + Duration::micros(100),
            "§3.1: short messages recover via RTO_low"
        );
    }
}
