//! Key-value-store RPC tail latency — the workload that motivates §4.4.2.
//!
//! RDMA key-value stores (FaRM [21], HERD [25]) issue single-packet
//! requests whose *tail* latency is the product metric. This example
//! floods a fat-tree with the paper's heavy-tailed mix — where 50 % of
//! flows are single-packet RPCs racing past multi-MB storage flows — and
//! compares the RPC tail under three designs:
//!
//! * RoCE + PFC: RPCs wait behind PFC-paused queues (HoL blocking);
//! * IRN + PFC: the pauses still bite;
//! * IRN without PFC: an RPC loss costs one RTO_low (100 µs), not a
//!   fabric-wide pause.
//!
//! ```text
//! cargo run --release --example kv_store_rpc
//! ```

use irn_core::transport::config::TransportKind;
use irn_core::{run, ExperimentConfig};

fn main() {
    let flows = 600;
    println!("RPC tail latency under background storage traffic (quick fat-tree, 70% load)\n");
    println!(
        "{:<12} {:>10} {:>10} {:>10} {:>12}",
        "config", "p90", "p99", "p99.9", "completed"
    );

    for (name, transport, pfc) in [
        ("RoCE+PFC", TransportKind::Roce, true),
        ("IRN+PFC", TransportKind::Irn, true),
        ("IRN", TransportKind::Irn, false),
    ] {
        let r = run(ExperimentConfig::quick(flows)
            .with_transport(transport)
            .with_pfc(pfc));
        // Figure 8's population: single-packet messages only.
        let rpcs = r.metrics.single_packet_messages();
        println!(
            "{:<12} {:>10} {:>10} {:>10} {:>12}",
            name,
            rpcs.percentile_fct(0.90),
            rpcs.percentile_fct(0.99),
            rpcs.percentile_fct(0.999),
            rpcs.len(),
        );
    }
    println!(
        "\nIRN's RTO_low recovery keeps the RPC tail short without a lossless fabric (§4.4.2)."
    );
}
