//! Storage/backup traffic — Table 6's uniform 500 KB–5 MB workload.
//!
//! The paper's robustness study includes a pure storage-style pattern:
//! every flow 500 KB–5 MB, uniformly distributed, "representing a
//! scenario where RDMA is used only for storage or background tasks".
//! Throughput-sensitive flows stress loss recovery differently from
//! RPCs: a single go-back-N rewind resends megabytes.
//!
//! ```text
//! cargo run --release --example storage_backup
//! ```

use irn_core::transport::config::TransportKind;
use irn_core::workload::SizeDistribution;
use irn_core::{run, ExperimentConfig, TrafficModel};

fn main() {
    let base = ExperimentConfig::quick(80).with_traffic(TrafficModel::Poisson {
        load: 0.7,
        sizes: SizeDistribution::Uniform500KbTo5Mb,
        flow_count: 80,
    });

    println!("Storage traffic: uniform 500KB-5MB flows at 70% load (Table 6 pattern)\n");
    println!(
        "{:<14} {:>13} {:>12} {:>12} {:>8} {:>14}",
        "config", "avg slowdown", "avg FCT", "p99 FCT", "drops", "retransmitted"
    );

    for (name, transport, pfc) in [
        ("IRN", TransportKind::Irn, false),
        ("IRN+PFC", TransportKind::Irn, true),
        ("RoCE+PFC", TransportKind::Roce, true),
        ("RoCE no PFC", TransportKind::Roce, false),
    ] {
        let r = run(base.clone().with_transport(transport).with_pfc(pfc));
        println!(
            "{:<14} {:>13.2} {:>12} {:>12} {:>8} {:>14}",
            name,
            r.summary.avg_slowdown,
            r.summary.avg_fct,
            r.summary.p99_fct,
            r.fabric.buffer_drops,
            r.transport.retransmitted,
        );
    }
    println!("\nSelective retransmission pays off most for big flows: a RoCE rewind");
    println!("resends the whole window, an IRN recovery resends only the holes (§4.3).");
}
