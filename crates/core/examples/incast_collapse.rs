//! Incast — the partition-aggregate pattern of §4.4.3.
//!
//! M servers answer one aggregator simultaneously (striped response).
//! This is PFC's *best case*: every paused flow really is causing
//! congestion, so there is no innocent-bystander HoL blocking. The
//! paper's finding: IRN without PFC still matches RoCE with PFC to
//! within a few percent, and with cross-traffic IRN wins outright.
//!
//! ```text
//! cargo run --release --example incast_collapse
//! ```

use irn_core::transport::config::TransportKind;
use irn_core::{run, ExperimentConfig, TrafficModel};

fn main() {
    println!("Incast: striped response to one aggregator (§4.4.3)\n");
    println!(
        "{:<4} {:>16} {:>16} {:>9}",
        "M", "IRN RCT", "RoCE+PFC RCT", "ratio"
    );
    for m in [4usize, 8, 12] {
        let workload = TrafficModel::Incast {
            m,
            total_bytes: 15_000_000, // 15 MB striped (quick-scale 150 MB)
        };
        let irn = run(ExperimentConfig::quick(m)
            .with_traffic(workload.clone())
            .with_transport(TransportKind::Irn)
            .with_pfc(false));
        let roce = run(ExperimentConfig::quick(m)
            .with_traffic(workload)
            .with_transport(TransportKind::Roce)
            .with_pfc(true));
        let (i, r) = (irn.rct(), roce.rct());
        println!(
            "{:<4} {:>16} {:>16} {:>9.3}",
            m,
            i,
            r,
            i.as_nanos() as f64 / r.as_nanos() as f64
        );
    }
    println!("\nLosing PFC costs almost nothing even in PFC's best-case scenario —");
    println!("BDP-FC caps each sender and SACK recovery absorbs the burst losses.");
}
