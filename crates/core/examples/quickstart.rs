//! Quickstart: the paper's headline comparison in ~40 lines.
//!
//! Runs IRN (without PFC) and RoCE (with PFC) over a small fat-tree with
//! the §4.1 heavy-tailed workload and prints the three §4.1 metrics —
//! a miniature Figure 1.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use irn_core::transport::config::TransportKind;
use irn_core::{run, ExperimentConfig};

fn main() {
    // 16-host fat-tree, 400 Poisson flows at 70% load (quick scale;
    // swap in `ExperimentConfig::paper_default` for the 54-host setup).
    let flows = 400;

    println!("Running IRN (no PFC) ...");
    let irn = run(ExperimentConfig::quick(flows)
        .with_transport(TransportKind::Irn)
        .with_pfc(false));

    println!("Running RoCE (with PFC) ...");
    let roce = run(ExperimentConfig::quick(flows)
        .with_transport(TransportKind::Roce)
        .with_pfc(true));

    println!();
    println!(
        "{:<14} {:>13} {:>12} {:>12}",
        "config", "avg slowdown", "avg FCT", "p99 FCT"
    );
    for (name, r) in [("IRN", &irn), ("RoCE + PFC", &roce)] {
        println!(
            "{:<14} {:>13.2} {:>12} {:>12}",
            name, r.summary.avg_slowdown, r.summary.avg_fct, r.summary.p99_fct
        );
    }
    println!();
    println!(
        "IRN is {:.1}x better on slowdown without needing a lossless fabric",
        roce.summary.avg_slowdown / irn.summary.avg_slowdown
    );
    println!(
        "  (IRN recovered {} lost packets via SACK; RoCE paused the fabric {} times)",
        irn.transport.retransmitted, roce.fabric.pauses
    );
}
