//! # irn-core — the public face of the IRN reproduction
//!
//! This crate assembles the workspace into the system the paper
//! evaluates: a packet-level simulation of RDMA transports (RoCE's
//! go-back-N, IRN's selective repeat + BDP-FC, an iWARP-style TCP
//! stack) over a PFC-capable fat-tree fabric, driven by the §4.1
//! workloads and measured with the §4.1 metrics.
//!
//! ## Quickstart
//!
//! ```
//! use irn_core::{ExperimentConfig, Simulation, TopologySpec, TrafficModel};
//! use irn_core::transport::TransportKind;
//! use irn_workload::SizeDistribution;
//!
//! // A small IRN-without-PFC run on a 16-host fat-tree.
//! let cfg = ExperimentConfig::quick(200)
//!     .with_transport(TransportKind::Irn)
//!     .with_pfc(false);
//! let result = Simulation::new(cfg).run();
//! assert!(result.summary.avg_slowdown >= 1.0);
//! println!(
//!     "IRN: slowdown {:.2}, avg FCT {}, p99 FCT {}",
//!     result.summary.avg_slowdown, result.summary.avg_fct, result.summary.p99_fct
//! );
//! ```
//!
//! The experiment harness (`irn-experiments`) builds every figure and
//! table of the paper from exactly this API; nothing in the harness
//! touches simulator internals.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod engine;
pub mod result;
pub mod scenario;

pub use config::{ExperimentConfig, TopologySpec};
pub use engine::{legacy_per_flow_bytes, Simulation};
pub use irn_workload::{
    AllreduceAlgo, AppDriver, AppEvent, AppSink, ClosedLoop, Component, Population, Start,
    TrafficCtx, TrafficError, TrafficModel,
};
pub use result::{MemoryStats, RunResult, SchedCounters, TransportTotals};
pub use scenario::{Scenario, ScenarioBuilder, ScenarioError, SCENARIO_SCHEMA};

// Re-export the sub-crates under stable names so downstream users (and
// the examples) need only one dependency.
pub use irn_metrics as metrics;
pub use irn_net as net;
pub use irn_rdma as rdma;
pub use irn_sim as sim;
pub use irn_transport as transport;
pub use irn_workload as workload;

/// Crate-level convenience: run one experiment.
pub fn run(cfg: ExperimentConfig) -> RunResult {
    Simulation::new(cfg).run()
}

#[cfg(test)]
mod tests {
    use super::*;
    use irn_sim::Duration;
    use irn_transport::cc::CcKind;
    use irn_transport::config::TransportKind;
    use irn_workload::{FlowSpec, SizeDistribution};
    use sim::Time;

    /// One flow across a single switch: completion math should be exact.
    #[test]
    fn one_flow_completes_with_sane_fct() {
        let cfg = ExperimentConfig {
            topology: TopologySpec::SingleSwitch(2),
            traffic: TrafficModel::Explicit(vec![FlowSpec {
                src: 0,
                dst: 1,
                bytes: 100_000,
                at: Time::ZERO,
            }]),
            ..ExperimentConfig::paper_default(1)
        };
        let r = run(cfg);
        assert_eq!(r.summary.flows, 1);
        // 100 packets of 1048 B at 40 Gbps ≈ 21 µs + 2 hops × 2 µs.
        let fct = r.summary.avg_fct;
        assert!(
            (Duration::micros(24)..Duration::micros(32)).contains(&fct),
            "unloaded FCT should be ≈25-26 µs, got {fct}"
        );
        assert!(r.summary.avg_slowdown >= 1.0 && r.summary.avg_slowdown < 1.2);
        assert_eq!(r.fabric.buffer_drops, 0);
        assert_eq!(r.transport.retransmitted, 0);
    }

    /// Every transport preset must complete a small workload.
    #[test]
    fn all_transports_complete() {
        for transport in [
            TransportKind::Irn,
            TransportKind::Roce,
            TransportKind::IrnGoBackN,
            TransportKind::IrnNoBdpFc,
            TransportKind::IwarpTcp,
        ] {
            for pfc in [false, true] {
                let cfg = ExperimentConfig {
                    topology: TopologySpec::SingleSwitch(4),
                    traffic: TrafficModel::Poisson {
                        load: 0.5,
                        sizes: SizeDistribution::HeavyTailed,
                        flow_count: 60,
                    },
                    ..ExperimentConfig::paper_default(60)
                }
                .with_transport(transport)
                .with_pfc(pfc);
                let r = run(cfg);
                assert_eq!(
                    r.summary.flows, 60,
                    "{transport:?} pfc={pfc} must complete all flows"
                );
            }
        }
    }

    /// Every congestion-control scheme must complete a small workload.
    #[test]
    fn all_cc_schemes_complete() {
        for cc in [
            CcKind::None,
            CcKind::Timely,
            CcKind::Dcqcn,
            CcKind::Aimd,
            CcKind::Dctcp,
        ] {
            let cfg = ExperimentConfig {
                topology: TopologySpec::SingleSwitch(4),
                traffic: TrafficModel::Poisson {
                    load: 0.5,
                    sizes: SizeDistribution::HeavyTailed,
                    flow_count: 50,
                },
                ..ExperimentConfig::paper_default(50)
            }
            .with_cc(cc);
            let r = run(cfg);
            assert_eq!(r.summary.flows, 50, "{cc:?} must complete all flows");
        }
    }

    /// Determinism: identical configs give identical results.
    #[test]
    fn runs_are_deterministic() {
        let mk = || ExperimentConfig {
            topology: TopologySpec::FatTree(4),
            traffic: TrafficModel::Poisson {
                load: 0.6,
                sizes: SizeDistribution::HeavyTailed,
                flow_count: 150,
            },
            ..ExperimentConfig::paper_default(150)
        };
        let a = run(mk());
        let b = run(mk());
        assert_eq!(a.summary.avg_fct, b.summary.avg_fct);
        assert_eq!(a.summary.p99_fct, b.summary.p99_fct);
        assert_eq!(a.events, b.events);
        assert_eq!(a.fabric, b.fabric);
    }

    /// PFC keeps the fabric lossless; without it, heavy load drops.
    #[test]
    fn pfc_is_lossless_no_pfc_drops() {
        let base = ExperimentConfig {
            topology: TopologySpec::FatTree(4),
            traffic: TrafficModel::Poisson {
                load: 0.9,
                sizes: SizeDistribution::HeavyTailed,
                flow_count: 300,
            },
            buffer_bytes: 60_000, // small buffers to force pressure
            ..ExperimentConfig::paper_default(300)
        };
        let with_pfc = run(base
            .clone()
            .with_transport(TransportKind::Irn)
            .with_pfc(true));
        assert_eq!(with_pfc.fabric.buffer_drops, 0, "PFC must be lossless");
        assert!(with_pfc.fabric.pauses > 0, "pressure must trigger pauses");
        let without = run(base.with_transport(TransportKind::Irn).with_pfc(false));
        assert!(without.fabric.buffer_drops > 0, "no PFC ⇒ drops");
        assert_eq!(without.fabric.pauses, 0);
        assert!(without.transport.retransmitted > 0, "losses must recover");
    }

    /// RPC closed loop: every op completes, app metrics are populated,
    /// and the flow count matches the driver's exact accounting.
    #[test]
    fn rpc_closed_loop_completes_every_op() {
        let cfg = ExperimentConfig {
            topology: TopologySpec::SingleSwitch(6),
            traffic: TrafficModel::RpcClosedLoop {
                clients: 3,
                ops_per_client: 8,
                window: 2,
                request_bytes: 8_000,
                response_bytes: 1_000,
                think: Duration::micros(30),
                fanout: 2,
            },
            ..ExperimentConfig::paper_default(1)
        };
        let r = run(cfg);
        let app = r.app.expect("closed-loop run must report app metrics");
        assert_eq!(app.ops(), 3 * 8);
        // fanout requests + fanout responses per op.
        assert_eq!(r.summary.flows, 3 * 8 * 2 * 2);
        assert!(app.mean_latency() > Duration::ZERO);
        assert!(app.percentile_latency(0.99) >= app.percentile_latency(0.50));
    }

    /// Allreduce: both algorithms run all phases to completion and the
    /// iteration count lands in the op counter.
    #[test]
    fn allreduce_completes_all_iterations() {
        for algorithm in [AllreduceAlgo::Ring, AllreduceAlgo::Tree] {
            let cfg = ExperimentConfig {
                topology: TopologySpec::FatTree(4),
                traffic: TrafficModel::Allreduce {
                    algorithm,
                    participants: 8,
                    bytes: 1 << 20,
                    iterations: 3,
                },
                ..ExperimentConfig::paper_default(1)
            };
            let r = run(cfg);
            let app = r.app.expect("app metrics");
            assert_eq!(app.ops(), 3, "{algorithm:?} iterations");
            assert!(app.phases() > 0, "{algorithm:?} must emit phase barriers");
            assert!(r.summary.flows > 0);
        }
    }

    /// Leader replication: quorum commits drive every op to completion.
    #[test]
    fn leader_replicate_commits_every_op() {
        let cfg = ExperimentConfig {
            topology: TopologySpec::SingleSwitch(8),
            traffic: TrafficModel::LeaderReplicate {
                clients: 3,
                followers: 3,
                quorum: 2,
                ops_per_client: 6,
                request_bytes: 4_000,
                ack_bytes: 64,
                think: Duration::micros(20),
            },
            ..ExperimentConfig::paper_default(1)
        };
        let r = run(cfg);
        let app = r.app.expect("app metrics");
        assert_eq!(app.ops(), 3 * 6);
        // request + F replicates + F acks + response per op.
        assert_eq!(r.summary.flows, 3 * 6 * (2 * 3 + 2));
    }

    /// Closed-loop runs are deterministic: two identical runs produce
    /// identical app metrics, event counts, and fabric counters.
    #[test]
    fn closed_loop_runs_are_deterministic() {
        let mk = || ExperimentConfig {
            topology: TopologySpec::FatTree(4),
            traffic: TrafficModel::RpcClosedLoop {
                clients: 4,
                ops_per_client: 10,
                window: 3,
                request_bytes: 20_000,
                response_bytes: 500,
                think: Duration::micros(50),
                fanout: 2,
            },
            ..ExperimentConfig::paper_default(1)
        };
        let a = run(mk());
        let b = run(mk());
        let (aa, ba) = (a.app.unwrap(), b.app.unwrap());
        assert_eq!(aa.ops(), ba.ops());
        assert_eq!(aa.mean_latency(), ba.mean_latency());
        assert_eq!(aa.percentile_latency(0.99), ba.percentile_latency(0.99));
        assert_eq!(a.events, b.events);
        assert_eq!(a.fabric, b.fabric);
        assert_eq!(a.summary.avg_fct, b.summary.avg_fct);
    }

    /// A lossy fabric still completes a closed-loop run (recovery paths
    /// feed back into the driver correctly) and ops take longer than on
    /// a clean fabric.
    #[test]
    fn closed_loop_survives_loss() {
        let mk = |loss| {
            ExperimentConfig {
                topology: TopologySpec::SingleSwitch(6),
                traffic: TrafficModel::RpcClosedLoop {
                    clients: 2,
                    ops_per_client: 6,
                    window: 1,
                    request_bytes: 50_000,
                    response_bytes: 1_000,
                    think: Duration::micros(10),
                    fanout: 1,
                },
                loss_injection: loss,
                ..ExperimentConfig::paper_default(1)
            }
            .with_transport(TransportKind::Irn)
            .with_pfc(false)
        };
        let clean = run(mk(0.0));
        let lossy = run(mk(0.02));
        assert_eq!(clean.app.as_ref().unwrap().ops(), 12);
        assert_eq!(lossy.app.as_ref().unwrap().ops(), 12);
        assert!(lossy.transport.retransmitted > 0, "loss must force retx");
        assert!(
            lossy.app.unwrap().mean_latency() > clean.app.unwrap().mean_latency(),
            "loss must slow down op latency"
        );
    }

    /// Incast completes and reports an RCT.
    #[test]
    fn incast_reports_rct() {
        let cfg = ExperimentConfig {
            topology: TopologySpec::FatTree(4),
            traffic: TrafficModel::Incast {
                m: 8,
                total_bytes: 8_000_000,
            },
            ..ExperimentConfig::paper_default(8)
        }
        .with_pfc(true)
        .with_transport(TransportKind::Roce);
        let r = run(cfg);
        // 8 MB over a 40 Gbps edge ≈ 1.7 ms lower bound.
        let rct = r.rct();
        assert!(
            rct >= Duration::micros(1_600),
            "RCT {rct} below the line-rate bound"
        );
        assert_eq!(r.summary.flows, 8);
    }
}
