//! The simulation engine: fabric + transports + workload + metrics under
//! one deterministic event loop.
//!
//! The loop owns a single ladder-queue [`Scheduler`] over [`Event`];
//! every subsystem is a passive state machine (the smoltcp idiom): the
//! fabric consumes [`FabricEvent`]s (scheduling its own follow-ups
//! straight into the typed queue via `From<FabricEvent> for Event`) and
//! reports deliveries; senders/receivers are polled and fed packets;
//! retransmission timers and NIC pacing wake-ups are first-class
//! scheduler timers, so a cancelled or re-armed deadline is removed in
//! O(1) and **never surfaces** — the engine sees no stale timer events.
//! Flow arrivals are not queue events at all: they stream from the
//! (sorted-once) flow list, so queue occupancy tracks in-flight work,
//! not workload size. Nothing blocks, nothing is hidden — a run is a
//! pure function of its [`ExperimentConfig`].
//!
//! ## Ordering parity with the heap-based loop
//!
//! The ladder queue preserves the reference `EventQueue` contract
//! (nondecreasing time, FIFO among simultaneous events), and arrivals
//! win ties against queue events — exactly the order the previous
//! engine produced by pushing every arrival up front with the smallest
//! sequence numbers. Artifact output was verified byte-identical
//! across the scheduler swap when it landed; what the suite pins
//! continuously is jobs=1 vs jobs=8 byte-equality for every
//! deterministic artifact (`tests/tests/seeds.rs`). Note the same
//! change also fixed a timeout-race transmit bug in `SenderQp`, which
//! intentionally moved numbers for the cells that hit it (see
//! CHANGES.md) — that drift is the bugfix, not the scheduler.

use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

use irn_metrics::{ideal_fct, AppMetrics, FlowRecord, MetricsCollector};
use irn_net::{
    Fabric, FabricEvent, FabricOutput, FlowId, HostId, NetTables, Packet, PacketKind, PktId,
    Topology,
};
use irn_sim::{Scheduler, Time, TimerId};
use irn_transport::config::TransportKind;
use irn_transport::tcp::{TcpReceiver, TcpSender};
use irn_transport::{HostNic, NicPoll, ReceiverQp, SenderPoll, SenderQp, TimerCmd};
use irn_workload::{AppDriver, AppEvent, AppSink, FlowSpec, TrafficCtx};

use crate::config::{ExperimentConfig, TopologySpec};
use crate::result::{MemoryStats, RunResult, SchedCounters, TransportTotals};

/// Process-wide cache of routing tables keyed by [`TopologySpec`].
///
/// `NetTables::build` runs a BFS per destination host — cheap once, but
/// registry batches instantiate thousands of cells over a handful of
/// distinct geometries, and the tables are a pure function of the spec.
/// Sharing them is invisible to results (the fabric never mutates its
/// tables), so determinism is unaffected by cache hits, ordering, or
/// which worker process computed them.
static NET_TABLES: OnceLock<Mutex<HashMap<TopologySpec, Arc<NetTables>>>> = OnceLock::new();

fn net_tables_for(spec: TopologySpec, topo: &Topology) -> Arc<NetTables> {
    let cache = NET_TABLES.get_or_init(|| Mutex::new(HashMap::new()));
    let mut map = cache.lock().expect("net-tables cache poisoned");
    Arc::clone(
        map.entry(spec)
            .or_insert_with(|| Arc::new(NetTables::build(topo))),
    )
}

/// Events driving the simulation. Timer events carry no generation
/// tokens: the scheduler's cancellable timers guarantee only live
/// expiries are delivered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Event {
    /// Network-internal event (arrivals, transmit completions, PFC).
    Fabric(FabricEvent),
    /// A sender's retransmission timer expired (live).
    QpTimer {
        /// Flow index.
        flow: u32,
    },
    /// A host NIC's pacing wake-up (live).
    NicWake {
        /// Host index.
        host: u32,
    },
    /// A closed-loop driver's spawned flow reaches its start time. The
    /// flow is already in the flow table; this event starts it exactly
    /// like a streamed arrival would.
    AppSpawn {
        /// Flow index.
        flow: u32,
    },
}

impl From<FabricEvent> for Event {
    fn from(fe: FabricEvent) -> Event {
        Event::Fabric(fe)
    }
}

/// [`Event`] packed into one word, the type the scheduler actually
/// stores. With an 8-byte event a scheduler entry is exactly 32 bytes
/// (time, seq, timer stamp, event), and bucket sorts/memmoves — the
/// engine's hottest memory traffic — move a power-of-two stride.
///
/// Layout: `[b:30][a:30][tag:3]` from the high bits down. Both payload
/// fields are comfortably below 2^30 (`a` is a directed-link / flow /
/// host index, `b` an arena slot index); debug builds assert it.
#[derive(Debug, Clone, Copy)]
pub struct PackedEvent(u64);

const TAG_TX_DONE: u64 = 0;
const TAG_ARRIVE: u64 = 1;
const TAG_PFC_XOFF: u64 = 2;
const TAG_PFC_XON: u64 = 3;
const TAG_QP_TIMER: u64 = 4;
const TAG_NIC_WAKE: u64 = 5;
const TAG_APP_SPAWN: u64 = 6;

impl PackedEvent {
    #[inline]
    fn pack(tag: u64, a: u32, b: u32) -> PackedEvent {
        debug_assert!(a < (1 << 30) && b < (1 << 30));
        PackedEvent(tag | ((a as u64) << 3) | ((b as u64) << 33))
    }

    /// Decode back to the enum the engine matches on.
    #[inline]
    pub fn unpack(self) -> Event {
        let a = (self.0 >> 3) as u32 & 0x3fff_ffff;
        let b = (self.0 >> 33) as u32;
        match self.0 & 0x7 {
            TAG_TX_DONE => Event::Fabric(FabricEvent::TxDone { link: a }),
            TAG_ARRIVE => Event::Fabric(FabricEvent::Arrive {
                link: a,
                pkt: PktId(b),
            }),
            TAG_PFC_XOFF => Event::Fabric(FabricEvent::PfcArrive {
                link: a,
                xoff: true,
            }),
            TAG_PFC_XON => Event::Fabric(FabricEvent::PfcArrive {
                link: a,
                xoff: false,
            }),
            TAG_QP_TIMER => Event::QpTimer { flow: a },
            TAG_NIC_WAKE => Event::NicWake { host: a },
            TAG_APP_SPAWN => Event::AppSpawn { flow: a },
            tag => unreachable!("unknown event tag {tag}"),
        }
    }
}

impl From<FabricEvent> for PackedEvent {
    #[inline]
    fn from(fe: FabricEvent) -> PackedEvent {
        match fe {
            FabricEvent::TxDone { link } => PackedEvent::pack(TAG_TX_DONE, link, 0),
            FabricEvent::Arrive { link, pkt } => PackedEvent::pack(TAG_ARRIVE, link, pkt.0),
            FabricEvent::PfcArrive { link, xoff } => {
                PackedEvent::pack(if xoff { TAG_PFC_XOFF } else { TAG_PFC_XON }, link, 0)
            }
        }
    }
}

impl From<Event> for PackedEvent {
    #[inline]
    fn from(ev: Event) -> PackedEvent {
        match ev {
            Event::Fabric(fe) => fe.into(),
            Event::QpTimer { flow } => PackedEvent::pack(TAG_QP_TIMER, flow, 0),
            Event::NicWake { host } => PackedEvent::pack(TAG_NIC_WAKE, host, 0),
            Event::AppSpawn { flow } => PackedEvent::pack(TAG_APP_SPAWN, flow, 0),
        }
    }
}

/// Sender variants (RDMA transports vs the iWARP TCP stack). The size
/// skew between the variants is accepted: senders live in one flat Vec
/// for the whole run, and boxing the large variant would put an
/// indirection on the per-packet poll path.
#[allow(clippy::large_enum_variant)]
enum FlowSender {
    Rdma(SenderQp),
    Tcp(TcpSender),
}

enum FlowReceiver {
    Rdma(ReceiverQp),
    Tcp(TcpReceiver),
}

/// Live state of one in-progress flow: the slab's unit of allocation.
struct FlowSlot {
    sender: Option<FlowSender>,
    receiver: Option<FlowReceiver>,
    /// Retransmission timer, created lazily and **owned by the slot**,
    /// not the flow: re-arming overwrites the payload, so a recycled
    /// slot safely reuses its timer for the next occupant.
    timer: Option<TimerId>,
    /// Packets of this flow currently inside the fabric (data and
    /// control alike; +1 at host TX, −1 at delivery or drop).
    inflight: u32,
    /// The receiver delivered the last payload byte.
    receiver_done: bool,
}

/// Where a flow's state lives, encoded in the dense `flow → slot` map.
const NOT_STARTED: u32 = u32::MAX;
const RETIRED: u32 = u32::MAX - 1;

/// Slab of live flow state keyed by dense `u32` flow ids.
///
/// The pre-refactor engine kept `Vec<Option<Sender>>` /
/// `Vec<Option<Receiver>>` / `Vec<Option<TimerId>>` each sized to the
/// *total* flow count for the whole run. The slab sizes state to the
/// *concurrently live* flow count instead: a slot is allocated at flow
/// arrival (reusing a free slot when one exists), and recycled once the
/// flow retires — sender done, receiver done, and nothing of the flow
/// left inside the fabric. `slots.len()` is therefore the live-flow
/// high-water mark, which is what the `memory-v1` gauge reports.
struct FlowSlab {
    slots: Vec<FlowSlot>,
    /// Recycled slot indices (LIFO: reuse the hottest slot first).
    free: Vec<u32>,
    /// Per flow: slot index, or [`NOT_STARTED`] / [`RETIRED`].
    slot_of: Vec<u32>,
}

impl FlowSlab {
    fn new(flows: usize) -> FlowSlab {
        FlowSlab {
            slots: Vec::new(),
            free: Vec::new(),
            slot_of: vec![NOT_STARTED; flows],
        }
    }

    /// Allocate a slot for an arriving flow.
    fn insert(&mut self, flow: usize, sender: FlowSender, receiver: FlowReceiver) {
        debug_assert_eq!(self.slot_of[flow], NOT_STARTED, "flow started twice");
        match self.free.pop() {
            Some(si) => {
                let slot = &mut self.slots[si as usize];
                slot.sender = Some(sender);
                slot.receiver = Some(receiver);
                // slot.timer is kept: recycled with the slot.
                slot.inflight = 0;
                slot.receiver_done = false;
                self.slot_of[flow] = si;
            }
            None => {
                self.slot_of[flow] = self.slots.len() as u32;
                self.slots.push(FlowSlot {
                    sender: Some(sender),
                    receiver: Some(receiver),
                    timer: None,
                    inflight: 0,
                    receiver_done: false,
                });
            }
        }
    }

    /// The flow's live slot; `None` when not started or retired.
    fn slot_mut(&mut self, flow: usize) -> Option<&mut FlowSlot> {
        match self.slot_of[flow] {
            NOT_STARTED | RETIRED => None,
            si => Some(&mut self.slots[si as usize]),
        }
    }

    /// The flow's live sender, if any.
    fn sender_mut(&mut self, flow: usize) -> Option<&mut FlowSender> {
        self.slot_mut(flow).and_then(|s| s.sender.as_mut())
    }

    /// The slot's (possibly unarmed) timer id.
    fn timer(&mut self, flow: usize) -> Option<TimerId> {
        self.slot_mut(flow).and_then(|s| s.timer)
    }

    /// True when the flow never reached [`FlowSlab::insert`].
    fn never_started(&self, flow: usize) -> bool {
        self.slot_of[flow] == NOT_STARTED
    }

    /// Extend the dense flow→slot map for one driver-spawned flow
    /// (closed-loop workloads grow the flow table mid-run).
    fn grow(&mut self) {
        self.slot_of.push(NOT_STARTED);
    }

    /// Recycle the flow's slot (drops sender/receiver state; keeps the
    /// timer for the next occupant). The flow id can never come back.
    fn retire(&mut self, flow: usize) {
        let si = self.slot_of[flow];
        debug_assert!(si != NOT_STARTED && si != RETIRED, "retiring a dead flow");
        let slot = &mut self.slots[si as usize];
        debug_assert!(slot.sender.is_none() && slot.receiver_done && slot.inflight == 0);
        slot.receiver = None;
        self.slot_of[flow] = RETIRED;
        self.free.push(si);
    }

    /// Analytic peak bytes: every slot ever allocated (`slots.len()` is
    /// the live-flow high-water mark — monotone), the free-list backing
    /// it, and the dense flow→slot map.
    fn peak_bytes(&self) -> u64 {
        let slot = std::mem::size_of::<FlowSlot>() as u64;
        let idx = std::mem::size_of::<u32>() as u64;
        self.slots.len() as u64 * (slot + idx) + self.slot_of.len() as u64 * idx
    }
}

/// Per-flow bytes of the pre-slab engine layout, kept as the
/// memory-gauge baseline: a retained `FlowRecord` plus run-length
/// `Option<sender>` / `Option<receiver>` / `Option<TimerId>` slots, all
/// sized to the total flow count regardless of concurrency.
pub fn legacy_per_flow_bytes() -> u64 {
    (std::mem::size_of::<FlowRecord>()
        + std::mem::size_of::<Option<FlowSender>>()
        + std::mem::size_of::<Option<FlowReceiver>>()
        + std::mem::size_of::<Option<TimerId>>()) as u64
}

/// The closed-loop application runtime riding on the engine: the
/// reactive driver, its reusable output sink, and the per-operation
/// metrics it feeds.
struct AppRuntime {
    driver: Box<dyn AppDriver>,
    sink: AppSink,
    metrics: AppMetrics,
}

/// One experiment in flight.
pub struct Simulation {
    cfg: ExperimentConfig,
    sched: Scheduler<PackedEvent>,
    fabric: Fabric,
    flows: Vec<FlowSpec>,
    /// Flow indices sorted by arrival time (stably, so simultaneous
    /// arrivals keep their flow-list order); streamed lazily instead of
    /// pre-pushed into the queue.
    arrival_order: Vec<u32>,
    next_arrival: usize,
    /// Index of the first incast flow, when the workload has one.
    incast_from: Option<usize>,
    /// Live flow state (senders, receivers, timers), slab-allocated.
    slab: FlowSlab,
    nics: Vec<HostNic>,
    /// Per-host NIC pacing timer.
    nic_wake: Vec<TimerId>,
    metrics: MetricsCollector,
    incast_metrics: MetricsCollector,
    totals: TransportTotals,
    counters: SchedCounters,
    completed: usize,
    finished_at: Time,
    /// Hosts whose trailing NIC poll is deferred to the end of the
    /// current same-timestep delivery batch (first-touch order;
    /// reusable buffer, cleared per batch).
    batch_hosts: Vec<HostId>,
    /// Closed-loop application runtime, when the traffic model has one.
    /// `None` for every open-loop model: the hot path stays untouched.
    app: Option<AppRuntime>,
}

impl Simulation {
    /// Build the simulation for `cfg` (generates the workload).
    pub fn new(cfg: ExperimentConfig) -> Simulation {
        let topo = cfg.topology.build();
        let tables = net_tables_for(cfg.topology, &topo);
        let fabric = Fabric::with_tables(&topo, tables, cfg.fabric_config());
        let hosts = fabric.hosts();

        let tctx = TrafficCtx {
            hosts,
            line_rate_bps: cfg.bandwidth.as_bps_f64(),
            seed: cfg.seed,
        };
        // A closed-loop model contributes only its seed flows up front;
        // the rest of the workload materializes in reaction to
        // completions, through the driver hook in `maybe_retire`.
        let (flows, incast_from, app) = match cfg.traffic.closed_loop(&tctx) {
            Some(cl) => (
                cl.seed_flows,
                None,
                Some(AppRuntime {
                    driver: cl.driver,
                    sink: AppSink::new(),
                    metrics: AppMetrics::default(),
                }),
            ),
            None => {
                let stream = cfg.traffic.generate(&tctx);
                (stream.flows, stream.incast_from, None)
            }
        };
        assert!(!flows.is_empty(), "workload generated no flows");
        let n = flows.len();

        // Arrival stream: indices sorted by time; the stable sort keeps
        // flow-list order among simultaneous arrivals, matching the
        // FIFO tie-break of the old push-everything-up-front scheme.
        let mut arrival_order: Vec<u32> = (0..n as u32).collect();
        arrival_order.sort_by_key(|&i| flows[i as usize].at);

        let mut sched = Scheduler::new();
        let nic_wake: Vec<TimerId> = (0..hosts).map(|_| sched.timer_create()).collect();

        Simulation {
            sched,
            fabric,
            flows,
            arrival_order,
            next_arrival: 0,
            incast_from,
            slab: FlowSlab::new(n),
            nics: (0..hosts).map(|_| HostNic::new()).collect(),
            nic_wake,
            metrics: MetricsCollector::new(),
            incast_metrics: MetricsCollector::new(),
            totals: TransportTotals::default(),
            counters: SchedCounters::default(),
            completed: 0,
            finished_at: Time::ZERO,
            batch_hosts: Vec::new(),
            app,
            cfg,
        }
    }

    /// Run to completion (all flows delivered) and report.
    pub fn run(mut self) -> RunResult {
        // Give a closed-loop driver its time-zero callback (trace
        // records for the seed operations; never any flows).
        if let Some(app) = self.app.as_mut() {
            app.sink.clear();
            app.driver.on_start(&mut app.sink);
            debug_assert!(app.sink.flows.is_empty(), "on_start must not spawn");
            self.drain_app_sink(Time::ZERO);
        }
        let mut events: u64 = 0;
        loop {
            // Interleave the lazily streamed arrivals with the queue;
            // arrivals win ties (parity with the old engine, where every
            // arrival carried a smaller sequence number than any event
            // pushed while running).
            let arrival_at = self
                .arrival_order
                .get(self.next_arrival)
                .map(|&i| self.flows[i as usize].at);
            let queue_at = self.sched.peek_time();
            let take_arrival = match (arrival_at, queue_at) {
                (Some(a), Some(q)) => a <= q,
                (Some(_), None) => true,
                (None, Some(_)) => false,
                (None, None) => break,
            };
            // The time of the event about to be processed (not the
            // stale last-pop time — a livelock report must point at the
            // right instant).
            let at = if take_arrival {
                arrival_at.expect("arrival taken")
            } else {
                queue_at.expect("queue event taken")
            };
            events += 1;
            assert!(
                events <= self.cfg.max_events,
                "event budget exceeded at {at} with {}/{} flows complete — livelock?",
                self.completed,
                self.flows.len()
            );
            if take_arrival {
                let i = self.arrival_order[self.next_arrival] as usize;
                self.next_arrival += 1;
                let now = self.flows[i].at;
                self.sched.advance_to(now);
                self.counters.flow_arrivals += 1;
                self.on_flow_arrival(now, i);
            } else {
                let (now, ev) = self.sched.pop().expect("peeked nonempty");
                match ev.unpack() {
                    Event::Fabric(fe) => {
                        self.counters.fabric_events += 1;
                        match fe {
                            FabricEvent::Arrive { link, pkt }
                                if self.fabric.is_host_data_arrival(link, pkt) =>
                            {
                                events += self.deliver_batch(now, fe);
                            }
                            _ => self.on_fabric(now, fe),
                        }
                    }
                    Event::QpTimer { flow } => {
                        self.counters.qp_timer_events += 1;
                        self.on_qp_timer(now, flow);
                    }
                    Event::NicWake { host } => {
                        self.counters.nic_wake_events += 1;
                        self.try_send(now, HostId(host));
                    }
                    Event::AppSpawn { flow } => {
                        self.counters.flow_arrivals += 1;
                        self.on_flow_arrival(now, flow as usize);
                    }
                }
            }
            // With a closed-loop driver every completion may spawn more
            // work, so the run ends only when the queue truly drains;
            // open-loop runs keep the early exit (late NIC wake-ups and
            // PFC resumes after the last completion are not work).
            if self.app.is_none() && self.completed == self.flows.len() {
                break;
            }
        }
        assert_eq!(
            self.completed,
            self.flows.len(),
            "simulation deadlocked: {}/{} flows completed (no events left)",
            self.completed,
            self.flows.len()
        );

        // Sweep stats from any sender still alive (receiver finished
        // before the sender saw its final ack). Slot order, not flow
        // order — the totals are commutative sums.
        for s in self.slab.slots.iter().filter_map(|s| s.sender.as_ref()) {
            accumulate(&mut self.totals, s);
        }

        let (primary, incast_metrics) = match self.incast_from {
            None => (self.metrics, None),
            // Pure incast: the incast population is also the primary one.
            Some(0) => (self.incast_metrics.clone(), Some(self.incast_metrics)),
            Some(_) => (self.metrics, Some(self.incast_metrics)),
        };

        let collector_fixed = std::mem::size_of::<MetricsCollector>() as u64;
        let app_fixed = std::mem::size_of::<AppMetrics>() as u64;
        let metrics_bytes = collector_fixed
            + primary.heap_bytes()
            + incast_metrics
                .as_ref()
                .map_or(0, |m| collector_fixed + m.heap_bytes())
            + self
                .app
                .as_ref()
                .map_or(0, |a| app_fixed + a.metrics.heap_bytes());
        let memory = MemoryStats {
            peak_flow_state_bytes: self.slab.peak_bytes(),
            metrics_bytes,
            flows: self.flows.len() as u64,
            hist_buckets: primary.allocated_buckets()
                + incast_metrics.as_ref().map_or(0, |m| m.allocated_buckets())
                + self
                    .app
                    .as_ref()
                    .map_or(0, |a| a.metrics.allocated_buckets()),
            pkt_pool_bytes: self.fabric.pkt_pool_bytes(),
            pkt_pool_pkts: self.fabric.pkt_pool_peak() as u64,
        };

        let sstats = self.sched.stats();
        self.counters.past_clamps = sstats.past_clamps;
        self.counters.timer_arms = sstats.timer_arms;
        self.counters.timer_cancels = sstats.timer_cancels;
        self.counters.stale_timer_reclaims = sstats.stale_skips;

        RunResult {
            summary: primary.summary(),
            metrics: primary,
            incast_metrics,
            app: self.app.map(|a| a.metrics),
            fabric: self.fabric.stats(),
            transport: self.totals,
            events,
            sched: self.counters,
            finished_at: self.finished_at,
            memory,
        }
    }

    fn on_flow_arrival(&mut self, now: Time, i: usize) {
        let spec = self.flows[i];
        debug_assert_eq!(spec.at, now);
        let diameter = self.fabric.diameter_hops();
        let tcfg = self.cfg.transport_config(diameter);
        let flow = FlowId(i as u32);
        let (src, dst) = (HostId(spec.src), HostId(spec.dst));

        let (snd, rcv) = if self.cfg.transport == TransportKind::IwarpTcp {
            let s = TcpSender::new(tcfg.clone(), flow, src, dst, spec.bytes);
            let r = TcpReceiver::new(&tcfg, flow, src, dst, s.total_packets());
            (FlowSender::Tcp(s), FlowReceiver::Tcp(r))
        } else {
            let s = SenderQp::new(tcfg.clone(), flow, src, dst, spec.bytes, self.cfg.cc, now);
            let r = ReceiverQp::new(&tcfg, flow, src, dst, s.total_packets(), self.cfg.cc);
            (FlowSender::Rdma(s), FlowReceiver::Rdma(r))
        };
        self.slab.insert(i, snd, rcv);
        irn_telemetry::trace!(
            "flow.start",
            t = now.as_nanos(),
            flow = i,
            src = spec.src,
            dst = spec.dst,
            bytes = spec.bytes,
        );
        self.nics[spec.src as usize].register(flow);
        self.try_send(now, src);
    }

    fn on_fabric(&mut self, now: Time, fe: FabricEvent) {
        let (fabric, sched) = (&mut self.fabric, &mut self.sched);
        let out = fabric.handle(now, fe, sched);
        match out {
            None => {}
            Some(FabricOutput::HostTxReady { host }) => self.try_send(now, host),
            Some(FabricOutput::Deliver { host, pkt }) => self.on_deliver(now, host, pkt, false),
            Some(FabricOutput::Dropped { flow }) => self.on_drop(now, flow),
        }
    }

    /// Batched switch→host delivery: starting from one data-packet host
    /// arrival, keep popping *consecutive* events that are also
    /// same-timestep data-packet host arrivals, defer each delivery's
    /// trailing NIC poll, and flush the polls once per touched host in
    /// first-touch order. Returns how many extra events were popped.
    ///
    /// This is byte-identity-safe because the deferred work cannot
    /// observe the reorder: (a) a host has one downlink, so same-time
    /// data deliveries land on *distinct* hosts whose receive paths
    /// touch disjoint state; (b) the data receive path makes no
    /// scheduler insertions (ACK/CNP responses are queued on the NIC,
    /// not the scheduler, and `timer_cancel` neither inserts nor
    /// consumes a sequence number), so relative insertion order — and
    /// with it the FIFO tie-break — is preserved; (c) ACK/NACK/CNP
    /// deliveries and switch-side arrivals break the batch and are
    /// handled unbatched (their handlers *do* insert events).
    /// Completion mid-batch stops further pops at exactly the event the
    /// unbatched loop would have stopped at, then flushes.
    fn deliver_batch(&mut self, now: Time, first: FabricEvent) -> u64 {
        debug_assert!(self.batch_hosts.is_empty());
        let mut extra = 0;
        let mut fe = first;
        loop {
            let out = self.fabric.handle(now, fe, &mut self.sched);
            let Some(FabricOutput::Deliver { host, pkt }) = out else {
                unreachable!("host data arrival must deliver");
            };
            self.on_deliver(now, host, pkt, true);
            if !self.batch_hosts.contains(&host) {
                self.batch_hosts.push(host);
            }
            if self.completed == self.flows.len() {
                break;
            }
            let next = match self.sched.peek() {
                Some((t, &pe)) if t == now => match pe.unpack() {
                    Event::Fabric(f @ FabricEvent::Arrive { link, pkt }) => Some((f, link, pkt)),
                    _ => None,
                },
                _ => None,
            };
            match next {
                Some((f, link, pkt)) if self.fabric.is_host_data_arrival(link, pkt) => {
                    self.sched.pop();
                    self.counters.fabric_events += 1;
                    extra += 1;
                    fe = f;
                }
                _ => break,
            }
        }
        let mut hosts = std::mem::take(&mut self.batch_hosts);
        for host in hosts.drain(..) {
            self.try_send(now, host);
        }
        self.batch_hosts = hosts;
        extra
    }

    /// A packet died inside the fabric: it will never be delivered, so
    /// it leaves the flow's in-flight count here (recovery itself stays
    /// timer/NACK-driven, exactly as before).
    fn on_drop(&mut self, now: Time, flow: FlowId) {
        let idx = flow.idx();
        if let Some(slot) = self.slab.slot_mut(idx) {
            slot.inflight -= 1;
            self.maybe_retire(now, idx);
        }
    }

    /// Process one delivered packet. `defer_send` suppresses the data
    /// path's trailing NIC poll — only [`Simulation::deliver_batch`]
    /// passes `true`, and only for data packets (the ACK/NACK path must
    /// poll immediately: its handler arms timers and changes what the
    /// next poll would emit).
    fn on_deliver(&mut self, now: Time, host: HostId, id: PktId, defer_send: bool) {
        let pkt: Packet = self.fabric.take_delivered(id);
        debug_assert!(!defer_send || pkt.is_data(), "only data deliveries batch");
        irn_telemetry::trace!(
            "pkt.rx",
            t = now.as_nanos(),
            flow = pkt.flow.0,
            host = host.0,
            pkt = pkt.kind.label(),
            psn = pkt.psn,
        );
        let idx = pkt.flow.idx();
        // The packet just left the fabric; balance the in-flight count
        // taken at host TX. A retired flow cannot have counted packets
        // in flight (retirement requires the count to reach zero), so
        // the guard only skips packets sent after retirement (late
        // control traffic), which were never counted.
        if let Some(slot) = self.slab.slot_mut(idx) {
            slot.inflight -= 1;
        }
        match pkt.kind {
            PacketKind::Data => {
                assert!(
                    !self.slab.never_started(idx),
                    "data for a flow that never started"
                );
                let completed = match self
                    .slab
                    .slot_mut(idx)
                    .expect("data for a retired flow")
                    .receiver
                    .as_mut()
                    .expect("data for a flow that never started")
                {
                    FlowReceiver::Rdma(r) => {
                        let out = r.on_data(now, &pkt);
                        if let Some(ack) = out.ack {
                            if ack.kind == PacketKind::Nack {
                                irn_telemetry::trace!(
                                    "nack.tx",
                                    t = now.as_nanos(),
                                    flow = pkt.flow.0,
                                    host = host.0,
                                    psn = ack.psn,
                                    sack = ack.sack,
                                );
                            }
                            self.nics[host.idx()].push_control(ack);
                        }
                        if let Some(cnp) = out.cnp {
                            irn_telemetry::trace!(
                                "cnp.tx",
                                t = now.as_nanos(),
                                flow = pkt.flow.0,
                                host = host.0,
                            );
                            self.nics[host.idx()].push_control(cnp);
                        }
                        out.completed
                    }
                    FlowReceiver::Tcp(r) => {
                        let (ack, completed) = r.on_data(now, &pkt);
                        self.nics[host.idx()].push_control(ack);
                        completed
                    }
                };
                if completed {
                    self.record_completion(now, idx);
                    self.slab
                        .slot_mut(idx)
                        .expect("completing flow is live")
                        .receiver_done = true;
                }
                self.maybe_retire(now, idx);
                if !defer_send {
                    self.try_send(now, host);
                }
            }
            PacketKind::Ack | PacketKind::Nack => {
                let done = self.slab.sender_mut(idx).map(|sender| match sender {
                    FlowSender::Rdma(s) => s.on_ack_packet(now, &pkt),
                    FlowSender::Tcp(s) => s.on_ack_packet(now, &pkt),
                });
                if let Some(done) = done {
                    self.drain_timer(now, idx);
                    if done {
                        let slot = self.slab.slot_mut(idx).expect("acked flow is live");
                        let s = slot.sender.take().unwrap();
                        accumulate(&mut self.totals, &s);
                    }
                }
                // Retire even when the sender is already gone: a
                // duplicate final ack (the sender completed on the
                // first copy) can be the flow's last in-flight packet,
                // and skipping the check here would leave the flow
                // finished but never retired — starving a closed-loop
                // driver waiting on the retirement callback.
                self.maybe_retire(now, idx);
                self.try_send(now, host);
            }
            PacketKind::Cnp => {
                if let Some(FlowSender::Rdma(s)) = self.slab.sender_mut(idx) {
                    s.on_cnp(now);
                }
                // Rate drop needs no immediate send attempt.
                self.maybe_retire(now, idx);
            }
        }
    }

    /// Recycle the flow's slot once nothing remains: sender finished,
    /// receiver delivered everything, and no packet of the flow is
    /// inside the fabric (so no event can ever need this state again —
    /// late control packets to a retired flow were already ignored
    /// before this refactor, because the sender slot was empty).
    fn maybe_retire(&mut self, now: Time, idx: usize) {
        let Some(slot) = self.slab.slot_mut(idx) else {
            return;
        };
        if slot.sender.is_some() || !slot.receiver_done || slot.inflight > 0 {
            return;
        }
        // The completing sender already cancelled its timer through
        // `drain_timer`; the deadline guard keeps the scheduler's
        // cancel counters identical to the pre-slab engine.
        if let Some(id) = slot.timer {
            if self.sched.timer_deadline(id).is_some() {
                self.sched.timer_cancel(id);
            }
        }
        irn_telemetry::trace!("flow.retire", t = now.as_nanos(), flow = idx);
        self.slab.retire(idx);
        // The closed-loop seam: a retired flow is the one event an
        // application reacts to. The driver sees only (now, flow id,
        // flow count) — virtual time, no wall clock — so its spawns are
        // byte-identical at any --jobs and across worker fleets.
        if let Some(app) = self.app.as_mut() {
            app.sink.clear();
            let next_index = self.flows.len() as u32;
            app.driver
                .on_flow_retired(now, idx as u32, next_index, &mut app.sink);
            self.drain_app_sink(now);
        }
    }

    /// Apply a driver callback's output: fold application events into
    /// traces and per-operation metrics, then insert each spawned flow
    /// into the live flow table and schedule its start.
    fn drain_app_sink(&mut self, now: Time) {
        let app = self.app.as_mut().expect("drain without a driver");
        for ev in app.sink.events.drain(..) {
            match ev {
                AppEvent::OpStart { op, client, at } => {
                    irn_telemetry::trace!(
                        "app.op.start",
                        t = at.as_nanos(),
                        op = op,
                        client = client,
                    );
                }
                AppEvent::OpDone {
                    op,
                    client,
                    started,
                    at,
                } => {
                    let latency_ns = at.saturating_since(started).as_nanos();
                    app.metrics.record_op(latency_ns);
                    irn_telemetry::trace!(
                        "app.op.done",
                        t = at.as_nanos(),
                        op = op,
                        client = client,
                        latency_ns = latency_ns,
                    );
                }
                AppEvent::Phase { phase, at } => {
                    app.metrics.record_phase();
                    irn_telemetry::trace!("app.phase", t = at.as_nanos(), phase = phase);
                }
            }
        }
        let mut spawned = std::mem::take(&mut app.sink.flows);
        for spec in spawned.drain(..) {
            debug_assert!(spec.at >= now, "driver spawned a flow in the past");
            let idx = self.flows.len() as u32;
            self.flows.push(spec);
            self.slab.grow();
            self.sched
                .push(spec.at, Event::AppSpawn { flow: idx }.into());
        }
        // Hand the drained buffer back so the sink reuses its capacity.
        self.app
            .as_mut()
            .expect("drain without a driver")
            .sink
            .flows = spawned;
    }

    fn on_qp_timer(&mut self, now: Time, flow: u32) {
        let idx = flow as usize;
        let Some(sender) = self.slab.sender_mut(idx) else {
            // Structurally impossible: completion cancels the timer in
            // the scheduler. Counted (and asserted zero in the
            // integration suite) rather than silently tolerated.
            self.counters.stale_timer_events += 1;
            return;
        };
        irn_telemetry::trace!("timer.fire", t = now.as_nanos(), flow = idx);
        let acted = match sender {
            FlowSender::Rdma(s) => s.on_timer(now),
            FlowSender::Tcp(s) => s.on_timer(now),
        };
        if acted {
            self.drain_timer(now, idx);
            let src = HostId(self.flows[idx].src);
            self.try_send(now, src);
        }
    }

    /// Apply any timer request the sender produced to the slot's
    /// scheduler timer.
    fn drain_timer(&mut self, now: Time, idx: usize) {
        let Some(sender) = self.slab.sender_mut(idx) else {
            return;
        };
        let req = match sender {
            FlowSender::Rdma(s) => s.take_timer_request(),
            FlowSender::Tcp(s) => s.take_timer_request(),
        };
        match req {
            None => {}
            Some(TimerCmd::Arm(deadline)) => {
                irn_telemetry::trace!(
                    "timer.arm",
                    t = now.as_nanos(),
                    flow = idx,
                    deadline = deadline.as_nanos(),
                );
                let id = match self.slab.timer(idx) {
                    Some(id) => id,
                    None => {
                        let id = self.sched.timer_create();
                        self.slab
                            .slot_mut(idx)
                            .expect("arming sender is live")
                            .timer = Some(id);
                        id
                    }
                };
                self.sched
                    .timer_arm(id, deadline, Event::QpTimer { flow: idx as u32 }.into());
            }
            Some(TimerCmd::Cancel) => {
                irn_telemetry::trace!("timer.cancel", t = now.as_nanos(), flow = idx);
                if let Some(id) = self.slab.timer(idx) {
                    self.sched.timer_cancel(id);
                }
            }
        }
    }

    /// Keep feeding the host's uplink while it is idle and traffic is
    /// ready; otherwise schedule the earliest pacing wake-up.
    fn try_send(&mut self, now: Time, host: HostId) {
        loop {
            if !self.fabric.host_tx_idle(host) {
                return;
            }
            let (nics, slab) = (&mut self.nics, &mut self.slab);
            let poll = nics[host.idx()].poll(now, |flow, t| match slab.sender_mut(flow.idx()) {
                Some(FlowSender::Rdma(s)) => s.poll(t),
                Some(FlowSender::Tcp(s)) => s.poll(t),
                None => SenderPoll::Done,
            });
            match poll {
                NicPoll::Packet(pkt) => {
                    let flow_idx = pkt.flow.idx();
                    let (fabric, sched) = (&mut self.fabric, &mut self.sched);
                    fabric.host_start_tx(now, host, pkt, sched);
                    // The packet is now inside the fabric; count it
                    // against its flow (live flows only — a retired
                    // flow's late control packets go uncounted, and
                    // their delivery is uncounted symmetrically).
                    if let Some(slot) = self.slab.slot_mut(flow_idx) {
                        slot.inflight += 1;
                    }
                    // The sender may have armed its timer in poll().
                    self.drain_timer(now, flow_idx);
                }
                NicPoll::Wait(t) => {
                    self.schedule_wake(host, t.max(now));
                    return;
                }
                NicPoll::Idle => return,
            }
        }
    }

    /// Deduplicated NIC wake-up scheduling: keep only the earliest.
    /// Re-arming supersedes the later deadline in O(1) — the old wake
    /// event is gone, not filtered at pop.
    fn schedule_wake(&mut self, host: HostId, at: Time) {
        let id = self.nic_wake[host.idx()];
        let better = self.sched.timer_deadline(id).is_none_or(|d| at < d);
        if better {
            self.sched
                .timer_arm(id, at, Event::NicWake { host: host.0 }.into());
        }
    }

    fn record_completion(&mut self, now: Time, idx: usize) {
        let spec = self.flows[idx];
        let hops = self.fabric.path_hops(HostId(spec.src), HostId(spec.dst));
        let header = 48 + self.cfg.extra_header as u64;
        let packets = spec.bytes.max(1).div_ceil(self.cfg.mtu as u64);
        let wire_total = spec.bytes + packets * header;
        let one_pkt = (self.cfg.mtu as u64 + header).min(wire_total);
        let ideal = ideal_fct(
            wire_total,
            one_pkt,
            hops,
            self.cfg.bandwidth.as_bps_f64(),
            self.cfg.prop_delay,
        );
        let record = FlowRecord {
            flow: idx as u32,
            bytes: spec.bytes,
            packets: packets as u32,
            start: spec.at,
            finish: now,
            ideal,
        };
        irn_telemetry::trace!(
            "flow.done",
            t = now.as_nanos(),
            flow = idx,
            src = spec.src,
            dst = spec.dst,
            fct_ns = now.saturating_since(spec.at).as_nanos(),
        );
        match self.incast_from {
            Some(boundary) if idx >= boundary => self.incast_metrics.record(record),
            _ => self.metrics.record(record),
        }
        self.completed += 1;
        self.finished_at = self.finished_at.max(now);
    }
}

fn accumulate(t: &mut TransportTotals, s: &FlowSender) {
    match s {
        FlowSender::Rdma(s) => {
            t.sent += s.stats.sent;
            t.retransmitted += s.stats.retransmitted;
            t.nacks += s.stats.nacks;
            t.timeouts += s.stats.timeouts;
            t.cnps += s.stats.cnps;
        }
        FlowSender::Tcp(s) => {
            t.sent += s.stats.sent;
            t.retransmitted += s.stats.fast_retransmits;
            t.timeouts += s.stats.timeouts;
        }
    }
}
