//! The simulation engine: fabric + transports + workload + metrics under
//! one deterministic event loop.
//!
//! The loop owns a single [`EventQueue`] over [`Event`]; every subsystem
//! is a passive state machine (the smoltcp idiom): the fabric consumes
//! [`FabricEvent`]s and reports deliveries, senders/receivers are polled
//! and fed packets, and timers flow through generation-validated events.
//! Nothing blocks, nothing is hidden — a run is a pure function of its
//! [`ExperimentConfig`].

use irn_metrics::{ideal_fct, FlowRecord, MetricsCollector};
use irn_net::{Fabric, FabricEvent, FabricOutput, FlowId, HostId, Packet, PacketKind};
use irn_sim::{EventQueue, Time, TimerSlot};
use irn_transport::config::TransportKind;
use irn_transport::tcp::{TcpReceiver, TcpSender};
use irn_transport::{HostNic, NicPoll, ReceiverQp, SenderPoll, SenderQp};
use irn_workload::{incast, FlowSpec, WorkloadSpec};

use crate::config::{ExperimentConfig, Workload};
use crate::result::{RunResult, TransportTotals};

/// Events driving the simulation.
#[derive(Debug, Clone, Copy)]
pub enum Event {
    /// Network-internal event (arrivals, transmit completions, PFC).
    Fabric(FabricEvent),
    /// Flow `i` begins.
    FlowArrival(u32),
    /// A sender's retransmission timer expires.
    QpTimer {
        /// Flow index.
        flow: u32,
        /// Generation token (stale expiries are ignored).
        generation: u64,
    },
    /// A host NIC's pacing wake-up.
    NicWake {
        /// Host index.
        host: u32,
        /// Generation token.
        generation: u64,
    },
}

/// Sender variants (RDMA transports vs the iWARP TCP stack). The size
/// skew between the variants is accepted: senders live in one flat Vec
/// for the whole run, and boxing the large variant would put an
/// indirection on the per-packet poll path.
#[allow(clippy::large_enum_variant)]
enum FlowSender {
    Rdma(SenderQp),
    Tcp(TcpSender),
}

enum FlowReceiver {
    Rdma(ReceiverQp),
    Tcp(TcpReceiver),
}

/// One experiment in flight.
pub struct Simulation {
    cfg: ExperimentConfig,
    queue: EventQueue<Event>,
    fabric: Fabric,
    flows: Vec<FlowSpec>,
    /// Index of the first incast flow, when the workload has one.
    incast_from: Option<usize>,
    senders: Vec<Option<FlowSender>>,
    receivers: Vec<Option<FlowReceiver>>,
    nics: Vec<HostNic>,
    nic_wake: Vec<TimerSlot>,
    metrics: MetricsCollector,
    incast_metrics: MetricsCollector,
    totals: TransportTotals,
    completed: usize,
    finished_at: Time,
}

impl Simulation {
    /// Build the simulation for `cfg` (generates the workload).
    pub fn new(cfg: ExperimentConfig) -> Simulation {
        let topo = cfg.topology.build();
        let fabric = Fabric::new(&topo, cfg.fabric_config());
        let hosts = fabric.hosts();

        let (flows, incast_from) = build_flows(&cfg, hosts);
        assert!(!flows.is_empty(), "workload generated no flows");
        let n = flows.len();

        Simulation {
            // Every flow arrival is pushed up front (see `run`), so the
            // queue holds at least `n` events before the first pop;
            // pre-size for them plus in-flight fabric/timer headroom to
            // avoid repeated reallocation on full-scale runs.
            queue: EventQueue::with_capacity(2 * n + 1024),
            fabric,
            flows,
            incast_from,
            senders: (0..n).map(|_| None).collect(),
            receivers: (0..n).map(|_| None).collect(),
            nics: (0..hosts).map(|_| HostNic::new()).collect(),
            nic_wake: vec![TimerSlot::new(); hosts],
            metrics: MetricsCollector::new(),
            incast_metrics: MetricsCollector::new(),
            totals: TransportTotals::default(),
            completed: 0,
            finished_at: Time::ZERO,
            cfg,
        }
    }

    /// Run to completion (all flows delivered) and report.
    pub fn run(mut self) -> RunResult {
        // Schedule every arrival up front: the flow list is not
        // necessarily sorted (incast bursts are appended after their
        // cross-traffic), and the heap handles the ordering.
        for (i, f) in self.flows.iter().enumerate() {
            self.queue.push(f.at, Event::FlowArrival(i as u32));
        }

        let mut events: u64 = 0;
        while let Some((now, ev)) = self.queue.pop() {
            events += 1;
            assert!(
                events <= self.cfg.max_events,
                "event budget exceeded at {now} with {}/{} flows complete — livelock?",
                self.completed,
                self.flows.len()
            );
            match ev {
                Event::FlowArrival(i) => self.on_flow_arrival(now, i as usize),
                Event::Fabric(fe) => self.on_fabric(now, fe),
                Event::QpTimer { flow, generation } => self.on_qp_timer(now, flow, generation),
                Event::NicWake { host, generation } => {
                    if self.nic_wake[host as usize].fires(generation) {
                        self.try_send(now, HostId(host));
                    }
                }
            }
            if self.completed == self.flows.len() {
                break;
            }
        }
        assert_eq!(
            self.completed,
            self.flows.len(),
            "simulation deadlocked: {}/{} flows completed (no events left)",
            self.completed,
            self.flows.len()
        );

        // Sweep stats from any sender still alive (receiver finished
        // before the sender saw its final ack).
        for s in self.senders.iter().flatten() {
            accumulate(&mut self.totals, s);
        }

        let (primary, incast_metrics) = match self.incast_from {
            None => (self.metrics, None),
            // Pure incast: the incast population is also the primary one.
            Some(0) => (self.incast_metrics.clone(), Some(self.incast_metrics)),
            Some(_) => (self.metrics, Some(self.incast_metrics)),
        };

        RunResult {
            summary: primary.summary(),
            metrics: primary,
            incast_metrics,
            fabric: self.fabric.stats(),
            transport: self.totals,
            events,
            finished_at: self.finished_at,
        }
    }

    fn on_flow_arrival(&mut self, now: Time, i: usize) {
        let spec = self.flows[i];
        debug_assert_eq!(spec.at, now);
        let diameter = self.fabric.diameter_hops();
        let tcfg = self.cfg.transport_config(diameter);
        let flow = FlowId(i as u32);
        let (src, dst) = (HostId(spec.src), HostId(spec.dst));

        let (snd, rcv) = if self.cfg.transport == TransportKind::IwarpTcp {
            let s = TcpSender::new(tcfg.clone(), flow, src, dst, spec.bytes);
            let r = TcpReceiver::new(&tcfg, flow, src, dst, s.total_packets());
            (FlowSender::Tcp(s), FlowReceiver::Tcp(r))
        } else {
            let s = SenderQp::new(tcfg.clone(), flow, src, dst, spec.bytes, self.cfg.cc, now);
            let r = ReceiverQp::new(&tcfg, flow, src, dst, s.total_packets(), self.cfg.cc);
            (FlowSender::Rdma(s), FlowReceiver::Rdma(r))
        };
        self.senders[i] = Some(snd);
        self.receivers[i] = Some(rcv);
        self.nics[spec.src as usize].register(flow);
        self.try_send(now, src);
    }

    fn on_fabric(&mut self, now: Time, fe: FabricEvent) {
        let (fabric, queue) = (&mut self.fabric, &mut self.queue);
        let out = fabric.handle(now, fe, &mut |t, e| queue.push(t, Event::Fabric(e)));
        match out {
            None => {}
            Some(FabricOutput::HostTxReady { host }) => self.try_send(now, host),
            Some(FabricOutput::Deliver { host, pkt }) => self.on_deliver(now, host, pkt),
        }
    }

    fn on_deliver(&mut self, now: Time, host: HostId, pkt: Packet) {
        match pkt.kind {
            PacketKind::Data => {
                let idx = pkt.flow.idx();
                let completed = match self.receivers[idx]
                    .as_mut()
                    .expect("data for a flow that never started")
                {
                    FlowReceiver::Rdma(r) => {
                        let out = r.on_data(now, &pkt);
                        if let Some(ack) = out.ack {
                            self.nics[host.idx()].push_control(ack);
                        }
                        if let Some(cnp) = out.cnp {
                            self.nics[host.idx()].push_control(cnp);
                        }
                        out.completed
                    }
                    FlowReceiver::Tcp(r) => {
                        let (ack, completed) = r.on_data(now, &pkt);
                        self.nics[host.idx()].push_control(ack);
                        completed
                    }
                };
                if completed {
                    self.record_completion(now, idx);
                }
                self.try_send(now, host);
            }
            PacketKind::Ack | PacketKind::Nack => {
                let idx = pkt.flow.idx();
                if let Some(sender) = self.senders[idx].as_mut() {
                    let done = match sender {
                        FlowSender::Rdma(s) => s.on_ack_packet(now, &pkt),
                        FlowSender::Tcp(s) => s.on_ack_packet(now, &pkt),
                    };
                    self.drain_timer(idx);
                    if done {
                        let s = self.senders[idx].take().unwrap();
                        accumulate(&mut self.totals, &s);
                    }
                }
                self.try_send(now, host);
            }
            PacketKind::Cnp => {
                let idx = pkt.flow.idx();
                if let Some(FlowSender::Rdma(s)) = self.senders[idx].as_mut() {
                    s.on_cnp(now);
                }
                // Rate drop needs no immediate send attempt.
            }
        }
    }

    fn on_qp_timer(&mut self, now: Time, flow: u32, generation: u64) {
        let idx = flow as usize;
        let Some(sender) = self.senders[idx].as_mut() else {
            return; // flow finished; stale timer
        };
        let fired = match sender {
            FlowSender::Rdma(s) => s.on_timer(now, generation),
            FlowSender::Tcp(s) => s.on_timer(now, generation),
        };
        if fired {
            self.drain_timer(idx);
            let src = HostId(self.flows[idx].src);
            self.try_send(now, src);
        }
    }

    /// Schedule any timer-arm request the sender produced.
    fn drain_timer(&mut self, idx: usize) {
        let Some(sender) = self.senders[idx].as_mut() else {
            return;
        };
        let req = match sender {
            FlowSender::Rdma(s) => s.take_timer_request(),
            FlowSender::Tcp(s) => s.take_timer_request(),
        };
        if let Some(op) = req {
            self.queue.push(
                op.deadline,
                Event::QpTimer {
                    flow: idx as u32,
                    generation: op.generation,
                },
            );
        }
    }

    /// Keep feeding the host's uplink while it is idle and traffic is
    /// ready; otherwise schedule the earliest pacing wake-up.
    fn try_send(&mut self, now: Time, host: HostId) {
        loop {
            if !self.fabric.host_tx_idle(host) {
                return;
            }
            let (nics, senders) = (&mut self.nics, &mut self.senders);
            let poll = nics[host.idx()].poll(now, |flow, t| match senders[flow.idx()].as_mut() {
                Some(FlowSender::Rdma(s)) => s.poll(t),
                Some(FlowSender::Tcp(s)) => s.poll(t),
                None => SenderPoll::Done,
            });
            match poll {
                NicPoll::Packet(pkt) => {
                    let flow_idx = pkt.flow.idx();
                    let (fabric, queue) = (&mut self.fabric, &mut self.queue);
                    fabric
                        .host_start_tx(now, host, pkt, &mut |t, e| queue.push(t, Event::Fabric(e)));
                    // The sender may have armed its timer in poll().
                    self.drain_timer(flow_idx);
                }
                NicPoll::Wait(t) => {
                    self.schedule_wake(host, t.max(now));
                    return;
                }
                NicPoll::Idle => return,
            }
        }
    }

    /// Deduplicated NIC wake-up scheduling: keep only the earliest.
    fn schedule_wake(&mut self, host: HostId, at: Time) {
        let slot = &mut self.nic_wake[host.idx()];
        let better = slot.deadline().is_none_or(|d| at < d);
        if better {
            let generation = slot.arm(at);
            self.queue.push(
                at,
                Event::NicWake {
                    host: host.0,
                    generation,
                },
            );
        }
    }

    fn record_completion(&mut self, now: Time, idx: usize) {
        let spec = self.flows[idx];
        let hops = self.fabric.path_hops(HostId(spec.src), HostId(spec.dst));
        let header = 48 + self.cfg.extra_header as u64;
        let packets = spec.bytes.max(1).div_ceil(self.cfg.mtu as u64);
        let wire_total = spec.bytes + packets * header;
        let one_pkt = (self.cfg.mtu as u64 + header).min(wire_total);
        let ideal = ideal_fct(
            wire_total,
            one_pkt,
            hops,
            self.cfg.bandwidth.as_bps_f64(),
            self.cfg.prop_delay,
        );
        let record = FlowRecord {
            flow: idx as u32,
            bytes: spec.bytes,
            packets: packets as u32,
            start: spec.at,
            finish: now,
            ideal,
        };
        match self.incast_from {
            Some(boundary) if idx >= boundary => self.incast_metrics.record(record),
            _ => self.metrics.record(record),
        }
        self.completed += 1;
        self.finished_at = self.finished_at.max(now);
    }
}

fn accumulate(t: &mut TransportTotals, s: &FlowSender) {
    match s {
        FlowSender::Rdma(s) => {
            t.sent += s.stats.sent;
            t.retransmitted += s.stats.retransmitted;
            t.nacks += s.stats.nacks;
            t.timeouts += s.stats.timeouts;
            t.cnps += s.stats.cnps;
        }
        FlowSender::Tcp(s) => {
            t.sent += s.stats.sent;
            t.retransmitted += s.stats.fast_retransmits;
            t.timeouts += s.stats.timeouts;
        }
    }
}

/// Materialize the workload into a sorted flow list; returns the index
/// of the first incast flow when there is one.
fn build_flows(cfg: &ExperimentConfig, hosts: usize) -> (Vec<FlowSpec>, Option<usize>) {
    match &cfg.workload {
        Workload::Poisson {
            load,
            sizes,
            flow_count,
        } => {
            let spec = WorkloadSpec {
                hosts,
                load: *load,
                line_rate_bps: cfg.bandwidth.as_bps_f64(),
                sizes: *sizes,
                flow_count: *flow_count,
                seed: cfg.seed,
            };
            (spec.generate(), None)
        }
        Workload::Incast { m, total_bytes } => {
            let flows = incast(hosts, *m, 0, *total_bytes, Time::ZERO, cfg.seed);
            (flows, Some(0))
        }
        Workload::IncastWithCross {
            m,
            total_bytes,
            load,
            sizes,
            flow_count,
        } => {
            let spec = WorkloadSpec {
                hosts,
                load: *load,
                line_rate_bps: cfg.bandwidth.as_bps_f64(),
                sizes: *sizes,
                flow_count: *flow_count,
                seed: cfg.seed,
            };
            let mut flows = spec.generate();
            let boundary = flows.len();
            // The incast fires mid-workload so cross-traffic is warm.
            let mid = flows[boundary / 2].at;
            let mut burst = incast(hosts, *m, 0, *total_bytes, mid, cfg.seed ^ 0x1CA57);
            flows.append(&mut burst);
            // Incast flows stay appended (the engine schedules every
            // arrival up front, so ordering in the list is irrelevant);
            // the boundary index separates the two metric populations.
            (flows, Some(boundary))
        }
        Workload::Explicit(flows) => (flows.clone(), None),
    }
}
