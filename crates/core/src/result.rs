//! Results of one simulation run.

use irn_metrics::{AppMetrics, MetricsCollector, Summary};
use irn_net::FabricStats;
use irn_sim::{Duration, Time};
use serde::{Deserialize, Serialize};

/// Transport-layer counters aggregated over every flow in a run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TransportTotals {
    /// Data packets transmitted (including retransmissions).
    pub sent: u64,
    /// Retransmitted data packets.
    pub retransmitted: u64,
    /// NACKs received by senders.
    pub nacks: u64,
    /// Retransmission timeouts fired.
    pub timeouts: u64,
    /// CNPs received by senders.
    pub cnps: u64,
}

impl TransportTotals {
    /// Fraction of transmissions that were retransmissions.
    pub fn retransmission_rate(&self) -> f64 {
        if self.sent == 0 {
            0.0
        } else {
            self.retransmitted as f64 / self.sent as f64
        }
    }
}

/// Event-loop health counters: per-event-kind totals plus the
/// scheduler's invariant violations. All values are deterministic
/// functions of the config (they count simulation events, not wall
/// clock), so they are safe to compare across runs and job counts.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SchedCounters {
    /// Flow arrivals streamed into the loop.
    pub flow_arrivals: u64,
    /// Fabric events (packet arrivals, transmit completions, PFC).
    pub fabric_events: u64,
    /// Live retransmission-timer expiries delivered.
    pub qp_timer_events: u64,
    /// Live NIC pacing wake-ups delivered.
    pub nic_wake_events: u64,
    /// Timer arms applied to the scheduler.
    pub timer_arms: u64,
    /// Timer cancellations that removed a pending deadline.
    pub timer_cancels: u64,
    /// Cancelled/superseded deadlines reclaimed inside the scheduler.
    /// These were *removed*, not delivered — the pre-scheduler engine
    /// popped and discarded an event for each of them.
    pub stale_timer_reclaims: u64,
    /// Timer events that surfaced for an already-finished flow. The
    /// scheduler's cancel-on-completion makes this structurally zero;
    /// asserted in the integration suite.
    pub stale_timer_events: u64,
    /// Past-scheduled events clamped to "now" (release builds). A
    /// nonzero count means a model scheduled backwards in time — a bug
    /// the old engine silently hid. Asserted zero in the integration
    /// suite.
    pub past_clamps: u64,
}

/// The `memory-v1` gauge: an **analytic** byte accounting of the
/// engine's per-flow state and the collectors' histogram heap — counts
/// × `size_of`, not allocator probes — so the gauge is a deterministic
/// function of the workload, byte-identical at any `--jobs` value and
/// across worker fleets (of the same build; sizes are
/// platform-specific).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemoryStats {
    /// Peak bytes of live flow state: the slab's slot array at its
    /// high-water mark plus the dense flow→slot index.
    pub peak_flow_state_bytes: u64,
    /// Heap bytes held by the metrics collectors' histograms at the
    /// end of the run (monotone: histograms never shrink).
    pub metrics_bytes: u64,
    /// Flows the run completed (the gauge's denominator).
    pub flows: u64,
    /// Allocated histogram bucket slots across all collectors.
    pub hist_buckets: u64,
    /// Peak footprint of the fabric's packet arena: slab slots at the
    /// in-flight high-water mark, with their intrusive links and
    /// free-list entries.
    pub pkt_pool_bytes: u64,
    /// High-water mark of packets simultaneously in flight (the arena
    /// occupancy `diff-memory` watches for pool-growth regressions).
    pub pkt_pool_pkts: u64,
}

impl MemoryStats {
    /// Total peak bytes tracked by the gauge.
    pub fn peak_bytes(&self) -> u64 {
        self.peak_flow_state_bytes + self.metrics_bytes + self.pkt_pool_bytes
    }

    /// Peak bytes per completed flow — the BENCH-trajectory headline
    /// (events/sec tells you speed; this tells you whether a
    /// million-flow sweep fits in memory).
    pub fn bytes_per_flow(&self) -> f64 {
        if self.flows == 0 {
            0.0
        } else {
            self.peak_bytes() as f64 / self.flows as f64
        }
    }
}

/// Everything a finished run reports.
///
/// Serializes field-by-field and deserializes back **bit-exactly**
/// (integers are exact nanosecond/count wire forms; floats use the
/// shortest-round-trip JSON form), which is what lets a remote worker
/// ship its result over the `work-v1` protocol without perturbing the
/// byte-identical-output guarantee of the in-process executor.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunResult {
    /// §4.1 headline metrics over the primary flow population (the
    /// background workload when an incast rides on cross-traffic).
    pub summary: Summary,
    /// Streaming metrics of the primary population (percentiles,
    /// Figure 8 CDFs) — fixed-memory histograms plus exact
    /// accumulators; see the `irn-metrics` accuracy contract.
    pub metrics: MetricsCollector,
    /// Incast flows, when the workload included an incast (RCT lives
    /// here, §4.4.3).
    pub incast_metrics: Option<MetricsCollector>,
    /// Per-operation latency of a closed-loop application (RPC round
    /// trips, allreduce iterations, replicated commits), when the
    /// workload was closed-loop.
    pub app: Option<AppMetrics>,
    /// Fabric counters: drops, pauses, ECN marks.
    pub fabric: FabricStats,
    /// Transport counters.
    pub transport: TransportTotals,
    /// Events processed by the simulation loop (arrivals + deliveries
    /// of live queue events; cancelled timers never surface, so they
    /// are not counted).
    pub events: u64,
    /// Event-loop health counters (per-kind totals, stale/clamp
    /// violations).
    pub sched: SchedCounters,
    /// Virtual time of the last flow completion.
    pub finished_at: Time,
    /// The `memory-v1` gauge: analytic peak-memory accounting.
    pub memory: MemoryStats,
}

impl RunResult {
    /// Incast request completion time (§4.4.3). Panics if the workload
    /// had no incast.
    pub fn rct(&self) -> Duration {
        self.incast_metrics
            .as_ref()
            .expect("workload had no incast")
            .rct()
    }

    /// Drop rate among data packets (e.g. §4.2.2 reports 8.5 % for IRN
    /// without PFC at 70 % load).
    pub fn drop_rate(&self) -> f64 {
        let drops = self.fabric.buffer_drops + self.fabric.injected_drops;
        if self.transport.sent == 0 {
            0.0
        } else {
            drops as f64 / self.transport.sent as f64
        }
    }
}
