//! Results of one simulation run.

use irn_metrics::{MetricsCollector, Summary};
use irn_net::FabricStats;
use irn_sim::{Duration, Time};
use serde::{Deserialize, Serialize};

/// Transport-layer counters aggregated over every flow in a run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TransportTotals {
    /// Data packets transmitted (including retransmissions).
    pub sent: u64,
    /// Retransmitted data packets.
    pub retransmitted: u64,
    /// NACKs received by senders.
    pub nacks: u64,
    /// Retransmission timeouts fired.
    pub timeouts: u64,
    /// CNPs received by senders.
    pub cnps: u64,
}

impl TransportTotals {
    /// Fraction of transmissions that were retransmissions.
    pub fn retransmission_rate(&self) -> f64 {
        if self.sent == 0 {
            0.0
        } else {
            self.retransmitted as f64 / self.sent as f64
        }
    }
}

/// Event-loop health counters: per-event-kind totals plus the
/// scheduler's invariant violations. All values are deterministic
/// functions of the config (they count simulation events, not wall
/// clock), so they are safe to compare across runs and job counts.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SchedCounters {
    /// Flow arrivals streamed into the loop.
    pub flow_arrivals: u64,
    /// Fabric events (packet arrivals, transmit completions, PFC).
    pub fabric_events: u64,
    /// Live retransmission-timer expiries delivered.
    pub qp_timer_events: u64,
    /// Live NIC pacing wake-ups delivered.
    pub nic_wake_events: u64,
    /// Timer arms applied to the scheduler.
    pub timer_arms: u64,
    /// Timer cancellations that removed a pending deadline.
    pub timer_cancels: u64,
    /// Cancelled/superseded deadlines reclaimed inside the scheduler.
    /// These were *removed*, not delivered — the pre-scheduler engine
    /// popped and discarded an event for each of them.
    pub stale_timer_reclaims: u64,
    /// Timer events that surfaced for an already-finished flow. The
    /// scheduler's cancel-on-completion makes this structurally zero;
    /// asserted in the integration suite.
    pub stale_timer_events: u64,
    /// Past-scheduled events clamped to "now" (release builds). A
    /// nonzero count means a model scheduled backwards in time — a bug
    /// the old engine silently hid. Asserted zero in the integration
    /// suite.
    pub past_clamps: u64,
}

/// Everything a finished run reports.
///
/// Serializes field-by-field and deserializes back **bit-exactly**
/// (integers are exact nanosecond/count wire forms; floats use the
/// shortest-round-trip JSON form), which is what lets a remote worker
/// ship its result over the `work-v1` protocol without perturbing the
/// byte-identical-output guarantee of the in-process executor.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunResult {
    /// §4.1 headline metrics over the primary flow population (the
    /// background workload when an incast rides on cross-traffic).
    pub summary: Summary,
    /// Full per-flow records of the primary population (percentiles,
    /// Figure 8 CDFs).
    pub metrics: MetricsCollector,
    /// Incast flows, when the workload included an incast (RCT lives
    /// here, §4.4.3).
    pub incast_metrics: Option<MetricsCollector>,
    /// Fabric counters: drops, pauses, ECN marks.
    pub fabric: FabricStats,
    /// Transport counters.
    pub transport: TransportTotals,
    /// Events processed by the simulation loop (arrivals + deliveries
    /// of live queue events; cancelled timers never surface, so they
    /// are not counted).
    pub events: u64,
    /// Event-loop health counters (per-kind totals, stale/clamp
    /// violations).
    pub sched: SchedCounters,
    /// Virtual time of the last flow completion.
    pub finished_at: Time,
}

impl RunResult {
    /// Incast request completion time (§4.4.3). Panics if the workload
    /// had no incast.
    pub fn rct(&self) -> Duration {
        self.incast_metrics
            .as_ref()
            .expect("workload had no incast")
            .rct()
    }

    /// Drop rate among data packets (e.g. §4.2.2 reports 8.5 % for IRN
    /// without PFC at 70 % load).
    pub fn drop_rate(&self) -> f64 {
        let drops = self.fabric.buffer_drops + self.fabric.injected_drops;
        if self.transport.sent == 0 {
            0.0
        } else {
            drops as f64 / self.transport.sent as f64
        }
    }
}
