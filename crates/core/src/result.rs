//! Results of one simulation run.

use irn_metrics::{MetricsCollector, Summary};
use irn_net::FabricStats;
use irn_sim::{Duration, Time};
use serde::Serialize;

/// Transport-layer counters aggregated over every flow in a run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct TransportTotals {
    /// Data packets transmitted (including retransmissions).
    pub sent: u64,
    /// Retransmitted data packets.
    pub retransmitted: u64,
    /// NACKs received by senders.
    pub nacks: u64,
    /// Retransmission timeouts fired.
    pub timeouts: u64,
    /// CNPs received by senders.
    pub cnps: u64,
}

impl TransportTotals {
    /// Fraction of transmissions that were retransmissions.
    pub fn retransmission_rate(&self) -> f64 {
        if self.sent == 0 {
            0.0
        } else {
            self.retransmitted as f64 / self.sent as f64
        }
    }
}

/// Everything a finished run reports.
#[derive(Debug, Clone, Serialize)]
pub struct RunResult {
    /// §4.1 headline metrics over the primary flow population (the
    /// background workload when an incast rides on cross-traffic).
    pub summary: Summary,
    /// Full per-flow records of the primary population (percentiles,
    /// Figure 8 CDFs).
    pub metrics: MetricsCollector,
    /// Incast flows, when the workload included an incast (RCT lives
    /// here, §4.4.3).
    pub incast_metrics: Option<MetricsCollector>,
    /// Fabric counters: drops, pauses, ECN marks.
    pub fabric: FabricStats,
    /// Transport counters.
    pub transport: TransportTotals,
    /// Events processed by the simulation loop.
    pub events: u64,
    /// Virtual time of the last flow completion.
    pub finished_at: Time,
}

impl RunResult {
    /// Incast request completion time (§4.4.3). Panics if the workload
    /// had no incast.
    pub fn rct(&self) -> Duration {
        self.incast_metrics
            .as_ref()
            .expect("workload had no incast")
            .rct()
    }

    /// Drop rate among data packets (e.g. §4.2.2 reports 8.5 % for IRN
    /// without PFC at 70 % load).
    pub fn drop_rate(&self) -> f64 {
        let drops = self.fabric.buffer_drops + self.fabric.injected_drops;
        if self.transport.sent == 0 {
            0.0
        } else {
            drops as f64 / self.transport.sent as f64
        }
    }
}
