//! Experiment configuration: one struct that pins down everything §4.1
//! fixes, with the paper's default scenario as the starting point.

use irn_net::switch::EcnConfig;
use irn_net::{Bandwidth, PfcConfig};
use irn_sim::Duration;
use irn_transport::cc::CcKind;
use irn_transport::config::{TransportConfig, TransportKind};
use irn_workload::{SizeDistribution, TrafficModel};

/// Which network to build.
///
/// `Hash` + `Eq` make the spec the key of the engine's process-wide
/// routing-table cache (one [`irn_net::NetTables`] per distinct
/// geometry).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TopologySpec {
    /// k-ary three-tier fat-tree (§4.1: k=6 → 54 servers; Table 5 scales
    /// to k=8 and k=10).
    FatTree(usize),
    /// All hosts on one switch (tests, incast microbenchmarks).
    SingleSwitch(usize),
    /// `left` + `right` hosts joined by one inter-switch link.
    Dumbbell(usize, usize),
}

impl TopologySpec {
    /// Materialize the topology description.
    pub fn build(self) -> irn_net::Topology {
        match self {
            TopologySpec::FatTree(k) => irn_net::Topology::fat_tree(k),
            TopologySpec::SingleSwitch(n) => irn_net::Topology::single_switch(n),
            TopologySpec::Dumbbell(l, r) => irn_net::Topology::dumbbell(l, r),
        }
    }

    /// Host count without building. Derived from the same definitions
    /// the builders use ([`irn_net::fat_tree_hosts`] for fat-trees), so
    /// the prediction cannot drift from `build().hosts`.
    pub fn hosts(self) -> usize {
        match self {
            TopologySpec::FatTree(k) => irn_net::fat_tree_hosts(k),
            TopologySpec::SingleSwitch(n) => n,
            TopologySpec::Dumbbell(l, r) => l + r,
        }
    }
}

/// Everything needed to run one experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentConfig {
    /// Network shape.
    pub topology: TopologySpec,
    /// Link rate (uniform).
    pub bandwidth: Bandwidth,
    /// Per-link propagation delay.
    pub prop_delay: Duration,
    /// Per-input-port switch buffer.
    pub buffer_bytes: u64,
    /// Run PFC (lossless) or allow drops.
    pub pfc: bool,
    /// Transport under test.
    pub transport: TransportKind,
    /// Congestion control.
    pub cc: CcKind,
    /// Traffic model (see [`irn_workload::model`]).
    pub traffic: TrafficModel,
    /// Master seed (workload, ECN coins, ECMP salt).
    pub seed: u64,
    /// MTU payload bytes.
    pub mtu: u32,
    /// RTO_high override (`None` ⇒ computed per §4.1: propagation of the
    /// longest path plus a full-buffer drain time, ≈320 µs by default).
    pub rto_high: Option<Duration>,
    /// RTO_low (§3.1: 100 µs).
    pub rto_low: Duration,
    /// N threshold for RTO_low (§3.1: 3).
    pub rto_low_n: u32,
    /// Extra per-packet header (Fig 12 worst case: 16 B).
    pub extra_header: u32,
    /// Retransmission PCIe-fetch delay (Fig 12 worst case: 2 µs).
    pub retx_fetch_delay: Duration,
    /// Random per-hop data-packet loss (fault injection; 0 in the paper).
    pub loss_injection: f64,
    /// Equal-cost path policy: per-flow ECMP (paper default) or §7's
    /// per-packet spraying (reorders within flows).
    pub load_balancing: irn_net::LoadBalancing,
    /// §7's NACK threshold before entering loss recovery (1 = paper
    /// default; raise alongside packet spraying).
    pub nack_threshold: u32,
    /// Safety valve: abort if the event loop exceeds this many events
    /// (catches accidental livelocks in misconfigured experiments).
    pub max_events: u64,
}

impl ExperimentConfig {
    /// The §4.1 default scenario: k=6 fat-tree, 40 Gbps, 2 µs links,
    /// 240 KB buffers (2×BDP), heavy-tailed workload at 70 % load, IRN
    /// without PFC, no congestion control.
    pub fn paper_default(flow_count: usize) -> ExperimentConfig {
        ExperimentConfig {
            topology: TopologySpec::FatTree(6),
            bandwidth: Bandwidth::from_gbps(40),
            prop_delay: Duration::micros(2),
            buffer_bytes: 240_000,
            pfc: false,
            transport: TransportKind::Irn,
            cc: CcKind::None,
            traffic: TrafficModel::Poisson {
                load: 0.7,
                sizes: SizeDistribution::HeavyTailed,
                flow_count,
            },
            seed: 1,
            mtu: 1000,
            rto_high: None,
            rto_low: Duration::micros(100),
            rto_low_n: 3,
            extra_header: 0,
            retx_fetch_delay: Duration::ZERO,
            loss_injection: 0.0,
            load_balancing: irn_net::LoadBalancing::EcmpPerFlow,
            nack_threshold: 1,
            max_events: 5_000_000_000,
        }
    }

    /// A scaled-down variant for tests and Criterion benches: k=4
    /// fat-tree (16 hosts), same relative parameters.
    pub fn quick(flow_count: usize) -> ExperimentConfig {
        ExperimentConfig {
            topology: TopologySpec::FatTree(4),
            ..ExperimentConfig::paper_default(flow_count)
        }
    }

    /// Select the transport preset.
    pub fn with_transport(mut self, t: TransportKind) -> ExperimentConfig {
        self.transport = t;
        self
    }

    /// Enable/disable PFC.
    pub fn with_pfc(mut self, pfc: bool) -> ExperimentConfig {
        self.pfc = pfc;
        self
    }

    /// Select congestion control.
    pub fn with_cc(mut self, cc: CcKind) -> ExperimentConfig {
        self.cc = cc;
        self
    }

    /// Replace the traffic model.
    pub fn with_traffic(mut self, t: TrafficModel) -> ExperimentConfig {
        self.traffic = t;
        self
    }

    /// Replace the seed.
    pub fn with_seed(mut self, seed: u64) -> ExperimentConfig {
        self.seed = seed;
        self
    }

    // ---- derived quantities (§4.1 arithmetic) ----

    /// Network round-trip propagation time over the longest path.
    pub fn max_rtt(&self, diameter_hops: usize) -> Duration {
        self.prop_delay * (2 * diameter_hops) as u64
    }

    /// Bandwidth-delay product of the longest path, bytes (§4.1: 120 KB
    /// for the default).
    pub fn bdp_bytes(&self, diameter_hops: usize) -> u64 {
        self.bandwidth.bytes_in(self.max_rtt(diameter_hops))
    }

    /// BDP cap in MTU-sized packets (§3.2/§4.1: ≈110 for the default).
    pub fn bdp_cap_packets(&self, diameter_hops: usize) -> u32 {
        (self.bdp_bytes(diameter_hops) / (self.mtu as u64 + 48)) as u32
    }

    /// RTO_high per §4.1: "the sum of the propagation delay on the
    /// longest path and the maximum queuing delay a packet would see if
    /// the switch buffer on a congested link is completely full"
    /// (≈320 µs for the default).
    pub fn rto_high(&self, diameter_hops: usize) -> Duration {
        if let Some(d) = self.rto_high {
            return d;
        }
        let prop = self.prop_delay * diameter_hops as u64;
        let drain = Duration::from_secs_f64(
            self.buffer_bytes as f64 * 8.0 / self.bandwidth.as_bps_f64()
                * (diameter_hops as f64 - 1.0).max(1.0),
        );
        // Round up to a clean 10 µs grain (the paper quotes ~320 µs).
        let ns = (prop + drain).as_nanos();
        Duration::nanos(ns.div_ceil(10_000) * 10_000)
    }

    /// Build the transport configuration for this experiment.
    pub fn transport_config(&self, diameter_hops: usize) -> TransportConfig {
        let mut t = TransportConfig::preset(self.transport, self.pfc);
        t.mtu = self.mtu;
        t.line_rate = self.bandwidth;
        t.rto_high = self.rto_high(diameter_hops);
        t.rto_low = self.rto_low;
        t.rto_low_n = self.rto_low_n;
        t.extra_header = self.extra_header;
        t.retx_fetch_delay = self.retx_fetch_delay;
        t.nack_threshold = self.nack_threshold;
        t.cc = self.cc;
        if t.bdp_cap.is_some() {
            t.bdp_cap = Some(self.bdp_cap_packets(diameter_hops).max(1));
        }
        t
    }

    /// Build the fabric configuration.
    pub fn fabric_config(&self) -> irn_net::FabricConfig {
        let max_frame = (self.mtu + 48 + self.extra_header) as u64;
        irn_net::FabricConfig {
            bandwidth: self.bandwidth,
            prop_delay: self.prop_delay,
            buffer_bytes: self.buffer_bytes,
            pfc: self.pfc.then(|| {
                PfcConfig::for_buffer(
                    self.buffer_bytes,
                    self.bandwidth,
                    self.prop_delay,
                    max_frame,
                )
            }),
            ecn: self.cc.needs_ecn().then(EcnConfig::dcqcn_default),
            loss_injection: self.loss_injection,
            load_balancing: self.load_balancing,
            seed: self.seed ^ 0xFAB0_CAFE,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_arithmetic() {
        let c = ExperimentConfig::paper_default(100);
        // §4.1: 6-hop diameter ⇒ 24 µs RTT ⇒ 120 KB BDP ⇒ ~110 packets.
        assert_eq!(c.max_rtt(6), Duration::micros(24));
        assert_eq!(c.bdp_bytes(6), 120_000);
        assert_eq!(c.bdp_cap_packets(6), 114); // 120000 / 1048
                                               // RTO_high ≈ 320 µs ("approximately 320 µs for our default").
        let rto = c.rto_high(6);
        assert!(
            (Duration::micros(250)..=Duration::micros(400)).contains(&rto),
            "computed RTO_high {rto} should be ≈320 µs"
        );
    }

    #[test]
    fn topology_host_counts() {
        assert_eq!(TopologySpec::FatTree(6).hosts(), 54);
        assert_eq!(TopologySpec::FatTree(8).hosts(), 128);
        assert_eq!(TopologySpec::FatTree(10).hosts(), 250);
        assert_eq!(TopologySpec::SingleSwitch(9).hosts(), 9);
        assert_eq!(TopologySpec::Dumbbell(3, 4).hosts(), 7);
    }

    /// The predicted host count and the built topology's host count
    /// come from one definition; pin the agreement across the whole
    /// sweep range (paper k=6, Table 5 k=8/10, beyond-paper k=12).
    #[test]
    fn fat_tree_hosts_prediction_matches_build() {
        for k in [4usize, 6, 8, 10, 12] {
            let spec = TopologySpec::FatTree(k);
            assert_eq!(
                spec.hosts(),
                spec.build().hosts,
                "hosts() must equal build().hosts for k={k}"
            );
        }
        for spec in [TopologySpec::SingleSwitch(5), TopologySpec::Dumbbell(2, 6)] {
            assert_eq!(spec.hosts(), spec.build().hosts);
        }
    }

    #[test]
    fn transport_config_respects_pfc_for_roce() {
        let c = ExperimentConfig::paper_default(10)
            .with_transport(TransportKind::Roce)
            .with_pfc(true);
        let t = c.transport_config(6);
        assert!(!t.timeouts_enabled);
        assert_eq!(t.bdp_cap, None);
        let c2 = c.with_pfc(false);
        assert!(c2.transport_config(6).timeouts_enabled);
    }

    #[test]
    fn ecn_enabled_only_for_marking_cc() {
        let base = ExperimentConfig::paper_default(10);
        assert!(base.fabric_config().ecn.is_none());
        assert!(base
            .clone()
            .with_cc(CcKind::Dcqcn)
            .fabric_config()
            .ecn
            .is_some());
        assert!(base
            .clone()
            .with_cc(CcKind::Timely)
            .fabric_config()
            .ecn
            .is_none());
    }

    #[test]
    fn pfc_threshold_below_buffer() {
        let c = ExperimentConfig::paper_default(10).with_pfc(true);
        let f = c.fabric_config();
        let pfc = f.pfc.unwrap();
        assert!(pfc.xoff_bytes < c.buffer_bytes);
        assert!(pfc.xoff_bytes > c.buffer_bytes - 25_000, "≈220 KB per §4.1");
    }
}
