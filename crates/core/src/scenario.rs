//! `Scenario` — the declarative, validated, JSON-round-trippable
//! experiment description.
//!
//! A scenario is the *data* form of an experiment: everything an
//! [`ExperimentConfig`] pins down, plus a display name, expressible as
//! a `scenario-v1` JSON document (see `docs/SCENARIOS.md` for the field
//! reference). The type upholds one invariant: **a `Scenario` that
//! exists is valid**. Both constructors — [`Scenario::from_config`] and
//! [`Scenario::from_json_str`] — run the full validation and return a
//! typed [`ScenarioError`] instead of letting a bad parameter panic
//! mid-run, which is what lets the `repro` CLI surface config mistakes
//! as `exit(2)` with a message naming the offending field.
//!
//! Round-trip contract: `serialize → parse → serialize` is
//! byte-identical (canonical field order, shortest-round-trip floats,
//! full form with defaults materialized), and a parsed scenario's
//! config equals the original — so a scenario file, or a serialized
//! harness cell shipped to a remote worker, reproduces bit-identical
//! results.

use crate::config::ExperimentConfig;
use crate::TopologySpec;
use irn_net::LoadBalancing;
use irn_sim::{Duration, Time};
use irn_transport::cc::CcKind;
use irn_transport::config::TransportKind;
use irn_workload::{
    AllreduceAlgo, Component, FlowSpec, Population, SizeDistribution, Start, TrafficError,
    TrafficModel,
};
use serde::json::{self, Value};
use serde::{DeError, Deserialize, Serialize};

/// The schema identifier every scenario document carries.
pub const SCENARIO_SCHEMA: &str = "scenario-v1";

/// A named, validated experiment description.
///
/// Construction always validates; see the module docs for the
/// invariant. The config is exposed read-only ([`Scenario::config`]) so
/// the only ways to obtain a `Scenario` keep it valid.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    name: String,
    cfg: ExperimentConfig,
}

impl Scenario {
    /// Wrap a config under a display name, validating every parameter.
    pub fn from_config(
        name: impl Into<String>,
        cfg: ExperimentConfig,
    ) -> Result<Scenario, ScenarioError> {
        let name = name.into();
        validate(&name, &cfg)?;
        Ok(Scenario { name, cfg })
    }

    /// Start a builder from the paper's §4.1 defaults.
    pub fn builder(name: impl Into<String>) -> ScenarioBuilder {
        ScenarioBuilder {
            name: name.into(),
            cfg: ExperimentConfig::paper_default(1000),
        }
    }

    /// The display name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The validated experiment configuration.
    pub fn config(&self) -> &ExperimentConfig {
        &self.cfg
    }

    /// Unwrap into the config.
    pub fn into_config(self) -> ExperimentConfig {
        self.cfg
    }

    /// This scenario re-keyed to a different seed (a seed swap cannot
    /// invalidate a valid scenario).
    pub fn with_seed(&self, seed: u64) -> Scenario {
        Scenario {
            name: self.name.clone(),
            cfg: self.cfg.clone().with_seed(seed),
        }
    }

    /// This scenario under a different display name (the config is
    /// unchanged, so only the name needs re-validating).
    pub fn with_name(&self, name: impl Into<String>) -> Result<Scenario, ScenarioError> {
        let name = name.into();
        if name.is_empty() {
            return Err(ScenarioError::EmptyName);
        }
        Ok(Scenario {
            name,
            cfg: self.cfg.clone(),
        })
    }

    /// A filesystem-safe version of the name: lowercase alphanumerics,
    /// `.`, `_` and `-`, with every other run of characters collapsed
    /// to a single `-`.
    pub fn slug(&self) -> String {
        slugify(&self.name)
    }

    /// Parse and validate a `scenario-v1` JSON document.
    pub fn from_json_str(text: &str) -> Result<Scenario, ScenarioError> {
        let v = json::from_str(text).map_err(|e| ScenarioError::Parse(e.to_string()))?;
        Scenario::from_json_value(&v)
    }

    /// Parse and validate a `scenario-v1` value tree.
    pub fn from_json_value(v: &Value) -> Result<Scenario, ScenarioError> {
        parse_scenario(v)
    }

    /// Serialize to the canonical `scenario-v1` value tree (full form:
    /// every field present, defaults materialized, fixed order).
    pub fn to_json_value(&self) -> Value {
        let cfg = &self.cfg;
        Value::Object(vec![
            ("schema".into(), SCENARIO_SCHEMA.to_json()),
            ("name".into(), self.name.to_json()),
            ("topology".into(), topology_to_json(cfg.topology)),
            ("bandwidth_mbps".into(), cfg.bandwidth.as_mbps().to_json()),
            ("prop_delay_ns".into(), cfg.prop_delay.as_nanos().to_json()),
            ("buffer_bytes".into(), cfg.buffer_bytes.to_json()),
            ("pfc".into(), cfg.pfc.to_json()),
            ("transport".into(), transport_name(cfg.transport).to_json()),
            ("cc".into(), cc_name(cfg.cc).to_json()),
            ("traffic".into(), traffic_to_json(&cfg.traffic)),
            ("seed".into(), cfg.seed.to_json()),
            ("mtu".into(), cfg.mtu.to_json()),
            (
                "rto_high_ns".into(),
                cfg.rto_high.map(|d| d.as_nanos()).to_json(),
            ),
            ("rto_low_ns".into(), cfg.rto_low.as_nanos().to_json()),
            ("rto_low_n".into(), cfg.rto_low_n.to_json()),
            ("extra_header".into(), cfg.extra_header.to_json()),
            (
                "retx_fetch_delay_ns".into(),
                cfg.retx_fetch_delay.as_nanos().to_json(),
            ),
            ("loss_injection".into(), cfg.loss_injection.to_json()),
            (
                "load_balancing".into(),
                lb_name(cfg.load_balancing).to_json(),
            ),
            ("nack_threshold".into(), cfg.nack_threshold.to_json()),
            ("max_events".into(), cfg.max_events.to_json()),
        ])
    }

    /// Serialize to pretty-printed JSON text with a trailing newline
    /// (the on-disk scenario-file form).
    pub fn to_json_string(&self) -> String {
        let mut text = json::to_string_pretty(&self.to_json_value());
        text.push('\n');
        text
    }
}

impl Serialize for Scenario {
    fn to_json(&self) -> Value {
        self.to_json_value()
    }
}

impl Deserialize for Scenario {
    fn from_json(v: &Value) -> Result<Scenario, DeError> {
        Scenario::from_json_value(v).map_err(|e| DeError::new(e.to_string()))
    }
}

/// Why a scenario cannot describe a runnable experiment. Every
/// user-reachable configuration mistake surfaces as one of these (and
/// as `exit(2)` at the CLI) instead of a panic.
#[derive(Debug, Clone, PartialEq)]
pub enum ScenarioError {
    /// The document is not valid JSON.
    Parse(String),
    /// A field is missing, has the wrong type, or is out of range for
    /// its primitive type (path included).
    Field(DeError),
    /// The document's `schema` field is not [`SCENARIO_SCHEMA`].
    UnknownSchema {
        /// What the document declared.
        found: String,
    },
    /// An object carries a field the schema does not define.
    UnknownField {
        /// Dotted path of the unknown field.
        field: String,
    },
    /// An enum-like field names an unknown alternative.
    UnknownName {
        /// Dotted path of the field.
        field: String,
        /// The unrecognized name.
        found: String,
        /// The accepted names.
        expected: &'static [&'static str],
    },
    /// The scenario name is empty.
    EmptyName,
    /// Fat-tree arity must be even and at least 2.
    OddFatTree {
        /// The offending arity.
        k: usize,
    },
    /// The topology has fewer than two hosts.
    TooFewHosts {
        /// The host count on offer.
        hosts: usize,
    },
    /// MTU must be at least one byte.
    ZeroMtu,
    /// Link bandwidth must be positive.
    ZeroBandwidth,
    /// Per-port buffering must be positive.
    ZeroBuffer,
    /// Loss injection is a probability below 1 (1 would drop every
    /// packet and the run could never complete).
    LossOutOfRange {
        /// The offending probability.
        loss: f64,
    },
    /// The event budget must be positive.
    ZeroMaxEvents,
    /// The NACK threshold must be at least 1.
    ZeroNackThreshold,
    /// The traffic model is invalid.
    Traffic(TrafficError),
}

impl std::fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScenarioError::Parse(msg) => write!(f, "{msg}"),
            ScenarioError::Field(e) => write!(f, "{e}"),
            ScenarioError::UnknownSchema { found } => {
                write!(f, "unknown schema '{found}', expected '{SCENARIO_SCHEMA}'")
            }
            ScenarioError::UnknownField { field } => {
                write!(f, "unknown field '{field}'")
            }
            ScenarioError::UnknownName {
                field,
                found,
                expected,
            } => write!(
                f,
                "at {field}: unknown name '{found}' (expected one of: {})",
                expected.join(", ")
            ),
            ScenarioError::EmptyName => write!(f, "scenario name must not be empty"),
            ScenarioError::OddFatTree { k } => {
                write!(f, "fat-tree arity must be even and >= 2, got k={k}")
            }
            ScenarioError::TooFewHosts { hosts } => {
                write!(f, "topology must have at least 2 hosts, has {hosts}")
            }
            ScenarioError::ZeroMtu => write!(f, "mtu must be at least 1 byte"),
            ScenarioError::ZeroBandwidth => write!(f, "bandwidth_mbps must be positive"),
            ScenarioError::ZeroBuffer => write!(f, "buffer_bytes must be positive"),
            ScenarioError::LossOutOfRange { loss } => {
                write!(f, "loss_injection must be in [0, 1), got {loss}")
            }
            ScenarioError::ZeroMaxEvents => write!(f, "max_events must be positive"),
            ScenarioError::ZeroNackThreshold => {
                write!(f, "nack_threshold must be at least 1")
            }
            ScenarioError::Traffic(e) => write!(f, "traffic: {e}"),
        }
    }
}

impl std::error::Error for ScenarioError {}

impl From<TrafficError> for ScenarioError {
    fn from(e: TrafficError) -> ScenarioError {
        ScenarioError::Traffic(e)
    }
}

impl From<DeError> for ScenarioError {
    fn from(e: DeError) -> ScenarioError {
        ScenarioError::Field(e)
    }
}

/// Chained construction of a [`Scenario`] from the paper's defaults;
/// [`ScenarioBuilder::build`] runs the full validation.
#[derive(Debug, Clone)]
pub struct ScenarioBuilder {
    name: String,
    cfg: ExperimentConfig,
}

impl ScenarioBuilder {
    /// Replace the network shape.
    pub fn topology(mut self, t: TopologySpec) -> Self {
        self.cfg.topology = t;
        self
    }

    /// Replace the traffic model.
    pub fn traffic(mut self, t: TrafficModel) -> Self {
        self.cfg.traffic = t;
        self
    }

    /// Select the transport preset.
    pub fn transport(mut self, t: TransportKind) -> Self {
        self.cfg.transport = t;
        self
    }

    /// Enable/disable PFC.
    pub fn pfc(mut self, pfc: bool) -> Self {
        self.cfg.pfc = pfc;
        self
    }

    /// Select congestion control.
    pub fn cc(mut self, cc: CcKind) -> Self {
        self.cfg.cc = cc;
        self
    }

    /// Replace the master seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.cfg.seed = seed;
        self
    }

    /// Escape hatch for the long tail of knobs: mutate the config
    /// directly (still validated at [`ScenarioBuilder::build`]).
    pub fn configure(mut self, f: impl FnOnce(&mut ExperimentConfig)) -> Self {
        f(&mut self.cfg);
        self
    }

    /// Validate and produce the scenario.
    pub fn build(self) -> Result<Scenario, ScenarioError> {
        Scenario::from_config(self.name, self.cfg)
    }
}

// ---------------------------------------------------------------------
// Validation
// ---------------------------------------------------------------------

fn validate(name: &str, cfg: &ExperimentConfig) -> Result<(), ScenarioError> {
    if name.is_empty() {
        return Err(ScenarioError::EmptyName);
    }
    if let TopologySpec::FatTree(k) = cfg.topology {
        if k < 2 || k % 2 != 0 {
            return Err(ScenarioError::OddFatTree { k });
        }
    }
    let hosts = cfg.topology.hosts();
    if hosts < 2 {
        return Err(ScenarioError::TooFewHosts { hosts });
    }
    if cfg.mtu == 0 {
        return Err(ScenarioError::ZeroMtu);
    }
    if cfg.buffer_bytes == 0 {
        return Err(ScenarioError::ZeroBuffer);
    }
    if !(cfg.loss_injection >= 0.0 && cfg.loss_injection < 1.0) {
        return Err(ScenarioError::LossOutOfRange {
            loss: cfg.loss_injection,
        });
    }
    if cfg.max_events == 0 {
        return Err(ScenarioError::ZeroMaxEvents);
    }
    if cfg.nack_threshold == 0 {
        return Err(ScenarioError::ZeroNackThreshold);
    }
    cfg.traffic.validate(hosts)?;
    Ok(())
}

fn slugify(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    let mut dash = false;
    for c in name.chars() {
        let c = c.to_ascii_lowercase();
        if c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '-') {
            out.push(c);
            dash = false;
        } else if !dash && !out.is_empty() {
            out.push('-');
            dash = true;
        }
    }
    let out = out.trim_matches('-').to_string();
    if out.is_empty() {
        "scenario".to_string()
    } else {
        out
    }
}

// ---------------------------------------------------------------------
// Name tables (enum-like string fields)
// ---------------------------------------------------------------------

macro_rules! name_table {
    ($ty:ty, $names:ident, $to:ident, $from:ident, [$(($variant:path, $name:literal)),+ $(,)?]) => {
        const $names: &[&str] = &[$($name),+];

        fn $to(v: $ty) -> &'static str {
            match v {
                $($variant => $name,)+
            }
        }

        fn $from(s: &str, field: &str) -> Result<$ty, ScenarioError> {
            match s {
                $($name => Ok($variant),)+
                _ => Err(ScenarioError::UnknownName {
                    field: field.to_string(),
                    found: s.to_string(),
                    expected: $names,
                }),
            }
        }
    };
}

name_table!(
    TransportKind,
    TRANSPORT_NAMES,
    transport_name,
    transport_from,
    [
        (TransportKind::Irn, "irn"),
        (TransportKind::Roce, "roce"),
        (TransportKind::IrnGoBackN, "irn_go_back_n"),
        (TransportKind::IrnNoBdpFc, "irn_no_bdp_fc"),
        (TransportKind::IwarpTcp, "iwarp_tcp"),
    ]
);

name_table!(
    CcKind,
    CC_NAMES,
    cc_name,
    cc_from,
    [
        (CcKind::None, "none"),
        (CcKind::Timely, "timely"),
        (CcKind::Dcqcn, "dcqcn"),
        (CcKind::Aimd, "aimd"),
        (CcKind::Dctcp, "dctcp"),
    ]
);

name_table!(
    LoadBalancing,
    LB_NAMES,
    lb_name,
    lb_from,
    [
        (LoadBalancing::EcmpPerFlow, "ecmp_per_flow"),
        (LoadBalancing::PacketSpray, "packet_spray"),
    ]
);

name_table!(
    Population,
    POPULATION_NAMES,
    population_name,
    population_from,
    [
        (Population::Primary, "primary"),
        (Population::Incast, "incast"),
    ]
);

name_table!(
    AllreduceAlgo,
    ALGO_NAMES,
    algo_name,
    algo_from,
    [(AllreduceAlgo::Ring, "ring"), (AllreduceAlgo::Tree, "tree")]
);

// ---------------------------------------------------------------------
// Serialization (Scenario → Value)
// ---------------------------------------------------------------------

fn topology_to_json(t: TopologySpec) -> Value {
    match t {
        TopologySpec::FatTree(k) => {
            tagged("fat_tree", Value::Object(vec![("k".into(), k.to_json())]))
        }
        TopologySpec::SingleSwitch(n) => tagged(
            "single_switch",
            Value::Object(vec![("hosts".into(), n.to_json())]),
        ),
        TopologySpec::Dumbbell(l, r) => tagged(
            "dumbbell",
            Value::Object(vec![
                ("left".into(), l.to_json()),
                ("right".into(), r.to_json()),
            ]),
        ),
    }
}

fn sizes_to_json(s: SizeDistribution) -> Value {
    match s {
        SizeDistribution::HeavyTailed => "heavy_tailed".to_json(),
        SizeDistribution::Uniform500KbTo5Mb => "uniform_500kb_to_5mb".to_json(),
        SizeDistribution::Fixed(b) => tagged("fixed", b.to_json()),
    }
}

fn start_to_json(s: Start) -> Value {
    match s {
        Start::Zero => "zero".to_json(),
        Start::PriorMedian => "prior_median".to_json(),
        Start::At(d) => tagged("at_ns", d.as_nanos().to_json()),
    }
}

fn traffic_to_json(t: &TrafficModel) -> Value {
    match t {
        TrafficModel::Poisson {
            load,
            sizes,
            flow_count,
        } => tagged(
            "poisson",
            Value::Object(vec![
                ("load".into(), load.to_json()),
                ("sizes".into(), sizes_to_json(*sizes)),
                ("flows".into(), flow_count.to_json()),
            ]),
        ),
        TrafficModel::BurstyPoisson {
            load,
            sizes,
            flow_count,
            duty_cycle,
            burst_flows,
        } => tagged(
            "bursty_poisson",
            Value::Object(vec![
                ("load".into(), load.to_json()),
                ("sizes".into(), sizes_to_json(*sizes)),
                ("flows".into(), flow_count.to_json()),
                ("duty_cycle".into(), duty_cycle.to_json()),
                ("burst_flows".into(), burst_flows.to_json()),
            ]),
        ),
        TrafficModel::Incast { m, total_bytes } => tagged(
            "incast",
            Value::Object(vec![
                ("m".into(), m.to_json()),
                ("total_bytes".into(), total_bytes.to_json()),
            ]),
        ),
        TrafficModel::Shuffle {
            flow_bytes,
            rounds,
            round_gap,
        } => tagged(
            "shuffle",
            Value::Object(vec![
                ("flow_bytes".into(), flow_bytes.to_json()),
                ("rounds".into(), rounds.to_json()),
                ("round_gap_ns".into(), round_gap.as_nanos().to_json()),
            ]),
        ),
        TrafficModel::Explicit(flows) => tagged(
            "explicit",
            Value::Array(
                flows
                    .iter()
                    .map(|f| {
                        Value::Object(vec![
                            ("src".into(), f.src.to_json()),
                            ("dst".into(), f.dst.to_json()),
                            ("bytes".into(), f.bytes.to_json()),
                            ("at_ns".into(), f.at.as_nanos().to_json()),
                        ])
                    })
                    .collect(),
            ),
        ),
        TrafficModel::RpcClosedLoop {
            clients,
            ops_per_client,
            window,
            request_bytes,
            response_bytes,
            think,
            fanout,
        } => tagged(
            "rpc_closed_loop",
            Value::Object(vec![
                ("clients".into(), clients.to_json()),
                ("ops_per_client".into(), ops_per_client.to_json()),
                ("window".into(), window.to_json()),
                ("request_bytes".into(), request_bytes.to_json()),
                ("response_bytes".into(), response_bytes.to_json()),
                ("think_ns".into(), think.as_nanos().to_json()),
                ("fanout".into(), fanout.to_json()),
            ]),
        ),
        TrafficModel::Allreduce {
            algorithm,
            participants,
            bytes,
            iterations,
        } => tagged(
            "allreduce",
            Value::Object(vec![
                ("algorithm".into(), algo_name(*algorithm).to_json()),
                ("participants".into(), participants.to_json()),
                ("bytes".into(), bytes.to_json()),
                ("iterations".into(), iterations.to_json()),
            ]),
        ),
        TrafficModel::LeaderReplicate {
            clients,
            followers,
            quorum,
            ops_per_client,
            request_bytes,
            ack_bytes,
            think,
        } => tagged(
            "leader_replicate",
            Value::Object(vec![
                ("clients".into(), clients.to_json()),
                ("followers".into(), followers.to_json()),
                ("quorum".into(), quorum.to_json()),
                ("ops_per_client".into(), ops_per_client.to_json()),
                ("request_bytes".into(), request_bytes.to_json()),
                ("ack_bytes".into(), ack_bytes.to_json()),
                ("think_ns".into(), think.as_nanos().to_json()),
            ]),
        ),
        TrafficModel::Compose(parts) => tagged(
            "compose",
            Value::Array(
                parts
                    .iter()
                    .map(|p| {
                        Value::Object(vec![
                            ("traffic".into(), traffic_to_json(&p.model)),
                            ("population".into(), population_name(p.population).to_json()),
                            ("seed_salt".into(), p.seed_salt.to_json()),
                            ("start".into(), start_to_json(p.start)),
                        ])
                    })
                    .collect(),
            ),
        ),
    }
}

fn tagged(tag: &str, payload: Value) -> Value {
    Value::Object(vec![(tag.to_string(), payload)])
}

// ---------------------------------------------------------------------
// Parsing (Value → Scenario), strict: unknown fields are errors
// ---------------------------------------------------------------------

/// Reject fields outside `allowed` (typo protection; `path` prefixes
/// the reported name).
fn check_fields(v: &Value, allowed: &[&str], path: &str) -> Result<(), ScenarioError> {
    let Value::Object(pairs) = v else {
        return Err(DeError::expected("an object", v)
            .in_field(path.trim_end_matches('.'))
            .into());
    };
    for (k, _) in pairs {
        if !allowed.contains(&k.as_str()) {
            return Err(ScenarioError::UnknownField {
                field: format!("{path}{k}"),
            });
        }
    }
    Ok(())
}

/// A required field (missing is an error naming the path).
fn req<T: Deserialize>(v: &Value, key: &str, path: &str) -> Result<T, ScenarioError> {
    if v.get(key).is_none() {
        return Err(ScenarioError::Field(DeError::new(format!(
            "missing required field '{path}{key}'"
        ))));
    }
    field(v, key, path)
}

/// An optional field with a default.
fn opt<T: Deserialize>(v: &Value, key: &str, path: &str, default: T) -> Result<T, ScenarioError> {
    if v.get(key).is_none() {
        return Ok(default);
    }
    field(v, key, path)
}

fn field<T: Deserialize>(v: &Value, key: &str, path: &str) -> Result<T, ScenarioError> {
    serde::de_field(v, key).map_err(|e| {
        let mut e = e;
        if !path.is_empty() {
            e.path = format!("{path}{}", e.path);
        }
        ScenarioError::Field(e)
    })
}

/// The single `{tag: payload}` pair of an externally tagged value.
fn tag_of<'v>(v: &'v Value, path: &str) -> Result<(&'v str, &'v Value), ScenarioError> {
    match v {
        Value::Object(pairs) if pairs.len() == 1 => Ok((pairs[0].0.as_str(), &pairs[0].1)),
        other => Err(ScenarioError::Field(
            DeError::expected("an object with exactly one key", other)
                .in_field(path.trim_end_matches('.')),
        )),
    }
}

fn parse_scenario(v: &Value) -> Result<Scenario, ScenarioError> {
    check_fields(
        v,
        &[
            "schema",
            "name",
            "topology",
            "bandwidth_mbps",
            "prop_delay_ns",
            "buffer_bytes",
            "pfc",
            "transport",
            "cc",
            "traffic",
            "seed",
            "mtu",
            "rto_high_ns",
            "rto_low_ns",
            "rto_low_n",
            "extra_header",
            "retx_fetch_delay_ns",
            "loss_injection",
            "load_balancing",
            "nack_threshold",
            "max_events",
        ],
        "",
    )?;
    let schema: String = req(v, "schema", "")?;
    if schema != SCENARIO_SCHEMA {
        return Err(ScenarioError::UnknownSchema { found: schema });
    }
    let name: String = req(v, "name", "")?;
    let topology =
        parse_topology(v.get("topology").ok_or_else(|| {
            ScenarioError::Field(DeError::new("missing required field 'topology'"))
        })?)?;
    let traffic = parse_traffic(
        v.get("traffic").ok_or_else(|| {
            ScenarioError::Field(DeError::new("missing required field 'traffic'"))
        })?,
        "traffic.",
    )?;

    // Everything else defaults to the paper's §4.1 values.
    let d = ExperimentConfig::paper_default(1000);
    let bandwidth_mbps: u64 = opt(v, "bandwidth_mbps", "", d.bandwidth.as_mbps())?;
    if bandwidth_mbps == 0 {
        return Err(ScenarioError::ZeroBandwidth);
    }
    let cfg = ExperimentConfig {
        topology,
        bandwidth: irn_net::Bandwidth::from_mbps(bandwidth_mbps),
        prop_delay: Duration::nanos(opt(v, "prop_delay_ns", "", d.prop_delay.as_nanos())?),
        buffer_bytes: opt(v, "buffer_bytes", "", d.buffer_bytes)?,
        pfc: opt(v, "pfc", "", d.pfc)?,
        transport: transport_from(
            &opt::<String>(v, "transport", "", transport_name(d.transport).to_string())?,
            "transport",
        )?,
        cc: cc_from(
            &opt::<String>(v, "cc", "", cc_name(d.cc).to_string())?,
            "cc",
        )?,
        traffic,
        seed: opt(v, "seed", "", d.seed)?,
        mtu: opt(v, "mtu", "", d.mtu)?,
        rto_high: opt::<Option<u64>>(v, "rto_high_ns", "", None)?.map(Duration::nanos),
        rto_low: Duration::nanos(opt(v, "rto_low_ns", "", d.rto_low.as_nanos())?),
        rto_low_n: opt(v, "rto_low_n", "", d.rto_low_n)?,
        extra_header: opt(v, "extra_header", "", d.extra_header)?,
        retx_fetch_delay: Duration::nanos(opt(
            v,
            "retx_fetch_delay_ns",
            "",
            d.retx_fetch_delay.as_nanos(),
        )?),
        loss_injection: opt(v, "loss_injection", "", d.loss_injection)?,
        load_balancing: lb_from(
            &opt::<String>(
                v,
                "load_balancing",
                "",
                lb_name(d.load_balancing).to_string(),
            )?,
            "load_balancing",
        )?,
        nack_threshold: opt(v, "nack_threshold", "", d.nack_threshold)?,
        max_events: opt(v, "max_events", "", d.max_events)?,
    };
    Scenario::from_config(name, cfg)
}

fn parse_topology(v: &Value) -> Result<TopologySpec, ScenarioError> {
    let (tag, payload) = tag_of(v, "topology.")?;
    match tag {
        "fat_tree" => {
            check_fields(payload, &["k"], "topology.fat_tree.")?;
            Ok(TopologySpec::FatTree(req(
                payload,
                "k",
                "topology.fat_tree.",
            )?))
        }
        "single_switch" => {
            check_fields(payload, &["hosts"], "topology.single_switch.")?;
            Ok(TopologySpec::SingleSwitch(req(
                payload,
                "hosts",
                "topology.single_switch.",
            )?))
        }
        "dumbbell" => {
            check_fields(payload, &["left", "right"], "topology.dumbbell.")?;
            Ok(TopologySpec::Dumbbell(
                req(payload, "left", "topology.dumbbell.")?,
                req(payload, "right", "topology.dumbbell.")?,
            ))
        }
        other => Err(ScenarioError::UnknownName {
            field: "topology".to_string(),
            found: other.to_string(),
            expected: &["fat_tree", "single_switch", "dumbbell"],
        }),
    }
}

fn parse_sizes(v: &Value, path: &str) -> Result<SizeDistribution, ScenarioError> {
    match v {
        Value::String(s) => match s.as_str() {
            "heavy_tailed" => Ok(SizeDistribution::HeavyTailed),
            "uniform_500kb_to_5mb" => Ok(SizeDistribution::Uniform500KbTo5Mb),
            other => Err(ScenarioError::UnknownName {
                field: path.trim_end_matches('.').to_string(),
                found: other.to_string(),
                expected: &["heavy_tailed", "uniform_500kb_to_5mb", "{\"fixed\": bytes}"],
            }),
        },
        other => {
            let (tag, payload) = tag_of(other, path)?;
            if tag != "fixed" {
                return Err(ScenarioError::UnknownName {
                    field: path.trim_end_matches('.').to_string(),
                    found: tag.to_string(),
                    expected: &["heavy_tailed", "uniform_500kb_to_5mb", "{\"fixed\": bytes}"],
                });
            }
            let bytes = u64::from_json(payload)
                .map_err(|e| ScenarioError::Field(e.in_field(&format!("{path}fixed"))))?;
            Ok(SizeDistribution::Fixed(bytes))
        }
    }
}

fn parse_start(v: &Value, path: &str) -> Result<Start, ScenarioError> {
    match v {
        Value::String(s) => match s.as_str() {
            "zero" => Ok(Start::Zero),
            "prior_median" => Ok(Start::PriorMedian),
            other => Err(ScenarioError::UnknownName {
                field: path.trim_end_matches('.').to_string(),
                found: other.to_string(),
                expected: &["zero", "prior_median", "{\"at_ns\": nanoseconds}"],
            }),
        },
        other => {
            let (tag, payload) = tag_of(other, path)?;
            if tag != "at_ns" {
                return Err(ScenarioError::UnknownName {
                    field: path.trim_end_matches('.').to_string(),
                    found: tag.to_string(),
                    expected: &["zero", "prior_median", "{\"at_ns\": nanoseconds}"],
                });
            }
            let ns = u64::from_json(payload)
                .map_err(|e| ScenarioError::Field(e.in_field(&format!("{path}at_ns"))))?;
            Ok(Start::At(Duration::nanos(ns)))
        }
    }
}

fn parse_traffic(v: &Value, path: &str) -> Result<TrafficModel, ScenarioError> {
    let (tag, payload) = tag_of(v, path)?;
    let p = format!("{path}{tag}.");
    match tag {
        "poisson" => {
            check_fields(payload, &["load", "sizes", "flows"], &p)?;
            Ok(TrafficModel::Poisson {
                load: req(payload, "load", &p)?,
                sizes: parse_sizes(
                    payload.get("sizes").unwrap_or(&Value::Null),
                    &format!("{}sizes.", p),
                )?,
                flow_count: req(payload, "flows", &p)?,
            })
        }
        "bursty_poisson" => {
            check_fields(
                payload,
                &["load", "sizes", "flows", "duty_cycle", "burst_flows"],
                &p,
            )?;
            Ok(TrafficModel::BurstyPoisson {
                load: req(payload, "load", &p)?,
                sizes: parse_sizes(
                    payload.get("sizes").unwrap_or(&Value::Null),
                    &format!("{}sizes.", p),
                )?,
                flow_count: req(payload, "flows", &p)?,
                duty_cycle: req(payload, "duty_cycle", &p)?,
                burst_flows: req(payload, "burst_flows", &p)?,
            })
        }
        "incast" => {
            check_fields(payload, &["m", "total_bytes"], &p)?;
            Ok(TrafficModel::Incast {
                m: req(payload, "m", &p)?,
                total_bytes: req(payload, "total_bytes", &p)?,
            })
        }
        "shuffle" => {
            check_fields(payload, &["flow_bytes", "rounds", "round_gap_ns"], &p)?;
            Ok(TrafficModel::Shuffle {
                flow_bytes: req(payload, "flow_bytes", &p)?,
                rounds: req(payload, "rounds", &p)?,
                round_gap: Duration::nanos(opt(payload, "round_gap_ns", &p, 0)?),
            })
        }
        "explicit" => {
            let items = payload.as_array().ok_or_else(|| {
                ScenarioError::Field(
                    DeError::expected("an array of flows", payload)
                        .in_field(&format!("{path}explicit")),
                )
            })?;
            let mut flows = Vec::with_capacity(items.len());
            for (i, item) in items.iter().enumerate() {
                let fp = format!("{path}explicit.[{i}].");
                check_fields(item, &["src", "dst", "bytes", "at_ns"], &fp)?;
                flows.push(FlowSpec {
                    src: req(item, "src", &fp)?,
                    dst: req(item, "dst", &fp)?,
                    bytes: req(item, "bytes", &fp)?,
                    at: Time::from_nanos(opt(item, "at_ns", &fp, 0)?),
                });
            }
            Ok(TrafficModel::Explicit(flows))
        }
        "rpc_closed_loop" => {
            check_fields(
                payload,
                &[
                    "clients",
                    "ops_per_client",
                    "window",
                    "request_bytes",
                    "response_bytes",
                    "think_ns",
                    "fanout",
                ],
                &p,
            )?;
            Ok(TrafficModel::RpcClosedLoop {
                clients: req(payload, "clients", &p)?,
                ops_per_client: req(payload, "ops_per_client", &p)?,
                window: opt(payload, "window", &p, 1)?,
                request_bytes: req(payload, "request_bytes", &p)?,
                response_bytes: req(payload, "response_bytes", &p)?,
                think: Duration::nanos(opt(payload, "think_ns", &p, 0)?),
                fanout: opt(payload, "fanout", &p, 1)?,
            })
        }
        "allreduce" => {
            check_fields(
                payload,
                &["algorithm", "participants", "bytes", "iterations"],
                &p,
            )?;
            Ok(TrafficModel::Allreduce {
                algorithm: algo_from(
                    &opt::<String>(payload, "algorithm", &p, "ring".to_string())?,
                    &format!("{p}algorithm"),
                )?,
                participants: req(payload, "participants", &p)?,
                bytes: req(payload, "bytes", &p)?,
                iterations: opt(payload, "iterations", &p, 1)?,
            })
        }
        "leader_replicate" => {
            check_fields(
                payload,
                &[
                    "clients",
                    "followers",
                    "quorum",
                    "ops_per_client",
                    "request_bytes",
                    "ack_bytes",
                    "think_ns",
                ],
                &p,
            )?;
            Ok(TrafficModel::LeaderReplicate {
                clients: req(payload, "clients", &p)?,
                followers: req(payload, "followers", &p)?,
                quorum: req(payload, "quorum", &p)?,
                ops_per_client: req(payload, "ops_per_client", &p)?,
                request_bytes: req(payload, "request_bytes", &p)?,
                ack_bytes: req(payload, "ack_bytes", &p)?,
                think: Duration::nanos(opt(payload, "think_ns", &p, 0)?),
            })
        }
        "compose" => {
            let items = payload.as_array().ok_or_else(|| {
                ScenarioError::Field(
                    DeError::expected("an array of parts", payload)
                        .in_field(&format!("{path}compose")),
                )
            })?;
            let mut parts = Vec::with_capacity(items.len());
            for (i, item) in items.iter().enumerate() {
                let pp = format!("{path}compose.[{i}].");
                check_fields(item, &["traffic", "population", "seed_salt", "start"], &pp)?;
                let model = parse_traffic(
                    item.get("traffic").ok_or_else(|| {
                        ScenarioError::Field(DeError::new(format!(
                            "missing required field '{pp}traffic'"
                        )))
                    })?,
                    &format!("{pp}traffic."),
                )?;
                let population = population_from(
                    &opt::<String>(item, "population", &pp, "primary".to_string())?,
                    &format!("{pp}population"),
                )?;
                let start = match item.get("start") {
                    None => Start::Zero,
                    Some(s) => parse_start(s, &format!("{pp}start."))?,
                };
                parts.push(Component {
                    model,
                    population,
                    seed_salt: opt(item, "seed_salt", &pp, 0)?,
                    start,
                });
            }
            Ok(TrafficModel::Compose(parts))
        }
        other => Err(ScenarioError::UnknownName {
            field: path.trim_end_matches('.').to_string(),
            found: other.to_string(),
            expected: &[
                "poisson",
                "bursty_poisson",
                "incast",
                "shuffle",
                "explicit",
                "rpc_closed_loop",
                "allreduce",
                "leader_replicate",
                "compose",
            ],
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use irn_workload::TrafficCtx;

    fn paper_scenario() -> Scenario {
        Scenario::from_config("paper default", ExperimentConfig::paper_default(400)).unwrap()
    }

    #[test]
    fn round_trip_is_byte_identical() {
        let s = paper_scenario();
        let text = s.to_json_string();
        let parsed = Scenario::from_json_str(&text).unwrap();
        assert_eq!(parsed, s);
        assert_eq!(parsed.to_json_string(), text);
    }

    #[test]
    fn minimal_document_fills_paper_defaults() {
        let text = r#"{
            "schema": "scenario-v1",
            "name": "tiny",
            "topology": {"single_switch": {"hosts": 4}},
            "traffic": {"poisson": {"load": 0.5, "sizes": "heavy_tailed", "flows": 50}}
        }"#;
        let s = Scenario::from_json_str(text).unwrap();
        let d = ExperimentConfig::paper_default(1);
        assert_eq!(s.config().bandwidth, d.bandwidth);
        assert_eq!(s.config().mtu, d.mtu);
        assert_eq!(s.config().rto_low, d.rto_low);
        assert_eq!(s.config().seed, d.seed);
        assert_eq!(s.config().topology, TopologySpec::SingleSwitch(4));
    }

    #[test]
    fn unknown_and_missing_fields_are_typed_errors() {
        let unknown = r#"{
            "schema": "scenario-v1",
            "name": "x",
            "topology": {"single_switch": {"hosts": 4}},
            "traffic": {"poisson": {"laod": 0.5, "sizes": "heavy_tailed", "flows": 50}}
        }"#;
        match Scenario::from_json_str(unknown).unwrap_err() {
            ScenarioError::UnknownField { field } => {
                assert_eq!(field, "traffic.poisson.laod");
            }
            other => panic!("expected UnknownField, got {other:?}"),
        }
        let missing = r#"{
            "schema": "scenario-v1",
            "name": "x",
            "topology": {"single_switch": {"hosts": 4}},
            "traffic": {"poisson": {"load": 0.5, "sizes": "heavy_tailed"}}
        }"#;
        let err = Scenario::from_json_str(missing).unwrap_err();
        assert!(
            err.to_string().contains("traffic.poisson.flows"),
            "error must name the missing field: {err}"
        );
        let bad_schema = r#"{"schema": "scenario-v2", "name": "x",
            "topology": {"single_switch": {"hosts": 4}},
            "traffic": {"poisson": {"load": 0.5, "sizes": "heavy_tailed", "flows": 5}}}"#;
        assert!(matches!(
            Scenario::from_json_str(bad_schema).unwrap_err(),
            ScenarioError::UnknownSchema { .. }
        ));
    }

    #[test]
    fn validation_rejects_the_issue_list() {
        // load ∉ (0, 1]
        let err = Scenario::builder("x")
            .traffic(TrafficModel::Poisson {
                load: 1.5,
                sizes: SizeDistribution::HeavyTailed,
                flow_count: 10,
            })
            .build()
            .unwrap_err();
        assert!(matches!(
            err,
            ScenarioError::Traffic(TrafficError::LoadOutOfRange { .. })
        ));
        // M ≥ hosts
        let err = Scenario::builder("x")
            .topology(TopologySpec::SingleSwitch(8))
            .traffic(TrafficModel::Incast {
                m: 8,
                total_bytes: 1000,
            })
            .build()
            .unwrap_err();
        assert!(matches!(
            err,
            ScenarioError::Traffic(TrafficError::IncastFanIn { m: 8, hosts: 8 })
        ));
        // odd fat-tree k
        let err = Scenario::builder("x")
            .topology(TopologySpec::FatTree(5))
            .build()
            .unwrap_err();
        assert_eq!(err, ScenarioError::OddFatTree { k: 5 });
        // mtu = 0
        let err = Scenario::builder("x")
            .configure(|c| c.mtu = 0)
            .build()
            .unwrap_err();
        assert_eq!(err, ScenarioError::ZeroMtu);
        // empty name
        assert_eq!(
            Scenario::builder("").build().unwrap_err(),
            ScenarioError::EmptyName
        );
        // zero bandwidth never reaches the panicking constructor
        let err = Scenario::from_json_str(
            r#"{"schema": "scenario-v1", "name": "x", "bandwidth_mbps": 0,
                "topology": {"single_switch": {"hosts": 4}},
                "traffic": {"poisson": {"load": 0.5, "sizes": "heavy_tailed", "flows": 5}}}"#,
        )
        .unwrap_err();
        assert_eq!(err, ScenarioError::ZeroBandwidth);
    }

    #[test]
    fn closed_loop_config_mistakes_surface_as_typed_errors() {
        // Degenerate closed-loop parameters reachable from a scenario
        // document must come back as typed errors, never a panic.
        let parse = |traffic: &str| {
            Scenario::from_json_str(&format!(
                r#"{{"schema": "scenario-v1", "name": "x",
                    "topology": {{"single_switch": {{"hosts": 8}}}},
                    "traffic": {traffic}}}"#,
            ))
            .unwrap_err()
        };
        // Think time that would overflow Time arithmetic.
        let err = parse(&format!(
            r#"{{"rpc_closed_loop": {{"clients": 2, "ops_per_client": 100,
                "request_bytes": 1000, "response_bytes": 100,
                "think_ns": {}}}}}"#,
            u64::MAX / 4
        ));
        assert!(matches!(
            err,
            ScenarioError::Traffic(TrafficError::ThinkTimeOverflow { .. })
        ));
        // Quorum larger than the follower set.
        let err = parse(
            r#"{"leader_replicate": {"clients": 2, "followers": 3, "quorum": 5,
                "ops_per_client": 4, "request_bytes": 1000, "ack_bytes": 64}}"#,
        );
        assert!(matches!(
            err,
            ScenarioError::Traffic(TrafficError::QuorumOutOfRange {
                quorum: 5,
                followers: 3
            })
        ));
        // More participants than hosts.
        let err = parse(r#"{"allreduce": {"participants": 9, "bytes": 1000}}"#);
        assert!(matches!(
            err,
            ScenarioError::Traffic(TrafficError::ParticipantsOutOfRange {
                participants: 9,
                hosts: 8
            })
        ));
        // A closed-loop model inside a compose.
        let err = parse(
            r#"{"compose": [{"traffic": {"rpc_closed_loop": {"clients": 1,
                "ops_per_client": 1, "request_bytes": 1, "response_bytes": 1}}}]}"#,
        );
        assert!(matches!(
            err,
            ScenarioError::Traffic(TrafficError::ClosedLoopInCompose)
        ));
        // Unknown fields inside a closed-loop payload are typos.
        let err = parse(
            r#"{"rpc_closed_loop": {"clients": 1, "ops_per_client": 1,
                "request_bytes": 1, "response_bytes": 1, "fanuot": 2}}"#,
        );
        assert_eq!(
            err,
            ScenarioError::UnknownField {
                field: "traffic.rpc_closed_loop.fanuot".to_string()
            }
        );
        // Unknown allreduce algorithm names list the options.
        let err = parse(
            r#"{"allreduce": {"algorithm": "butterfly", "participants": 4,
                "bytes": 1000}}"#,
        );
        assert!(matches!(
            err,
            ScenarioError::UnknownName { found, .. } if found == "butterfly"
        ));
    }

    #[test]
    fn every_traffic_model_round_trips() {
        let models = [
            TrafficModel::Poisson {
                load: 0.7,
                sizes: SizeDistribution::HeavyTailed,
                flow_count: 100,
            },
            TrafficModel::BurstyPoisson {
                load: 0.6,
                sizes: SizeDistribution::Uniform500KbTo5Mb,
                flow_count: 40,
                duty_cycle: 0.25,
                burst_flows: 8,
            },
            TrafficModel::Incast {
                m: 3,
                total_bytes: 1_000_000,
            },
            TrafficModel::Shuffle {
                flow_bytes: 50_000,
                rounds: 3,
                round_gap: Duration::micros(10),
            },
            TrafficModel::Explicit(vec![FlowSpec {
                src: 0,
                dst: 1,
                bytes: 777,
                at: Time::from_nanos(42),
            }]),
            TrafficModel::incast_with_cross(3, 500_000, 0.5, SizeDistribution::Fixed(2000), 30),
            TrafficModel::RpcClosedLoop {
                clients: 2,
                ops_per_client: 10,
                window: 2,
                request_bytes: 4096,
                response_bytes: 256,
                think: Duration::micros(50),
                fanout: 2,
            },
            TrafficModel::Allreduce {
                algorithm: AllreduceAlgo::Tree,
                participants: 5,
                bytes: 1 << 20,
                iterations: 3,
            },
            TrafficModel::LeaderReplicate {
                clients: 2,
                followers: 3,
                quorum: 2,
                ops_per_client: 8,
                request_bytes: 2048,
                ack_bytes: 64,
                think: Duration::micros(20),
            },
        ];
        for model in models {
            let s = Scenario::builder("model under test")
                .topology(TopologySpec::SingleSwitch(6))
                .traffic(model.clone())
                .build()
                .unwrap();
            let text = s.to_json_string();
            let parsed = Scenario::from_json_str(&text).unwrap();
            assert_eq!(parsed.config().traffic, model, "{text}");
            assert_eq!(parsed.to_json_string(), text);
        }
    }

    #[test]
    fn parsed_scenario_generates_identical_flows() {
        let s = Scenario::builder("gen")
            .topology(TopologySpec::SingleSwitch(6))
            .traffic(TrafficModel::BurstyPoisson {
                load: 0.5,
                sizes: SizeDistribution::HeavyTailed,
                flow_count: 60,
                duty_cycle: 0.5,
                burst_flows: 4,
            })
            .seed(9)
            .build()
            .unwrap();
        let parsed = Scenario::from_json_str(&s.to_json_string()).unwrap();
        let ctx = TrafficCtx {
            hosts: 6,
            line_rate_bps: 40e9,
            seed: 9,
        };
        assert_eq!(
            parsed.config().traffic.generate(&ctx),
            s.config().traffic.generate(&ctx)
        );
    }

    #[test]
    fn slug_is_filesystem_safe() {
        let s = Scenario::from_config("RoCE (PFC) + Timely/load=70%", ExperimentConfig::quick(10))
            .unwrap();
        assert_eq!(s.slug(), "roce-pfc-timely-load-70");
        let plain = Scenario::from_config("fig1_irn", ExperimentConfig::quick(10)).unwrap();
        assert_eq!(plain.slug(), "fig1_irn");
    }
}
