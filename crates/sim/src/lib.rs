//! # irn-sim — deterministic discrete-event simulation kernel
//!
//! This crate is the substrate every other crate in the workspace builds
//! on: a virtual clock with nanosecond resolution, a ladder-queue
//! [`Scheduler`] with deterministic FIFO tie-breaking and O(1)
//! cancellable timers, a seeded random-number generator — plus the
//! binary-heap [`EventQueue`] and generation-filtered [`TimerSlot`]
//! kept as the simple reference model the scheduler is differentially
//! tested against.
//!
//! The paper's evaluation ("Revisiting Network Support for RDMA",
//! SIGCOMM 2018) ran on a vendor-internal OMNET++/INET model. This crate
//! reproduces the *kernel* of such a simulator with two properties the
//! reproduction depends on:
//!
//! 1. **Exact determinism.** Two runs with the same seed produce
//!    bit-identical results, on any platform. All randomness flows through
//!    [`SimRng`]; simultaneous events fire in insertion order.
//! 2. **No wall-clock, no I/O, no threads.** Virtual time advances only
//!    when events fire, so million-packet experiments run as fast as the
//!    CPU allows and unit tests can assert on precise timestamps.
//!
//! ## Example
//!
//! ```
//! use irn_sim::{EventQueue, Time, Duration};
//!
//! let mut q: EventQueue<&'static str> = EventQueue::new();
//! q.push(Time::ZERO + Duration::micros(5), "second");
//! q.push(Time::ZERO, "first");
//! let (t, ev) = q.pop().unwrap();
//! assert_eq!((t, ev), (Time::ZERO, "first"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod event_queue;
mod rng;
mod scheduler;
mod time;
mod timer;

pub use event_queue::EventQueue;
pub use rng::SimRng;
pub use scheduler::{SchedStats, SchedulePort, Scheduler, TimerId};
pub use time::{Duration, Time};
pub use timer::TimerSlot;
