//! Seeded randomness for reproducible experiments.
//!
//! Every stochastic choice in the workspace (flow inter-arrivals, flow
//! sizes, destinations, ECMP hashing salt, ECN coin flips) draws from a
//! [`SimRng`] seeded from the experiment configuration, so a run is fully
//! determined by its config.

use rand::rngs::SmallRng;
use rand::{Rng, RngCore, SeedableRng};

use crate::Duration;

/// A deterministic random-number generator for simulation use.
///
/// Wraps `rand`'s `SmallRng` (xoshiro256++) with the handful of draws the
/// simulator needs. `SmallRng`'s stream is stable for a given seed within
/// a locked dependency version, which is all the reproduction requires.
pub struct SimRng {
    inner: SmallRng,
}

impl SimRng {
    /// Create a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        SimRng {
            inner: SmallRng::seed_from_u64(seed),
        }
    }

    /// Derive an independent child generator; `salt` distinguishes
    /// children of the same parent (e.g. one stream per host).
    pub fn fork(&mut self, salt: u64) -> SimRng {
        let seed = self.inner.next_u64() ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        SimRng::new(seed)
    }

    /// A uniform `u64`.
    pub fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    /// A uniform `f64` in `[0, 1)`.
    pub fn uniform(&mut self) -> f64 {
        self.inner.random::<f64>()
    }

    /// A uniform integer in `[lo, hi)`. Panics if the range is empty.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range [{lo}, {hi})");
        self.inner.random_range(lo..hi)
    }

    /// A uniform index in `[0, n)`. Panics if `n == 0`.
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "index into empty collection");
        self.inner.random_range(0..n)
    }

    /// Bernoulli trial with success probability `p` (clamped to 0..=1).
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.uniform() < p
        }
    }

    /// An exponentially distributed duration with the given mean; used for
    /// Poisson flow inter-arrival times (§4.1 of the paper).
    pub fn exp_duration(&mut self, mean: Duration) -> Duration {
        // Inverse-CDF sampling; `1 - uniform()` avoids ln(0).
        let u = 1.0 - self.uniform();
        let scaled = -(u.ln()) * mean.as_nanos() as f64;
        Duration::nanos(scaled.round() as u64)
    }

    /// Sample `k` distinct indices from `[0, n)` (order unspecified but
    /// deterministic). Used to pick incast senders. Panics if `k > n`.
    pub fn sample_distinct(&mut self, n: usize, k: usize) -> Vec<usize> {
        assert!(k <= n, "cannot sample {k} distinct from {n}");
        // Partial Fisher-Yates over an index vector.
        let mut pool: Vec<usize> = (0..n).collect();
        for i in 0..k {
            let j = self.inner.random_range(i..n);
            pool.swap(i, j);
        }
        pool.truncate(k);
        pool
    }
}

impl std::fmt::Debug for SimRng {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("SimRng {{ .. }}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::new(7);
        let mut b = SimRng::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2);
    }

    #[test]
    fn forked_children_are_independent_and_deterministic() {
        let mut parent1 = SimRng::new(42);
        let mut parent2 = SimRng::new(42);
        let mut c1 = parent1.fork(5);
        let mut c2 = parent2.fork(5);
        for _ in 0..16 {
            assert_eq!(c1.next_u64(), c2.next_u64());
        }
    }

    #[test]
    fn exp_duration_mean_is_close() {
        let mut rng = SimRng::new(11);
        let mean = Duration::micros(100);
        let n = 20_000u64;
        let total: u64 = (0..n).map(|_| rng.exp_duration(mean).as_nanos()).sum();
        let avg = total as f64 / n as f64;
        let expect = mean.as_nanos() as f64;
        assert!(
            (avg - expect).abs() / expect < 0.05,
            "sample mean {avg} too far from {expect}"
        );
    }

    #[test]
    fn range_bounds_respected() {
        let mut rng = SimRng::new(3);
        for _ in 0..1000 {
            let v = rng.range(10, 20);
            assert!((10..20).contains(&v));
        }
    }

    #[test]
    fn chance_extremes() {
        let mut rng = SimRng::new(3);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
    }

    #[test]
    fn sample_distinct_is_distinct_and_in_range() {
        let mut rng = SimRng::new(9);
        let s = rng.sample_distinct(50, 20);
        assert_eq!(s.len(), 20);
        let mut sorted = s.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 20);
        assert!(s.iter().all(|&i| i < 50));
    }

    #[test]
    #[should_panic]
    fn sample_distinct_overflow_panics() {
        SimRng::new(0).sample_distinct(3, 4);
    }
}
