//! The production event scheduler: a calendar/ladder queue with
//! amortized O(1) push/pop and first-class cancellable timers.
//!
//! [`EventQueue`](crate::EventQueue) (a binary heap) costs O(log n) per
//! operation and has no random-access removal, which forces the layers
//! above to *filter* stale timer expiries at pop time (the
//! [`TimerSlot`](crate::TimerSlot) generation trick): every re-armed
//! retransmission timer leaves a dead event in the heap that is
//! scheduled, sifted, popped, and discarded. At packet-simulation rates
//! that is a measurable slice of the event budget. [`Scheduler`]
//! replaces both halves:
//!
//! * **Ladder buckets.** Events land in a ring of fixed-width time
//!   buckets (`2^BUCKET_SHIFT` ns each). Pushing is an append; popping
//!   sorts one small bucket at a time as the cursor reaches it. Events
//!   beyond the ring's horizon wait in an unsorted overflow level and
//!   cascade into the ring when the clock approaches them — the classic
//!   calendar/ladder-queue design, amortized O(1) per operation for the
//!   dense event populations a packet simulation produces.
//! * **First-class timers.** [`Scheduler::timer_arm`] /
//!   [`Scheduler::timer_cancel`] give O(1) cancellation: a cancelled or
//!   superseded deadline is invalidated immediately and **never
//!   surfaces from [`Scheduler::pop`]** — the owner no longer sees (or
//!   has to filter) stale expiries. The tombstoned entry is reclaimed
//!   in O(1) when its bucket drains, counted in
//!   [`SchedStats::stale_skips`].
//!
//! ## Determinism contract
//!
//! The scheduler preserves [`EventQueue`](crate::EventQueue)'s contract
//! *exactly*: pops are nondecreasing in time, and events scheduled for
//! the same instant pop in strict push order (every push — including a
//! timer arm — is stamped with a monotonically increasing sequence
//! number; internal layout never participates in ordering). The
//! differential property suite in `tests/tests/scheduler.rs` pins this
//! against the binary-heap reference over random push/pop/arm/cancel
//! interleavings.

use crate::event_queue::EventQueue;
use crate::Time;

/// Number of buckets in the ring (power of two).
const NUM_BUCKETS: usize = 4096;
/// Bucket width in nanoseconds is `2^BUCKET_SHIFT`: 256 ns, roughly one
/// MTU serialization time at 40 Gbps, so back-to-back packet events
/// spread over neighbouring buckets instead of piling into one. The
/// ring horizon is ~1 ms — wider than an RTT, narrower than RTO_high,
/// so traffic events stay in the ring and only long timers overflow.
const BUCKET_SHIFT: u32 = 8;

/// Handle to one logical, cancellable timer owned by a [`Scheduler`].
///
/// Created with [`Scheduler::timer_create`]; valid for the scheduler's
/// lifetime. Arming twice replaces the previous deadline; cancelling
/// guarantees the pending expiry never pops.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimerId(u32);

/// Internal per-timer state: the live generation and deadline mirror.
#[derive(Debug, Clone, Copy)]
struct TimerState {
    /// Bumped (wrapping) on every arm/cancel; an entry whose stamped
    /// generation differs is a tombstone. 32 bits keep the stamp to one
    /// word in [`Entry`]; a false "live" match would need one timer to
    /// be re-armed exactly 2^32 times while a single entry waits in a
    /// bucket — orders of magnitude beyond what any pending window
    /// (≤ RTO horizon) can produce.
    generation: u32,
    /// Deadline of the live entry, if armed.
    deadline: Option<Time>,
}

/// Operation counters, exposed for instrumentation and tests.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SchedStats {
    /// Events pushed (including timer arms).
    pub pushes: u64,
    /// Live events popped.
    pub pops: u64,
    /// Timer arms (each is also a push).
    pub timer_arms: u64,
    /// Timer cancellations that invalidated a live deadline.
    pub timer_cancels: u64,
    /// Tombstoned (cancelled / superseded) entries reclaimed while
    /// draining buckets. These never surface from [`Scheduler::pop`].
    pub stale_skips: u64,
    /// Past-scheduled events clamped to "now". A nonzero count means a
    /// model scheduled backwards in time — a logic error that release
    /// builds would otherwise hide (debug builds panic).
    pub past_clamps: u64,
    /// Overflow-level cascades (bucket opened from the overflow).
    pub cascades: u64,
}

/// A destination for scheduled events.
///
/// Layers that *emit* events without owning the queue (the fabric emits
/// `FabricEvent`s from inside its handlers) take
/// `&mut impl SchedulePort<F>` instead of a closure. A [`Scheduler<E>`]
/// (or the reference [`EventQueue<E>`](crate::EventQueue)) is a port
/// for any event type `F` that its own `E` has a `From` impl for, so an
/// embedding simulation with `enum Event { Fabric(FabricEvent), .. }`
/// passes its scheduler straight through — no closure threading, no
/// intermediate buffer.
pub trait SchedulePort<F> {
    /// Schedule `ev` to fire at absolute time `at`.
    fn schedule(&mut self, at: Time, ev: F);
}

impl<F, E: From<F>> SchedulePort<F> for Scheduler<E> {
    fn schedule(&mut self, at: Time, ev: F) {
        self.push(at, E::from(ev));
    }
}

impl<F, E: From<F>> SchedulePort<F> for EventQueue<E> {
    fn schedule(&mut self, at: Time, ev: F) {
        self.push(at, E::from(ev));
    }
}

/// Collection sink for tests: records `(time, event)` pairs in emission
/// order.
impl<F> SchedulePort<F> for Vec<(Time, F)> {
    fn schedule(&mut self, at: Time, ev: F) {
        self.push((at, ev));
    }
}

/// Sentinel for [`Entry::timer_id`]: the entry is a plain event, not a
/// timer expiry.
const NO_TIMER: u32 = u32::MAX;

/// One scheduled occurrence. The timer stamp is two packed `u32`s
/// rather than `Option<(TimerId, u64)>`: entries are what every bucket
/// sort and memmove shuffles, so 8 bytes of stamp instead of 24 is a
/// measurable slice of hot-path traffic.
struct Entry<E> {
    time: Time,
    seq: u64,
    /// Owning timer index, or [`NO_TIMER`].
    timer_id: u32,
    /// Generation stamped at arm time; live only while it matches the
    /// timer's current generation.
    timer_gen: u32,
    event: E,
}

impl<E> Entry<E> {
    fn key(&self) -> (Time, u64) {
        (self.time, self.seq)
    }
}

/// A deterministic future-event list with amortized O(1) operations and
/// cancellable timers. See the module docs for the design and the
/// determinism contract.
pub struct Scheduler<E> {
    /// Sorted *descending* by `(time, seq)`; `pop` takes from the back.
    /// Holds the contents of every bucket the cursor has opened.
    due: Vec<Entry<E>>,
    /// The ring: slot `b % NUM_BUCKETS` holds absolute bucket `b` for
    /// `cursor < b < cursor + NUM_BUCKETS`, unsorted.
    ring: Vec<Vec<Entry<E>>>,
    /// Entries (live + tombstoned) currently in the ring.
    ring_len: usize,
    /// Unsorted events at or beyond the ring horizon.
    overflow: Vec<Entry<E>>,
    /// Minimum timestamp present in `overflow` (tombstones included).
    overflow_min: Option<Time>,
    /// Absolute index of the most recently opened bucket. Everything at
    /// bucket ≤ cursor lives in `due`.
    cursor: u64,
    next_seq: u64,
    /// Live (non-tombstoned) pending events.
    live: usize,
    /// The time of the most recent pop (or external advance).
    now: Time,
    timers: Vec<TimerState>,
    stats: SchedStats,
}

impl<E> Default for Scheduler<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> Scheduler<E> {
    /// An empty scheduler positioned at `Time::ZERO`.
    pub fn new() -> Scheduler<E> {
        Scheduler {
            due: Vec::new(),
            ring: (0..NUM_BUCKETS).map(|_| Vec::new()).collect(),
            ring_len: 0,
            overflow: Vec::new(),
            overflow_min: None,
            cursor: 0,
            next_seq: 0,
            live: 0,
            now: Time::ZERO,
            timers: Vec::new(),
            stats: SchedStats::default(),
        }
    }

    /// Absolute bucket index covering `t`.
    fn bucket_of(t: Time) -> u64 {
        t.as_nanos() >> BUCKET_SHIFT
    }

    /// Number of live (non-cancelled) pending events.
    pub fn len(&self) -> usize {
        self.live
    }

    /// True if no live events are pending.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// The scheduler's "now": the latest pop or [`Scheduler::advance_to`].
    pub fn now(&self) -> Time {
        self.now
    }

    /// Operation counters.
    pub fn stats(&self) -> SchedStats {
        self.stats
    }

    /// Advance the clock without popping (the embedding loop consumed
    /// an event from outside the queue, e.g. a lazily streamed flow
    /// arrival). Time never runs backwards; an earlier `t` is a no-op.
    pub fn advance_to(&mut self, t: Time) {
        self.now = self.now.max(t);
    }

    /// Schedule `event` at absolute time `at`.
    ///
    /// Scheduling in the past (before "now") is a logic error in the
    /// caller: debug builds panic; release builds clamp the event to
    /// "now" **and count the clamp** in [`SchedStats::past_clamps`] so
    /// the violation stays observable (`RunResult` surfaces it).
    pub fn push(&mut self, at: Time, event: E) {
        self.insert(at, event, NO_TIMER, 0);
    }

    /// Create a fresh, unarmed timer.
    pub fn timer_create(&mut self) -> TimerId {
        assert!(self.timers.len() < NO_TIMER as usize);
        let id = TimerId(self.timers.len() as u32);
        self.timers.push(TimerState {
            generation: 0,
            deadline: None,
        });
        id
    }

    /// Arm (or re-arm) `timer` to deliver `event` at `deadline`. A
    /// previously armed deadline is cancelled in O(1) — its entry will
    /// never pop.
    pub fn timer_arm(&mut self, timer: TimerId, deadline: Time, event: E) {
        let idx = timer.0 as usize;
        self.timers[idx].generation = self.timers[idx].generation.wrapping_add(1);
        if self.timers[idx].deadline.take().is_some() {
            self.live -= 1; // the superseded entry is now a tombstone
        }
        // Mirror the deadline the entry will actually fire at: a past
        // deadline is clamped (and counted) by `insert`, and the mirror
        // must agree or deadline-based dedup would compare against a
        // phantom time that never pops.
        self.timers[idx].deadline = Some(deadline.max(self.now));
        let generation = self.timers[idx].generation;
        self.stats.timer_arms += 1;
        self.insert(deadline, event, timer.0, generation);
    }

    /// Cancel whatever is armed on `timer` in O(1). A no-op (beyond the
    /// generation bump) if the timer is not armed.
    pub fn timer_cancel(&mut self, timer: TimerId) {
        let idx = timer.0 as usize;
        self.timers[idx].generation = self.timers[idx].generation.wrapping_add(1);
        if self.timers[idx].deadline.take().is_some() {
            self.live -= 1;
            self.stats.timer_cancels += 1;
        }
    }

    /// The live deadline of `timer`, if armed.
    pub fn timer_deadline(&self, timer: TimerId) -> Option<Time> {
        self.timers[timer.0 as usize].deadline
    }

    /// True while an expiry is pending for `timer`.
    pub fn timer_is_armed(&self, timer: TimerId) -> bool {
        self.timer_deadline(timer).is_some()
    }

    fn insert(&mut self, at: Time, event: E, timer_id: u32, timer_gen: u32) {
        debug_assert!(
            at >= self.now,
            "scheduled event in the past: {at} < {}",
            self.now
        );
        let at = if at < self.now {
            self.stats.past_clamps += 1;
            self.now
        } else {
            at
        };
        let seq = self.next_seq;
        self.next_seq += 1;
        self.stats.pushes += 1;
        self.live += 1;
        let entry = Entry {
            time: at,
            seq,
            timer_id,
            timer_gen,
            event,
        };
        let bucket = Self::bucket_of(at);
        if bucket <= self.cursor {
            // The cursor already opened this bucket: merge into the
            // sorted due run (descending; the new entry has the largest
            // seq so it lands after same-time entries in pop order).
            let key = entry.key();
            let idx = self.due.partition_point(|e| e.key() > key);
            self.due.insert(idx, entry);
        } else if bucket - self.cursor < NUM_BUCKETS as u64 {
            self.ring[(bucket as usize) & (NUM_BUCKETS - 1)].push(entry);
            self.ring_len += 1;
        } else {
            self.overflow_min = Some(self.overflow_min.map_or(at, |m| m.min(at)));
            self.overflow.push(entry);
        }
    }

    /// True if `entry` is a cancelled/superseded timer expiry.
    fn is_stale(&self, entry: &Entry<E>) -> bool {
        entry.timer_id != NO_TIMER
            && self.timers[entry.timer_id as usize].generation != entry.timer_gen
    }

    /// Drop tombstones at the head and refill `due` from the ring /
    /// overflow until a live entry is at the back. Returns `false` when
    /// no live events remain.
    fn settle(&mut self) -> bool {
        loop {
            match self.due.last() {
                Some(e) if self.is_stale(e) => {
                    self.due.pop();
                    self.stats.stale_skips += 1;
                    continue;
                }
                Some(_) => return true,
                None => {}
            }
            if self.live == 0 {
                // Only tombstones (if anything) remain; reclaim in bulk.
                let dropped = self.ring_len + self.overflow.len();
                if dropped > 0 {
                    self.ring.iter_mut().for_each(Vec::clear);
                    self.ring_len = 0;
                    self.overflow.clear();
                    self.stats.stale_skips += dropped as u64;
                }
                self.overflow_min = None;
                return false;
            }
            self.open_next_bucket();
        }
    }

    /// Open the earliest occupied bucket into `due`: the nearest
    /// occupied ring slot or the overflow minimum, whichever holds the
    /// earlier bucket (ties merge both sources so FIFO order is global).
    fn open_next_bucket(&mut self) {
        const MASK: usize = NUM_BUCKETS - 1;
        let b_ring: Option<u64> = if self.ring_len > 0 {
            // Scan to the next occupied slot. Each slot is crossed once
            // per ring revolution, so the scan amortizes over the
            // revolution's events.
            let mut b = self.cursor + 1;
            while self.ring[(b as usize) & MASK].is_empty() {
                b += 1;
            }
            Some(b)
        } else {
            None
        };
        let b_over: Option<u64> = self.overflow_min.map(Self::bucket_of);
        let (bucket, cascade) = match (b_ring, b_over) {
            (Some(r), Some(o)) if o <= r => (o, true),
            (Some(r), _) => (r, false),
            (None, Some(o)) => (o, true),
            (None, None) => unreachable!("live events exist but no bucket holds them"),
        };

        // Take the ring slot only when it is exactly this bucket (a
        // cascade can target a bucket at or behind the cursor, whose
        // slot — if any — belongs to a future ring revolution).
        //
        // The drained `due` buffer is recycled into the emptied slot
        // (or reused as the cascade batch) so bucket buffers cycle
        // between the ring and `due` at their high-water capacity
        // instead of being reallocated from scratch every revolution.
        debug_assert!(self.due.is_empty());
        let recycled = std::mem::take(&mut self.due);
        let mut batch: Vec<Entry<E>> = if b_ring == Some(bucket) {
            let slot = &mut self.ring[(bucket as usize) & MASK];
            self.ring_len -= slot.len();
            std::mem::replace(slot, recycled)
        } else {
            recycled
        };
        self.cursor = self.cursor.max(bucket);

        if cascade {
            self.stats.cascades += 1;
            irn_telemetry::trace!(
                "sched.cascade",
                t = bucket << BUCKET_SHIFT,
                overflow = self.overflow.len()
            );
            self.overflow_min = None;
            let mut rest = Vec::new();
            for entry in std::mem::take(&mut self.overflow) {
                let eb = Self::bucket_of(entry.time);
                if eb <= bucket {
                    batch.push(entry);
                } else if eb - self.cursor < NUM_BUCKETS as u64 {
                    // Spill the newly reachable window into the ring so
                    // the next cascades shrink.
                    self.ring[(eb as usize) & MASK].push(entry);
                    self.ring_len += 1;
                } else {
                    self.overflow_min =
                        Some(self.overflow_min.map_or(entry.time, |m| m.min(entry.time)));
                    rest.push(entry);
                }
            }
            self.overflow = rest;
        }

        batch.sort_unstable_by_key(|e| e.key());
        batch.reverse();
        self.due = batch;
    }

    /// The timestamp of the next **live** event without popping it.
    ///
    /// Takes `&mut self` because tombstoned entries ahead of the live
    /// head are reclaimed on the way (they must not be reported — a
    /// cancelled deadline is gone).
    pub fn peek_time(&mut self) -> Option<Time> {
        if self.settle() {
            self.due.last().map(|e| e.time)
        } else {
            None
        }
    }

    /// Time and event of the earliest live entry without removing it —
    /// exactly what the next [`Scheduler::pop`] would return. Same
    /// `&mut self` rationale as [`Scheduler::peek_time`].
    pub fn peek(&mut self) -> Option<(Time, &E)> {
        if self.settle() {
            self.due.last().map(|e| (e.time, &e.event))
        } else {
            None
        }
    }

    /// Remove and return the earliest live event, advancing "now".
    /// Cancelled timer deadlines never surface here.
    pub fn pop(&mut self) -> Option<(Time, E)> {
        if !self.settle() {
            return None;
        }
        let entry = self.due.pop()?;
        self.now = entry.time;
        self.live -= 1;
        self.stats.pops += 1;
        if entry.timer_id != NO_TIMER {
            // A live expiry consumes its arming.
            self.timers[entry.timer_id as usize].deadline = None;
        }
        Some((entry.time, entry.event))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Duration;

    fn drain<E>(s: &mut Scheduler<E>) -> Vec<(Time, E)> {
        std::iter::from_fn(|| s.pop()).collect()
    }

    #[test]
    fn pops_in_time_order() {
        let mut s = Scheduler::new();
        s.push(Time::from_nanos(30), "c");
        s.push(Time::from_nanos(10), "a");
        s.push(Time::from_nanos(20), "b");
        let order: Vec<_> = drain(&mut s).into_iter().map(|(_, e)| e).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn simultaneous_events_pop_fifo() {
        let mut s = Scheduler::new();
        let t = Time::from_nanos(5);
        for i in 0..100 {
            s.push(t, i);
        }
        let order: Vec<_> = drain(&mut s).into_iter().map(|(_, e)| e).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn fifo_holds_across_bucket_boundaries_and_overflow() {
        // Same instant, pushed at very different structural positions:
        // into the far overflow, then into the ring after the horizon
        // moved, then into the due run after a cascade.
        let mut s = Scheduler::new();
        let far = Time::from_nanos((NUM_BUCKETS as u64) << (BUCKET_SHIFT + 2));
        s.push(far, 0);
        s.push(Time::from_nanos(1), 100);
        s.push(far, 1);
        assert_eq!(s.pop().unwrap().1, 100);
        assert_eq!(s.peek_time(), Some(far));
        s.push(far, 2);
        let order: Vec<_> = drain(&mut s).into_iter().map(|(_, e)| e).collect();
        assert_eq!(order, vec![0, 1, 2]);
    }

    #[test]
    fn interleaved_push_pop_keeps_order() {
        let mut s = Scheduler::new();
        s.push(Time::from_nanos(10), 1);
        s.push(Time::from_nanos(20), 2);
        assert_eq!(s.pop().unwrap().1, 1);
        s.push(Time::from_nanos(20), 3);
        assert_eq!(s.pop().unwrap().1, 2);
        assert_eq!(s.pop().unwrap().1, 3);
        assert!(s.pop().is_none());
    }

    #[test]
    fn overflow_never_overtaken_by_ring_traffic() {
        // Regression shape: a far event parks in the overflow, then the
        // ring window creeps past it via a chain of nearer events. The
        // overflow event must still pop in time order.
        let mut s = Scheduler::new();
        let width = 1u64 << BUCKET_SHIFT;
        let far = (NUM_BUCKETS as u64 + 10) * width + 7; // just past horizon
        s.push(Time::from_nanos(far), u64::MAX);
        // March the window forward one bucket at a time past `far`,
        // interleaving pushes with pops so the horizon creeps.
        let mut next = width;
        s.push(Time::from_nanos(next), 0);
        let mut last = Time::ZERO;
        let mut saw_overflow_at = None;
        while let Some((t, e)) = s.pop() {
            assert!(t >= last, "time went backwards: {t} after {last}");
            last = t;
            if e == u64::MAX {
                saw_overflow_at = Some(t);
            } else if next < far + 20 * width {
                next += width;
                s.push(Time::from_nanos(next), e + 1);
            }
        }
        assert_eq!(saw_overflow_at, Some(Time::from_nanos(far)));
    }

    #[test]
    fn cancelled_timer_never_surfaces() {
        let mut s = Scheduler::new();
        let t = s.timer_create();
        s.timer_arm(t, Time::from_nanos(100), "expiry");
        s.push(Time::from_nanos(100), "data");
        s.timer_cancel(t);
        assert_eq!(s.len(), 1);
        assert_eq!(s.peek_time(), Some(Time::from_nanos(100)));
        let all = drain(&mut s);
        assert_eq!(all, vec![(Time::from_nanos(100), "data")]);
        assert_eq!(s.stats().stale_skips, 1);
        assert_eq!(s.stats().timer_cancels, 1);
    }

    #[test]
    fn rearm_supersedes_previous_deadline() {
        let mut s = Scheduler::new();
        let t = s.timer_create();
        s.timer_arm(t, Time::from_nanos(100), 1);
        s.timer_arm(t, Time::from_nanos(50), 2);
        assert_eq!(s.timer_deadline(t), Some(Time::from_nanos(50)));
        assert_eq!(s.len(), 1);
        let all: Vec<_> = drain(&mut s);
        assert_eq!(all, vec![(Time::from_nanos(50), 2)]);
        assert!(!s.timer_is_armed(t), "a popped expiry consumes the arm");
    }

    #[test]
    fn fired_timer_can_rearm() {
        let mut s = Scheduler::new();
        let t = s.timer_create();
        s.timer_arm(t, Time::from_nanos(10), 1);
        assert_eq!(s.pop().unwrap().1, 1);
        s.timer_arm(t, Time::from_nanos(20), 2);
        assert_eq!(s.pop().unwrap().1, 2);
        assert_eq!(s.stats().stale_skips, 0, "no tombstones were created");
    }

    #[test]
    fn cancel_after_fire_is_harmless() {
        let mut s = Scheduler::new();
        let t = s.timer_create();
        s.timer_arm(t, Time::from_nanos(10), 1);
        assert!(s.pop().is_some());
        s.timer_cancel(t);
        assert_eq!(s.stats().timer_cancels, 0, "nothing live was cancelled");
        assert!(s.pop().is_none());
    }

    #[test]
    fn peek_skips_cancelled_head() {
        // The cancelled earliest deadline must not be reported by peek:
        // an embedding loop uses peek to order queue events against
        // externally streamed ones.
        let mut s = Scheduler::new();
        let t = s.timer_create();
        s.timer_arm(t, Time::from_nanos(10), "dead");
        s.push(Time::from_nanos(500), "live");
        s.timer_cancel(t);
        assert_eq!(s.peek_time(), Some(Time::from_nanos(500)));
        assert_eq!(s.pop().unwrap().1, "live");
    }

    #[test]
    fn now_tracks_pops_and_external_advance() {
        let mut s = Scheduler::new();
        assert_eq!(s.now(), Time::ZERO);
        s.push(Time::from_nanos(42), ());
        s.pop();
        assert_eq!(s.now(), Time::from_nanos(42));
        s.advance_to(Time::from_nanos(100));
        assert_eq!(s.now(), Time::from_nanos(100));
        s.advance_to(Time::from_nanos(7)); // never backwards
        assert_eq!(s.now(), Time::from_nanos(100));
    }

    #[test]
    fn past_push_clamps_and_counts_in_release() {
        // The debug build panics (covered by the should_panic test); in
        // release the clamp must be counted, not silent.
        if cfg!(debug_assertions) {
            return;
        }
        let mut s = Scheduler::new();
        s.push(Time::from_nanos(100), 1);
        s.pop();
        s.push(Time::from_nanos(50), 2);
        assert_eq!(s.stats().past_clamps, 1);
        let (t, e) = s.pop().unwrap();
        assert_eq!((t, e), (Time::from_nanos(100), 2), "clamped to now");
    }

    #[test]
    #[should_panic]
    #[cfg(debug_assertions)]
    fn scheduling_in_the_past_panics_in_debug() {
        let mut s = Scheduler::new();
        s.push(Time::from_nanos(100), ());
        s.pop();
        s.push(Time::from_nanos(50), ());
    }

    #[test]
    fn sparse_far_future_events_cascade_correctly() {
        let mut s = Scheduler::new();
        // Widely separated events, each far beyond the ring horizon of
        // the previous: every pop needs a cascade.
        let times: Vec<Time> = (1..6u64)
            .map(|i| Time::ZERO + Duration::millis(i * 50))
            .collect();
        for (i, &t) in times.iter().enumerate().rev() {
            s.push(t, i);
        }
        let got = drain(&mut s);
        let want: Vec<_> = times.iter().copied().zip(0..5).collect();
        assert_eq!(got, want);
        assert!(s.stats().cascades >= 1);
    }

    #[test]
    fn len_counts_live_only() {
        let mut s = Scheduler::new();
        assert!(s.is_empty());
        let t = s.timer_create();
        s.timer_arm(t, Time::from_nanos(10), ());
        s.push(Time::from_nanos(20), ());
        assert_eq!(s.len(), 2);
        s.timer_cancel(t);
        assert_eq!(s.len(), 1);
        s.pop();
        assert!(s.is_empty());
        assert!(s.pop().is_none());
    }

    #[test]
    fn port_trait_routes_through_from_impl() {
        #[derive(Debug, PartialEq)]
        struct Wrapped(u32);
        impl From<u32> for Wrapped {
            fn from(v: u32) -> Wrapped {
                Wrapped(v)
            }
        }
        fn emit(port: &mut impl SchedulePort<u32>) {
            port.schedule(Time::from_nanos(5), 7);
        }
        let mut s: Scheduler<Wrapped> = Scheduler::new();
        emit(&mut s);
        assert_eq!(s.pop(), Some((Time::from_nanos(5), Wrapped(7))));
        let mut sink: Vec<(Time, u32)> = Vec::new();
        emit(&mut sink);
        assert_eq!(sink, vec![(Time::from_nanos(5), 7)]);
    }
}
