//! Lazily-cancellable timers (the reference model).
//!
//! Production code uses the [`Scheduler`](crate::Scheduler)'s
//! first-class timers ([`Scheduler::timer_arm`](crate::Scheduler) /
//! `timer_cancel`), which remove cancelled deadlines in O(1) instead of
//! scheduling, popping, and discarding them. `TimerSlot` remains as the
//! simple generation-filtering technique the scheduler is
//! differentially tested against.
//!
//! The event queue has no random-access removal, so cancelling a timer by
//! deleting its event would be O(n). Instead each logical timer owns a
//! [`TimerSlot`] holding a generation counter: re-arming or cancelling
//! bumps the generation, and stale expiry events (carrying an old
//! generation) are recognized and dropped when they fire. This is the
//! standard technique in packet-level simulators, where retransmission
//! timers are re-armed on almost every ACK.

use crate::Time;

/// State for one logical, re-armable timer.
///
/// The owner schedules an expiry event carrying `(slot id, generation)`
/// into the global event queue; on delivery, [`TimerSlot::fires`] decides
/// whether that event is still current.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimerSlot {
    generation: u64,
    /// Expiry time of the currently armed generation, if armed.
    armed_until: Option<Time>,
}

impl Default for TimerSlot {
    fn default() -> Self {
        Self::new()
    }
}

impl TimerSlot {
    /// A fresh, unarmed timer.
    pub const fn new() -> TimerSlot {
        TimerSlot {
            generation: 0,
            armed_until: None,
        }
    }

    /// Arm (or re-arm) the timer to expire at `deadline`; returns the
    /// generation token the caller must embed in the scheduled event.
    pub fn arm(&mut self, deadline: Time) -> u64 {
        self.generation += 1;
        self.armed_until = Some(deadline);
        self.generation
    }

    /// Cancel whatever is armed. Pending expiry events become stale.
    pub fn cancel(&mut self) {
        self.generation += 1;
        self.armed_until = None;
    }

    /// Called when an expiry event with token `generation` fires. Returns
    /// `true` (and disarms) if this event is the live one; `false` if it
    /// is stale and must be ignored.
    pub fn fires(&mut self, generation: u64) -> bool {
        if self.armed_until.is_some() && generation == self.generation {
            self.armed_until = None;
            true
        } else {
            false
        }
    }

    /// True if a live expiry is pending.
    pub fn is_armed(&self) -> bool {
        self.armed_until.is_some()
    }

    /// Deadline of the live expiry, if armed.
    pub fn deadline(&self) -> Option<Time> {
        self.armed_until
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Duration;

    #[test]
    fn arm_then_fire() {
        let mut t = TimerSlot::new();
        let g = t.arm(Time::from_nanos(100));
        assert!(t.is_armed());
        assert!(t.fires(g));
        assert!(!t.is_armed());
    }

    #[test]
    fn cancelled_timer_does_not_fire() {
        let mut t = TimerSlot::new();
        let g = t.arm(Time::from_nanos(100));
        t.cancel();
        assert!(!t.fires(g));
    }

    #[test]
    fn rearm_invalidates_previous_generation() {
        let mut t = TimerSlot::new();
        let g1 = t.arm(Time::from_nanos(100));
        let g2 = t.arm(Time::from_nanos(200));
        assert!(!t.fires(g1), "old generation must be stale");
        assert!(t.fires(g2));
    }

    #[test]
    fn fire_is_one_shot() {
        let mut t = TimerSlot::new();
        let g = t.arm(Time::from_nanos(50));
        assert!(t.fires(g));
        assert!(!t.fires(g), "a fired timer must not fire again");
    }

    #[test]
    fn deadline_reports_armed_time() {
        let mut t = TimerSlot::new();
        assert_eq!(t.deadline(), None);
        let when = Time::ZERO + Duration::micros(3);
        t.arm(when);
        assert_eq!(t.deadline(), Some(when));
    }
}
