//! Virtual time: nanosecond-resolution instants and durations.
//!
//! `u64` nanoseconds cover ~584 years of virtual time, far beyond any
//! experiment in the paper (the longest runs simulate a few seconds).
//! Integer arithmetic keeps every timestamp exactly reproducible; the
//! simulator never touches floating point for time bookkeeping.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A span of virtual time, in nanoseconds.
///
/// Construct via [`Duration::nanos`], [`Duration::micros`],
/// [`Duration::millis`] or [`Duration::secs`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Duration(u64);

impl Duration {
    /// The zero-length duration.
    pub const ZERO: Duration = Duration(0);

    /// A duration of `ns` nanoseconds.
    pub const fn nanos(ns: u64) -> Duration {
        Duration(ns)
    }

    /// A duration of `us` microseconds.
    pub const fn micros(us: u64) -> Duration {
        Duration(us * 1_000)
    }

    /// A duration of `ms` milliseconds.
    pub const fn millis(ms: u64) -> Duration {
        Duration(ms * 1_000_000)
    }

    /// A duration of `s` seconds.
    pub const fn secs(s: u64) -> Duration {
        Duration(s * 1_000_000_000)
    }

    /// This duration in whole nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// This duration in (possibly fractional) microseconds.
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// This duration in (possibly fractional) milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// This duration in (possibly fractional) seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// A duration from fractional seconds, rounding to the nearest
    /// nanosecond. Panics if `s` is negative or not finite.
    pub fn from_secs_f64(s: f64) -> Duration {
        assert!(s.is_finite() && s >= 0.0, "invalid duration: {s}");
        Duration((s * 1e9).round() as u64)
    }

    /// Saturating subtraction: returns `ZERO` instead of underflowing.
    pub fn saturating_sub(self, rhs: Duration) -> Duration {
        Duration(self.0.saturating_sub(rhs.0))
    }

    /// Checked multiplication by an integer scale factor.
    pub fn checked_mul(self, by: u64) -> Option<Duration> {
        self.0.checked_mul(by).map(Duration)
    }

    /// True if this is the zero duration.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl Add for Duration {
    type Output = Duration;
    fn add(self, rhs: Duration) -> Duration {
        Duration(self.0 + rhs.0)
    }
}

impl AddAssign for Duration {
    fn add_assign(&mut self, rhs: Duration) {
        self.0 += rhs.0;
    }
}

impl Sub for Duration {
    type Output = Duration;
    fn sub(self, rhs: Duration) -> Duration {
        Duration(self.0 - rhs.0)
    }
}

impl SubAssign for Duration {
    fn sub_assign(&mut self, rhs: Duration) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for Duration {
    type Output = Duration;
    fn mul(self, rhs: u64) -> Duration {
        Duration(self.0 * rhs)
    }
}

impl Div<u64> for Duration {
    type Output = Duration;
    fn div(self, rhs: u64) -> Duration {
        Duration(self.0 / rhs)
    }
}

impl Div<Duration> for Duration {
    type Output = f64;
    /// Ratio of two durations (dimensionless).
    fn div(self, rhs: Duration) -> f64 {
        self.0 as f64 / rhs.0 as f64
    }
}

impl serde::Serialize for Duration {
    /// Wire form: whole nanoseconds, so JSON carries exact virtual time.
    fn to_json(&self) -> serde::json::Value {
        serde::Serialize::to_json(&self.0)
    }
}

impl serde::Deserialize for Duration {
    /// Inverse of the nanosecond wire form: exact round-trip.
    fn from_json(v: &serde::json::Value) -> Result<Duration, serde::DeError> {
        serde::Deserialize::from_json(v).map(Duration)
    }
}

impl fmt::Debug for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl fmt::Display for Duration {
    /// Human-scaled display: picks ns/µs/ms/s by magnitude.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.0;
        if ns < 1_000 {
            write!(f, "{ns}ns")
        } else if ns < 1_000_000 {
            write!(f, "{:.3}us", ns as f64 / 1e3)
        } else if ns < 1_000_000_000 {
            write!(f, "{:.3}ms", ns as f64 / 1e6)
        } else {
            write!(f, "{:.3}s", ns as f64 / 1e9)
        }
    }
}

/// An instant of virtual time, measured in nanoseconds from the start of
/// the simulation.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Time(u64);

impl Time {
    /// The start of the simulation.
    pub const ZERO: Time = Time(0);

    /// A sentinel later than any reachable simulation time.
    pub const MAX: Time = Time(u64::MAX);

    /// The instant `ns` nanoseconds after simulation start.
    pub const fn from_nanos(ns: u64) -> Time {
        Time(ns)
    }

    /// Nanoseconds since simulation start.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Time elapsed since `earlier`. Panics (in debug builds) if `earlier`
    /// is in the future.
    pub fn since(self, earlier: Time) -> Duration {
        debug_assert!(self >= earlier, "time went backwards: {self} < {earlier}");
        Duration::nanos(self.0 - earlier.0)
    }

    /// Time elapsed since `earlier`, or `ZERO` if `earlier` is later.
    pub fn saturating_since(self, earlier: Time) -> Duration {
        Duration::nanos(self.0.saturating_sub(earlier.0))
    }
}

impl Add<Duration> for Time {
    type Output = Time;
    fn add(self, rhs: Duration) -> Time {
        Time(self.0 + rhs.as_nanos())
    }
}

impl AddAssign<Duration> for Time {
    fn add_assign(&mut self, rhs: Duration) {
        self.0 += rhs.as_nanos();
    }
}

impl Sub<Duration> for Time {
    type Output = Time;
    fn sub(self, rhs: Duration) -> Time {
        Time(self.0 - rhs.as_nanos())
    }
}

impl Sub<Time> for Time {
    type Output = Duration;
    fn sub(self, rhs: Time) -> Duration {
        self.since(rhs)
    }
}

impl serde::Serialize for Time {
    /// Wire form: nanoseconds since simulation start.
    fn to_json(&self) -> serde::json::Value {
        serde::Serialize::to_json(&self.0)
    }
}

impl serde::Deserialize for Time {
    /// Inverse of the nanosecond wire form: exact round-trip.
    fn from_json(v: &serde::json::Value) -> Result<Time, serde::DeError> {
        serde::Deserialize::from_json(v).map(Time)
    }
}

impl fmt::Debug for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{}", Duration::nanos(self.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duration_constructors_agree() {
        assert_eq!(Duration::micros(1), Duration::nanos(1_000));
        assert_eq!(Duration::millis(1), Duration::micros(1_000));
        assert_eq!(Duration::secs(1), Duration::millis(1_000));
    }

    #[test]
    fn duration_arithmetic() {
        let a = Duration::micros(3);
        let b = Duration::micros(2);
        assert_eq!(a + b, Duration::micros(5));
        assert_eq!(a - b, Duration::micros(1));
        assert_eq!(a * 2, Duration::micros(6));
        assert_eq!(a / 3, Duration::micros(1));
        assert_eq!(b.saturating_sub(a), Duration::ZERO);
        assert!((a / b - 1.5).abs() < 1e-12);
    }

    #[test]
    fn time_ordering_and_elapsed() {
        let t0 = Time::ZERO;
        let t1 = t0 + Duration::micros(7);
        assert!(t1 > t0);
        assert_eq!(t1.since(t0), Duration::micros(7));
        assert_eq!(t1 - t0, Duration::micros(7));
        assert_eq!(t0.saturating_since(t1), Duration::ZERO);
    }

    #[test]
    fn from_secs_f64_round_trips() {
        let d = Duration::from_secs_f64(0.000123456789);
        assert_eq!(d.as_nanos(), 123_457); // rounded to nearest ns
        assert!((d.as_secs_f64() - 0.000123457).abs() < 1e-12);
    }

    #[test]
    fn display_picks_scale() {
        assert_eq!(Duration::nanos(17).to_string(), "17ns");
        assert_eq!(Duration::micros(100).to_string(), "100.000us");
        assert_eq!(Duration::millis(2).to_string(), "2.000ms");
        assert_eq!(Duration::secs(3).to_string(), "3.000s");
    }

    #[test]
    #[should_panic]
    fn negative_seconds_panics() {
        let _ = Duration::from_secs_f64(-1.0);
    }
}
