//! The reference event queue: a binary heap over virtual time with
//! deterministic FIFO ordering of simultaneous events.
//!
//! The production event loop runs on the ladder-queue
//! [`Scheduler`](crate::Scheduler) (amortized O(1) per op, cancellable
//! timers); this heap is the obviously-correct O(log n) model it is
//! differentially tested against, and remains a fine queue for small
//! drivers and unit tests.
//!
//! Determinism matters: the paper's results hinge on packet-level races
//! (which VOQ a round-robin arbiter visits first, whether a PAUSE frame
//! beats a data packet). A plain `BinaryHeap<(Time, E)>` would order
//! simultaneous events by `E`'s `Ord`, which is arbitrary and fragile;
//! instead every push is stamped with a monotonically increasing sequence
//! number so ties break strictly in insertion order.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::Time;

/// Heap entry: ordered by `(time, seq)` ascending. The payload never
/// participates in ordering.
struct Entry<E> {
    time: Time,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert to pop the earliest entry first.
        (other.time, other.seq).cmp(&(self.time, self.seq))
    }
}

/// A deterministic future-event list.
///
/// Events of type `E` are scheduled at absolute virtual times and popped
/// in nondecreasing time order; events scheduled for the same instant pop
/// in the order they were pushed.
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
    last_popped: Time,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue positioned at `Time::ZERO`.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            last_popped: Time::ZERO,
        }
    }

    /// An empty queue with pre-reserved capacity for `cap` events.
    pub fn with_capacity(cap: usize) -> Self {
        EventQueue {
            heap: BinaryHeap::with_capacity(cap),
            next_seq: 0,
            last_popped: Time::ZERO,
        }
    }

    /// Schedule `event` to fire at absolute time `at`.
    ///
    /// Scheduling in the past (before the last popped event) is a logic
    /// error in the caller and panics in debug builds; in release builds
    /// the event fires "now" (time never runs backwards).
    pub fn push(&mut self, at: Time, event: E) {
        debug_assert!(
            at >= self.last_popped,
            "scheduled event in the past: {at} < {}",
            self.last_popped
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry {
            time: at.max(self.last_popped),
            seq,
            event,
        });
    }

    /// Remove and return the earliest event, advancing the queue's notion
    /// of "now". Returns `None` when no events remain.
    pub fn pop(&mut self) -> Option<(Time, E)> {
        let entry = self.heap.pop()?;
        self.last_popped = entry.time;
        Some((entry.time, entry.event))
    }

    /// The timestamp of the next event without popping it.
    pub fn peek_time(&self) -> Option<Time> {
        self.heap.peek().map(|e| e.time)
    }

    /// The next event (time and payload) without popping it.
    pub fn peek(&self) -> Option<(Time, &E)> {
        self.heap.peek().map(|e| (e.time, &e.event))
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// The time of the most recently popped event (the queue's "now").
    pub fn now(&self) -> Time {
        self.last_popped
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Duration;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(Time::from_nanos(30), "c");
        q.push(Time::from_nanos(10), "a");
        q.push(Time::from_nanos(20), "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn simultaneous_events_pop_fifo() {
        let mut q = EventQueue::new();
        let t = Time::from_nanos(5);
        for i in 0..100 {
            q.push(t, i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn interleaved_push_pop_keeps_order() {
        let mut q = EventQueue::new();
        q.push(Time::from_nanos(10), 1);
        q.push(Time::from_nanos(20), 2);
        assert_eq!(q.pop().unwrap().1, 1);
        // Schedule another event at the same time as a pending one: the
        // pending (earlier-pushed) one must still pop first.
        q.push(Time::from_nanos(20), 3);
        assert_eq!(q.pop().unwrap().1, 2);
        assert_eq!(q.pop().unwrap().1, 3);
        assert!(q.pop().is_none());
    }

    #[test]
    fn now_tracks_last_pop() {
        let mut q = EventQueue::new();
        assert_eq!(q.now(), Time::ZERO);
        q.push(Time::from_nanos(42), ());
        q.pop();
        assert_eq!(q.now(), Time::from_nanos(42));
    }

    #[test]
    fn len_and_empty() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.push(Time::ZERO + Duration::nanos(1), ());
        assert_eq!(q.len(), 1);
        q.pop();
        assert!(q.is_empty());
    }

    #[test]
    #[should_panic]
    #[cfg(debug_assertions)]
    fn scheduling_in_the_past_panics_in_debug() {
        let mut q = EventQueue::new();
        q.push(Time::from_nanos(100), ());
        q.pop();
        q.push(Time::from_nanos(50), ());
    }
}
