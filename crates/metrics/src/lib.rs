//! # irn-metrics — streaming performance metrics (§4.1)
//!
//! "We primarily look at three metrics: (i) average slowdown, where
//! slowdown for a flow is its completion time divided by the time it
//! would have taken to traverse its path at line rate in an empty
//! network, (ii) average flow completion time (FCT), (iii) 99%ile or
//! tail FCT."
//!
//! [`FlowRecord`] captures one completed flow *transiently*:
//! [`MetricsCollector`] folds each record into fixed-memory streaming
//! state — exact scalar accumulators plus log-bucketed
//! [`LogHistogram`]s — instead of retaining a vector of per-flow
//! records. Memory is O(buckets), not O(flows), which is what lets
//! million-flow sweeps fit in a per-cell budget.
//!
//! ## Accuracy contract
//!
//! Every number a collector reports is either **exact** or
//! **bucketed**, and the split is part of the public contract
//! (documented per method, mirrored in `docs/SCHEMA.md`):
//!
//! - **Exact** (bit-identical to the former record-vector
//!   implementation): flow count, `avg_slowdown` (f64 sum in record
//!   order), `avg_fct` (u64 nanosecond sum), min/max FCT, min/max
//!   slowdown, [`MetricsCollector::rct`], and the `q = 0.0` / `q = 1.0`
//!   quantile boundaries.
//! - **Bucketed**: interior quantiles (`0 < q < 1`) come from a
//!   base-2 log histogram with [`SUB_BUCKETS`] sub-buckets per octave.
//!   The bucket *value* error is ≤ [`MAX_RELATIVE_ERROR`] (1/128 ≈
//!   0.78%); slowdown quantiles add a fixed-point quantization of
//!   1/[`SLOWDOWN_SCALE`] absolute, so every quantile is within
//!   [`QUANTILE_RELATIVE_ERROR`] (1%) of the exact nearest-rank value.
//!   The *rank* itself is exact — the histogram loses value
//!   resolution, never counts.
//!
//! The collector also exposes the Figure 8 tail CDF for single-packet
//! messages and the incast request-completion time (RCT, §4.4.3).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use irn_sim::{Duration, Time};
use serde::json::{Number, Value};
use serde::{de_field, DeError, Deserialize, Serialize};

/// One completed flow's measurements — the *input* to the collector,
/// not a stored object.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FlowRecord {
    /// Flow index.
    pub flow: u32,
    /// Payload bytes.
    pub bytes: u64,
    /// Number of data packets.
    pub packets: u32,
    /// Arrival (start) time.
    pub start: Time,
    /// Completion time (last payload byte delivered in order, §4.1).
    pub finish: Time,
    /// Ideal completion time for this flow's path at line rate in an
    /// empty network (the slowdown denominator).
    pub ideal: Duration,
}

impl FlowRecord {
    /// Flow completion time.
    pub fn fct(&self) -> Duration {
        self.finish.since(self.start)
    }

    /// Slowdown = FCT / ideal (≥ 1 in a well-behaved simulation).
    pub fn slowdown(&self) -> f64 {
        self.fct() / self.ideal
    }
}

/// Ideal (empty-network, line-rate) completion time for a flow:
/// store-and-forward serialization of the full wire size at line rate on
/// the bottleneck (all links equal here), plus per-hop propagation, plus
/// per-switch store-and-forward of one packet (§4.1's definition of
/// "traversing its path at line rate").
pub fn ideal_fct(
    wire_bytes: u64,
    one_packet_wire_bytes: u64,
    hops: usize,
    line_rate_bps: f64,
    prop_per_hop: Duration,
) -> Duration {
    let ser_all = Duration::from_secs_f64(wire_bytes as f64 * 8.0 / line_rate_bps);
    let ser_one = Duration::from_secs_f64(one_packet_wire_bytes as f64 * 8.0 / line_rate_bps);
    // The first packet cuts through `hops` links (serialized per hop);
    // the remaining bytes stream behind it at line rate.
    let pipeline = prop_per_hop * hops as u64 + ser_one * (hops.saturating_sub(1)) as u64;
    ser_all + pipeline
}

// ---------------------------------------------------------------------
// Log-bucketed histogram
// ---------------------------------------------------------------------

/// Sub-buckets per octave (power-of-two value range).
pub const SUB_BUCKETS: u64 = 64;
const SUB_BITS: u32 = 6; // log2(SUB_BUCKETS)

/// Worst-case relative error of a bucket's representative value:
/// buckets in octave `o` have width `2^o` starting at `64·2^o`, and the
/// midpoint representative is off by at most half a width → 1/128.
/// Values below [`SUB_BUCKETS`] are stored exactly.
pub const MAX_RELATIVE_ERROR: f64 = 1.0 / 128.0;

/// Fixed-point scale for slowdown values before bucketing: slowdowns
/// are multiplied by this, rounded, and stored as integers. For
/// slowdowns ≥ 1 the quantization error is ≤ 1/2048 relative.
pub const SLOWDOWN_SCALE: f64 = 1024.0;

/// The documented end-to-end bound on any interior quantile reported by
/// the collector, relative to the exact nearest-rank value over the
/// full record population: bucket error (≤ 1/128) plus, for slowdowns,
/// fixed-point quantization (≤ 1/2048). Stated as 1% with margin.
pub const QUANTILE_RELATIVE_ERROR: f64 = 0.01;

/// Number of addressable buckets: 64 exact values plus 58 octaves
/// (octave of the MSB positions 6..=63) × 64 sub-buckets.
pub const MAX_BUCKETS: usize = 64 + 58 * 64;

/// A base-2 logarithmic histogram over `u64` values with exact counts
/// and bounded value error (HdrHistogram-style bucketing).
///
/// Values `< 64` index their own exact bucket; a value with its most
/// significant bit at position `m ≥ 6` lands in octave `m − 6`, which
/// is split into [`SUB_BUCKETS`] equal sub-buckets of width `2^(m−6)`.
/// Bucket math is integer-only, so histograms are bit-identical across
/// runs, job counts, and worker fleets.
///
/// The counts vector grows lazily to the highest index actually used
/// (at most [`MAX_BUCKETS`] ≈ 3.8k slots, ~30 KB), independent of how
/// many values are recorded — that is the fixed-memory guarantee.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LogHistogram {
    counts: Vec<u64>,
    total: u64,
}

impl LogHistogram {
    /// Empty histogram; allocates nothing until the first record.
    pub fn new() -> LogHistogram {
        LogHistogram::default()
    }

    /// Bucket index for a value.
    pub fn bucket_index(v: u64) -> usize {
        if v < SUB_BUCKETS {
            v as usize
        } else {
            let msb = 63 - v.leading_zeros();
            let octave = msb - SUB_BITS;
            let sub = (v >> octave) - SUB_BUCKETS;
            SUB_BUCKETS as usize * (1 + octave as usize) + sub as usize
        }
    }

    /// Inclusive `[lo, hi]` value range of a bucket.
    pub fn bucket_bounds(index: usize) -> (u64, u64) {
        assert!(index < MAX_BUCKETS, "bucket index out of range");
        if index < SUB_BUCKETS as usize {
            (index as u64, index as u64)
        } else {
            let octave = ((index - SUB_BUCKETS as usize) / SUB_BUCKETS as usize) as u32;
            let sub = ((index - SUB_BUCKETS as usize) % SUB_BUCKETS as usize) as u64;
            let lo = (SUB_BUCKETS + sub) << octave;
            let width = 1u64 << octave;
            (lo, lo + (width - 1))
        }
    }

    /// The value reported for a bucket: the range midpoint (exact for
    /// octave-0 and sub-64 buckets), within [`MAX_RELATIVE_ERROR`] of
    /// any member.
    pub fn representative(index: usize) -> u64 {
        let (lo, hi) = LogHistogram::bucket_bounds(index);
        lo + (hi - lo) / 2
    }

    /// Count one value.
    pub fn record(&mut self, v: u64) {
        let idx = LogHistogram::bucket_index(v);
        if idx >= self.counts.len() {
            self.counts.resize(idx + 1, 0);
        }
        self.counts[idx] += 1;
        self.total += 1;
    }

    /// Total recorded values.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// The representative value at nearest-rank quantile `q`; `None`
    /// when empty.
    pub fn value_at_quantile(&self, q: f64) -> Option<u64> {
        assert!((0.0..=1.0).contains(&q), "quantile out of range");
        if self.total == 0 {
            return None;
        }
        let rank = nearest_rank(q, self.total as usize) as u64;
        let mut cum = 0u64;
        for (idx, &c) in self.counts.iter().enumerate() {
            cum += c;
            if cum > rank {
                return Some(LogHistogram::representative(idx));
            }
        }
        unreachable!("cumulative count must reach total")
    }

    /// Allocated bucket slots (the memory-gauge unit).
    pub fn allocated_buckets(&self) -> usize {
        self.counts.len()
    }

    /// Heap bytes held by the counts vector (allocated slots × 8).
    pub fn heap_bytes(&self) -> u64 {
        self.counts.len() as u64 * std::mem::size_of::<u64>() as u64
    }

    /// Non-empty buckets as `(index, count)` in index order.
    pub fn nonzero(&self) -> impl Iterator<Item = (usize, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (i, c))
    }
}

impl Serialize for LogHistogram {
    /// Sparse wire form: total plus `[index, count]` pairs for
    /// non-empty buckets, in index order.
    fn to_json(&self) -> Value {
        let buckets: Vec<Value> = self
            .nonzero()
            .map(|(i, c)| {
                Value::Array(vec![
                    Value::Number(Number::U64(i as u64)),
                    Value::Number(Number::U64(c)),
                ])
            })
            .collect();
        Value::Object(vec![
            ("total".to_string(), self.total.to_json()),
            ("buckets".to_string(), Value::Array(buckets)),
        ])
    }
}

impl Deserialize for LogHistogram {
    /// Inverse of the sparse form; the counts vector is rebuilt to the
    /// highest index present, so a round trip is structurally (and
    /// byte-) identical.
    fn from_json(v: &Value) -> Result<LogHistogram, DeError> {
        let total: u64 = de_field(v, "total")?;
        let pairs = v
            .get("buckets")
            .and_then(Value::as_array)
            .ok_or_else(|| DeError::new("expected a bucket array").in_field("buckets"))?;
        let mut h = LogHistogram::new();
        let mut sum = 0u64;
        for p in pairs {
            let pair = p.as_array().filter(|a| a.len() == 2).ok_or_else(|| {
                DeError::new("expected an [index, count] pair").in_field("buckets")
            })?;
            let idx = pair[0]
                .as_u64()
                .filter(|&i| (i as usize) < MAX_BUCKETS)
                .ok_or_else(|| DeError::new("bucket index out of range").in_field("buckets"))?
                as usize;
            let count = pair[1]
                .as_u64()
                .filter(|&c| c > 0)
                .ok_or_else(|| DeError::new("bucket count must be positive").in_field("buckets"))?;
            if idx >= h.counts.len() {
                h.counts.resize(idx + 1, 0);
            }
            if h.counts[idx] != 0 {
                return Err(DeError::new("duplicate bucket index").in_field("buckets"));
            }
            h.counts[idx] = count;
            sum += count;
        }
        if sum != total {
            return Err(DeError::new("bucket counts do not sum to total").in_field("total"));
        }
        h.total = total;
        Ok(h)
    }
}

// ---------------------------------------------------------------------
// Collector
// ---------------------------------------------------------------------

/// The three headline metrics of §4.1 plus context.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Mean slowdown (dominated by latency-sensitive short flows).
    pub avg_slowdown: f64,
    /// Mean FCT (dominated by throughput-sensitive long flows).
    pub avg_fct: Duration,
    /// 99th-percentile FCT (bucketed; see the accuracy contract).
    pub p99_fct: Duration,
    /// Completed flows.
    pub flows: usize,
}

/// The single-packet-message sub-population (Figure 8's tail-latency
/// view): its own exact min/max plus an FCT histogram, maintained
/// streaming alongside the full population.
#[derive(Debug, Clone, PartialEq)]
pub struct TailPopulation {
    flows: u64,
    min_fct_ns: u64,
    max_fct_ns: u64,
    fct_hist: LogHistogram,
}

impl Default for TailPopulation {
    fn default() -> TailPopulation {
        TailPopulation {
            flows: 0,
            min_fct_ns: u64::MAX,
            max_fct_ns: 0,
            fct_hist: LogHistogram::new(),
        }
    }
}

impl TailPopulation {
    fn add(&mut self, fct_ns: u64) {
        self.flows += 1;
        self.min_fct_ns = self.min_fct_ns.min(fct_ns);
        self.max_fct_ns = self.max_fct_ns.max(fct_ns);
        self.fct_hist.record(fct_ns);
    }

    /// Number of single-packet messages.
    pub fn len(&self) -> usize {
        self.flows as usize
    }

    /// True when the population is empty.
    pub fn is_empty(&self) -> bool {
        self.flows == 0
    }

    /// FCT at quantile `q` ∈ [0, 1]: exact at the boundaries, bucketed
    /// (≤ [`MAX_RELATIVE_ERROR`]) in the interior, [`Duration::ZERO`]
    /// when empty.
    pub fn percentile_fct(&self, q: f64) -> Duration {
        percentile_ns(&self.fct_hist, q, self.min_fct_ns, self.max_fct_ns)
    }

    /// Tail CDF of FCT between quantiles `from` and `to` (Figure 8
    /// plots 90%–99.9%): `(quantile, latency)` points, nondecreasing
    /// in latency.
    pub fn tail_cdf(&self, from: f64, to: f64, points: usize) -> Vec<(f64, Duration)> {
        tail_cdf_points(from, to, points, |q| self.percentile_fct(q))
    }
}

impl Serialize for TailPopulation {
    /// `{"flows": 0}` when empty (min/max are meaningless then);
    /// otherwise the full scalar + histogram form.
    fn to_json(&self) -> Value {
        if self.flows == 0 {
            return Value::Object(vec![("flows".to_string(), 0u64.to_json())]);
        }
        Value::Object(vec![
            ("flows".to_string(), self.flows.to_json()),
            ("min_fct_ns".to_string(), self.min_fct_ns.to_json()),
            ("max_fct_ns".to_string(), self.max_fct_ns.to_json()),
            ("fct_hist".to_string(), self.fct_hist.to_json()),
        ])
    }
}

impl Deserialize for TailPopulation {
    fn from_json(v: &Value) -> Result<TailPopulation, DeError> {
        let flows: u64 = de_field(v, "flows")?;
        if flows == 0 {
            return Ok(TailPopulation::default());
        }
        let t = TailPopulation {
            flows,
            min_fct_ns: de_field(v, "min_fct_ns")?,
            max_fct_ns: de_field(v, "max_fct_ns")?,
            fct_hist: de_field(v, "fct_hist")?,
        };
        if t.fct_hist.total() != flows {
            return Err(DeError::new("histogram total does not match flows").in_field("fct_hist"));
        }
        Ok(t)
    }
}

/// Per-operation metrics of a closed-loop application run, in
/// O(buckets) memory.
///
/// A closed-loop driver (RPC, allreduce, replication) completes
/// *operations* — request/response round trips, collective iterations,
/// replicated commits — whose latency spans many flows. This collector
/// streams those latencies the same way [`MetricsCollector`] streams
/// FCTs: exact count, sum, and extremes, plus a [`LogHistogram`] for
/// interior quantiles under the same accuracy contract (every quantile
/// within [`QUANTILE_RELATIVE_ERROR`], 1%, of the exact nearest-rank
/// value; the `q = 0`/`q = 1` boundaries exact).
#[derive(Debug, Clone, PartialEq)]
pub struct AppMetrics {
    ops: u64,
    latency_sum_ns: u64,
    min_latency_ns: u64,
    max_latency_ns: u64,
    latency_hist: LogHistogram,
    phases: u64,
}

impl Default for AppMetrics {
    fn default() -> AppMetrics {
        AppMetrics {
            ops: 0,
            latency_sum_ns: 0,
            min_latency_ns: u64::MAX,
            max_latency_ns: 0,
            latency_hist: LogHistogram::new(),
            phases: 0,
        }
    }
}

impl AppMetrics {
    /// Fold in one completed operation's latency.
    pub fn record_op(&mut self, latency_ns: u64) {
        self.ops += 1;
        self.latency_sum_ns += latency_ns;
        self.min_latency_ns = self.min_latency_ns.min(latency_ns);
        self.max_latency_ns = self.max_latency_ns.max(latency_ns);
        self.latency_hist.record(latency_ns);
    }

    /// Count one crossed collective phase barrier.
    pub fn record_phase(&mut self) {
        self.phases += 1;
    }

    /// Completed operations (exact).
    pub fn ops(&self) -> u64 {
        self.ops
    }

    /// Collective phase barriers crossed (exact; zero for RPC and
    /// replication models).
    pub fn phases(&self) -> u64 {
        self.phases
    }

    /// True when no operation has completed.
    pub fn is_empty(&self) -> bool {
        self.ops == 0
    }

    /// Mean operation latency (exact; [`Duration::ZERO`] when empty).
    pub fn mean_latency(&self) -> Duration {
        if self.ops == 0 {
            return Duration::ZERO;
        }
        Duration::nanos(self.latency_sum_ns / self.ops)
    }

    /// Operation latency at quantile `q` ∈ [0, 1]: exact at the
    /// boundaries, bucketed (≤ [`MAX_RELATIVE_ERROR`]) in the
    /// interior, [`Duration::ZERO`] when empty.
    pub fn percentile_latency(&self, q: f64) -> Duration {
        percentile_ns(
            &self.latency_hist,
            q,
            self.min_latency_ns,
            self.max_latency_ns,
        )
    }

    /// Heap bytes behind the latency histogram.
    pub fn heap_bytes(&self) -> u64 {
        self.latency_hist.heap_bytes()
    }

    /// Allocated histogram buckets.
    pub fn allocated_buckets(&self) -> u64 {
        self.latency_hist.allocated_buckets() as u64
    }
}

impl Serialize for AppMetrics {
    /// `{"ops": 0, "phases": n}` when no operation completed (latency
    /// fields are meaningless then); otherwise the full scalar +
    /// histogram form.
    fn to_json(&self) -> Value {
        if self.ops == 0 {
            return Value::Object(vec![
                ("ops".to_string(), 0u64.to_json()),
                ("phases".to_string(), self.phases.to_json()),
            ]);
        }
        Value::Object(vec![
            ("ops".to_string(), self.ops.to_json()),
            ("latency_sum_ns".to_string(), self.latency_sum_ns.to_json()),
            ("min_latency_ns".to_string(), self.min_latency_ns.to_json()),
            ("max_latency_ns".to_string(), self.max_latency_ns.to_json()),
            ("latency_hist".to_string(), self.latency_hist.to_json()),
            ("phases".to_string(), self.phases.to_json()),
        ])
    }
}

impl Deserialize for AppMetrics {
    fn from_json(v: &Value) -> Result<AppMetrics, DeError> {
        let ops: u64 = de_field(v, "ops")?;
        let phases: u64 = de_field(v, "phases")?;
        if ops == 0 {
            return Ok(AppMetrics {
                phases,
                ..AppMetrics::default()
            });
        }
        let m = AppMetrics {
            ops,
            latency_sum_ns: de_field(v, "latency_sum_ns")?,
            min_latency_ns: de_field(v, "min_latency_ns")?,
            max_latency_ns: de_field(v, "max_latency_ns")?,
            latency_hist: de_field(v, "latency_hist")?,
            phases,
        };
        if m.latency_hist.total() != ops {
            return Err(DeError::new("histogram total does not match ops").in_field("latency_hist"));
        }
        Ok(m)
    }
}

/// Aggregated results over many flows, in O(buckets) memory.
///
/// Exact accumulators (sums, extremes, RCT span) sit alongside two
/// [`LogHistogram`]s (FCT in nanoseconds; slowdown in
/// 1/[`SLOWDOWN_SCALE`] fixed point) and the single-packet
/// [`TailPopulation`]. See the crate docs for which outputs are exact
/// and which are bucketed.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsCollector {
    flows: u64,
    fct_sum_ns: u64,
    slowdown_sum: f64,
    min_fct_ns: u64,
    max_fct_ns: u64,
    min_slowdown: f64,
    max_slowdown: f64,
    first_start_ns: u64,
    last_finish_ns: u64,
    fct_hist: LogHistogram,
    slowdown_hist: LogHistogram,
    single_packet: TailPopulation,
}

impl Default for MetricsCollector {
    fn default() -> MetricsCollector {
        MetricsCollector {
            flows: 0,
            fct_sum_ns: 0,
            slowdown_sum: 0.0,
            min_fct_ns: u64::MAX,
            max_fct_ns: 0,
            min_slowdown: f64::INFINITY,
            max_slowdown: 0.0,
            first_start_ns: u64::MAX,
            last_finish_ns: 0,
            fct_hist: LogHistogram::new(),
            slowdown_hist: LogHistogram::new(),
            single_packet: TailPopulation::default(),
        }
    }
}

impl Serialize for MetricsCollector {
    /// Wire form: the streaming state itself — exact accumulators plus
    /// sparse histograms. `{"flows": 0}` when empty. Round-trips
    /// bit-exactly (integer fields are integers; f64 sums use the
    /// writer's shortest-round-trip form).
    fn to_json(&self) -> Value {
        if self.flows == 0 {
            return Value::Object(vec![("flows".to_string(), 0u64.to_json())]);
        }
        Value::Object(vec![
            ("flows".to_string(), self.flows.to_json()),
            ("fct_sum_ns".to_string(), self.fct_sum_ns.to_json()),
            ("slowdown_sum".to_string(), self.slowdown_sum.to_json()),
            ("min_fct_ns".to_string(), self.min_fct_ns.to_json()),
            ("max_fct_ns".to_string(), self.max_fct_ns.to_json()),
            ("min_slowdown".to_string(), self.min_slowdown.to_json()),
            ("max_slowdown".to_string(), self.max_slowdown.to_json()),
            ("first_start_ns".to_string(), self.first_start_ns.to_json()),
            ("last_finish_ns".to_string(), self.last_finish_ns.to_json()),
            ("fct_hist".to_string(), self.fct_hist.to_json()),
            ("slowdown_hist".to_string(), self.slowdown_hist.to_json()),
            ("single_packet".to_string(), self.single_packet.to_json()),
        ])
    }
}

impl Deserialize for MetricsCollector {
    /// Inverse of the streaming wire form, with structural validation
    /// (histogram totals must match the flow count).
    fn from_json(v: &Value) -> Result<MetricsCollector, DeError> {
        let flows: u64 = de_field(v, "flows")?;
        if flows == 0 {
            return Ok(MetricsCollector::default());
        }
        let m = MetricsCollector {
            flows,
            fct_sum_ns: de_field(v, "fct_sum_ns")?,
            slowdown_sum: de_field(v, "slowdown_sum")?,
            min_fct_ns: de_field(v, "min_fct_ns")?,
            max_fct_ns: de_field(v, "max_fct_ns")?,
            min_slowdown: de_field(v, "min_slowdown")?,
            max_slowdown: de_field(v, "max_slowdown")?,
            first_start_ns: de_field(v, "first_start_ns")?,
            last_finish_ns: de_field(v, "last_finish_ns")?,
            fct_hist: de_field(v, "fct_hist")?,
            slowdown_hist: de_field(v, "slowdown_hist")?,
            single_packet: de_field(v, "single_packet")?,
        };
        if m.fct_hist.total() != flows || m.slowdown_hist.total() != flows {
            return Err(DeError::new("histogram total does not match flows").in_field("fct_hist"));
        }
        Ok(m)
    }
}

impl MetricsCollector {
    /// Empty collector.
    pub fn new() -> MetricsCollector {
        MetricsCollector::default()
    }

    /// Fold one completed flow into the streaming state. The record is
    /// consumed, not retained.
    pub fn record(&mut self, r: FlowRecord) {
        debug_assert!(r.finish >= r.start, "negative FCT");
        debug_assert!(!r.ideal.is_zero(), "ideal FCT must be positive");
        let fct_ns = r.fct().as_nanos();
        let slowdown = r.slowdown();
        self.flows += 1;
        // Saturating: the sum only pins at u64::MAX after ~584 years of
        // cumulative FCT, where the old record-vector sum overflowed.
        self.fct_sum_ns = self.fct_sum_ns.saturating_add(fct_ns);
        self.slowdown_sum += slowdown;
        self.min_fct_ns = self.min_fct_ns.min(fct_ns);
        self.max_fct_ns = self.max_fct_ns.max(fct_ns);
        if slowdown < self.min_slowdown {
            self.min_slowdown = slowdown;
        }
        if slowdown > self.max_slowdown {
            self.max_slowdown = slowdown;
        }
        self.first_start_ns = self.first_start_ns.min(r.start.as_nanos());
        self.last_finish_ns = self.last_finish_ns.max(r.finish.as_nanos());
        self.fct_hist.record(fct_ns);
        self.slowdown_hist.record(scale_slowdown(slowdown));
        if r.packets == 1 {
            self.single_packet.add(fct_ns);
        }
    }

    /// Number of completed flows. Exact.
    pub fn len(&self) -> usize {
        self.flows as usize
    }

    /// True when nothing has completed.
    pub fn is_empty(&self) -> bool {
        self.flows == 0
    }

    /// The §4.1 headline metrics. `avg_slowdown` and `avg_fct` are
    /// exact (record-order f64 sum; u64 nanosecond sum); `p99_fct` is
    /// bucketed. Panics when empty (an experiment that completed zero
    /// flows is broken and must not silently report).
    pub fn summary(&self) -> Summary {
        assert!(self.flows > 0, "no flows completed");
        let n = self.flows as f64;
        let avg_fct_ns = self.fct_sum_ns as f64 / n;
        Summary {
            avg_slowdown: self.slowdown_sum / n,
            avg_fct: Duration::nanos(avg_fct_ns.round() as u64),
            p99_fct: self.percentile_fct(0.99),
            flows: self.flows as usize,
        }
    }

    /// FCT at quantile `q` ∈ [0, 1] (nearest-rank).
    ///
    /// `q = 0.0` and `q = 1.0` return the exact min/max; interior
    /// quantiles are bucketed within [`MAX_RELATIVE_ERROR`] and clamped
    /// to the observed `[min, max]`. An **empty collector returns
    /// [`Duration::ZERO`]** — the query is total, so envelope assembly
    /// over empty sub-populations never panics (the old implementation
    /// indexed an empty vector).
    pub fn percentile_fct(&self, q: f64) -> Duration {
        percentile_ns(&self.fct_hist, q, self.min_fct_ns, self.max_fct_ns)
    }

    /// Slowdown at quantile `q` (nearest-rank). Boundaries are exact;
    /// interior quantiles are bucketed fixed-point (within
    /// [`QUANTILE_RELATIVE_ERROR`]), clamped to the observed range.
    /// Returns `0.0` when empty (slowdowns are ≥ 1, so the sentinel is
    /// unambiguous).
    pub fn percentile_slowdown(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "quantile out of range");
        if self.flows == 0 {
            return 0.0;
        }
        if q == 0.0 {
            return self.min_slowdown;
        }
        if q == 1.0 {
            return self.max_slowdown;
        }
        let scaled = self
            .slowdown_hist
            .value_at_quantile(q)
            .expect("non-empty histogram");
        (scaled as f64 / SLOWDOWN_SCALE).clamp(self.min_slowdown, self.max_slowdown)
    }

    /// Exact minimum FCT. Panics when empty.
    pub fn min_fct(&self) -> Duration {
        assert!(self.flows > 0, "no flows completed");
        Duration::nanos(self.min_fct_ns)
    }

    /// Exact maximum FCT. Panics when empty.
    pub fn max_fct(&self) -> Duration {
        assert!(self.flows > 0, "no flows completed");
        Duration::nanos(self.max_fct_ns)
    }

    /// Exact minimum slowdown. Panics when empty.
    pub fn min_slowdown(&self) -> f64 {
        assert!(self.flows > 0, "no flows completed");
        self.min_slowdown
    }

    /// Exact maximum slowdown. Panics when empty.
    pub fn max_slowdown(&self) -> f64 {
        assert!(self.flows > 0, "no flows completed");
        self.max_slowdown
    }

    /// The single-packet-message sub-population (Figure 8).
    pub fn single_packet_messages(&self) -> &TailPopulation {
        &self.single_packet
    }

    /// Tail CDF of FCT between quantiles `from` and `to` (Figure 8
    /// plots 90%–99.9%): `(quantile, latency)` points, nondecreasing
    /// in latency (bucketed interior, exact boundaries).
    pub fn tail_cdf(&self, from: f64, to: f64, points: usize) -> Vec<(f64, Duration)> {
        tail_cdf_points(from, to, points, |q| self.percentile_fct(q))
    }

    /// Request completion time: first flow start to last flow finish
    /// (incast, §4.4.3). Exact. Panics when empty.
    pub fn rct(&self) -> Duration {
        assert!(self.flows > 0, "no flows completed");
        Duration::nanos(self.last_finish_ns - self.first_start_ns)
    }

    /// Export the streaming state as CSV — one row per non-empty
    /// histogram bucket (`population,bucket_lo,bucket_hi,count`; FCT
    /// bounds in nanoseconds, slowdown bounds in 1/[`SLOWDOWN_SCALE`]
    /// units) for external plotting.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("population,bucket_lo,bucket_hi,count\n");
        let mut emit = |name: &str, h: &LogHistogram| {
            for (idx, count) in h.nonzero() {
                let (lo, hi) = LogHistogram::bucket_bounds(idx);
                out.push_str(&format!("{name},{lo},{hi},{count}\n"));
            }
        };
        emit("fct", &self.fct_hist);
        emit("slowdown", &self.slowdown_hist);
        emit("single_packet_fct", &self.single_packet.fct_hist);
        out
    }

    /// Heap bytes held by the histograms (the collector's only
    /// flow-count-independent heap use). Deterministic: a function of
    /// which buckets were touched, not of allocator behavior.
    pub fn heap_bytes(&self) -> u64 {
        self.fct_hist.heap_bytes()
            + self.slowdown_hist.heap_bytes()
            + self.single_packet.fct_hist.heap_bytes()
    }

    /// Total allocated histogram bucket slots across all populations.
    pub fn allocated_buckets(&self) -> u64 {
        (self.fct_hist.allocated_buckets()
            + self.slowdown_hist.allocated_buckets()
            + self.single_packet.fct_hist.allocated_buckets()) as u64
    }
}

/// Slowdown → fixed-point integer for bucketing.
fn scale_slowdown(s: f64) -> u64 {
    (s * SLOWDOWN_SCALE).round() as u64
}

/// Shared quantile logic: exact boundaries, clamped bucket
/// representative in the interior, total on empty input.
fn percentile_ns(hist: &LogHistogram, q: f64, min_ns: u64, max_ns: u64) -> Duration {
    assert!((0.0..=1.0).contains(&q), "quantile out of range");
    if hist.total() == 0 {
        return Duration::ZERO;
    }
    if q == 0.0 {
        return Duration::nanos(min_ns);
    }
    if q == 1.0 {
        return Duration::nanos(max_ns);
    }
    let v = hist.value_at_quantile(q).expect("non-empty histogram");
    Duration::nanos(v.clamp(min_ns, max_ns))
}

fn tail_cdf_points(
    from: f64,
    to: f64,
    points: usize,
    f: impl Fn(f64) -> Duration,
) -> Vec<(f64, Duration)> {
    assert!(points >= 2 && from < to);
    (0..points)
        .map(|i| {
            let q = from + (to - from) * i as f64 / (points - 1) as f64;
            (q, f(q))
        })
        .collect()
}

fn nearest_rank(q: f64, n: usize) -> usize {
    (((q * n as f64).ceil() as usize).max(1) - 1).min(n - 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(flow: u32, packets: u32, start_us: u64, fct_us: u64, ideal_us: u64) -> FlowRecord {
        FlowRecord {
            flow,
            bytes: packets as u64 * 1000,
            packets,
            start: Time::ZERO + Duration::micros(start_us),
            finish: Time::ZERO + Duration::micros(start_us + fct_us),
            ideal: Duration::micros(ideal_us),
        }
    }

    fn rel_err(approx: u64, exact: u64) -> f64 {
        (approx as f64 - exact as f64).abs() / exact as f64
    }

    #[test]
    fn slowdown_and_fct() {
        let r = rec(0, 10, 5, 30, 10);
        assert_eq!(r.fct(), Duration::micros(30));
        assert!((r.slowdown() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn summary_averages_are_exact() {
        let mut m = MetricsCollector::new();
        m.record(rec(0, 1, 0, 10, 10)); // slowdown 1
        m.record(rec(1, 1, 0, 30, 10)); // slowdown 3
        let s = m.summary();
        assert!((s.avg_slowdown - 2.0).abs() < 1e-12);
        assert_eq!(s.avg_fct, Duration::micros(20));
        assert_eq!(s.flows, 2);
    }

    #[test]
    fn bucket_index_bounds_and_representative_agree() {
        for v in (0u64..2048).chain([
            1 << 20,
            (1 << 20) + 17,
            u64::MAX / 3,
            u64::MAX - 1,
            u64::MAX,
        ]) {
            let idx = LogHistogram::bucket_index(v);
            let (lo, hi) = LogHistogram::bucket_bounds(idx);
            assert!(lo <= v && v <= hi, "v={v} not in bucket [{lo},{hi}]");
            let rep = LogHistogram::representative(idx);
            assert!(lo <= rep && rep <= hi);
            if v >= SUB_BUCKETS {
                assert!(
                    rel_err(rep, v) <= MAX_RELATIVE_ERROR,
                    "v={v} rep={rep} err too large"
                );
            } else {
                assert_eq!(rep, v, "values below {SUB_BUCKETS} are exact");
            }
        }
    }

    #[test]
    fn bucket_index_is_monotone() {
        let mut prev = 0usize;
        for v in [0u64, 1, 63, 64, 65, 127, 128, 1000, 4096, 1 << 30, u64::MAX] {
            let idx = LogHistogram::bucket_index(v);
            assert!(idx >= prev, "index must be nondecreasing in value");
            prev = idx;
        }
        assert!(LogHistogram::bucket_index(u64::MAX) < MAX_BUCKETS);
    }

    #[test]
    fn percentiles_nearest_rank_within_contract() {
        let mut m = MetricsCollector::new();
        for i in 1..=100 {
            m.record(rec(i, 1, 0, i as u64, 1));
        }
        // Boundaries are exact.
        assert_eq!(m.percentile_fct(1.0), Duration::micros(100));
        assert_eq!(m.percentile_fct(0.0), Duration::micros(1));
        // Interior quantiles are bucketed within the documented bound.
        for (q, exact_us) in [(0.50, 50u64), (0.99, 99)] {
            let got = m.percentile_fct(q).as_nanos();
            let exact = Duration::micros(exact_us).as_nanos();
            assert!(
                rel_err(got, exact) <= MAX_RELATIVE_ERROR,
                "q={q}: got {got}ns, exact {exact}ns"
            );
        }
    }

    #[test]
    fn empty_collector_quantiles_are_total() {
        let m = MetricsCollector::new();
        assert_eq!(m.percentile_fct(0.0), Duration::ZERO);
        assert_eq!(m.percentile_fct(0.5), Duration::ZERO);
        assert_eq!(m.percentile_fct(1.0), Duration::ZERO);
        assert_eq!(m.percentile_slowdown(0.99), 0.0);
        assert_eq!(
            m.single_packet_messages().percentile_fct(0.999),
            Duration::ZERO
        );
        assert!(m.is_empty());
    }

    #[test]
    fn single_flow_quantiles_are_exact_at_every_q() {
        let mut m = MetricsCollector::new();
        m.record(rec(0, 1, 3, 137, 10));
        // One value: clamping to [min, max] collapses every quantile to
        // the exact observation.
        for q in [0.0, 0.25, 0.5, 0.9, 0.99, 1.0] {
            assert_eq!(m.percentile_fct(q), Duration::micros(137), "q={q}");
        }
        assert!((m.percentile_slowdown(0.5) - 13.7).abs() / 13.7 <= QUANTILE_RELATIVE_ERROR);
    }

    #[test]
    fn duplicate_fcts_share_a_bucket() {
        let mut m = MetricsCollector::new();
        for i in 0..50 {
            m.record(rec(i, 1, 0, 42, 6));
        }
        for q in [0.0, 0.5, 0.999, 1.0] {
            assert_eq!(m.percentile_fct(q), Duration::micros(42), "q={q}");
        }
        assert_eq!(m.len(), 50);
    }

    #[test]
    fn max_duration_values_do_not_overflow() {
        let mut m = MetricsCollector::new();
        m.record(FlowRecord {
            flow: 0,
            bytes: 1,
            packets: 1,
            start: Time::ZERO,
            finish: Time::MAX,
            ideal: Duration::nanos(1),
        });
        m.record(rec(1, 1, 0, 10, 10));
        // q = 1.0 is the exact max even at the top of the u64 range.
        assert_eq!(m.percentile_fct(1.0).as_nanos(), Time::MAX.as_nanos());
        assert_eq!(m.percentile_fct(0.0), Duration::micros(10));
        assert!(m.percentile_fct(0.9).as_nanos() <= Time::MAX.as_nanos());
    }

    #[test]
    fn single_packet_filter() {
        let mut m = MetricsCollector::new();
        m.record(rec(0, 1, 0, 5, 1));
        m.record(rec(1, 100, 0, 500, 100));
        m.record(rec(2, 1, 0, 7, 1));
        let sp = m.single_packet_messages();
        assert_eq!(sp.len(), 2);
        assert_eq!(sp.percentile_fct(1.0), Duration::micros(7));
    }

    #[test]
    fn tail_cdf_is_monotone() {
        let mut m = MetricsCollector::new();
        for i in 1..=1000 {
            m.record(rec(i, 1, 0, (i * i) as u64 % 977 + 1, 1));
        }
        let cdf = m.tail_cdf(0.90, 0.999, 20);
        assert_eq!(cdf.len(), 20);
        for w in cdf.windows(2) {
            assert!(w[1].1 >= w[0].1, "CDF must be nondecreasing");
        }
    }

    #[test]
    fn rct_spans_first_start_to_last_finish() {
        let mut m = MetricsCollector::new();
        m.record(rec(0, 10, 0, 100, 10));
        m.record(rec(1, 10, 50, 200, 10)); // finishes at 250
        assert_eq!(m.rct(), Duration::micros(250));
    }

    #[test]
    fn ideal_fct_math() {
        // 120 KB over 6 hops at 40 Gbps with 2 µs props:
        // ser_all = 24 µs; pipeline = 6×2 µs + 5×~0.21 µs ≈ 13.05 µs.
        let d = ideal_fct(120_000, 1_048, 6, 40e9, Duration::micros(2));
        let expect_ns = 24_000 + 12_000 + 5 * 210;
        assert!(
            (d.as_nanos() as i64 - expect_ns as i64).abs() < 20,
            "got {d}, expected ≈{expect_ns}ns"
        );
        // Single-packet message on 2 hops: ser + 2 props + 1 hop ser.
        let d1 = ideal_fct(1_048, 1_048, 2, 40e9, Duration::micros(2));
        assert!(
            (d1.as_nanos() as i64 - (210 + 4_000 + 210)).abs() < 20,
            "got {d1}"
        );
    }

    #[test]
    #[should_panic]
    fn empty_summary_panics() {
        MetricsCollector::new().summary();
    }

    #[test]
    fn csv_exports_histogram_buckets() {
        let mut m = MetricsCollector::new();
        m.record(rec(7, 3, 10, 40, 20));
        m.record(rec(8, 1, 10, 40, 20));
        let csv = m.to_csv();
        let mut lines = csv.lines();
        assert_eq!(
            lines.next().unwrap(),
            "population,bucket_lo,bucket_hi,count"
        );
        let rows: Vec<&str> = lines.collect();
        assert!(rows.iter().any(|r| r.starts_with("fct,")));
        assert!(rows.iter().any(|r| r.starts_with("slowdown,")));
        assert!(rows.iter().any(|r| r.starts_with("single_packet_fct,")));
        // Both flows share the 40 µs FCT bucket.
        assert!(rows
            .iter()
            .any(|r| r.starts_with("fct,") && r.ends_with(",2")));
    }

    #[test]
    fn collector_round_trips_bit_exactly() {
        let mut m = MetricsCollector::new();
        for i in 1..=257 {
            m.record(rec(i, 1 + i % 3, i as u64, (i * 31) as u64 % 911 + 1, 7));
        }
        let text = serde::json::to_string(&m);
        let back = MetricsCollector::from_json(&serde::json::from_str(&text).unwrap()).unwrap();
        assert_eq!(back, m);
        assert_eq!(serde::json::to_string(&back), text);

        let empty = MetricsCollector::new();
        let etext = serde::json::to_string(&empty);
        assert_eq!(etext, r#"{"flows":0}"#);
        let eback = MetricsCollector::from_json(&serde::json::from_str(&etext).unwrap()).unwrap();
        assert_eq!(eback, empty);
    }

    #[test]
    fn histogram_rejects_inconsistent_wire_forms() {
        let bad = r#"{"total":3,"buckets":[[1,1]]}"#;
        assert!(LogHistogram::from_json(&serde::json::from_str(bad).unwrap()).is_err());
        let dup = r#"{"total":2,"buckets":[[1,1],[1,1]]}"#;
        assert!(LogHistogram::from_json(&serde::json::from_str(dup).unwrap()).is_err());
        let oob = r#"{"total":1,"buckets":[[99999,1]]}"#;
        assert!(LogHistogram::from_json(&serde::json::from_str(oob).unwrap()).is_err());
    }

    #[test]
    fn heap_bytes_track_allocated_buckets() {
        let mut m = MetricsCollector::new();
        assert_eq!(m.heap_bytes(), 0);
        m.record(rec(0, 2, 0, 100, 10));
        assert_eq!(
            m.heap_bytes(),
            m.allocated_buckets() * std::mem::size_of::<u64>() as u64
        );
        // Another 10k flows in the same value range must not grow the
        // histograms past the bucket ceiling.
        for i in 0..10_000 {
            m.record(rec(i, 2, 0, 100 + i as u64 % 7, 10));
        }
        assert!(m.allocated_buckets() < 3 * MAX_BUCKETS as u64);
    }

    #[test]
    fn app_metrics_quantiles_meet_the_contract() {
        let mut a = AppMetrics::default();
        assert!(a.is_empty());
        assert_eq!(a.mean_latency(), Duration::ZERO);
        assert_eq!(a.percentile_latency(0.99), Duration::ZERO);
        let latencies: Vec<u64> = (1..=1000).map(|i| i * 977).collect();
        for &l in &latencies {
            a.record_op(l);
        }
        a.record_phase();
        a.record_phase();
        assert_eq!(a.ops(), 1000);
        assert_eq!(a.phases(), 2);
        // Boundaries exact, interior within the 1% quantile contract.
        assert_eq!(a.percentile_latency(0.0), Duration::nanos(977));
        assert_eq!(a.percentile_latency(1.0), Duration::nanos(977_000));
        let exact = latencies[nearest_rank(0.99, 1000) - 1];
        let got = a.percentile_latency(0.99).as_nanos();
        assert!(
            (got as f64 - exact as f64).abs() / exact as f64 <= QUANTILE_RELATIVE_ERROR,
            "p99 {got} vs exact {exact}"
        );
        let mean = a.mean_latency().as_nanos();
        assert_eq!(mean, latencies.iter().sum::<u64>() / 1000);
    }

    #[test]
    fn app_metrics_serde_round_trips_and_validates() {
        let mut a = AppMetrics::default();
        for l in [5_000u64, 80_000, 80_000, 2_000_000] {
            a.record_op(l);
        }
        a.record_phase();
        let text = serde::json::to_string(&a);
        let back = AppMetrics::from_json(&serde::json::from_str(&text).unwrap()).unwrap();
        assert_eq!(back, a);
        assert_eq!(serde::json::to_string(&back), text);

        // Empty form stays compact but keeps the phase count.
        let mut empty = AppMetrics::default();
        empty.record_phase();
        let etext = serde::json::to_string(&empty);
        assert_eq!(etext, r#"{"ops":0,"phases":1}"#);
        let eback = AppMetrics::from_json(&serde::json::from_str(&etext).unwrap()).unwrap();
        assert_eq!(eback, empty);

        // A histogram that disagrees with the op count is rejected.
        let bad = r#"{"ops":3,"latency_sum_ns":30,"min_latency_ns":10,"max_latency_ns":10,"latency_hist":{"total":1,"buckets":[[10,1]]},"phases":0}"#;
        assert!(AppMetrics::from_json(&serde::json::from_str(bad).unwrap()).is_err());
    }
}
