//! # irn-metrics — the paper's performance metrics (§4.1)
//!
//! "We primarily look at three metrics: (i) average slowdown, where
//! slowdown for a flow is its completion time divided by the time it
//! would have taken to traverse its path at line rate in an empty
//! network, (ii) average flow completion time (FCT), (iii) 99%ile or
//! tail FCT."
//!
//! [`FlowRecord`] captures one completed flow; [`MetricsCollector`]
//! accumulates records and produces [`Summary`] (the three headline
//! metrics), percentile queries, the Figure 8 tail-latency CDF for
//! single-packet messages, and the incast request-completion time (RCT,
//! §4.4.3).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use irn_sim::{Duration, Time};
use serde::{Deserialize, Serialize};

/// One completed flow's measurements.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FlowRecord {
    /// Flow index.
    pub flow: u32,
    /// Payload bytes.
    pub bytes: u64,
    /// Number of data packets.
    pub packets: u32,
    /// Arrival (start) time.
    pub start: Time,
    /// Completion time (last payload byte delivered in order, §4.1).
    pub finish: Time,
    /// Ideal completion time for this flow's path at line rate in an
    /// empty network (the slowdown denominator).
    pub ideal: Duration,
}

impl FlowRecord {
    /// Flow completion time.
    pub fn fct(&self) -> Duration {
        self.finish.since(self.start)
    }

    /// Slowdown = FCT / ideal (≥ 1 in a well-behaved simulation).
    pub fn slowdown(&self) -> f64 {
        self.fct() / self.ideal
    }
}

/// Ideal (empty-network, line-rate) completion time for a flow:
/// store-and-forward serialization of the full wire size at line rate on
/// the bottleneck (all links equal here), plus per-hop propagation, plus
/// per-switch store-and-forward of one packet (§4.1's definition of
/// "traversing its path at line rate").
pub fn ideal_fct(
    wire_bytes: u64,
    one_packet_wire_bytes: u64,
    hops: usize,
    line_rate_bps: f64,
    prop_per_hop: Duration,
) -> Duration {
    let ser_all = Duration::from_secs_f64(wire_bytes as f64 * 8.0 / line_rate_bps);
    let ser_one = Duration::from_secs_f64(one_packet_wire_bytes as f64 * 8.0 / line_rate_bps);
    // The first packet cuts through `hops` links (serialized per hop);
    // the remaining bytes stream behind it at line rate.
    let pipeline = prop_per_hop * hops as u64 + ser_one * (hops.saturating_sub(1)) as u64;
    ser_all + pipeline
}

/// Aggregated results over many flows.
#[derive(Debug, Clone, Default)]
pub struct MetricsCollector {
    records: Vec<FlowRecord>,
}

impl Serialize for MetricsCollector {
    /// Wire form: the raw per-flow records (full fidelity; summaries
    /// are recomputable from them).
    fn to_json(&self) -> serde::json::Value {
        self.records.to_json()
    }
}

impl Deserialize for MetricsCollector {
    /// Inverse of the record-array wire form: a collector round-trips
    /// with its records in their original order (percentile queries
    /// sort copies, so order never changes any derived number).
    fn from_json(v: &serde::json::Value) -> Result<MetricsCollector, serde::DeError> {
        Ok(MetricsCollector {
            records: Deserialize::from_json(v)?,
        })
    }
}

/// The three headline metrics of §4.1 plus context.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Mean slowdown (dominated by latency-sensitive short flows).
    pub avg_slowdown: f64,
    /// Mean FCT (dominated by throughput-sensitive long flows).
    pub avg_fct: Duration,
    /// 99th-percentile FCT.
    pub p99_fct: Duration,
    /// Completed flows.
    pub flows: usize,
}

impl MetricsCollector {
    /// Empty collector.
    pub fn new() -> MetricsCollector {
        MetricsCollector::default()
    }

    /// Record one completed flow.
    pub fn record(&mut self, r: FlowRecord) {
        debug_assert!(r.finish >= r.start, "negative FCT");
        debug_assert!(!r.ideal.is_zero(), "ideal FCT must be positive");
        self.records.push(r);
    }

    /// Number of completed flows.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when nothing has completed.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// All records (read-only).
    pub fn records(&self) -> &[FlowRecord] {
        &self.records
    }

    /// The §4.1 headline metrics. Panics when empty (an experiment that
    /// completed zero flows is broken and must not silently report).
    pub fn summary(&self) -> Summary {
        assert!(!self.records.is_empty(), "no flows completed");
        let n = self.records.len() as f64;
        let avg_slowdown = self.records.iter().map(|r| r.slowdown()).sum::<f64>() / n;
        let avg_fct_ns = self.records.iter().map(|r| r.fct().as_nanos()).sum::<u64>() as f64 / n;
        Summary {
            avg_slowdown,
            avg_fct: Duration::nanos(avg_fct_ns.round() as u64),
            p99_fct: self.percentile_fct(0.99),
            flows: self.records.len(),
        }
    }

    /// FCT at quantile `q` ∈ [0, 1] (nearest-rank).
    pub fn percentile_fct(&self, q: f64) -> Duration {
        assert!((0.0..=1.0).contains(&q));
        assert!(!self.records.is_empty());
        let mut fcts: Vec<Duration> = self.records.iter().map(|r| r.fct()).collect();
        fcts.sort_unstable();
        fcts[nearest_rank(q, fcts.len())]
    }

    /// Slowdown at quantile `q`.
    pub fn percentile_slowdown(&self, q: f64) -> f64 {
        assert!(!self.records.is_empty());
        let mut s: Vec<f64> = self.records.iter().map(|r| r.slowdown()).collect();
        s.sort_unstable_by(|a, b| a.partial_cmp(b).expect("no NaN slowdowns"));
        s[nearest_rank(q, s.len())]
    }

    /// Restrict to single-packet messages (Figure 8's population).
    pub fn single_packet_messages(&self) -> MetricsCollector {
        MetricsCollector {
            records: self
                .records
                .iter()
                .copied()
                .filter(|r| r.packets == 1)
                .collect(),
        }
    }

    /// Tail CDF of FCT between quantiles `from` and `to` (Figure 8 plots
    /// 90 %–99.9 %): returns `(quantile, latency)` points.
    pub fn tail_cdf(&self, from: f64, to: f64, points: usize) -> Vec<(f64, Duration)> {
        assert!(points >= 2 && from < to);
        (0..points)
            .map(|i| {
                let q = from + (to - from) * i as f64 / (points - 1) as f64;
                (q, self.percentile_fct(q))
            })
            .collect()
    }

    /// Request completion time: when the *last* flow finished (incast,
    /// §4.4.3). Panics when empty.
    pub fn rct(&self) -> Duration {
        assert!(!self.records.is_empty());
        let start = self.records.iter().map(|r| r.start).min().unwrap();
        let finish = self.records.iter().map(|r| r.finish).max().unwrap();
        finish.since(start)
    }

    /// Export per-flow records as CSV (`flow,bytes,packets,start_ns,
    /// finish_ns,fct_ns,ideal_ns,slowdown`) for external plotting.
    pub fn to_csv(&self) -> String {
        let mut out =
            String::from("flow,bytes,packets,start_ns,finish_ns,fct_ns,ideal_ns,slowdown\n");
        for r in &self.records {
            out.push_str(&format!(
                "{},{},{},{},{},{},{},{:.6}\n",
                r.flow,
                r.bytes,
                r.packets,
                r.start.as_nanos(),
                r.finish.as_nanos(),
                r.fct().as_nanos(),
                r.ideal.as_nanos(),
                r.slowdown()
            ));
        }
        out
    }
}

fn nearest_rank(q: f64, n: usize) -> usize {
    (((q * n as f64).ceil() as usize).max(1) - 1).min(n - 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(flow: u32, packets: u32, start_us: u64, fct_us: u64, ideal_us: u64) -> FlowRecord {
        FlowRecord {
            flow,
            bytes: packets as u64 * 1000,
            packets,
            start: Time::ZERO + Duration::micros(start_us),
            finish: Time::ZERO + Duration::micros(start_us + fct_us),
            ideal: Duration::micros(ideal_us),
        }
    }

    #[test]
    fn slowdown_and_fct() {
        let r = rec(0, 10, 5, 30, 10);
        assert_eq!(r.fct(), Duration::micros(30));
        assert!((r.slowdown() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn summary_averages() {
        let mut m = MetricsCollector::new();
        m.record(rec(0, 1, 0, 10, 10)); // slowdown 1
        m.record(rec(1, 1, 0, 30, 10)); // slowdown 3
        let s = m.summary();
        assert!((s.avg_slowdown - 2.0).abs() < 1e-12);
        assert_eq!(s.avg_fct, Duration::micros(20));
        assert_eq!(s.flows, 2);
    }

    #[test]
    fn percentiles_nearest_rank() {
        let mut m = MetricsCollector::new();
        for i in 1..=100 {
            m.record(rec(i, 1, 0, i as u64, 1));
        }
        assert_eq!(m.percentile_fct(0.50), Duration::micros(50));
        assert_eq!(m.percentile_fct(0.99), Duration::micros(99));
        assert_eq!(m.percentile_fct(1.0), Duration::micros(100));
        assert_eq!(m.percentile_fct(0.0), Duration::micros(1));
    }

    #[test]
    fn single_packet_filter() {
        let mut m = MetricsCollector::new();
        m.record(rec(0, 1, 0, 5, 1));
        m.record(rec(1, 100, 0, 500, 100));
        m.record(rec(2, 1, 0, 7, 1));
        let sp = m.single_packet_messages();
        assert_eq!(sp.len(), 2);
        assert!(sp.records().iter().all(|r| r.packets == 1));
    }

    #[test]
    fn tail_cdf_is_monotone() {
        let mut m = MetricsCollector::new();
        for i in 1..=1000 {
            m.record(rec(i, 1, 0, (i * i) as u64 % 977 + 1, 1));
        }
        let cdf = m.tail_cdf(0.90, 0.999, 20);
        assert_eq!(cdf.len(), 20);
        for w in cdf.windows(2) {
            assert!(w[1].1 >= w[0].1, "CDF must be nondecreasing");
        }
    }

    #[test]
    fn rct_spans_first_start_to_last_finish() {
        let mut m = MetricsCollector::new();
        m.record(rec(0, 10, 0, 100, 10));
        m.record(rec(1, 10, 50, 200, 10)); // finishes at 250
        assert_eq!(m.rct(), Duration::micros(250));
    }

    #[test]
    fn ideal_fct_math() {
        // 120 KB over 6 hops at 40 Gbps with 2 µs props:
        // ser_all = 24 µs; pipeline = 6×2 µs + 5×~0.21 µs ≈ 13.05 µs.
        let d = ideal_fct(120_000, 1_048, 6, 40e9, Duration::micros(2));
        let expect_ns = 24_000 + 12_000 + 5 * 210;
        assert!(
            (d.as_nanos() as i64 - expect_ns as i64).abs() < 20,
            "got {d}, expected ≈{expect_ns}ns"
        );
        // Single-packet message on 2 hops: ser + 2 props + 1 hop ser.
        let d1 = ideal_fct(1_048, 1_048, 2, 40e9, Duration::micros(2));
        assert!(
            (d1.as_nanos() as i64 - (210 + 4_000 + 210)).abs() < 20,
            "got {d1}"
        );
    }

    #[test]
    #[should_panic]
    fn empty_summary_panics() {
        MetricsCollector::new().summary();
    }

    #[test]
    fn csv_export_roundtrips_fields() {
        let mut m = MetricsCollector::new();
        m.record(rec(7, 3, 10, 40, 20));
        let csv = m.to_csv();
        let mut lines = csv.lines();
        assert!(lines.next().unwrap().starts_with("flow,bytes"));
        let row = lines.next().unwrap();
        let fields: Vec<&str> = row.split(',').collect();
        assert_eq!(fields[0], "7");
        assert_eq!(fields[2], "3");
        assert_eq!(fields[5], "40000"); // fct ns
        assert!(
            fields[7].starts_with("2.0"),
            "slowdown 2.0, got {}",
            fields[7]
        );
    }
}
