//! The simulated packet.
//!
//! Packets carry metadata only — payload bytes are never materialized.
//! `wire_bytes` (payload + all header overhead) is the only thing the
//! network cares about; the remaining fields exist for the transport
//! layer above (sequence numbers, acknowledgement state, timestamps, ECN
//! echoes). Keeping one concrete packet struct shared by every protocol
//! mirrors how packet-level simulators like INET/ns-3 attach a common
//! header chain, and keeps the hot path allocation-free.

use irn_sim::Time;

/// Identifies an endhost (server) in the fabric: dense index `0..hosts`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct HostId(pub u32);

impl HostId {
    /// The host index as a usize (for table lookups).
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

/// Identifies a flow (one unit of data transfer between a source and a
/// destination queue pair, §4.1): dense index into the run's flow table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FlowId(pub u32);

impl FlowId {
    /// The flow index as a usize (for table lookups).
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

/// What role a packet plays for the transport layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PacketKind {
    /// A data segment (request direction).
    Data,
    /// Cumulative acknowledgement (`psn` = next expected sequence).
    Ack,
    /// Negative acknowledgement: cumulative ack in `psn` plus, for IRN,
    /// the sequence number that triggered it in `sack` (§3.1).
    Nack,
    /// DCQCN Congestion Notification Packet (one per CNP interval when
    /// marked packets arrive).
    Cnp,
}

/// A simulated packet / frame.
///
/// PFC PAUSE frames are *not* `Packet`s: they are modelled as link-level
/// control signalling inside the fabric (see `FabricEvent::PfcArrive`),
/// matching how PFC bypasses normal queues in real switches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Packet {
    /// Flow this packet belongs to.
    pub flow: FlowId,
    /// Source endhost.
    pub src: HostId,
    /// Destination endhost (routing key).
    pub dst: HostId,
    /// Transport role.
    pub kind: PacketKind,
    /// Data: packet sequence number. Ack/Nack: cumulative acknowledgement
    /// (the receiver's expected sequence number).
    pub psn: u32,
    /// Nack: PSN of the out-of-order arrival that triggered it (IRN's
    /// simplified SACK, §3.1). Unused otherwise.
    pub sack: u32,
    /// Total bytes on the wire, including every header. Zero is legal
    /// (pure-signalling frames used by the RoCE baseline, whose ACK
    /// overhead the paper deliberately excludes, §5.2).
    pub wire_bytes: u32,
    /// When the packet this one acknowledges was sent (echoed by the
    /// receiver so Timely can compute an RTT without sender-side maps),
    /// or the send time of this data packet.
    pub sent_at: Time,
    /// Congestion Experienced: set by switches via RED/ECN marking.
    pub ecn_ce: bool,
    /// ECN echo on Ack/Nack packets (for DCTCP's marked-fraction
    /// estimator).
    pub ecn_echo: bool,
    /// True on the last data packet of a message/flow.
    pub is_last: bool,
    /// Per-flow ECMP hash seed; combined with the switch id to pick among
    /// equal-cost next hops so a flow follows one consistent path.
    pub ecmp_seed: u32,
    /// Retransmission flag (for statistics / debugging only; the network
    /// treats retransmissions like any other data packet).
    pub is_retx: bool,
}

impl Packet {
    /// A data packet with the common fields filled in; the caller sets
    /// acknowledgement-related fields as needed.
    pub fn data(flow: FlowId, src: HostId, dst: HostId, psn: u32, wire_bytes: u32) -> Packet {
        Packet {
            flow,
            src,
            dst,
            kind: PacketKind::Data,
            psn,
            sack: 0,
            wire_bytes,
            sent_at: Time::ZERO,
            ecn_ce: false,
            ecn_echo: false,
            is_last: false,
            ecmp_seed: flow.0,
            is_retx: false,
        }
    }

    /// A control packet (ACK / NACK / CNP) flowing `src → dst`.
    pub fn control(
        kind: PacketKind,
        flow: FlowId,
        src: HostId,
        dst: HostId,
        psn: u32,
        wire_bytes: u32,
    ) -> Packet {
        debug_assert!(kind != PacketKind::Data);
        Packet {
            flow,
            src,
            dst,
            kind,
            psn,
            sack: 0,
            wire_bytes,
            sent_at: Time::ZERO,
            ecn_ce: false,
            ecn_echo: false,
            is_last: false,
            ecmp_seed: flow.0,
            is_retx: false,
        }
    }

    /// True for data packets.
    pub fn is_data(&self) -> bool {
        self.kind == PacketKind::Data
    }
}

impl PacketKind {
    /// Stable lowercase label used in trace events.
    pub fn label(self) -> &'static str {
        match self {
            PacketKind::Data => "data",
            PacketKind::Ack => "ack",
            PacketKind::Nack => "nack",
            PacketKind::Cnp => "cnp",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn data_constructor_sets_kind_and_seed() {
        let p = Packet::data(FlowId(7), HostId(1), HostId(2), 42, 1048);
        assert!(p.is_data());
        assert_eq!(p.psn, 42);
        assert_eq!(p.ecmp_seed, 7);
        assert!(!p.is_retx);
        assert!(!p.ecn_ce);
    }

    #[test]
    fn control_constructor() {
        let p = Packet::control(PacketKind::Ack, FlowId(3), HostId(2), HostId(1), 10, 64);
        assert_eq!(p.kind, PacketKind::Ack);
        assert!(!p.is_data());
        assert_eq!(p.wire_bytes, 64);
    }

    #[test]
    fn packet_is_small() {
        // The hot path copies packets by value through VOQs; keep the
        // struct compact. 64 bytes = one cache line.
        assert!(std::mem::size_of::<Packet>() <= 64);
    }
}
