//! Topology description and fat-tree construction.
//!
//! A [`Topology`] is a pure description — hosts, switches, and the
//! bidirectional cables between them — consumed by
//! [`Fabric::new`](crate::Fabric::new) to instantiate simulation state.
//!
//! The paper's default network (§4.1) is a three-tier fat-tree built from
//! 45 six-port switches in 6 pods serving 54 hosts; the robustness study
//! (Table 5) scales the same construction to k=8 (128 hosts) and k=10
//! (250 hosts). [`Topology::fat_tree`] implements the classic k-ary
//! construction [Al-Fahad et al., as cited via 16]: k pods each with k/2
//! edge and k/2 aggregation switches, (k/2)² core switches, and k²/4·k
//! hosts.

/// Identifies a switch: dense index `0..switches`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SwitchId(pub u32);

impl SwitchId {
    /// The switch index as a usize.
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

/// A node endpoint: either an endhost NIC or a switch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NodeId {
    /// An endhost (exactly one network port).
    Host(u32),
    /// A switch (as many ports as cables attached).
    Switch(u32),
}

/// One bidirectional cable between two nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Cable {
    /// One end.
    pub a: NodeId,
    /// The other end.
    pub b: NodeId,
}

/// A network topology: node counts plus the cable list.
///
/// Port numbers are assigned implicitly: a switch's ports are numbered in
/// the order its cables appear in `cables`. Hosts must appear in exactly
/// one cable.
#[derive(Debug, Clone)]
pub struct Topology {
    /// Number of endhosts.
    pub hosts: usize,
    /// Number of switches.
    pub switches: usize,
    /// All bidirectional cables.
    pub cables: Vec<Cable>,
    /// Hop count of the longest shortest path between any two hosts
    /// (links traversed); used for BDP computation. Filled by builders;
    /// `None` for hand-built topologies until computed by the fabric.
    pub diameter_hops: Option<usize>,
}

impl Topology {
    /// An empty topology to be filled manually (tests, examples).
    pub fn custom(hosts: usize, switches: usize) -> Topology {
        Topology {
            hosts,
            switches,
            cables: Vec::new(),
            diameter_hops: None,
        }
    }

    /// Connect host `h` to switch `s`.
    pub fn wire_host(&mut self, h: u32, s: u32) -> &mut Self {
        assert!((h as usize) < self.hosts && (s as usize) < self.switches);
        self.cables.push(Cable {
            a: NodeId::Host(h),
            b: NodeId::Switch(s),
        });
        self
    }

    /// Connect switch `x` to switch `y`.
    pub fn wire_switches(&mut self, x: u32, y: u32) -> &mut Self {
        assert!((x as usize) < self.switches && (y as usize) < self.switches);
        assert_ne!(x, y, "self-loops are not allowed");
        self.cables.push(Cable {
            a: NodeId::Switch(x),
            b: NodeId::Switch(y),
        });
        self
    }

    /// Two hosts attached to one switch — the smallest useful network.
    pub fn single_switch(hosts: usize) -> Topology {
        let mut t = Topology::custom(hosts, 1);
        for h in 0..hosts as u32 {
            t.wire_host(h, 0);
        }
        t.diameter_hops = Some(2);
        t
    }

    /// A dumbbell: `left` hosts on switch 0, `right` hosts on switch 1,
    /// one inter-switch cable — the canonical congestion scenario.
    pub fn dumbbell(left: usize, right: usize) -> Topology {
        let mut t = Topology::custom(left + right, 2);
        for h in 0..left as u32 {
            t.wire_host(h, 0);
        }
        for h in left as u32..(left + right) as u32 {
            t.wire_host(h, 1);
        }
        t.wire_switches(0, 1);
        t.diameter_hops = Some(3);
        t
    }

    /// A chain of `n` switches each with `hosts_per` hosts; useful for
    /// demonstrating PFC congestion spreading across multiple hops.
    pub fn linear(n: usize, hosts_per: usize) -> Topology {
        assert!(n >= 1);
        let mut t = Topology::custom(n * hosts_per, n);
        for s in 0..n as u32 {
            for i in 0..hosts_per as u32 {
                t.wire_host(s * hosts_per as u32 + i, s);
            }
        }
        for s in 0..(n - 1) as u32 {
            t.wire_switches(s, s + 1);
        }
        t.diameter_hops = Some(n + 1);
        t
    }

    /// The classic k-ary three-tier fat-tree (k even).
    ///
    /// * `k` pods, each with `k/2` edge switches and `k/2` aggregation
    ///   switches;
    /// * `(k/2)²` core switches;
    /// * `k/2` hosts per edge switch ⇒ [`fat_tree_hosts`] hosts total.
    ///
    /// `k = 6` reproduces the paper's default: 54 hosts, 45 switches,
    /// 6 pods, full bisection bandwidth, longest host-to-host path 6 hops.
    ///
    /// Switch numbering: edges first (pod-major), then aggregations
    /// (pod-major), then cores.
    pub fn fat_tree(k: usize) -> Topology {
        assert!(k >= 2 && k % 2 == 0, "fat-tree arity must be even, got {k}");
        let half = k / 2;
        let pods = k;
        let edges = pods * half;
        let aggs = pods * half;
        let cores = half * half;
        let hosts = fat_tree_hosts(k);
        debug_assert_eq!(hosts, edges * half, "host arithmetic must agree");

        let edge_id = |pod: usize, i: usize| (pod * half + i) as u32;
        let agg_id = |pod: usize, i: usize| (edges + pod * half + i) as u32;
        let core_id = |i: usize, j: usize| (edges + aggs + i * half + j) as u32;

        let mut t = Topology::custom(hosts, edges + aggs + cores);

        // Hosts to edge switches.
        let mut h = 0u32;
        for pod in 0..pods {
            for e in 0..half {
                for _ in 0..half {
                    t.wire_host(h, edge_id(pod, e));
                    h += 1;
                }
            }
        }
        // Edge to aggregation (full bipartite within a pod).
        for pod in 0..pods {
            for e in 0..half {
                for a in 0..half {
                    t.wire_switches(edge_id(pod, e), agg_id(pod, a));
                }
            }
        }
        // Aggregation to core: agg `a` of each pod connects to core group
        // `a` (cores a*half .. a*half+half).
        for pod in 0..pods {
            for a in 0..half {
                for j in 0..half {
                    t.wire_switches(agg_id(pod, a), core_id(a, j));
                }
            }
        }
        t.diameter_hops = Some(6);
        t
    }

    /// The host attached to nothing is a configuration bug; validate all
    /// invariants and panic with a description if violated. Returns
    /// `self` for chaining.
    pub fn validate(self) -> Topology {
        self.check();
        self
    }

    /// The by-reference form of [`Topology::validate`]: run the same
    /// assertions without consuming (or cloning) the topology.
    pub fn check(&self) {
        let mut host_deg = vec![0usize; self.hosts];
        for c in &self.cables {
            for n in [c.a, c.b] {
                match n {
                    NodeId::Host(h) => {
                        assert!((h as usize) < self.hosts, "host {h} out of range");
                        host_deg[h as usize] += 1;
                    }
                    NodeId::Switch(s) => {
                        assert!((s as usize) < self.switches, "switch {s} out of range");
                    }
                }
            }
        }
        for (h, d) in host_deg.iter().enumerate() {
            assert_eq!(*d, 1, "host {h} must have exactly one cable, has {d}");
        }
    }
}

/// Host count of the k-ary fat-tree [`Topology::fat_tree`] builds:
/// `k` pods × `k/2` edge switches × `k/2` hosts = `k³/4`.
///
/// The **one** definition of the fat-tree host arithmetic — the builder
/// and every host-count predictor (e.g. `TopologySpec::hosts`) derive
/// from it, so a prediction can never drift from what gets built.
pub const fn fat_tree_hosts(k: usize) -> usize {
    k * (k / 2) * (k / 2)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fat_tree_k6_matches_paper_default() {
        // §4.1: 54 servers, 45 switches (6-port), 6 pods.
        let t = Topology::fat_tree(6).validate();
        assert_eq!(t.hosts, 54);
        assert_eq!(t.switches, 45);
        assert_eq!(t.diameter_hops, Some(6));
        // Every switch in a k-ary fat-tree has exactly k ports.
        let mut deg = vec![0usize; t.switches];
        for c in &t.cables {
            for n in [c.a, c.b] {
                if let NodeId::Switch(s) = n {
                    deg[s as usize] += 1;
                }
            }
        }
        assert!(deg.iter().all(|&d| d == 6), "all switches must be 6-port");
    }

    #[test]
    fn fat_tree_scales_match_table5() {
        // Table 5: scale-out factors 8 and 10 give 128 and 250 servers.
        assert_eq!(Topology::fat_tree(8).hosts, 128);
        assert_eq!(Topology::fat_tree(8).switches, 80);
        assert_eq!(Topology::fat_tree(10).hosts, 250);
        assert_eq!(Topology::fat_tree(10).switches, 125);
    }

    #[test]
    fn fat_tree_cable_count() {
        // k^3/4 host links + k*(k/2)^2 edge-agg + k*(k/2)^2 agg-core.
        let k = 6;
        let t = Topology::fat_tree(k);
        let expect = k * k * k / 4 + 2 * k * (k / 2) * (k / 2);
        assert_eq!(t.cables.len(), expect);
    }

    #[test]
    fn single_switch_and_dumbbell() {
        let t = Topology::single_switch(4).validate();
        assert_eq!((t.hosts, t.switches, t.cables.len()), (4, 1, 4));
        let d = Topology::dumbbell(3, 2).validate();
        assert_eq!((d.hosts, d.switches, d.cables.len()), (5, 2, 6));
    }

    #[test]
    fn linear_chain() {
        let t = Topology::linear(4, 2).validate();
        assert_eq!(t.hosts, 8);
        assert_eq!(t.switches, 4);
        assert_eq!(t.cables.len(), 8 + 3);
    }

    #[test]
    #[should_panic]
    fn odd_arity_panics() {
        Topology::fat_tree(5);
    }

    #[test]
    #[should_panic]
    fn dangling_host_fails_validation() {
        Topology::custom(1, 1).validate();
    }
}
