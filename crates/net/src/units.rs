//! Bandwidth and bandwidth-delay-product arithmetic.
//!
//! All rate math is integer nanosecond arithmetic so serialization times
//! are exactly reproducible. Rates are stored in megabits per second,
//! which represents every link speed in the paper (10 / 40 / 100 Gbps)
//! exactly.

use irn_sim::Duration;

/// A link or pacing rate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Bandwidth {
    mbps: u64,
}

impl Bandwidth {
    /// A rate of `mbps` megabits per second. Panics on zero (a zero-rate
    /// link can never transmit and would wedge the simulation).
    pub const fn from_mbps(mbps: u64) -> Bandwidth {
        assert!(mbps > 0, "bandwidth must be positive");
        Bandwidth { mbps }
    }

    /// A rate of `gbps` gigabits per second.
    pub const fn from_gbps(gbps: u64) -> Bandwidth {
        Bandwidth::from_mbps(gbps * 1000)
    }

    /// This rate in megabits per second.
    pub const fn as_mbps(self) -> u64 {
        self.mbps
    }

    /// This rate in bits per second, as a float (for congestion-control
    /// rate arithmetic).
    pub fn as_bps_f64(self) -> f64 {
        self.mbps as f64 * 1e6
    }

    /// Time to serialize `bytes` onto a link of this rate, rounded up to
    /// the next nanosecond. Zero-byte frames (pure signalling in some
    /// experiment configurations) serialize in zero time.
    pub fn serialize(self, bytes: u64) -> Duration {
        // ns = bytes * 8 / (mbps * 1e6 / 1e9) = bytes * 8000 / mbps
        let bits_scaled = bytes * 8000;
        Duration::nanos(bits_scaled.div_ceil(self.mbps))
    }

    /// Bytes this rate carries in `d` (rounded down); used for PFC
    /// headroom and BDP computation.
    pub fn bytes_in(self, d: Duration) -> u64 {
        // bytes = mbps * 1e6 / 8 * secs = mbps * ns / 8000
        (self.mbps as u128 * d.as_nanos() as u128 / 8000) as u64
    }
}

impl std::fmt::Display for Bandwidth {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.mbps % 1000 == 0 {
            write!(f, "{}Gbps", self.mbps / 1000)
        } else {
            write!(f, "{}Mbps", self.mbps)
        }
    }
}

/// Bandwidth-delay product in bytes for a path with round-trip time
/// `rtt` at rate `bw`.
///
/// For the paper's default (40 Gbps, 6-hop longest path with 2 µs
/// per-link propagation ⇒ 24 µs RTT) this is 120 KB (§4.1).
pub fn bdp_bytes(bw: Bandwidth, rtt: Duration) -> u64 {
    bw.bytes_in(rtt)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serialization_times_match_hand_math() {
        // 1000 B at 40 Gbps = 8000 bits / 40 bits-per-ns = 200 ns.
        assert_eq!(
            Bandwidth::from_gbps(40).serialize(1000),
            Duration::nanos(200)
        );
        // 1500 B at 10 Gbps = 12000 bits / 10 bits-per-ns = 1200 ns.
        assert_eq!(
            Bandwidth::from_gbps(10).serialize(1500),
            Duration::nanos(1200)
        );
        // 64 B at 100 Gbps = 512 bits / 100 = 5.12 → rounds up to 6 ns.
        assert_eq!(Bandwidth::from_gbps(100).serialize(64), Duration::nanos(6));
    }

    #[test]
    fn zero_bytes_serialize_instantly() {
        assert_eq!(Bandwidth::from_gbps(40).serialize(0), Duration::ZERO);
    }

    #[test]
    fn paper_default_bdp_is_120kb() {
        // §4.1: 40 Gbps, longest path 6 hops, 2 µs propagation per link
        // ⇒ RTT 24 µs ⇒ BDP 120 KB.
        let bdp = bdp_bytes(Bandwidth::from_gbps(40), Duration::micros(24));
        assert_eq!(bdp, 120_000);
    }

    #[test]
    fn pfc_headroom_is_upstream_link_bdp() {
        // §4.1: headroom = upstream link's bandwidth-delay product
        // = 40 Gbps × 2 · 2 µs = 20 KB.
        let headroom = Bandwidth::from_gbps(40).bytes_in(Duration::micros(4));
        assert_eq!(headroom, 20_000);
    }

    #[test]
    fn display_formats() {
        assert_eq!(Bandwidth::from_gbps(40).to_string(), "40Gbps");
        assert_eq!(Bandwidth::from_mbps(2500).to_string(), "2500Mbps");
    }

    #[test]
    fn bytes_in_round_trips_with_serialize() {
        let bw = Bandwidth::from_gbps(40);
        let d = bw.serialize(120_000);
        let b = bw.bytes_in(d);
        assert_eq!(b, 120_000);
    }
}
