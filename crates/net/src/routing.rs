//! Shortest-path routing tables with per-flow ECMP.
//!
//! The paper's experiments load-balance with ECMP (§4.1): each flow
//! hashes onto one of the equal-cost shortest paths to its destination
//! and stays there (no packet-level spraying, so reordering only comes
//! from loss — §7 discusses the alternative). This module precomputes,
//! for every `(switch, destination-host)` pair, the set of output ports
//! that lie on a shortest path, and provides the deterministic hash that
//! picks among them.

use crate::topology::{NodeId, Topology};

/// Port-level view of a [`Topology`]: who is plugged into which port.
///
/// Port numbers follow cable order (the convention documented on
/// [`Topology`]): a switch's n-th cable occupies its port n.
#[derive(Debug, Clone)]
pub struct PortMap {
    /// For each switch, the neighbor on each port (indexed by port).
    pub switch_ports: Vec<Vec<NodeId>>,
    /// For each host: the switch it is attached to and the port index on
    /// that switch.
    pub host_attachment: Vec<(u32, u16)>,
}

impl PortMap {
    /// Build the port map from a topology (validates host degree).
    pub fn new(topo: &Topology) -> PortMap {
        let mut switch_ports: Vec<Vec<NodeId>> = vec![Vec::new(); topo.switches];
        let mut host_attachment: Vec<Option<(u32, u16)>> = vec![None; topo.hosts];

        for cable in &topo.cables {
            // Register each switch end; record host attachments.
            let ends = [(cable.a, cable.b), (cable.b, cable.a)];
            for (me, other) in ends {
                if let NodeId::Switch(s) = me {
                    let port = switch_ports[s as usize].len() as u16;
                    switch_ports[s as usize].push(other);
                    if let NodeId::Host(h) = other {
                        assert!(
                            host_attachment[h as usize].is_none(),
                            "host {h} attached more than once"
                        );
                        host_attachment[h as usize] = Some((s, port));
                    }
                }
            }
            if let (NodeId::Host(a), NodeId::Host(b)) = (cable.a, cable.b) {
                panic!("direct host-host cable ({a}-{b}) is not supported");
            }
        }

        let host_attachment = host_attachment
            .into_iter()
            .enumerate()
            .map(|(h, a)| a.unwrap_or_else(|| panic!("host {h} is not attached to any switch")))
            .collect();

        PortMap {
            switch_ports,
            host_attachment,
        }
    }

    /// Number of ports on switch `s`.
    pub fn radix(&self, s: usize) -> usize {
        self.switch_ports[s].len()
    }
}

/// Precomputed ECMP routing state for one topology.
///
/// The candidate-port table is stored flat — one `u16` pool plus an
/// offset per `(switch, host)` — rather than `Vec<Vec<Vec<u16>>>`: the
/// lookup sits on the per-hop hot path, and two loads from contiguous
/// arrays beat three dependent pointer chases into per-pair heap
/// allocations.
#[derive(Debug, Clone)]
pub struct Routes {
    /// Candidate output ports on shortest paths, concatenated in
    /// `(switch, host)` row-major order.
    port_pool: Vec<u16>,
    /// `port_pool[offsets[s*hosts+h] .. offsets[s*hosts+h+1]]` = ports
    /// on shortest paths from switch `s` to host `h`.
    offsets: Vec<u32>,
    /// Flattened hosts×hosts matrix of shortest-path lengths in links.
    host_dist: Vec<u16>,
    hosts: usize,
    /// Longest shortest host-to-host path, in links traversed.
    pub diameter_hops: usize,
}

impl Routes {
    /// Compute shortest-path DAGs by BFS from every host.
    ///
    /// Complexity O(hosts × (switches + cables)) — instantaneous for
    /// every topology in the paper (≤ 250 hosts, ≤ 125 switches).
    pub fn build(topo: &Topology, ports: &PortMap) -> Routes {
        let s_count = topo.switches;
        let h_count = topo.hosts;

        // Switch-to-switch adjacency in port terms.
        // adj[s] = list of (port, neighbor switch) | (port, host).
        let mut next = vec![vec![Vec::new(); h_count]; s_count];
        let mut host_dist = vec![0u16; h_count * h_count];
        let mut diameter = 0usize;

        for dst in 0..h_count {
            // BFS over switches, seeded at the destination's edge switch.
            let (attach_sw, _) = ports.host_attachment[dst];
            let mut dist = vec![usize::MAX; s_count];
            let mut queue = std::collections::VecDeque::new();
            dist[attach_sw as usize] = 1; // one link: edge switch → host
            queue.push_back(attach_sw as usize);
            while let Some(s) = queue.pop_front() {
                for n in &ports.switch_ports[s] {
                    if let NodeId::Switch(t) = n {
                        let t = t.idx_usize();
                        if dist[t] == usize::MAX {
                            dist[t] = dist[s] + 1;
                            queue.push_back(t);
                        }
                    }
                }
            }

            // Candidate ports: any neighbor strictly closer to dst.
            for s in 0..s_count {
                if dist[s] == usize::MAX {
                    continue; // unreachable: left empty, fabric will panic on use
                }
                let mut cands = Vec::new();
                for (port, n) in ports.switch_ports[s].iter().enumerate() {
                    let closer = match n {
                        NodeId::Host(h) => *h as usize == dst,
                        NodeId::Switch(t) => {
                            let td = dist[t.idx_usize()];
                            td != usize::MAX && td + 1 == dist[s]
                        }
                    };
                    if closer {
                        cands.push(port as u16);
                    }
                }
                debug_assert!(!cands.is_empty(), "switch {s} has no route to host {dst}");
                next[s][dst] = cands;
            }

            // Host-to-host distance via each source host's edge switch.
            for src in 0..h_count {
                if src == dst {
                    continue;
                }
                let (src_sw, _) = ports.host_attachment[src];
                let d = dist[src_sw as usize] + 1; // + host→edge link
                host_dist[src * h_count + dst] = d as u16;
                diameter = diameter.max(d);
            }
        }

        // Flatten the per-pair candidate lists into the pooled layout.
        let mut port_pool = Vec::new();
        let mut offsets = Vec::with_capacity(s_count * h_count + 1);
        offsets.push(0u32);
        for row in &next {
            for cands in row {
                port_pool.extend_from_slice(cands);
                offsets.push(port_pool.len() as u32);
            }
        }

        Routes {
            port_pool,
            offsets,
            host_dist,
            hosts: h_count,
            diameter_hops: diameter,
        }
    }

    /// Candidate ports for `(switch, dst_host)` in the pooled table.
    #[inline]
    fn cands(&self, switch: usize, dst_host: usize) -> &[u16] {
        let base = switch * self.hosts + dst_host;
        let start = self.offsets[base] as usize;
        let end = self.offsets[base + 1] as usize;
        &self.port_pool[start..end]
    }

    /// Shortest-path length between two hosts, in links traversed
    /// (0 for `src == dst`).
    pub fn host_distance(&self, src: usize, dst: usize) -> usize {
        self.host_dist[src * self.hosts + dst] as usize
    }

    /// The ECMP-selected output port on `switch` toward `dst_host` for a
    /// flow carrying `ecmp_seed`.
    ///
    /// The hash mixes the seed with the switch id so one flow takes
    /// independent (but fixed) choices at each hop, like hashing a
    /// five-tuple with a switch-specific salt.
    #[inline]
    pub fn out_port(&self, switch: usize, dst_host: usize, ecmp_seed: u32) -> u16 {
        let cands = self.cands(switch, dst_host);
        assert!(
            !cands.is_empty(),
            "no route from switch {switch} to host {dst_host}"
        );
        if cands.len() == 1 {
            return cands[0];
        }
        let h = splitmix64((ecmp_seed as u64) << 32 | switch as u64);
        cands[(h % cands.len() as u64) as usize]
    }

    /// All equal-cost ports (for tests and path-diversity assertions).
    pub fn candidates(&self, switch: usize, dst_host: usize) -> &[u16] {
        self.cands(switch, dst_host)
    }

    /// Per-packet spraying (§7 "Reordering due to load-balancing"):
    /// like [`Routes::out_port`] but mixes a per-packet `nonce` into the
    /// hash, so consecutive packets of one flow spread over all
    /// equal-cost paths (DRILL/packet-spray style schemes [20, 22]).
    pub fn out_port_spray(
        &self,
        switch: usize,
        dst_host: usize,
        ecmp_seed: u32,
        nonce: u32,
    ) -> u16 {
        let cands = self.cands(switch, dst_host);
        assert!(
            !cands.is_empty(),
            "no route from switch {switch} to host {dst_host}"
        );
        if cands.len() == 1 {
            return cands[0];
        }
        let h = splitmix64(((ecmp_seed as u64) << 32 | switch as u64) ^ ((nonce as u64) << 17));
        cands[(h % cands.len() as u64) as usize]
    }
}

/// SplitMix64: a tiny, high-quality 64-bit mixer (public domain), used
/// only for ECMP hashing — never for workload randomness.
/// The precomputed, topology-derived routing state a [`crate::Fabric`]
/// needs: the port map plus the ECMP shortest-path tables.
///
/// Both are pure functions of the [`Topology`], so one `NetTables` can
/// be shared (via `Arc`) by every fabric instantiated over the same
/// geometry — multi-seed replicates of one cell shape stop re-running
/// the per-destination BFS for every cell.
#[derive(Debug)]
pub struct NetTables {
    /// Who is plugged into which switch port.
    pub ports: PortMap,
    /// ECMP shortest-path tables.
    pub routes: Routes,
}

impl NetTables {
    /// Validate `topo` and precompute its port map and routing tables.
    pub fn build(topo: &Topology) -> NetTables {
        topo.check();
        let ports = PortMap::new(topo);
        let routes = Routes::build(topo, &ports);
        NetTables { ports, routes }
    }
}

fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

trait SwitchIdxExt {
    fn idx_usize(&self) -> usize;
}
impl SwitchIdxExt for u32 {
    fn idx_usize(&self) -> usize {
        *self as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn routes_for(topo: &Topology) -> (PortMap, Routes) {
        let ports = PortMap::new(topo);
        let routes = Routes::build(topo, &ports);
        (ports, routes)
    }

    #[test]
    fn single_switch_routes_directly() {
        let t = Topology::single_switch(3);
        let (ports, routes) = routes_for(&t);
        assert_eq!(routes.diameter_hops, 2);
        for dst in 0..3 {
            let port = routes.out_port(0, dst, 99);
            assert_eq!(
                ports.switch_ports[0][port as usize],
                NodeId::Host(dst as u32)
            );
        }
    }

    #[test]
    fn dumbbell_crosses_the_bottleneck() {
        let t = Topology::dumbbell(2, 2);
        let (_, routes) = routes_for(&t);
        assert_eq!(routes.diameter_hops, 3);
        // From switch 0, hosts 2 and 3 must route via the inter-switch
        // port (the only non-host port on switch 0: port index 2).
        assert_eq!(routes.candidates(0, 2), &[2]);
        assert_eq!(routes.candidates(0, 3), &[2]);
    }

    #[test]
    fn fat_tree_k4_diameter_and_path_diversity() {
        let t = Topology::fat_tree(4);
        let (ports, routes) = routes_for(&t);
        assert_eq!(routes.diameter_hops, 6);
        // From an edge switch, a host in a different pod has k/2 = 2
        // equal-cost uplinks.
        let (edge_of_h0, _) = ports.host_attachment[0];
        let far_host = t.hosts - 1;
        assert_eq!(routes.candidates(edge_of_h0 as usize, far_host).len(), 2);
        // A host on the same switch has exactly one candidate (its port).
        assert_eq!(routes.candidates(edge_of_h0 as usize, 1).len(), 1);
    }

    #[test]
    fn fat_tree_k6_diameter_matches_paper() {
        let t = Topology::fat_tree(6);
        let (_, routes) = routes_for(&t);
        assert_eq!(routes.diameter_hops, 6, "§4.1: longest path is 6 hops");
    }

    #[test]
    fn ecmp_is_deterministic_and_spreads() {
        let t = Topology::fat_tree(4);
        let (ports, routes) = routes_for(&t);
        let (edge, _) = ports.host_attachment[0];
        let dst = t.hosts - 1;
        // Deterministic: same seed, same port.
        let p1 = routes.out_port(edge as usize, dst, 5);
        let p2 = routes.out_port(edge as usize, dst, 5);
        assert_eq!(p1, p2);
        // Spreads: many seeds should cover all candidates.
        let cands = routes.candidates(edge as usize, dst);
        let mut seen = std::collections::HashSet::new();
        for seed in 0..64 {
            seen.insert(routes.out_port(edge as usize, dst, seed));
        }
        assert_eq!(seen.len(), cands.len(), "ECMP must use all candidate ports");
    }

    #[test]
    fn all_pairs_reachable_in_fat_tree() {
        let t = Topology::fat_tree(4);
        let (_, routes) = routes_for(&t);
        for s in 0..t.switches {
            for h in 0..t.hosts {
                assert!(
                    !routes.candidates(s, h).is_empty(),
                    "switch {s} cannot reach host {h}"
                );
            }
        }
    }
}
