//! The input-queued switch model (§4.1 of the paper).
//!
//! "All switches in our simulation are input-queued with virtual output
//! ports, that are scheduled using round-robin. The switches can be
//! configured to generate PFC frames by setting appropriate buffer
//! thresholds."
//!
//! * Every input port owns a byte-budgeted buffer; packets are stored in
//!   **virtual output queues** (one per output) so one blocked output
//!   cannot head-of-line-block a different output *inside* the switch.
//!   (HoL blocking in the paper comes from PFC pauses, not the fabric.)
//! * Each output port arbitrates **round-robin across input ports**.
//! * **PFC** (802.1Qbb): when an input port's occupancy crosses the X-OFF
//!   threshold, an X-OFF is owed to the upstream transmitter; when it
//!   drains to the X-ON threshold the pause is lifted. One traffic class
//!   is modelled (the class RDMA rides on).
//! * **ECN**: data packets are marked Congestion-Experienced with a
//!   RED-style probability driven by the egress occupancy (total bytes
//!   queued for the packet's output port), the signal DCQCN \[37\] and
//!   DCTCP \[15\] react to.
//!
//! This module is pure state — no event scheduling — so every branch is
//! unit-testable; the event plumbing lives in [`crate::fabric`].
//!
//! Queue state is struct-of-arrays: packets live in the caller's
//! [`PacketArena`] and each VOQ is an intrusive [`PktQueue`] id chain —
//! a switch never copies a packet, only 4-byte handles.

use irn_sim::{Duration, SimRng};

use crate::arena::{PacketArena, PktId, PktQueue};
use crate::units::Bandwidth;

/// Priority Flow Control thresholds for one input port, in bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PfcConfig {
    /// Send X-OFF when input-port occupancy exceeds this.
    pub xoff_bytes: u64,
    /// Send X-ON when occupancy drains to or below this. Must be
    /// ≤ `xoff_bytes`; a gap adds hysteresis against pause-frame storms.
    pub xon_bytes: u64,
}

impl PfcConfig {
    /// The paper's provisioning rule (§4.1): threshold = buffer −
    /// headroom, headroom = the upstream link's bandwidth-delay product
    /// (it must absorb everything in flight while the pause propagates).
    ///
    /// We add two maximum-size frames of slop for the frame that may be
    /// mid-serialization when the pause lands plus the one crossing the
    /// wire — the standard 802.1Qbb worst-case provisioning — so PFC is
    /// genuinely lossless (asserted by tests).
    pub fn for_buffer(
        buffer_bytes: u64,
        upstream_bw: Bandwidth,
        prop_delay: Duration,
        max_frame_bytes: u64,
    ) -> PfcConfig {
        let in_flight = upstream_bw.bytes_in(prop_delay * 2);
        let headroom = in_flight + 2 * max_frame_bytes;
        assert!(
            buffer_bytes > headroom,
            "buffer ({buffer_bytes} B) must exceed PFC headroom ({headroom} B)"
        );
        let xoff = buffer_bytes - headroom;
        PfcConfig {
            xoff_bytes: xoff,
            // Resume two frames below X-OFF: hysteresis without
            // sacrificing utilization.
            xon_bytes: xoff.saturating_sub(2 * max_frame_bytes),
        }
    }
}

/// RED-style ECN marking parameters (the DCQCN switch configuration).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EcnConfig {
    /// No marking below this egress occupancy.
    pub kmin_bytes: u64,
    /// Always mark above this occupancy.
    pub kmax_bytes: u64,
    /// Marking probability at `kmax` (ramps linearly from 0 at `kmin`).
    pub pmax: f64,
}

impl EcnConfig {
    /// Parameters from the DCQCN paper \[37\] as used for 10–40 Gbps links.
    pub fn dcqcn_default() -> EcnConfig {
        EcnConfig {
            kmin_bytes: 40_000,  // ~5 packets at 8 KB MTU in [37]; 40 KB here
            kmax_bytes: 200_000, // 200 KB
            pmax: 0.01,
        }
    }

    /// DCTCP-style step marking at threshold `k` (mark everything above).
    pub fn step(k_bytes: u64) -> EcnConfig {
        EcnConfig {
            kmin_bytes: k_bytes,
            kmax_bytes: k_bytes,
            pmax: 1.0,
        }
    }

    /// Marking probability at egress occupancy `occ`.
    pub fn mark_probability(&self, occ: u64) -> f64 {
        if occ <= self.kmin_bytes {
            0.0
        } else if occ >= self.kmax_bytes {
            1.0
        } else {
            self.pmax * (occ - self.kmin_bytes) as f64 / (self.kmax_bytes - self.kmin_bytes) as f64
        }
    }
}

/// Outcome of offering a packet to an input port.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Enqueue {
    /// Packet queued. `send_xoff` means this arrival crossed the PFC
    /// threshold and an X-OFF is now owed to the upstream transmitter.
    Queued {
        /// Owe an X-OFF pause frame upstream.
        send_xoff: bool,
        /// The packet was ECN-marked on this enqueue (telemetry; the
        /// mark itself already lives in the queued packet's `ecn_ce`).
        marked: bool,
    },
    /// Buffer overflow: packet dropped (only possible without PFC, or
    /// with misconfigured headroom).
    Dropped,
}

/// Outcome of dequeuing a packet for an output port.
#[derive(Debug, Clone, Copy)]
pub struct Dequeue {
    /// Handle of the packet to transmit (still owned by the arena).
    pub pkt: PktId,
    /// Input port it came from (pause bookkeeping).
    pub in_port: u16,
    /// This departure drained the input port to its X-ON threshold: owe
    /// a resume frame upstream.
    pub send_xon: bool,
}

/// Counters exported by each switch.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SwitchStats {
    /// Packets dropped to buffer overflow.
    pub buffer_drops: u64,
    /// X-OFF pause frames generated.
    pub pauses_sent: u64,
    /// X-ON resume frames generated.
    pub resumes_sent: u64,
    /// Data packets ECN-marked.
    pub ecn_marked: u64,
    /// Packets forwarded.
    pub forwarded: u64,
    /// High-water mark of any input port's occupancy, bytes.
    pub max_input_occupancy: u64,
}

/// Run-time state of one input-queued switch.
#[derive(Debug)]
pub struct SwitchState {
    radix: usize,
    buffer_bytes: u64,
    pfc: Option<PfcConfig>,
    ecn: Option<EcnConfig>,
    /// Bytes buffered per input port.
    input_occ: Vec<u64>,
    /// `voq[out * radix + inp]`: ids of packets from `inp` waiting for
    /// `out`, chained through the shared arena's `next` array.
    voq: Vec<PktQueue>,
    /// Total bytes queued for each output port (ECN signal).
    egress_bytes: Vec<u64>,
    /// Packets queued for each output port (O(1) `has_traffic`; bytes
    /// alone cannot tell — zero-byte control frames carry no bytes).
    egress_pkts: Vec<u32>,
    /// Round-robin position per output port.
    rr_cursor: Vec<usize>,
    /// Whether we currently hold the upstream of each input port paused.
    xoff_active: Vec<bool>,
    /// Counters.
    pub stats: SwitchStats,
}

impl SwitchState {
    /// A switch with `radix` ports, `buffer_bytes` per input port.
    pub fn new(
        radix: usize,
        buffer_bytes: u64,
        pfc: Option<PfcConfig>,
        ecn: Option<EcnConfig>,
    ) -> SwitchState {
        assert!(radix > 0);
        if let Some(p) = pfc {
            assert!(p.xon_bytes <= p.xoff_bytes, "X-ON must not exceed X-OFF");
            assert!(
                p.xoff_bytes < buffer_bytes,
                "X-OFF threshold must leave headroom below the buffer size"
            );
        }
        SwitchState {
            radix,
            buffer_bytes,
            pfc,
            ecn,
            input_occ: vec![0; radix],
            voq: vec![PktQueue::EMPTY; radix * radix],
            egress_bytes: vec![0; radix],
            egress_pkts: vec![0; radix],
            rr_cursor: vec![0; radix],
            xoff_active: vec![false; radix],
            stats: SwitchStats::default(),
        }
    }

    /// Offer a packet arriving on `in_port` destined for `out_port`.
    ///
    /// On success the id lands in the VOQ (the packet possibly
    /// ECN-marked in place); the caller must then try to start the
    /// output port if it is idle, and deliver an X-OFF upstream if
    /// requested. On [`Enqueue::Dropped`] the id stays with the caller,
    /// who releases it back to the arena.
    #[inline]
    pub fn enqueue(
        &mut self,
        in_port: u16,
        out_port: u16,
        pkt: PktId,
        arena: &mut PacketArena,
        rng: &mut SimRng,
    ) -> Enqueue {
        let (inp, out) = (in_port as usize, out_port as usize);
        assert!(inp < self.radix && out < self.radix, "port out of range");
        let (size, is_data) = {
            let p = arena.get(pkt);
            (p.wire_bytes as u64, p.is_data())
        };

        if self.input_occ[inp] + size > self.buffer_bytes {
            self.stats.buffer_drops += 1;
            return Enqueue::Dropped;
        }

        // ECN: mark data packets against the *egress* occupancy they join
        // (DCQCN marks on egress enqueue).
        let mut marked = false;
        if let Some(ecn) = &self.ecn {
            if is_data {
                let p = ecn.mark_probability(self.egress_bytes[out] + size);
                if rng.chance(p) {
                    arena.get_mut(pkt).ecn_ce = true;
                    self.stats.ecn_marked += 1;
                    marked = true;
                }
            }
        }

        self.input_occ[inp] += size;
        self.egress_bytes[out] += size;
        self.egress_pkts[out] += 1;
        self.stats.max_input_occupancy = self.stats.max_input_occupancy.max(self.input_occ[inp]);
        self.voq[out * self.radix + inp].push(arena, pkt);

        let mut send_xoff = false;
        if let Some(pfc) = &self.pfc {
            if !self.xoff_active[inp] && self.input_occ[inp] > pfc.xoff_bytes {
                self.xoff_active[inp] = true;
                self.stats.pauses_sent += 1;
                send_xoff = true;
            }
        }
        Enqueue::Queued { send_xoff, marked }
    }

    /// Pick the next packet for `out_port`, round-robin across input
    /// ports. Returns `None` when no VOQ for this output has traffic.
    #[inline]
    pub fn dequeue(&mut self, out_port: u16, arena: &mut PacketArena) -> Option<Dequeue> {
        let out = out_port as usize;
        assert!(out < self.radix, "port out of range");
        if self.egress_pkts[out] == 0 {
            return None;
        }
        // Branchy wraparound instead of `% radix`: the modulo costs an
        // integer division per probed VOQ, and this scan runs once per
        // forwarded packet.
        let mut inp = self.rr_cursor[out];
        for _ in 0..self.radix {
            if inp >= self.radix {
                inp -= self.radix;
            }
            if let Some(pkt) = self.voq[out * self.radix + inp].pop(arena) {
                // Advance past the input we just served.
                self.rr_cursor[out] = if inp + 1 == self.radix { 0 } else { inp + 1 };
                let size = arena.get(pkt).wire_bytes as u64;
                self.input_occ[inp] -= size;
                self.egress_bytes[out] -= size;
                self.egress_pkts[out] -= 1;
                self.stats.forwarded += 1;

                let mut send_xon = false;
                if let Some(pfc) = &self.pfc {
                    if self.xoff_active[inp] && self.input_occ[inp] <= pfc.xon_bytes {
                        self.xoff_active[inp] = false;
                        self.stats.resumes_sent += 1;
                        send_xon = true;
                    }
                }
                return Some(Dequeue {
                    pkt,
                    in_port: inp as u16,
                    send_xon,
                });
            }
            inp += 1;
        }
        None
    }

    /// True if any packet is waiting for `out_port`.
    #[inline]
    pub fn has_traffic(&self, out_port: u16) -> bool {
        self.egress_pkts[out_port as usize] > 0
    }

    /// Occupancy of input port `p`, bytes.
    pub fn input_occupancy(&self, p: u16) -> u64 {
        self.input_occ[p as usize]
    }

    /// Bytes queued toward output port `p`.
    pub fn egress_occupancy(&self, p: u16) -> u64 {
        self.egress_bytes[p as usize]
    }

    /// Whether this switch currently holds input port `p`'s upstream
    /// paused.
    pub fn holds_paused(&self, p: u16) -> bool {
        self.xoff_active[p as usize]
    }

    /// Port count.
    pub fn radix(&self) -> usize {
        self.radix
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::{FlowId, HostId, Packet};

    fn pkt(bytes: u32) -> Packet {
        Packet::data(FlowId(0), HostId(0), HostId(1), 0, bytes)
    }

    fn rng() -> SimRng {
        SimRng::new(1)
    }

    /// Enqueue `p`, allocating it into `a`.
    fn offer(
        sw: &mut SwitchState,
        a: &mut PacketArena,
        inp: u16,
        out: u16,
        p: Packet,
        r: &mut SimRng,
    ) -> Enqueue {
        let id = a.alloc(p);
        let e = sw.enqueue(inp, out, id, a, r);
        if e == Enqueue::Dropped {
            a.release(id); // the fabric does this in production
        }
        e
    }

    /// Dequeue from `out`, copying the packet out of the arena.
    fn take(sw: &mut SwitchState, a: &mut PacketArena, out: u16) -> Option<(Packet, u16, bool)> {
        sw.dequeue(out, a).map(|d| {
            let p = *a.get(d.pkt);
            a.release(d.pkt);
            (p, d.in_port, d.send_xon)
        })
    }

    #[test]
    fn fifo_within_one_voq() {
        let mut sw = SwitchState::new(2, 10_000, None, None);
        let mut a = PacketArena::new();
        let mut r = rng();
        for psn in 0..3 {
            let mut p = pkt(100);
            p.psn = psn;
            assert!(matches!(
                offer(&mut sw, &mut a, 0, 1, p, &mut r),
                Enqueue::Queued { .. }
            ));
        }
        for psn in 0..3 {
            assert_eq!(take(&mut sw, &mut a, 1).unwrap().0.psn, psn);
        }
        assert!(take(&mut sw, &mut a, 1).is_none());
        assert_eq!(a.live(), 0, "arena empty at quiescence");
    }

    #[test]
    fn round_robin_across_inputs() {
        let mut sw = SwitchState::new(3, 10_000, None, None);
        let mut a = PacketArena::new();
        let mut r = rng();
        // Two packets from each of inputs 0 and 1, all to output 2.
        for inp in [0u16, 1] {
            for psn in 0..2 {
                let mut p = pkt(100);
                p.psn = psn;
                p.sack = inp as u32; // tag origin for the assertion
                offer(&mut sw, &mut a, inp, 2, p, &mut r);
            }
        }
        let order: Vec<u32> = (0..4)
            .map(|_| take(&mut sw, &mut a, 2).unwrap().0.sack)
            .collect();
        assert_eq!(order, vec![0, 1, 0, 1], "must alternate between inputs");
    }

    #[test]
    fn buffer_overflow_drops_without_pfc() {
        let mut sw = SwitchState::new(2, 250, None, None);
        let mut a = PacketArena::new();
        let mut r = rng();
        assert!(matches!(
            offer(&mut sw, &mut a, 0, 1, pkt(200), &mut r),
            Enqueue::Queued { .. }
        ));
        assert_eq!(
            offer(&mut sw, &mut a, 0, 1, pkt(100), &mut r),
            Enqueue::Dropped
        );
        assert_eq!(sw.stats.buffer_drops, 1);
        // Zero-byte control frames always fit.
        assert!(matches!(
            offer(&mut sw, &mut a, 0, 1, pkt(0), &mut r),
            Enqueue::Queued { .. }
        ));
    }

    #[test]
    fn pfc_xoff_fires_once_on_threshold_crossing() {
        let pfc = PfcConfig {
            xoff_bytes: 250,
            xon_bytes: 100,
        };
        let mut sw = SwitchState::new(2, 1000, Some(pfc), None);
        let mut a = PacketArena::new();
        let mut r = rng();
        assert_eq!(
            offer(&mut sw, &mut a, 0, 1, pkt(200), &mut r),
            Enqueue::Queued {
                send_xoff: false,
                marked: false
            }
        );
        // Crosses 250 B: X-OFF owed.
        assert_eq!(
            offer(&mut sw, &mut a, 0, 1, pkt(100), &mut r),
            Enqueue::Queued {
                send_xoff: true,
                marked: false
            }
        );
        // Already paused: no duplicate X-OFF.
        assert_eq!(
            offer(&mut sw, &mut a, 0, 1, pkt(100), &mut r),
            Enqueue::Queued {
                send_xoff: false,
                marked: false
            }
        );
        assert_eq!(sw.stats.pauses_sent, 1);
        assert!(sw.holds_paused(0));
    }

    #[test]
    fn pfc_xon_fires_when_drained_to_threshold() {
        let pfc = PfcConfig {
            xoff_bytes: 250,
            xon_bytes: 100,
        };
        let mut sw = SwitchState::new(2, 1000, Some(pfc), None);
        let mut a = PacketArena::new();
        let mut r = rng();
        for _ in 0..3 {
            offer(&mut sw, &mut a, 0, 1, pkt(100), &mut r);
        }
        assert!(sw.holds_paused(0));
        // 300 → 200: still above X-ON (100).
        assert!(!take(&mut sw, &mut a, 1).unwrap().2);
        // 200 → 100: at X-ON, resume.
        assert!(take(&mut sw, &mut a, 1).unwrap().2);
        assert!(!sw.holds_paused(0));
        assert_eq!(sw.stats.resumes_sent, 1);
    }

    #[test]
    fn pfc_is_per_input_port() {
        let pfc = PfcConfig {
            xoff_bytes: 150,
            xon_bytes: 50,
        };
        let mut sw = SwitchState::new(3, 1000, Some(pfc), None);
        let mut a = PacketArena::new();
        let mut r = rng();
        // Fill input 0 past the threshold; input 1 stays quiet.
        offer(&mut sw, &mut a, 0, 2, pkt(200), &mut r);
        assert!(sw.holds_paused(0));
        assert!(!sw.holds_paused(1));
        assert!(matches!(
            offer(&mut sw, &mut a, 1, 2, pkt(100), &mut r),
            Enqueue::Queued {
                send_xoff: false,
                marked: false
            }
        ));
    }

    #[test]
    fn ecn_marks_above_kmax_never_below_kmin() {
        let ecn = EcnConfig {
            kmin_bytes: 500,
            kmax_bytes: 1000,
            pmax: 1.0,
        };
        let mut sw = SwitchState::new(2, 1_000_000, None, Some(ecn));
        let mut a = PacketArena::new();
        let mut r = rng();
        // First packet joins an empty egress queue: occupancy 400 < kmin.
        offer(&mut sw, &mut a, 0, 1, pkt(400), &mut r);
        // Keep filling: once occupancy ≥ kmax every data packet is marked.
        for _ in 0..5 {
            offer(&mut sw, &mut a, 0, 1, pkt(400), &mut r);
        }
        let mut marked = Vec::new();
        while let Some((p, _, _)) = take(&mut sw, &mut a, 1) {
            marked.push(p.ecn_ce);
        }
        assert!(!marked[0], "below kmin must not be marked");
        assert!(
            marked[2..].iter().all(|&m| m),
            "above kmax every packet must be marked, got {marked:?}"
        );
    }

    #[test]
    fn ecn_ignores_control_packets() {
        let ecn = EcnConfig::step(0); // mark everything
        let mut sw = SwitchState::new(2, 1_000_000, None, Some(ecn));
        let mut a = PacketArena::new();
        let mut r = rng();
        let ack = Packet::control(
            crate::packet::PacketKind::Ack,
            FlowId(0),
            HostId(1),
            HostId(0),
            5,
            64,
        );
        offer(&mut sw, &mut a, 0, 1, ack, &mut r);
        assert!(!take(&mut sw, &mut a, 1).unwrap().0.ecn_ce);
    }

    #[test]
    fn mark_probability_ramp() {
        let ecn = EcnConfig {
            kmin_bytes: 100,
            kmax_bytes: 300,
            pmax: 0.5,
        };
        assert_eq!(ecn.mark_probability(50), 0.0);
        assert_eq!(ecn.mark_probability(100), 0.0);
        assert!((ecn.mark_probability(200) - 0.25).abs() < 1e-12);
        assert_eq!(ecn.mark_probability(300), 1.0); // note: ≥kmax ⇒ 1.0
        assert_eq!(ecn.mark_probability(400), 1.0);
    }

    #[test]
    fn for_buffer_matches_paper_provisioning() {
        // §4.1 defaults: 240 KB buffer, 40 Gbps, 2 µs ⇒ headroom 20 KB
        // (+ 2 max frames of slop), threshold ≈ 220 KB.
        let pfc = PfcConfig::for_buffer(
            240_000,
            Bandwidth::from_gbps(40),
            Duration::micros(2),
            1_048,
        );
        assert_eq!(pfc.xoff_bytes, 240_000 - 20_000 - 2 * 1_048);
        assert!(pfc.xon_bytes < pfc.xoff_bytes);
    }

    #[test]
    fn egress_accounting_balances() {
        let mut sw = SwitchState::new(2, 100_000, None, None);
        let mut a = PacketArena::new();
        let mut r = rng();
        for _ in 0..10 {
            offer(&mut sw, &mut a, 0, 1, pkt(1000), &mut r);
        }
        assert_eq!(sw.egress_occupancy(1), 10_000);
        assert_eq!(sw.input_occupancy(0), 10_000);
        for _ in 0..10 {
            take(&mut sw, &mut a, 1);
        }
        assert_eq!(sw.egress_occupancy(1), 0);
        assert_eq!(sw.input_occupancy(0), 0);
        assert!(!sw.has_traffic(1));
        assert_eq!(a.live(), 0);
    }

    #[test]
    fn zero_byte_frames_count_as_traffic() {
        // `has_traffic` must see queued zero-byte control frames even
        // though they add no egress bytes.
        let mut sw = SwitchState::new(2, 100_000, None, None);
        let mut a = PacketArena::new();
        let mut r = rng();
        offer(&mut sw, &mut a, 0, 1, pkt(0), &mut r);
        assert_eq!(sw.egress_occupancy(1), 0);
        assert!(sw.has_traffic(1));
        assert!(take(&mut sw, &mut a, 1).is_some());
        assert!(!sw.has_traffic(1));
    }
}
