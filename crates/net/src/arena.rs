//! The packet arena: slab storage for every [`Packet`] in flight
//! through the fabric, addressed by dense 4-byte [`PktId`] handles.
//!
//! Before this module existed, every `FabricEvent::Arrive` carried a
//! 64-byte `Packet` by value through the global event queue and every
//! switch hop re-enqueued that copy into a `VecDeque<Packet>` VOQ — the
//! hottest loop in the simulator was memmove. The arena makes the
//! packet bytes live in **one** contiguous slab for their whole fabric
//! transit; events, VOQs and deliveries pass the id.
//!
//! ## Ownership rules
//!
//! * A slot is allocated exactly once, by [`Fabric::host_start_tx`]
//!   (the packet's first serialization onto its source uplink), and
//!   released exactly once: by the fabric itself when the packet dies
//!   inside the network (buffer overflow, fault injection), or by the
//!   consumer of a `FabricOutput::Deliver` via
//!   [`Fabric::take_delivered`]. Double-release panics — the free-list
//!   sentinel in `next` doubles as a liveness flag, so the check is
//!   free.
//! * Slots recycle LIFO, so a steady-state simulation touches the same
//!   few cache-hot slots over and over; the slab only grows to the
//!   peak number of packets simultaneously in flight
//!   ([`PacketArena::peak_slots`], exported into `MemoryStats`).
//! * At quiescence (no packets in flight) the arena must be empty:
//!   [`PacketArena::live`] `== 0` and `allocated == released` —
//!   asserted by fabric tests and the arena invariant suite.
//!
//! ## Intrusive VOQ chains
//!
//! Switch VOQs are FIFO queues *of ids*: [`PktQueue`] is a two-word
//! `{head, tail}` pair chained through the arena's parallel [`next`]
//! array. One contiguous backing store serves every VOQ of every
//! switch — no per-queue allocation, O(1) push/pop, and a 4-byte link
//! per packet instead of a 64-byte copy. Ring buffers were considered
//! and rejected: zero-byte control frames (the RoCE baseline's ACKs)
//! make per-VOQ packet counts unbounded, so any fixed-capacity ring
//! would need overflow handling; the intrusive list has none of that
//! while keeping the same memory locality (the `next` array is as
//! dense as the slab itself).
//!
//! [`Fabric::host_start_tx`]: crate::Fabric::host_start_tx
//! [`Fabric::take_delivered`]: crate::Fabric::take_delivered
//! [`next`]: PacketArena

use crate::packet::Packet;

/// Dense handle of a packet slot in a [`PacketArena`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PktId(pub u32);

/// `next`-chain terminator for a packet at the tail of a VOQ (or in no
/// queue at all).
const NIL: u32 = u32::MAX;
/// `next`-chain sentinel for a **released** slot sitting on the free
/// list. Distinct from [`NIL`] so releasing twice is detectable.
const FREE: u32 = u32::MAX - 1;

/// Slab of [`Packet`]s with LIFO free-list recycling and an intrusive
/// `next` array for [`PktQueue`] FIFO chains.
#[derive(Debug, Default)]
pub struct PacketArena {
    slots: Vec<Packet>,
    /// Parallel to `slots`: VOQ successor ([`NIL`] = none), or [`FREE`]
    /// when the slot is on the free list.
    next: Vec<u32>,
    /// Released slot ids, reused LIFO.
    free: Vec<u32>,
    live: u32,
    peak: u32,
    allocated: u64,
    released: u64,
}

impl PacketArena {
    /// An empty arena. Slots are created on demand.
    pub fn new() -> PacketArena {
        PacketArena::default()
    }

    /// Store `pkt`, returning its handle. Reuses the most recently
    /// released slot when one exists.
    #[inline]
    pub fn alloc(&mut self, pkt: Packet) -> PktId {
        let id = match self.free.pop() {
            Some(id) => {
                debug_assert_eq!(self.next[id as usize], FREE);
                self.slots[id as usize] = pkt;
                self.next[id as usize] = NIL;
                id
            }
            None => {
                let id = self.slots.len() as u32;
                assert!(id < FREE, "packet arena overflow");
                self.slots.push(pkt);
                self.next.push(NIL);
                id
            }
        };
        self.live += 1;
        self.peak = self.peak.max(self.live);
        self.allocated += 1;
        PktId(id)
    }

    /// Read a live packet.
    #[inline]
    pub fn get(&self, id: PktId) -> &Packet {
        debug_assert_ne!(self.next[id.0 as usize], FREE, "read of released PktId");
        &self.slots[id.0 as usize]
    }

    /// Mutate a live packet (ECN marking on enqueue).
    #[inline]
    pub fn get_mut(&mut self, id: PktId) -> &mut Packet {
        debug_assert_ne!(self.next[id.0 as usize], FREE, "write to released PktId");
        &mut self.slots[id.0 as usize]
    }

    /// Retire a slot. Panics on double release — every id is retired
    /// exactly once.
    #[inline]
    pub fn release(&mut self, id: PktId) {
        let slot = &mut self.next[id.0 as usize];
        assert_ne!(*slot, FREE, "PktId {} released twice", id.0);
        *slot = FREE;
        self.free.push(id.0);
        self.live -= 1;
        self.released += 1;
    }

    /// Packets currently in flight (allocated and not yet released).
    pub fn live(&self) -> u32 {
        self.live
    }

    /// High-water mark of simultaneously live packets.
    pub fn peak_slots(&self) -> u32 {
        self.peak
    }

    /// Total allocations over the arena's lifetime.
    pub fn allocated(&self) -> u64 {
        self.allocated
    }

    /// Total releases over the arena's lifetime.
    pub fn released(&self) -> u64 {
        self.released
    }

    /// Analytic peak footprint: every slot the slab grew to, with its
    /// `next` link and free-list entry. Deterministic (`size_of`, not
    /// an allocator probe), like the rest of `MemoryStats`.
    pub fn pool_bytes(&self) -> u64 {
        let per_slot = std::mem::size_of::<Packet>() + 2 * std::mem::size_of::<u32>();
        self.slots.len() as u64 * per_slot as u64
    }
}

/// One FIFO queue of packet ids, chained through
/// [`PacketArena::next`](PacketArena). Two words per queue — a switch
/// holds `radix²` of these in one flat vector.
#[derive(Debug, Clone, Copy)]
pub struct PktQueue {
    head: u32,
    tail: u32,
}

impl PktQueue {
    /// An empty queue.
    pub const EMPTY: PktQueue = PktQueue {
        head: NIL,
        tail: NIL,
    };

    /// True when no packet is queued.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.head == NIL
    }

    /// Append `id` at the tail.
    #[inline]
    pub fn push(&mut self, arena: &mut PacketArena, id: PktId) {
        debug_assert_eq!(arena.next[id.0 as usize], NIL, "id already queued");
        if self.head == NIL {
            self.head = id.0;
        } else {
            arena.next[self.tail as usize] = id.0;
        }
        self.tail = id.0;
    }

    /// Pop the head, or `None` when empty.
    #[inline]
    pub fn pop(&mut self, arena: &mut PacketArena) -> Option<PktId> {
        if self.head == NIL {
            return None;
        }
        let id = self.head;
        self.head = arena.next[id as usize];
        arena.next[id as usize] = NIL;
        if self.head == NIL {
            self.tail = NIL;
        }
        Some(PktId(id))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::{FlowId, HostId};

    fn pkt(psn: u32) -> Packet {
        Packet::data(FlowId(1), HostId(0), HostId(1), psn, 1000)
    }

    #[test]
    fn alloc_release_recycles_lifo() {
        let mut a = PacketArena::new();
        let x = a.alloc(pkt(0));
        let y = a.alloc(pkt(1));
        assert_eq!((x.0, y.0), (0, 1));
        assert_eq!(a.live(), 2);
        a.release(x);
        // LIFO: the freed slot 0 is handed out again first.
        let z = a.alloc(pkt(2));
        assert_eq!(z.0, 0);
        assert_eq!(a.get(z).psn, 2);
        assert_eq!(a.peak_slots(), 2);
        a.release(y);
        a.release(z);
        assert_eq!(a.live(), 0);
        assert_eq!(a.allocated(), a.released());
    }

    #[test]
    #[should_panic(expected = "released twice")]
    fn double_release_panics() {
        let mut a = PacketArena::new();
        let x = a.alloc(pkt(0));
        a.release(x);
        a.release(x);
    }

    #[test]
    fn queue_is_fifo_across_recycled_slots() {
        let mut a = PacketArena::new();
        let mut q = PktQueue::EMPTY;
        for psn in 0..5 {
            let id = a.alloc(pkt(psn));
            q.push(&mut a, id);
        }
        for psn in 0..5 {
            let id = q.pop(&mut a).expect("queued");
            assert_eq!(a.get(id).psn, psn);
            a.release(id);
        }
        assert!(q.is_empty());
        assert!(q.pop(&mut a).is_none());
        // Refill through the recycled slots: order still FIFO.
        for psn in 10..13 {
            let id = a.alloc(pkt(psn));
            q.push(&mut a, id);
        }
        let mut order = Vec::new();
        while let Some(id) = q.pop(&mut a) {
            order.push(a.get(id).psn);
        }
        assert_eq!(order, vec![10, 11, 12]);
    }

    #[test]
    fn interleaved_queues_share_one_arena() {
        let mut a = PacketArena::new();
        let mut q1 = PktQueue::EMPTY;
        let mut q2 = PktQueue::EMPTY;
        for psn in 0..6 {
            let id = a.alloc(pkt(psn));
            if psn % 2 == 0 {
                q1.push(&mut a, id);
            } else {
                q2.push(&mut a, id);
            }
        }
        let mut evens = Vec::new();
        while let Some(id) = q1.pop(&mut a) {
            evens.push(a.get(id).psn);
        }
        let mut odds = Vec::new();
        while let Some(id) = q2.pop(&mut a) {
            odds.push(a.get(id).psn);
        }
        assert_eq!(evens, vec![0, 2, 4]);
        assert_eq!(odds, vec![1, 3, 5]);
    }

    #[test]
    fn pool_bytes_tracks_slab_growth_not_live_count() {
        let mut a = PacketArena::new();
        let ids: Vec<PktId> = (0..8).map(|p| a.alloc(pkt(p))).collect();
        let full = a.pool_bytes();
        for id in ids {
            a.release(id);
        }
        assert_eq!(a.live(), 0);
        assert_eq!(a.pool_bytes(), full, "slab never shrinks");
        let per_slot = (std::mem::size_of::<Packet>() + 8) as u64;
        assert_eq!(full, 8 * per_slot);
    }
}
