//! # irn-net — packet-level network substrate
//!
//! This crate reproduces the network model of the simulator used in
//! "Revisiting Network Support for RDMA" (SIGCOMM 2018, §4.1):
//!
//! * full-duplex **links** with configurable bandwidth and propagation
//!   delay ([`Bandwidth`], [`units`]);
//! * **input-queued switches** with virtual output queues (VOQs)
//!   scheduled by per-output round-robin arbitration ([`switch`]);
//! * per-input-port buffer accounting with **Priority Flow Control**
//!   (X-OFF / X-ON pause frames, configurable threshold and headroom,
//!   [`PfcConfig`]);
//! * RED-style **ECN marking** on egress occupancy for DCQCN / DCTCP
//!   ([`EcnConfig`]);
//! * three-tier **fat-tree topologies** (§4.1's 54-server k=6 default,
//!   plus k=8/128-server and k=10/250-server variants) and arbitrary
//!   custom topologies ([`Topology`]);
//! * per-flow **ECMP** routing ([`routing`]);
//! * endhost **NIC ports** that serialize packets onto their uplink and
//!   honour PFC pauses ([`Fabric`] host API);
//! * optional random **fault injection** (per-hop packet loss) for
//!   robustness experiments.
//!
//! The central type is [`Fabric`]: it owns every switch, link and host
//! port, consumes [`FabricEvent`]s from the global event queue, and
//! reports packet deliveries and transmit-ready notifications back to the
//! caller (the transport layer lives above, in `irn-transport`).
//!
//! Everything is deterministic: ties in arbitration are broken by
//! round-robin state, and the only randomness (ECN coin flips, fault
//! injection) draws from a seeded [`irn_sim::SimRng`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arena;
pub mod fabric;
pub mod packet;
pub mod routing;
pub mod switch;
pub mod topology;
pub mod units;

pub use arena::{PacketArena, PktId, PktQueue};
pub use fabric::{Fabric, FabricConfig, FabricEvent, FabricOutput, FabricStats, LoadBalancing};
pub use packet::{FlowId, HostId, Packet, PacketKind};
pub use routing::NetTables;
pub use switch::{EcnConfig, PfcConfig};
pub use topology::{fat_tree_hosts, NodeId, SwitchId, Topology};
pub use units::{bdp_bytes, Bandwidth};
