//! The fabric: every link, switch and host port wired together behind a
//! single event-driven interface.
//!
//! The transport layer above drives the fabric with three calls:
//!
//! * [`Fabric::host_start_tx`] — a host NIC begins serializing a packet
//!   onto its uplink (only legal when [`Fabric::host_tx_idle`]);
//! * [`Fabric::handle`] — process one [`FabricEvent`] popped from the
//!   global queue; may return a packet delivery or a "host may transmit
//!   again" notification;
//! * schedule port — the fabric never owns the event queue; it emits
//!   `(Time, FabricEvent)` pairs through a caller-provided
//!   [`SchedulePort`] (in production, the embedding simulation's
//!   `Scheduler` itself: its event enum has a `From<FabricEvent>` impl,
//!   so fabric events land directly in the typed queue alongside the
//!   transport's own events — no closure threading).
//!
//! ## Model fidelity notes
//!
//! * Store-and-forward at every hop: a packet is eligible for forwarding
//!   only after its last bit arrives (`serialization + propagation` per
//!   link), matching the INET switch model the paper used.
//! * PFC PAUSE/RESUME frames bypass data queues and are modelled with
//!   propagation delay only — a 64-byte control frame's serialization
//!   time (12.8 ns at 40 Gbps) is three orders of magnitude below the
//!   2 µs propagation delay and PFC frames preempt data in real MACs.
//! * A pause lands on the *transmitter* of a link: an X-OFF received
//!   mid-serialization lets the in-flight frame finish (the headroom in
//!   [`PfcConfig::for_buffer`](crate::PfcConfig::for_buffer) absorbs it).

use std::sync::Arc;

use irn_sim::{Duration, SchedulePort, SimRng, Time};

use crate::arena::{PacketArena, PktId};
use crate::packet::{FlowId, HostId, Packet};
use crate::routing::NetTables;
use crate::switch::{Dequeue, EcnConfig, Enqueue, PfcConfig, SwitchState, SwitchStats};
use crate::topology::{NodeId, Topology};
use crate::units::Bandwidth;

/// How the fabric spreads traffic over equal-cost paths.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LoadBalancing {
    /// Per-flow ECMP (§4.1's default): a flow sticks to one path, so the
    /// network never reorders.
    #[default]
    EcmpPerFlow,
    /// Per-packet spraying (§7's "other load balancing schemes that may
    /// cause packet reordering within a flow", e.g. DRILL \[22\]): each
    /// packet independently picks an equal-cost next hop.
    PacketSpray,
}

/// Fabric-wide configuration (uniform across links/switches, as in every
/// experiment of the paper).
#[derive(Debug, Clone)]
pub struct FabricConfig {
    /// Link rate (default scenario: 40 Gbps).
    pub bandwidth: Bandwidth,
    /// Per-link propagation delay (default: 2 µs).
    pub prop_delay: Duration,
    /// Per-input-port buffer (default: 2 × network BDP = 240 KB).
    pub buffer_bytes: u64,
    /// PFC thresholds; `None` disables PFC (losses possible).
    pub pfc: Option<PfcConfig>,
    /// ECN marking; `None` disables marking.
    pub ecn: Option<EcnConfig>,
    /// Random per-switch-hop drop probability for *data* packets (fault
    /// injection; 0.0 in all paper experiments).
    pub loss_injection: f64,
    /// Equal-cost path selection policy.
    pub load_balancing: LoadBalancing,
    /// Seed for the fabric's private randomness (ECN coin flips, fault
    /// injection).
    pub seed: u64,
}

impl FabricConfig {
    /// The paper's default-scenario fabric (§4.1) with PFC enabled.
    pub fn paper_default() -> FabricConfig {
        let bandwidth = Bandwidth::from_gbps(40);
        let prop_delay = Duration::micros(2);
        let buffer_bytes = 240_000;
        FabricConfig {
            bandwidth,
            prop_delay,
            buffer_bytes,
            pfc: Some(PfcConfig::for_buffer(
                buffer_bytes,
                bandwidth,
                prop_delay,
                1_048,
            )),
            ecn: None,
            loss_injection: 0.0,
            load_balancing: LoadBalancing::EcmpPerFlow,
            seed: 0xF_AB,
        }
    }

    /// Same fabric with PFC disabled (drops possible).
    pub fn without_pfc(mut self) -> FabricConfig {
        self.pfc = None;
        self
    }

    /// Enable ECN marking with the given parameters.
    pub fn with_ecn(mut self, ecn: EcnConfig) -> FabricConfig {
        self.ecn = Some(ecn);
        self
    }
}

/// Transmitter endpoint of a directed link.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Endpoint {
    Host(u32),
    SwitchPort { sw: u32, port: u16 },
}

/// One direction of a cable.
#[derive(Debug)]
struct DirLink {
    src: Endpoint,
    dst: Endpoint,
    /// Transmitter currently serializing a frame.
    busy: bool,
    /// Transmitter held paused by the receiver (PFC X-OFF).
    paused: bool,
}

/// Events the fabric schedules for itself via the caller's queue.
///
/// `Arrive` carries a 4-byte [`PktId`] into the fabric's
/// [`PacketArena`], not the 64-byte packet — the whole enum is 12
/// bytes, which is what makes ladder-queue buckets cache-dense.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FabricEvent {
    /// Last bit of `pkt` reaches the receiving end of directed link `link`.
    Arrive {
        /// Directed link index.
        link: u32,
        /// Arena handle of the packet.
        pkt: PktId,
    },
    /// The transmitter of `link` finishes serializing its current frame.
    TxDone {
        /// Directed link index.
        link: u32,
    },
    /// A PFC frame reaches the transmitter of `link`.
    PfcArrive {
        /// Directed link index whose transmitter is being paused/resumed.
        link: u32,
        /// `true` = X-OFF (pause), `false` = X-ON (resume).
        xoff: bool,
    },
}

/// What an event produced for the layer above.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FabricOutput {
    /// A packet arrived at its destination host. The id stays live
    /// until the consumer claims it with [`Fabric::take_delivered`].
    Deliver {
        /// Receiving host.
        host: HostId,
        /// Arena handle of the packet.
        pkt: PktId,
    },
    /// `host`'s uplink just became available (previous transmission
    /// finished, or a PFC pause lifted); the transport may send.
    HostTxReady {
        /// The host whose uplink is free.
        host: HostId,
    },
    /// A packet died inside the fabric (buffer overflow or fault
    /// injection) and will never reach its destination. Loss recovery
    /// stays timer/NACK-driven as before; this output exists so the
    /// layer above can retire per-flow state once nothing of the flow
    /// remains in flight.
    Dropped {
        /// The flow the lost packet belonged to.
        flow: FlowId,
    },
}

/// Aggregated fabric counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct FabricStats {
    /// Packets dropped to buffer overflow (all switches).
    pub buffer_drops: u64,
    /// Packets dropped by fault injection.
    pub injected_drops: u64,
    /// PFC X-OFF frames generated.
    pub pauses: u64,
    /// PFC X-ON frames generated.
    pub resumes: u64,
    /// Data packets ECN-marked.
    pub ecn_marked: u64,
    /// Packets delivered to hosts.
    pub delivered_pkts: u64,
    /// Bytes delivered to hosts (wire bytes).
    pub delivered_bytes: u64,
}

/// The simulated network: topology + switches + links + host ports.
pub struct Fabric {
    cfg: FabricConfig,
    links: Vec<DirLink>,
    switches: Vec<SwitchState>,
    /// Directed link leaving each switch port, flattened to
    /// `sw * port_stride + port` (one load instead of a pointer chase
    /// per forwarded packet).
    switch_out_link: Vec<u32>,
    /// Directed link entering each switch port, same layout.
    switch_in_link: Vec<u32>,
    /// Row width of the two link tables: max ports on any switch.
    port_stride: usize,
    /// Precomputed `cfg.bandwidth.serialize(bytes)` for small frames.
    /// Every data/control packet fits; the table turns a per-hop u64
    /// division into a load. Larger frames fall back to the division.
    ser_lut: Vec<Duration>,
    /// Directed link host → edge switch.
    host_uplink: Vec<u32>,
    /// Shared routing tables (see [`NetTables`]): per-topology, not
    /// per-fabric, so seed replicates skip the BFS rebuild.
    tables: Arc<NetTables>,
    /// Every packet in flight, addressed by [`PktId`].
    arena: PacketArena,
    rng: SimRng,
    injected_drops: u64,
    delivered_pkts: u64,
    delivered_bytes: u64,
    hosts: usize,
}

impl Fabric {
    /// Instantiate the fabric for `topo` under `cfg`, building fresh
    /// routing tables. Use [`Fabric::with_tables`] to share tables
    /// across fabrics over the same topology.
    pub fn new(topo: &Topology, cfg: FabricConfig) -> Fabric {
        let tables = Arc::new(NetTables::build(topo));
        Fabric::with_tables(topo, tables, cfg)
    }

    /// Instantiate the fabric for `topo` under `cfg` with precomputed
    /// routing tables. `tables` must have been built from this exact
    /// topology ([`NetTables::build`]).
    pub fn with_tables(topo: &Topology, tables: Arc<NetTables>, cfg: FabricConfig) -> Fabric {
        topo.check();

        let mut links = Vec::with_capacity(topo.cables.len() * 2);
        let mut out_rows: Vec<Vec<u32>> = vec![Vec::new(); topo.switches];
        let mut in_rows: Vec<Vec<u32>> = vec![Vec::new(); topo.switches];
        let mut host_uplink = vec![u32::MAX; topo.hosts];

        // Port numbers must match PortMap: cable order per switch.
        let mut next_port = vec![0u16; topo.switches];
        let endpoint = |n: NodeId, next_port: &mut Vec<u16>| match n {
            NodeId::Host(h) => Endpoint::Host(h),
            NodeId::Switch(s) => {
                let port = next_port[s as usize];
                next_port[s as usize] += 1;
                Endpoint::SwitchPort { sw: s, port }
            }
        };

        for cable in &topo.cables {
            let ea = endpoint(cable.a, &mut next_port);
            let eb = endpoint(cable.b, &mut next_port);
            for (src, dst) in [(ea, eb), (eb, ea)] {
                let id = links.len() as u32;
                links.push(DirLink {
                    src,
                    dst,
                    busy: false,
                    paused: false,
                });
                match src {
                    Endpoint::Host(h) => host_uplink[h as usize] = id,
                    Endpoint::SwitchPort { sw, port } => {
                        let v = &mut out_rows[sw as usize];
                        if v.len() <= port as usize {
                            v.resize(port as usize + 1, u32::MAX);
                        }
                        v[port as usize] = id;
                    }
                }
                match dst {
                    Endpoint::Host(_) => {}
                    Endpoint::SwitchPort { sw, port } => {
                        let v = &mut in_rows[sw as usize];
                        if v.len() <= port as usize {
                            v.resize(port as usize + 1, u32::MAX);
                        }
                        v[port as usize] = id;
                    }
                }
            }
        }

        let switches = (0..topo.switches)
            .map(|s| SwitchState::new(tables.ports.radix(s), cfg.buffer_bytes, cfg.pfc, cfg.ecn))
            .collect();

        let rng = SimRng::new(cfg.seed ^ 0x5EED_F00D);

        // Flatten the per-switch port→link rows into uniform-stride
        // tables so the hot path indexes once instead of chasing a
        // per-switch Vec pointer.
        let port_stride = out_rows
            .iter()
            .chain(in_rows.iter())
            .map(Vec::len)
            .max()
            .unwrap_or(0);
        let flatten = |rows: Vec<Vec<u32>>| -> Vec<u32> {
            let mut flat = vec![u32::MAX; rows.len() * port_stride];
            for (sw, row) in rows.into_iter().enumerate() {
                flat[sw * port_stride..sw * port_stride + row.len()].copy_from_slice(&row);
            }
            flat
        };
        let switch_out_link = flatten(out_rows);
        let switch_in_link = flatten(in_rows);

        let ser_lut: Vec<Duration> = (0..2048u64).map(|b| cfg.bandwidth.serialize(b)).collect();

        Fabric {
            cfg,
            links,
            switches,
            switch_out_link,
            switch_in_link,
            port_stride,
            ser_lut,
            host_uplink,
            tables,
            arena: PacketArena::new(),
            rng,
            injected_drops: 0,
            delivered_pkts: 0,
            delivered_bytes: 0,
            hosts: topo.hosts,
        }
    }

    /// Number of hosts.
    pub fn hosts(&self) -> usize {
        self.hosts
    }

    /// Link rate.
    pub fn bandwidth(&self) -> Bandwidth {
        self.cfg.bandwidth
    }

    /// Per-link propagation delay.
    pub fn prop_delay(&self) -> Duration {
        self.cfg.prop_delay
    }

    /// Longest shortest host-to-host path in links (for BDP-FC).
    pub fn diameter_hops(&self) -> usize {
        self.tables.routes.diameter_hops
    }

    /// Shortest-path length between two hosts in links.
    pub fn path_hops(&self, src: HostId, dst: HostId) -> usize {
        self.tables.routes.host_distance(src.idx(), dst.idx())
    }

    /// Read a live in-flight packet by id.
    #[inline]
    pub fn packet(&self, id: PktId) -> &Packet {
        self.arena.get(id)
    }

    /// Claim a delivered packet: copy it out of the arena and retire
    /// the id. Must be called exactly once per
    /// [`FabricOutput::Deliver`].
    #[inline]
    pub fn take_delivered(&mut self, id: PktId) -> Packet {
        let pkt = *self.arena.get(id);
        self.arena.release(id);
        pkt
    }

    /// True when `Arrive { link, pkt }` would deliver a **data** packet
    /// to a host — the shape the engine may batch with deferred NIC
    /// polling (control deliveries must be handled one at a time; see
    /// the engine's batching notes).
    #[inline]
    pub fn is_host_data_arrival(&self, link: u32, pkt: PktId) -> bool {
        matches!(self.links[link as usize].dst, Endpoint::Host(_)) && self.arena.get(pkt).is_data()
    }

    /// Packets currently in flight through the fabric.
    pub fn pkt_pool_live(&self) -> u32 {
        self.arena.live()
    }

    /// High-water mark of packets simultaneously in flight.
    pub fn pkt_pool_peak(&self) -> u32 {
        self.arena.peak_slots()
    }

    /// Analytic peak footprint of the packet pool, bytes.
    pub fn pkt_pool_bytes(&self) -> u64 {
        self.arena.pool_bytes()
    }

    /// Lifetime (allocated, released) counts — equal at quiescence.
    pub fn pkt_pool_churn(&self) -> (u64, u64) {
        (self.arena.allocated(), self.arena.released())
    }

    /// True when `host` may start a transmission: uplink idle and not
    /// PFC-paused.
    #[inline]
    pub fn host_tx_idle(&self, host: HostId) -> bool {
        let l = &self.links[self.host_uplink[host.idx()] as usize];
        !l.busy && !l.paused
    }

    /// True when `host`'s uplink is paused by PFC.
    pub fn host_tx_paused(&self, host: HostId) -> bool {
        self.links[self.host_uplink[host.idx()] as usize].paused
    }

    /// Begin serializing `pkt` from `host` onto its uplink. The packet
    /// enters the arena here; it leaves via [`Fabric::take_delivered`]
    /// or an internal drop.
    ///
    /// Panics if the uplink is busy or paused — the transport must only
    /// send after [`FabricOutput::HostTxReady`] / [`Fabric::host_tx_idle`].
    #[inline]
    pub fn host_start_tx(
        &mut self,
        now: Time,
        host: HostId,
        mut pkt: Packet,
        port: &mut impl SchedulePort<FabricEvent>,
    ) {
        let link_id = self.host_uplink[host.idx()];
        let link = &mut self.links[link_id as usize];
        assert!(
            !link.busy && !link.paused,
            "host {host:?} started tx on a busy/paused uplink"
        );
        link.busy = true;
        pkt.sent_at = if pkt.is_data() { now } else { pkt.sent_at };
        irn_telemetry::trace!(
            if pkt.is_retx { "pkt.retx" } else { "pkt.tx" },
            t = now.as_nanos(),
            flow = pkt.flow.0,
            src = pkt.src.0,
            dst = pkt.dst.0,
            pkt = pkt.kind.label(),
            psn = pkt.psn,
            bytes = pkt.wire_bytes,
        );
        let ser = self.serialize_wire(pkt.wire_bytes as u64);
        let id = self.arena.alloc(pkt);
        port.schedule(now + ser, FabricEvent::TxDone { link: link_id });
        port.schedule(
            now + ser + self.cfg.prop_delay,
            FabricEvent::Arrive {
                link: link_id,
                pkt: id,
            },
        );
    }

    /// Process one fabric event.
    #[inline]
    pub fn handle(
        &mut self,
        now: Time,
        ev: FabricEvent,
        port: &mut impl SchedulePort<FabricEvent>,
    ) -> Option<FabricOutput> {
        match ev {
            FabricEvent::Arrive { link, pkt } => self.on_arrive(now, link, pkt, port),
            FabricEvent::TxDone { link } => self.on_tx_done(now, link, port),
            FabricEvent::PfcArrive { link, xoff } => self.on_pfc(now, link, xoff, port),
        }
    }

    fn on_arrive(
        &mut self,
        now: Time,
        link_id: u32,
        id: PktId,
        port: &mut impl SchedulePort<FabricEvent>,
    ) -> Option<FabricOutput> {
        match self.links[link_id as usize].dst {
            Endpoint::Host(h) => {
                self.delivered_pkts += 1;
                self.delivered_bytes += self.arena.get(id).wire_bytes as u64;
                Some(FabricOutput::Deliver {
                    host: HostId(h),
                    pkt: id,
                })
            }
            Endpoint::SwitchPort { sw, port: in_port } => {
                // Copy the routing-relevant header fields out of the
                // arena once; the packet bytes themselves stay put.
                let (flow, src, dst, psn, ecmp_seed, is_retx, is_data) = {
                    let pkt = self.arena.get(id);
                    (
                        pkt.flow,
                        pkt.src,
                        pkt.dst,
                        pkt.psn,
                        pkt.ecmp_seed,
                        pkt.is_retx,
                        pkt.is_data(),
                    )
                };
                // Fault injection: a failing hop silently eats the frame.
                if self.cfg.loss_injection > 0.0
                    && is_data
                    && self.rng.chance(self.cfg.loss_injection)
                {
                    self.injected_drops += 1;
                    irn_telemetry::trace!(
                        "pkt.drop",
                        t = now.as_nanos(),
                        flow = flow.0,
                        src = src.0,
                        dst = dst.0,
                        psn = psn,
                        cause = "inject",
                    );
                    self.arena.release(id);
                    return Some(FabricOutput::Dropped { flow });
                }
                let swi = sw as usize;
                let out = match self.cfg.load_balancing {
                    LoadBalancing::EcmpPerFlow => {
                        self.tables.routes.out_port(swi, dst.idx(), ecmp_seed)
                    }
                    LoadBalancing::PacketSpray => {
                        // Per-packet nonce: PSN plus a retransmission bit
                        // so a retransmitted copy can take a new path.
                        let nonce = psn ^ ((is_retx as u32) << 30);
                        self.tables
                            .routes
                            .out_port_spray(swi, dst.idx(), ecmp_seed, nonce)
                    }
                };
                match self.switches[swi].enqueue(in_port, out, id, &mut self.arena, &mut self.rng) {
                    Enqueue::Dropped => {
                        irn_telemetry::trace!(
                            "pkt.drop",
                            t = now.as_nanos(),
                            flow = flow.0,
                            src = src.0,
                            dst = dst.0,
                            psn = psn,
                            cause = "buffer",
                        );
                        self.arena.release(id);
                        return Some(FabricOutput::Dropped { flow });
                    }
                    Enqueue::Queued { send_xoff, marked } => {
                        if marked {
                            irn_telemetry::trace!(
                                "ecn.mark",
                                t = now.as_nanos(),
                                flow = flow.0,
                                src = src.0,
                                dst = dst.0,
                                psn = psn,
                            );
                        }
                        if send_xoff {
                            irn_telemetry::trace!(
                                "pfc.pause",
                                t = now.as_nanos(),
                                sw = swi,
                                port = in_port,
                            );
                            // Pause the transmitter feeding this input.
                            port.schedule(
                                now + self.cfg.prop_delay,
                                FabricEvent::PfcArrive {
                                    link: link_id,
                                    xoff: true,
                                },
                            );
                        }
                        self.try_switch_tx(now, swi, out, port);
                    }
                }
                None
            }
        }
    }

    fn on_tx_done(
        &mut self,
        now: Time,
        link_id: u32,
        port: &mut impl SchedulePort<FabricEvent>,
    ) -> Option<FabricOutput> {
        let link = &mut self.links[link_id as usize];
        link.busy = false;
        if link.paused {
            return None; // the pause owner will kick us on resume
        }
        match link.src {
            Endpoint::Host(h) => Some(FabricOutput::HostTxReady { host: HostId(h) }),
            Endpoint::SwitchPort { sw, port: p } => {
                self.try_switch_tx(now, sw as usize, p, port);
                None
            }
        }
    }

    fn on_pfc(
        &mut self,
        now: Time,
        link_id: u32,
        xoff: bool,
        port: &mut impl SchedulePort<FabricEvent>,
    ) -> Option<FabricOutput> {
        let link = &mut self.links[link_id as usize];
        link.paused = xoff;
        if xoff {
            return None;
        }
        // Resume: restart the transmitter if it has gone idle while
        // paused (if it is mid-frame, TxDone will pick up from here).
        if link.busy {
            return None;
        }
        match link.src {
            Endpoint::Host(h) => Some(FabricOutput::HostTxReady { host: HostId(h) }),
            Endpoint::SwitchPort { sw, port: p } => {
                self.try_switch_tx(now, sw as usize, p, port);
                None
            }
        }
    }

    /// Serialization delay at the fabric line rate, via the LUT for the
    /// common small frames (exact: the table is built from
    /// [`Bandwidth::serialize`]).
    #[inline]
    fn serialize_wire(&self, bytes: u64) -> Duration {
        match self.ser_lut.get(bytes as usize) {
            Some(&d) => d,
            None => self.cfg.bandwidth.serialize(bytes),
        }
    }

    /// Start the transmitter of switch `sw` output `out_port` if it is idle,
    /// unpaused, and has queued traffic.
    fn try_switch_tx(
        &mut self,
        now: Time,
        sw: usize,
        out_port: u16,
        port: &mut impl SchedulePort<FabricEvent>,
    ) {
        let out_link_id = self.switch_out_link[sw * self.port_stride + out_port as usize];
        let link = &self.links[out_link_id as usize];
        if link.busy || link.paused {
            return;
        }
        let Some(Dequeue {
            pkt,
            in_port,
            send_xon,
        }) = self.switches[sw].dequeue(out_port, &mut self.arena)
        else {
            return;
        };
        if send_xon {
            irn_telemetry::trace!("pfc.resume", t = now.as_nanos(), sw = sw, port = in_port,);
            let in_link = self.switch_in_link[sw * self.port_stride + in_port as usize];
            port.schedule(
                now + self.cfg.prop_delay,
                FabricEvent::PfcArrive {
                    link: in_link,
                    xoff: false,
                },
            );
        }
        self.links[out_link_id as usize].busy = true;
        let ser = self.serialize_wire(self.arena.get(pkt).wire_bytes as u64);
        port.schedule(now + ser, FabricEvent::TxDone { link: out_link_id });
        port.schedule(
            now + ser + self.cfg.prop_delay,
            FabricEvent::Arrive {
                link: out_link_id,
                pkt,
            },
        );
    }

    /// Aggregated counters across all switches plus fabric-level ones.
    pub fn stats(&self) -> FabricStats {
        let mut s = FabricStats {
            injected_drops: self.injected_drops,
            delivered_pkts: self.delivered_pkts,
            delivered_bytes: self.delivered_bytes,
            ..FabricStats::default()
        };
        for sw in &self.switches {
            s.buffer_drops += sw.stats.buffer_drops;
            s.pauses += sw.stats.pauses_sent;
            s.resumes += sw.stats.resumes_sent;
            s.ecn_marked += sw.stats.ecn_marked;
        }
        s
    }

    /// Per-switch counters (for tests asserting where congestion formed).
    pub fn switch_stats(&self, sw: usize) -> SwitchStats {
        self.switches[sw].stats
    }

    /// Direct read of a switch's egress occupancy (bytes queued toward
    /// `port`), for tests and debugging.
    pub fn switch_egress_occupancy(&self, sw: usize, port: u16) -> u64 {
        self.switches[sw].egress_occupancy(port)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::{FlowId, PacketKind};
    use irn_sim::EventQueue;

    /// Timestamped packet deliveries to hosts.
    type Deliveries = Vec<(Time, HostId, Packet)>;
    /// Timestamped transmit-ready notifications to hosts.
    type TxReadies = Vec<(Time, HostId)>;

    /// Drive a fabric to quiescence, collecting host deliveries.
    /// Returns (deliveries, tx_ready notifications). Asserts the packet
    /// arena drained — every allocated id retired exactly once.
    fn run(fabric: &mut Fabric, queue: &mut EventQueue<FabricEvent>) -> (Deliveries, TxReadies) {
        let mut delivered = Vec::new();
        let mut ready = Vec::new();
        while let Some((now, ev)) = queue.pop() {
            let mut pending: Vec<(Time, FabricEvent)> = Vec::new();
            let out = fabric.handle(now, ev, &mut pending);
            for (t, e) in pending {
                queue.push(t, e);
            }
            match out {
                Some(FabricOutput::Deliver { host, pkt }) => {
                    delivered.push((now, host, fabric.take_delivered(pkt)))
                }
                Some(FabricOutput::HostTxReady { host }) => ready.push((now, host)),
                Some(FabricOutput::Dropped { .. }) | None => {}
            }
        }
        assert_eq!(fabric.pkt_pool_live(), 0, "arena must drain at quiescence");
        let (allocated, released) = fabric.pkt_pool_churn();
        assert_eq!(allocated, released);
        (delivered, ready)
    }

    fn send(
        fabric: &mut Fabric,
        queue: &mut EventQueue<FabricEvent>,
        now: Time,
        src: u32,
        dst: u32,
        bytes: u32,
        psn: u32,
    ) {
        let mut pkt = Packet::data(FlowId(src), HostId(src), HostId(dst), psn, bytes);
        pkt.ecmp_seed = src;
        let mut pending: Vec<(Time, FabricEvent)> = Vec::new();
        fabric.host_start_tx(now, HostId(src), pkt, &mut pending);
        for (t, e) in pending {
            queue.push(t, e);
        }
    }

    fn small_cfg() -> FabricConfig {
        FabricConfig {
            bandwidth: Bandwidth::from_gbps(40),
            prop_delay: Duration::micros(2),
            buffer_bytes: 240_000,
            pfc: None,
            ecn: None,
            loss_injection: 0.0,
            load_balancing: LoadBalancing::EcmpPerFlow,
            seed: 7,
        }
    }

    #[test]
    fn single_switch_delivery_time_is_exact() {
        // host0 → sw → host1: ser(1000 B @40G) = 200 ns, prop = 2 µs.
        // Two links, store-and-forward: 2·(200 + 2000) ns = 4.4 µs.
        let topo = Topology::single_switch(2);
        let mut fabric = Fabric::new(&topo, small_cfg());
        let mut q = EventQueue::new();
        send(&mut fabric, &mut q, Time::ZERO, 0, 1, 1000, 0);
        let (delivered, ready) = run(&mut fabric, &mut q);
        assert_eq!(delivered.len(), 1);
        let (t, host, pkt) = delivered[0];
        assert_eq!(host, HostId(1));
        assert_eq!(pkt.psn, 0);
        assert_eq!(t, Time::from_nanos(4_400));
        // The sender's uplink freed after serialization: 200 ns.
        assert_eq!(ready, vec![(Time::from_nanos(200), HostId(0))]);
    }

    #[test]
    fn packets_queue_behind_each_other_at_bottleneck() {
        // Two senders to one receiver through one switch: second packet
        // must wait for the first to serialize on the shared downlink.
        let topo = Topology::single_switch(3);
        let mut fabric = Fabric::new(&topo, small_cfg());
        let mut q = EventQueue::new();
        send(&mut fabric, &mut q, Time::ZERO, 0, 2, 1000, 0);
        send(&mut fabric, &mut q, Time::ZERO, 1, 2, 1000, 1);
        let (delivered, _) = run(&mut fabric, &mut q);
        assert_eq!(delivered.len(), 2);
        // First arrives at 4.4 µs; second 200 ns (one serialization) later.
        assert_eq!(delivered[0].0, Time::from_nanos(4_400));
        assert_eq!(delivered[1].0, Time::from_nanos(4_600));
    }

    #[test]
    fn no_drops_with_pfc_under_extreme_fan_in() {
        // 8 senders blast a single receiver with tiny buffers: without
        // PFC this drops; with PFC it must be lossless.
        let topo = Topology::single_switch(9);
        let buffer = 30_000u64;
        let mut cfg = small_cfg();
        cfg.buffer_bytes = buffer;
        cfg.pfc = Some(PfcConfig::for_buffer(
            buffer,
            cfg.bandwidth,
            cfg.prop_delay,
            1_048,
        ));
        let mut fabric = Fabric::new(&topo, cfg);
        let mut q = EventQueue::new();

        // Each sender keeps its uplink saturated: re-send on TxReady.
        let mut sent = [0u32; 8];
        for s in 0..8u32 {
            send(&mut fabric, &mut q, Time::ZERO, s, 8, 1000, 0);
            sent[s as usize] = 1;
        }
        let per_sender = 60u32;
        let mut delivered = 0u64;
        while let Some((now, ev)) = q.pop() {
            let mut pending: Vec<(Time, FabricEvent)> = Vec::new();
            let out = fabric.handle(now, ev, &mut pending);
            for (t, e) in pending {
                q.push(t, e);
            }
            match out {
                Some(FabricOutput::Deliver { pkt, .. }) => {
                    fabric.take_delivered(pkt);
                    delivered += 1;
                }
                Some(FabricOutput::HostTxReady { host }) => {
                    let s = host.0 as usize;
                    if s < 8 && sent[s] < per_sender && fabric.host_tx_idle(host) {
                        send(&mut fabric, &mut q, now, host.0, 8, 1000, sent[s]);
                        sent[s] += 1;
                    }
                }
                Some(FabricOutput::Dropped { .. }) | None => {}
            }
        }
        assert_eq!(fabric.pkt_pool_live(), 0);
        let stats = fabric.stats();
        assert_eq!(stats.buffer_drops, 0, "PFC must be lossless");
        assert!(stats.pauses > 0, "fan-in past tiny buffers must pause");
        assert_eq!(stats.resumes, stats.pauses, "every pause must resume");
        assert_eq!(delivered, 8 * per_sender as u64);
    }

    #[test]
    fn drops_without_pfc_under_same_fan_in() {
        let topo = Topology::single_switch(9);
        let mut cfg = small_cfg();
        cfg.buffer_bytes = 10_000; // tiny: 10 packets
        let mut fabric = Fabric::new(&topo, cfg);
        let mut q = EventQueue::new();
        let mut sent = [0u32; 8];
        for s in 0..8u32 {
            send(&mut fabric, &mut q, Time::ZERO, s, 8, 1000, 0);
            sent[s as usize] = 1;
        }
        let per_sender = 60u32;
        let mut delivered = 0u64;
        while let Some((now, ev)) = q.pop() {
            let mut pending: Vec<(Time, FabricEvent)> = Vec::new();
            let out = fabric.handle(now, ev, &mut pending);
            for (t, e) in pending {
                q.push(t, e);
            }
            match out {
                Some(FabricOutput::Deliver { pkt, .. }) => {
                    fabric.take_delivered(pkt);
                    delivered += 1;
                }
                Some(FabricOutput::HostTxReady { host }) => {
                    let s = host.0 as usize;
                    if s < 8 && sent[s] < per_sender && fabric.host_tx_idle(host) {
                        send(&mut fabric, &mut q, now, host.0, 8, 1000, sent[s]);
                        sent[s] += 1;
                    }
                }
                Some(FabricOutput::Dropped { .. }) | None => {}
            }
        }
        // Dropped packets were released by the fabric itself: the arena
        // still drains to empty.
        assert_eq!(fabric.pkt_pool_live(), 0);
        let stats = fabric.stats();
        assert!(stats.buffer_drops > 0, "tail-drop expected without PFC");
        assert_eq!(stats.pauses, 0);
        assert_eq!(delivered + stats.buffer_drops, 8 * per_sender as u64);
    }

    #[test]
    fn pfc_pause_reaches_host_uplink() {
        // One sender saturates a 2-host dumbbell whose second switch
        // port is congested... simpler: tiny buffer on single switch,
        // one fast sender, verify host uplink sees a pause.
        // Headroom must absorb 2·prop·BW + in-flight frames ≈ 21 KB at
        // 40 Gbps / 2 µs; give 30 KB below a 60 KB buffer.
        let topo = Topology::single_switch(3);
        let buffer = 60_000u64;
        let mut cfg = small_cfg();
        cfg.buffer_bytes = buffer;
        cfg.pfc = Some(PfcConfig {
            xoff_bytes: 30_000,
            xon_bytes: 26_000,
        });
        let mut fabric = Fabric::new(&topo, cfg);
        let mut q = EventQueue::new();
        // Two senders to one host: downlink drains at 1 pkt per 200 ns
        // while 2 pkt per 200 ns arrive; occupancy builds, pause fires.
        let mut sent = [0u32; 2];
        for s in 0..2u32 {
            send(&mut fabric, &mut q, Time::ZERO, s, 2, 1000, 0);
            sent[s as usize] = 1;
        }
        let mut saw_pause = false;
        let mut budget = 400u32;
        while let Some((now, ev)) = q.pop() {
            let mut pending: Vec<(Time, FabricEvent)> = Vec::new();
            let out = fabric.handle(now, ev, &mut pending);
            for (t, e) in pending {
                q.push(t, e);
            }
            saw_pause |= fabric.host_tx_paused(HostId(0)) || fabric.host_tx_paused(HostId(1));
            match out {
                Some(FabricOutput::Deliver { pkt, .. }) => {
                    fabric.take_delivered(pkt);
                }
                Some(FabricOutput::HostTxReady { host }) => {
                    let s = host.0 as usize;
                    if s < 2 && budget > 0 && fabric.host_tx_idle(host) {
                        send(&mut fabric, &mut q, now, host.0, 2, 1000, sent[s]);
                        sent[s] += 1;
                        budget -= 1;
                    }
                }
                Some(FabricOutput::Dropped { .. }) | None => {}
            }
        }
        assert!(saw_pause, "host uplinks should have been paused");
        assert_eq!(fabric.stats().buffer_drops, 0);
    }

    #[test]
    fn ecmp_flows_use_distinct_paths_in_fat_tree() {
        // Cross-pod traffic in a k=4 fat-tree: different seeds must be
        // able to take different core paths (we check routing is actually
        // consulted per flow by sending two flows and completing).
        let topo = Topology::fat_tree(4);
        let mut fabric = Fabric::new(&topo, small_cfg());
        let mut q = EventQueue::new();
        let far = (topo.hosts - 1) as u32;
        for f in 0..4u32 {
            let mut pkt = Packet::data(FlowId(f), HostId(0), HostId(far), 0, 1000);
            pkt.ecmp_seed = f;
            // Inject sequentially: wait for uplink to free between sends.
            if fabric.host_tx_idle(HostId(0)) {
                let mut pending: Vec<(Time, FabricEvent)> = Vec::new();
                fabric.host_start_tx(q.now(), HostId(0), pkt, &mut pending);
                for (t, e) in pending {
                    q.push(t, e);
                }
            }
            // Drain fully before next (keeps the test simple).
            let (d, _) = run(&mut fabric, &mut q);
            assert_eq!(d.len(), 1);
            assert_eq!(d[0].1, HostId(far));
        }
    }

    #[test]
    fn fault_injection_drops_data() {
        let topo = Topology::single_switch(2);
        let mut cfg = small_cfg();
        cfg.loss_injection = 1.0; // drop everything at the switch hop
        let mut fabric = Fabric::new(&topo, cfg);
        let mut q = EventQueue::new();
        send(&mut fabric, &mut q, Time::ZERO, 0, 1, 1000, 0);
        let (delivered, _) = run(&mut fabric, &mut q);
        assert!(delivered.is_empty());
        assert_eq!(fabric.stats().injected_drops, 1);
    }

    #[test]
    fn fault_injection_spares_control_packets() {
        let topo = Topology::single_switch(2);
        let mut cfg = small_cfg();
        cfg.loss_injection = 1.0;
        let mut fabric = Fabric::new(&topo, cfg);
        let mut q = EventQueue::new();
        let ack = Packet::control(PacketKind::Ack, FlowId(0), HostId(0), HostId(1), 3, 64);
        let mut pending: Vec<(Time, FabricEvent)> = Vec::new();
        fabric.host_start_tx(Time::ZERO, HostId(0), ack, &mut pending);
        for (t, e) in pending {
            q.push(t, e);
        }
        let (delivered, _) = run(&mut fabric, &mut q);
        assert_eq!(delivered.len(), 1, "ACKs bypass fault injection");
    }

    #[test]
    fn zero_byte_frames_flow_through() {
        // The RoCE baseline's signalling-only ACKs must traverse the
        // fabric in pure propagation time.
        let topo = Topology::single_switch(2);
        let mut fabric = Fabric::new(&topo, small_cfg());
        let mut q = EventQueue::new();
        let ack = Packet::control(PacketKind::Ack, FlowId(0), HostId(0), HostId(1), 3, 0);
        let mut pending: Vec<(Time, FabricEvent)> = Vec::new();
        fabric.host_start_tx(Time::ZERO, HostId(0), ack, &mut pending);
        for (t, e) in pending {
            q.push(t, e);
        }
        let (delivered, _) = run(&mut fabric, &mut q);
        assert_eq!(delivered.len(), 1);
        assert_eq!(delivered[0].0, Time::from_nanos(4_000)); // 2 × 2 µs
    }

    #[test]
    fn path_hops_match_topology() {
        let topo = Topology::fat_tree(4);
        let fabric = Fabric::new(&topo, small_cfg());
        // Same edge switch: 2 hops. Cross-pod: 6 hops.
        assert_eq!(fabric.path_hops(HostId(0), HostId(1)), 2);
        assert_eq!(
            fabric.path_hops(HostId(0), HostId((topo.hosts - 1) as u32)),
            6
        );
        assert_eq!(fabric.diameter_hops(), 6);
    }
}
