//! # irn-bench — Criterion benchmarks for every paper artifact
//!
//! One bench target per table/figure family (see `benches/`). Network
//! benches run CI-scale configurations (k=4 fat-tree, tens-to-hundreds
//! of flows) through the same `irn-core` API the `repro` binary uses at
//! paper scale; module benches (`table2_modules`) time the exact
//! `irn-rdma` packet-processing functions the paper synthesizes on an
//! FPGA.

#![forbid(unsafe_code)]

use irn_core::transport::cc::CcKind;
use irn_core::transport::config::TransportKind;
use irn_core::workload::SizeDistribution;
use irn_core::{ExperimentConfig, RunResult, TopologySpec, Workload};

/// Bench-scale base configuration: k=4 fat-tree, light flow count so a
/// single run is a few milliseconds.
pub fn bench_cfg(flows: usize) -> ExperimentConfig {
    ExperimentConfig {
        topology: TopologySpec::FatTree(4),
        workload: Workload::Poisson {
            load: 0.7,
            sizes: SizeDistribution::HeavyTailed,
            flow_count: flows,
        },
        ..ExperimentConfig::paper_default(flows)
    }
}

/// Run one (transport, pfc, cc) cell at bench scale.
pub fn bench_cell(flows: usize, t: TransportKind, pfc: bool, cc: CcKind) -> RunResult {
    irn_core::run(bench_cfg(flows).with_transport(t).with_pfc(pfc).with_cc(cc))
}
