//! # irn-bench — Criterion benchmarks for every paper artifact
//!
//! One bench target per table/figure family (see `benches/`). Network
//! benches run CI-scale configurations (k=4 fat-tree, tens-to-hundreds
//! of flows) through the same `irn-core` API the `repro` binary uses at
//! paper scale; module benches (`table2_modules`) time the exact
//! `irn-rdma` packet-processing functions the paper synthesizes on an
//! FPGA.
//!
//! The CI-scale scenario is defined once, in `irn-integration`
//! ([`irn_integration::quick_cfg`]); this crate re-exports it under the
//! bench vocabulary so the integration tests and the benchmarks always
//! measure the same configuration.

#![forbid(unsafe_code)]

pub use irn_integration::{quick_cfg as bench_cfg, run_cell as bench_cell};
