//! Figure 12: IRN with worst-case implementation overheads — +16 B RETH
//! on every packet and a 2 µs PCIe fetch before each retransmission
//! (§6.3) — against plain IRN.

use criterion::{criterion_group, criterion_main, Criterion};
use irn_bench::{bench_cell, bench_cfg};
use irn_core::sim::Duration;
use irn_core::transport::cc::CcKind;
use irn_core::transport::config::TransportKind;
use std::hint::black_box;

const FLOWS: usize = 120;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig12");
    g.sample_size(10);
    g.bench_function("irn_no_overheads", |b| {
        b.iter(|| black_box(bench_cell(FLOWS, TransportKind::Irn, false, CcKind::None)))
    });
    g.bench_function("irn_worst_case", |b| {
        b.iter(|| {
            let mut cfg = bench_cfg(FLOWS)
                .with_transport(TransportKind::Irn)
                .with_pfc(false);
            cfg.extra_header = 16;
            cfg.retx_fetch_delay = Duration::micros(2);
            black_box(irn_core::run(cfg))
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
