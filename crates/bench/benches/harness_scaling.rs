//! How the `irn-harness` executor scales one fixed cell batch across
//! worker counts. The batch is the Figure 4-shaped matrix (2 variants ×
//! 3 CC schemes) at bench scale; on a multi-core machine `jobs=4`
//! should finish the batch measurably faster than `jobs=1`, with
//! byte-identical results (asserted by the integration tests, not
//! here).

use criterion::{criterion_group, criterion_main, Criterion};
use irn_bench::bench_cfg;
use irn_core::transport::cc::CcKind;
use irn_core::transport::config::TransportKind;
use irn_harness::{Harness, SweepGrid, Variant};
use std::hint::black_box;

const FLOWS: usize = 100;

fn bench(c: &mut Criterion) {
    let cells = SweepGrid::new(bench_cfg(FLOWS))
        .variants([
            Variant::new("IRN", TransportKind::Irn, false),
            Variant::new("RoCE (PFC)", TransportKind::Roce, true),
        ])
        .ccs([CcKind::None, CcKind::Timely, CcKind::Dcqcn])
        .build();
    let mut g = c.benchmark_group("harness");
    g.sample_size(10);
    for jobs in [1usize, 4] {
        g.bench_function(format!("six_cell_batch_jobs{jobs}"), |b| {
            b.iter(|| black_box(Harness::new(jobs).run(&cells)))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
