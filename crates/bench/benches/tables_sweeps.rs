//! Tables 3-9: one representative cell from each robustness sweep —
//! load (Table 3), bandwidth (Table 4), topology (Table 5), workload
//! (Table 6), buffer (Table 7), RTO_high (Table 8), N (Table 9).

use criterion::{criterion_group, criterion_main, Criterion};
use irn_bench::bench_cfg;
use irn_core::net::Bandwidth;
use irn_core::sim::Duration;
use irn_core::transport::config::TransportKind;
use irn_core::workload::SizeDistribution;
use irn_core::{TopologySpec, TrafficModel};
use std::hint::black_box;

const FLOWS: usize = 120;

fn run(cfg: irn_core::ExperimentConfig) -> irn_core::RunResult {
    irn_core::run(cfg.with_transport(TransportKind::Irn).with_pfc(false))
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("tables");
    g.sample_size(10);

    g.bench_function("table3_load90", |b| {
        b.iter(|| {
            let mut cfg = bench_cfg(FLOWS);
            cfg.traffic = TrafficModel::Poisson {
                load: 0.9,
                sizes: SizeDistribution::HeavyTailed,
                flow_count: FLOWS,
            };
            black_box(run(cfg))
        })
    });
    g.bench_function("table4_bw10g", |b| {
        b.iter(|| {
            let mut cfg = bench_cfg(FLOWS);
            cfg.bandwidth = Bandwidth::from_gbps(10);
            cfg.buffer_bytes = 60_000; // 2x the 10G BDP
            black_box(run(cfg))
        })
    });
    g.bench_function("table5_k6", |b| {
        b.iter(|| {
            let mut cfg = bench_cfg(FLOWS);
            cfg.topology = TopologySpec::FatTree(6);
            black_box(run(cfg))
        })
    });
    g.bench_function("table6_uniform", |b| {
        b.iter(|| {
            let mut cfg = bench_cfg(30);
            cfg.traffic = TrafficModel::Poisson {
                load: 0.7,
                sizes: SizeDistribution::Uniform500KbTo5Mb,
                flow_count: 30,
            };
            black_box(run(cfg))
        })
    });
    g.bench_function("table7_buffer60k", |b| {
        b.iter(|| {
            let mut cfg = bench_cfg(FLOWS);
            cfg.buffer_bytes = 60_000;
            black_box(run(cfg))
        })
    });
    g.bench_function("table8_rto1280us", |b| {
        b.iter(|| {
            let mut cfg = bench_cfg(FLOWS);
            cfg.rto_high = Some(Duration::micros(1280));
            black_box(run(cfg))
        })
    });
    g.bench_function("table9_n15", |b| {
        b.iter(|| {
            let mut cfg = bench_cfg(FLOWS);
            cfg.rto_low_n = 15;
            black_box(run(cfg))
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
