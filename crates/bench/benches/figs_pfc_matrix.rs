//! Figures 2/3/5/6: the PFC on/off matrix for both transports, bare and
//! under congestion control — the cells behind "IRN does not require
//! PFC" and "RoCE requires PFC".

use criterion::{criterion_group, criterion_main, Criterion};
use irn_bench::bench_cell;
use irn_core::transport::cc::CcKind;
use irn_core::transport::config::TransportKind;
use std::hint::black_box;

const FLOWS: usize = 120;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("pfc_matrix");
    g.sample_size(10);
    let cells: [(&str, TransportKind, bool, CcKind); 6] = [
        ("fig2_irn_with_pfc", TransportKind::Irn, true, CcKind::None),
        ("fig3_roce_no_pfc", TransportKind::Roce, false, CcKind::None),
        (
            "fig5_irn_pfc_timely",
            TransportKind::Irn,
            true,
            CcKind::Timely,
        ),
        (
            "fig5_irn_pfc_dcqcn",
            TransportKind::Irn,
            true,
            CcKind::Dcqcn,
        ),
        (
            "fig6_roce_no_pfc_timely",
            TransportKind::Roce,
            false,
            CcKind::Timely,
        ),
        (
            "fig6_roce_no_pfc_dcqcn",
            TransportKind::Roce,
            false,
            CcKind::Dcqcn,
        ),
    ];
    for (name, t, pfc, cc) in cells {
        g.bench_function(name, |b| {
            b.iter(|| black_box(bench_cell(FLOWS, t, pfc, cc)))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
