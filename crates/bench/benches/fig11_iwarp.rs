//! Figure 11: the iWARP-style TCP stack vs IRN (and IRN+AIMD, which the
//! paper shows beating iWARP outright).

use criterion::{criterion_group, criterion_main, Criterion};
use irn_bench::bench_cell;
use irn_core::transport::cc::CcKind;
use irn_core::transport::config::TransportKind;
use std::hint::black_box;

const FLOWS: usize = 120;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig11");
    g.sample_size(10);
    g.bench_function("iwarp_tcp", |b| {
        b.iter(|| {
            black_box(bench_cell(
                FLOWS,
                TransportKind::IwarpTcp,
                false,
                CcKind::None,
            ))
        })
    });
    g.bench_function("irn", |b| {
        b.iter(|| black_box(bench_cell(FLOWS, TransportKind::Irn, false, CcKind::None)))
    });
    g.bench_function("irn_aimd", |b| {
        b.iter(|| black_box(bench_cell(FLOWS, TransportKind::Irn, false, CcKind::Aimd)))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
