//! Figure 7: factor analysis — full IRN vs go-back-N vs no-BDP-FC.
//! Each ablation is a config flag on the same simulation.

use criterion::{criterion_group, criterion_main, Criterion};
use irn_bench::bench_cell;
use irn_core::transport::cc::CcKind;
use irn_core::transport::config::TransportKind;
use std::hint::black_box;

const FLOWS: usize = 120;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig7");
    g.sample_size(10);
    for (name, t) in [
        ("irn", TransportKind::Irn),
        ("irn_go_back_n", TransportKind::IrnGoBackN),
        ("irn_no_bdp_fc", TransportKind::IrnNoBdpFc),
    ] {
        g.bench_function(name, |b| {
            b.iter(|| black_box(bench_cell(FLOWS, t, false, CcKind::None)))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
