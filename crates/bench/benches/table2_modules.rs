//! Table 2: the four NIC packet-processing modules (§6.2).
//!
//! The paper synthesizes `receiveData`, `txFree`, `receiveAck` and
//! `timeout` on a Kintex Ultrascale FPGA (worst-case latency 6.3-16.5 ns,
//! throughput 45-318 Mpps). This bench times the same module interfaces
//! — identical bitmap algorithms over 128-bit BDP-sized ring buffers —
//! on the CPU. The expected *ordering* matches the paper: `timeout` is
//! trivial; `receiveData` does the most bitmap work.

use criterion::{criterion_group, criterion_main, Criterion};
use irn_rdma::modules::{self, QpContext, ReceiverMode};
use std::hint::black_box;

fn bench_receive_data(c: &mut Criterion) {
    let mut g = c.benchmark_group("table2/receiveData");
    // In-order arrivals: the fast path (find-first-zero hits bit 0).
    g.bench_function("in_order", |b| {
        let mut ctx = QpContext::new(128);
        let mut psn = 0u32;
        b.iter(|| {
            let out = modules::receive_data(&mut ctx, black_box(psn), false, ReceiverMode::Irn);
            psn += 1;
            if psn > 1_000_000 {
                ctx = QpContext::new(128);
                psn = 0;
            }
            black_box(out)
        });
    });
    // Out-of-order arrivals: bitmap set + NACK generation.
    g.bench_function("out_of_order", |b| {
        let mut ctx = QpContext::new(128);
        let mut off = 1u32;
        b.iter(|| {
            let psn = ctx.expected_seq + off;
            let out = modules::receive_data(&mut ctx, black_box(psn), false, ReceiverMode::Irn);
            off = off % 100 + 1;
            if ctx.recv.out_of_order_count() > 100 {
                ctx = QpContext::new(128);
            }
            black_box(out)
        });
    });
    // Hole-filling: window slide with popcount (the §6.2 worst case).
    g.bench_function("fill_hole_slide", |b| {
        b.iter_batched(
            || {
                let mut ctx = QpContext::new(128);
                for i in 1..64 {
                    modules::receive_data(&mut ctx, i, i % 7 == 0, ReceiverMode::Irn);
                }
                ctx
            },
            |mut ctx| {
                black_box(modules::receive_data(&mut ctx, 0, false, ReceiverMode::Irn));
            },
            criterion::BatchSize::SmallInput,
        );
    });
    g.finish();
}

fn bench_tx_free(c: &mut Criterion) {
    let mut g = c.benchmark_group("table2/txFree");
    g.bench_function("send_new", |b| {
        let mut ctx = QpContext::new(128);
        b.iter(|| {
            let out = modules::tx_free(&mut ctx, true);
            if ctx.next_to_send > 1_000_000 {
                ctx = QpContext::new(128);
            }
            black_box(out)
        });
    });
    // Look-ahead over a SACK bitmap with scattered holes (§6.2: "during
    // loss-recovery it also performs a look ahead").
    g.bench_function("recovery_lookahead", |b| {
        b.iter_batched(
            || {
                let mut ctx = QpContext::new(128);
                for _ in 0..110 {
                    modules::tx_free(&mut ctx, true);
                }
                for s in [3u32, 9, 15, 40, 77, 100] {
                    modules::receive_ack(&mut ctx, 0, Some(s), true);
                }
                ctx
            },
            |mut ctx| {
                while let modules::TxFreeOut::Retransmit { psn } = modules::tx_free(&mut ctx, false)
                {
                    black_box(psn);
                }
            },
            criterion::BatchSize::SmallInput,
        );
    });
    g.finish();
}

fn bench_receive_ack(c: &mut Criterion) {
    let mut g = c.benchmark_group("table2/receiveAck");
    g.bench_function("cumulative", |b| {
        let mut ctx = QpContext::new(128);
        ctx.next_to_send = u32::MAX / 2;
        let mut cum = 0u32;
        b.iter(|| {
            cum += 1;
            black_box(modules::receive_ack(&mut ctx, black_box(cum), None, false));
            if cum > 1_000_000 {
                ctx = QpContext::new(128);
                ctx.next_to_send = u32::MAX / 2;
                cum = 0;
            }
        });
    });
    g.bench_function("sack_update", |b| {
        let mut ctx = QpContext::new(128);
        ctx.next_to_send = 128;
        let mut s = 1u32;
        b.iter(|| {
            black_box(modules::receive_ack(&mut ctx, 0, Some(black_box(s)), true));
            s = s % 120 + 1;
        });
    });
    g.finish();
}

fn bench_timeout(c: &mut Criterion) {
    c.bench_function("table2/timeout", |b| {
        let mut ctx = QpContext::new(128);
        ctx.next_to_send = 100;
        let mut flip = false;
        b.iter(|| {
            flip = !flip;
            ctx.rto_low_armed = flip;
            ctx.in_recovery = false;
            black_box(modules::timeout(&mut ctx, 3))
        });
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_receive_data, bench_tx_free, bench_receive_ack, bench_timeout
);
criterion_main!(benches);
