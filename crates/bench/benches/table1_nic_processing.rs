//! Table 1 substitute: per-packet transport processing cost.
//!
//! The paper's Table 1 measures real NICs (Chelsio iWARP: 3.24 Mpps /
//! 2.89 µs; Mellanox RoCE: 14.7 Mpps / 0.94 µs) to make an architectural
//! point: a full TCP stack does more per-packet work than the lean RoCE
//! transport, and IRN stays close to RoCE (§6.2 shows its modules add
//! little). Hardware is out of reach for this reproduction; instead we
//! time one send→receive→ack round per packet through each transport's
//! state machines. The claim to check: `irn ≈ roce ≪ not much ≪ tcp`
//! ordering of per-packet cost.

use criterion::{criterion_group, criterion_main, Criterion};
use irn_core::net::{FlowId, HostId};
use irn_core::sim::{Duration, Time};
use irn_core::transport::cc::CcKind;
use irn_core::transport::config::TransportConfig;
use irn_core::transport::tcp::{TcpReceiver, TcpSender};
use irn_core::transport::{ReceiverQp, SenderPoll, SenderQp};
use std::hint::black_box;

const FLOW_BYTES: u64 = 64_000; // 64 packets per inner session

fn rdma_session(cfg: &TransportConfig) -> u64 {
    let mut s = SenderQp::new(
        cfg.clone(),
        FlowId(0),
        HostId(0),
        HostId(1),
        FLOW_BYTES,
        CcKind::None,
        Time::ZERO,
    );
    let mut r = ReceiverQp::new(
        cfg,
        FlowId(0),
        HostId(0),
        HostId(1),
        s.total_packets(),
        CcKind::None,
    );
    let mut now = Time::ZERO;
    let mut processed = 0u64;
    while !s.is_done() {
        now += Duration::nanos(210);
        match s.poll(now) {
            SenderPoll::Packet(pkt) => {
                let out = r.on_data(now, &pkt);
                if let Some(ack) = out.ack {
                    s.on_ack_packet(now, &ack);
                }
                processed += 1;
            }
            _ => break,
        }
    }
    processed
}

fn tcp_session(cfg: &TransportConfig) -> u64 {
    let mut s = TcpSender::new(cfg.clone(), FlowId(0), HostId(0), HostId(1), FLOW_BYTES);
    let mut r = TcpReceiver::new(cfg, FlowId(0), HostId(0), HostId(1), s.total_packets());
    let mut now = Time::ZERO;
    let mut processed = 0u64;
    while !s.is_done() {
        now += Duration::nanos(210);
        match s.poll(now) {
            SenderPoll::Packet(pkt) => {
                let (ack, _) = r.on_data(now, &pkt);
                s.on_ack_packet(now, &ack);
                processed += 1;
            }
            _ => break,
        }
    }
    processed
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("table1/per_packet_processing");
    g.throughput(criterion::Throughput::Elements(64));

    let irn = TransportConfig::irn_default();
    g.bench_function("irn", |b| b.iter(|| black_box(rdma_session(&irn))));

    let roce = TransportConfig::roce_default(true);
    g.bench_function("roce", |b| b.iter(|| black_box(rdma_session(&roce))));

    let tcp = TransportConfig::irn_default();
    g.bench_function("iwarp_tcp", |b| b.iter(|| black_box(tcp_session(&tcp))));

    g.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench
);
criterion_main!(benches);
