//! Figure 9: incast request completion — M senders stripe one response
//! to a single destination (PFC's best case, §4.4.3).

use criterion::{criterion_group, criterion_main, Criterion};
use irn_bench::bench_cfg;
use irn_core::transport::config::TransportKind;
use irn_core::TrafficModel;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig9_incast");
    g.sample_size(10);
    for m in [4usize, 8] {
        let wl = TrafficModel::Incast {
            m,
            total_bytes: 4_000_000,
        };
        g.bench_function(format!("irn_m{m}"), |b| {
            b.iter(|| {
                black_box(irn_core::run(
                    bench_cfg(m)
                        .with_traffic(wl.clone())
                        .with_transport(TransportKind::Irn)
                        .with_pfc(false),
                ))
            })
        });
        g.bench_function(format!("roce_pfc_m{m}"), |b| {
            b.iter(|| {
                black_box(irn_core::run(
                    bench_cfg(m)
                        .with_traffic(wl.clone())
                        .with_transport(TransportKind::Roce)
                        .with_pfc(true),
                ))
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
