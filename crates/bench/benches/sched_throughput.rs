//! Scheduler throughput: the ladder-queue `Scheduler` against the
//! binary-heap `EventQueue` reference, on the access patterns the
//! engine actually produces, plus an end-to-end engine run whose
//! events/sec is the number `repro`'s timing output tracks.
//!
//! Three patterns:
//!
//! * **hold churn** — steady-state pop-one/push-one at a bounded
//!   lookahead, the shape of fabric events (TxDone/Arrive) in flight;
//!   the heap pays O(log n) per op, the ladder O(1).
//! * **timer churn** — arm/supersede/fire cycles. The heap must
//!   schedule every superseded generation and pop-and-discard it later
//!   (the old `TimerSlot` pattern); the scheduler cancels in O(1) and
//!   never surfaces the corpse.
//! * **engine end-to-end** — a full `irn_core::run` at bench scale:
//!   the integrated events/sec the BENCH trajectory wants to trend.
//! * **fwd churn** — a cross-pod permutation shuffle: every packet
//!   walks the full 5-hop fat-tree path, so switch enqueue/dequeue
//!   (the arena/SoA hot path) dominates the event mix.
//! * **incast burst** — an M-to-1 fan-in fired at time zero: VOQ
//!   buildup, ECN/PFC bookkeeping, and the batched switch→host
//!   delivery path under maximum same-timestep arrival pressure.

use criterion::{criterion_group, criterion_main, Criterion};
use irn_bench::bench_cfg;
use irn_core::TrafficModel;
use irn_sim::{Duration, EventQueue, Scheduler, Time, TimerSlot};
use std::hint::black_box;

/// Steady-state population of in-flight events.
const HELD: u64 = 4096;
/// Operations measured per iteration.
const OPS: u64 = 100_000;

/// Deterministic "next gap" sequence: a cheap LCG over realistic
/// packet-event spacings (0..~8.2 µs).
fn gap(state: &mut u64) -> Duration {
    *state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
    Duration::nanos((*state >> 51) + 1)
}

fn hold_churn(c: &mut Criterion) {
    let mut g = c.benchmark_group("sched_hold_churn");
    g.sample_size(10);
    g.bench_function("ladder_scheduler", |b| {
        b.iter(|| {
            let mut s: Scheduler<u64> = Scheduler::new();
            let mut rng = 1u64;
            let mut now = Time::ZERO;
            for i in 0..HELD {
                s.push(now + gap(&mut rng), i);
            }
            for i in 0..OPS {
                let (t, e) = s.pop().unwrap();
                now = t;
                black_box(e);
                s.push(now + gap(&mut rng), i);
            }
            black_box(s.len())
        })
    });
    g.bench_function("binary_heap_reference", |b| {
        b.iter(|| {
            let mut q: EventQueue<u64> = EventQueue::new();
            let mut rng = 1u64;
            let mut now = Time::ZERO;
            for i in 0..HELD {
                q.push(now + gap(&mut rng), i);
            }
            for i in 0..OPS {
                let (t, e) = q.pop().unwrap();
                now = t;
                black_box(e);
                q.push(now + gap(&mut rng), i);
            }
            black_box(q.len())
        })
    });
    g.finish();
}

/// Retransmission-timer shape: each "ACK" supersedes the pending
/// deadline (re-arm further out); every RTTs-worth of re-arms, the
/// timer finally fires. The reference must push every generation and
/// filter the stale ones at pop.
const TIMERS: usize = 256;
const REARMS: u64 = 2_000;

fn timer_churn(c: &mut Criterion) {
    let rto = Duration::micros(320);
    let step = Duration::nanos(210);
    let mut g = c.benchmark_group("sched_timer_churn");
    g.sample_size(10);
    g.bench_function("ladder_cancellable_timers", |b| {
        b.iter(|| {
            let mut s: Scheduler<usize> = Scheduler::new();
            let ids: Vec<_> = (0..TIMERS).map(|_| s.timer_create()).collect();
            let mut fired = 0u64;
            for round in 0..REARMS {
                let now = Time::ZERO + step * round;
                for (k, id) in ids.iter().enumerate() {
                    s.timer_arm(*id, now + rto, k);
                }
                // Fire anything due (none until the arms stop moving).
                while s.peek_time().is_some_and(|t| t <= now) {
                    s.pop();
                    fired += 1;
                }
            }
            // Drain the final generation.
            while s.pop().is_some() {
                fired += 1;
            }
            black_box(fired)
        })
    });
    g.bench_function("heap_plus_generation_filter", |b| {
        b.iter(|| {
            let mut q: EventQueue<(usize, u64)> = EventQueue::new();
            let mut slots = vec![TimerSlot::new(); TIMERS];
            let mut fired = 0u64;
            for round in 0..REARMS {
                let now = Time::ZERO + step * round;
                for (k, slot) in slots.iter_mut().enumerate() {
                    let generation = slot.arm(now + rto);
                    q.push(now + rto, (k, generation));
                }
                while q.peek_time().is_some_and(|t| t <= now) {
                    let (_, (k, generation)) = q.pop().unwrap();
                    if slots[k].fires(generation) {
                        fired += 1;
                    }
                }
            }
            while let Some((_, (k, generation))) = q.pop() {
                if slots[k].fires(generation) {
                    fired += 1;
                }
            }
            black_box(fired)
        })
    });
    g.finish();
}

fn engine_end_to_end(c: &mut Criterion) {
    let mut g = c.benchmark_group("sched_engine");
    g.sample_size(10);
    g.bench_function("quick_run_events", |b| {
        b.iter(|| {
            let r = irn_core::run(bench_cfg(120));
            black_box(r.events)
        })
    });
    g.finish();
}

/// Hop-heavy forwarding churn: a 3-round permutation shuffle on the
/// k=4 fat-tree. Derangement images are mostly cross-pod, so nearly
/// every packet takes the full ToR→agg→core→agg→ToR path — five switch
/// enqueue/dequeue cycles per delivery, the arena/SoA hot path.
fn packet_fwd_churn(c: &mut Criterion) {
    let cfg = bench_cfg(96).with_traffic(TrafficModel::Shuffle {
        flow_bytes: 64_000,
        rounds: 3,
        round_gap: Duration::micros(50),
    });
    let mut g = c.benchmark_group("packet_fwd_churn");
    g.sample_size(10);
    g.bench_function("shuffle_cross_pod", |b| {
        b.iter(|| {
            let r = irn_core::run(cfg.clone());
            black_box(r.events)
        })
    });
    g.finish();
}

/// Incast delivery burst: 8-to-1 fan-in fired at time zero. The fan-in
/// link concentrates same-timestep arrivals, exercising VOQ buildup and
/// the engine's batched switch→host delivery coalescing.
fn packet_incast_burst(c: &mut Criterion) {
    let cfg = bench_cfg(8).with_traffic(TrafficModel::Incast {
        m: 8,
        total_bytes: 4_000_000,
    });
    let mut g = c.benchmark_group("packet_incast_burst");
    g.sample_size(10);
    g.bench_function("fan_in_8_to_1", |b| {
        b.iter(|| {
            let r = irn_core::run(cfg.clone());
            black_box(r.events)
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    hold_churn,
    timer_churn,
    engine_end_to_end,
    packet_fwd_churn,
    packet_incast_burst
);
criterion_main!(benches);
