//! NIC state accounting (§6.1): the memory overhead IRN adds to a RoCE
//! NIC, reproduced from first principles so the paper's numbers fall out
//! of the configuration.
//!
//! §6.1's breakdown:
//!
//! * **Per-QP state variables** — 24 bits for the retransmission
//!   sequence, 24 for the recovery sequence, 4 flag bits = 52 bits at
//!   the requester and 52 at the responder (104); Read timeouts add a
//!   timer and an in-progress-Read tracker (56 bits) at the responder —
//!   160 bits per QP total.
//! * **Bitmaps** — five BDP-sized bitmaps: two for the responder's
//!   2-bitmap, one for the requester's Read responses, one SACK bitmap
//!   at each side. At 128 bits each (40 Gbps × up-to-24 µs two-way
//!   propagation) that is 640 bits per QP.
//! * **Per-WQE** — the `recv_WQE_SN`/`read_WQE_SN` counters add 3 bytes
//!   to a 64-byte WQE context.
//! * **Shared** — BDP cap, RTO_low, N: 10 bytes per NIC.
//!
//! The paper concludes 3–10 % of a multi-MB NIC cache for a couple of
//! thousand QPs and tens of thousands of WQEs; [`StateBudget::cache_fraction`]
//! reproduces that claim.

/// Width of a PSN-tracking field (RoCE PSNs are 24-bit).
const PSN_BITS: u64 = 24;
/// Transport flag bits IRN adds (§6.1: "4 bits for various flags").
const FLAG_BITS: u64 = 4;
/// Responder Read-timeout additions (§6.1: timer + in-progress Read
/// tracking = 56 bits).
const READ_TIMEOUT_BITS: u64 = 56;
/// Bitmaps IRN needs per QP (§6.1): responder 2-bitmap (2), requester
/// read-response bitmap (1), SACK bitmap at each end (2).
const BITMAP_COUNT: u64 = 5;
/// Extra per-WQE context: the WQE sequence-number counters (3 bytes).
const PER_WQE_EXTRA_BYTES: u64 = 3;
/// Shared (cross-QP) additions: BDP cap value, RTO_low, N (10 bytes).
const SHARED_BYTES: u64 = 10;

/// IRN's additional NIC state for one configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StateBudget {
    /// Additional per-QP state-variable bits (requester + responder +
    /// read-timeout support).
    pub per_qp_state_bits: u64,
    /// Per-QP bitmap bits (five BDP-sized bitmaps).
    pub per_qp_bitmap_bits: u64,
    /// Additional bits per WQE context.
    pub per_wqe_bits: u64,
    /// Shared bytes per NIC.
    pub shared_bytes: u64,
}

/// Compute the budget for bitmaps of `bdp_cap_bits` (the BDP cap rounded
/// up to the bitmap chunk size; 128 for the paper's default network).
pub fn irn_state_budget(bdp_cap_bits: u64) -> StateBudget {
    let per_side = 2 * PSN_BITS + FLAG_BITS; // 52
    StateBudget {
        per_qp_state_bits: 2 * per_side + READ_TIMEOUT_BITS, // 160
        per_qp_bitmap_bits: BITMAP_COUNT * bdp_cap_bits,     // 640 @128
        per_wqe_bits: PER_WQE_EXTRA_BYTES * 8,
        shared_bytes: SHARED_BYTES,
    }
}

impl StateBudget {
    /// Requester-or-responder transport state bits (the "52 bits each").
    pub fn per_side_state_bits(&self) -> u64 {
        (self.per_qp_state_bits - READ_TIMEOUT_BITS) / 2
    }

    /// Total additional bytes for `qps` QPs and `wqes` cached WQEs.
    pub fn total_bytes(&self, qps: u64, wqes: u64) -> u64 {
        let qp_bits = qps * (self.per_qp_state_bits + self.per_qp_bitmap_bits);
        let wqe_bits = wqes * self.per_wqe_bits;
        (qp_bits + wqe_bits).div_ceil(8) + self.shared_bytes
    }

    /// Fraction of a NIC cache of `cache_bytes` consumed.
    pub fn cache_fraction(&self, qps: u64, wqes: u64, cache_bytes: u64) -> f64 {
        self.total_bytes(qps, wqes) as f64 / cache_bytes as f64
    }
}

/// Bitmap sizing for a link: BDP cap in packets rounded up to 32-bit
/// chunks (the hardware ring-buffer granularity, §6.2).
pub fn bitmap_bits_for(bdp_cap_packets: u64) -> u64 {
    bdp_cap_packets.div_ceil(32) * 32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_per_qp_numbers() {
        let b = irn_state_budget(128);
        assert_eq!(b.per_side_state_bits(), 52, "§6.1: 52 bits per side");
        assert_eq!(b.per_qp_state_bits, 160, "§6.1: 160 bits per QP");
        assert_eq!(b.per_qp_bitmap_bits, 640, "§6.1: five 128-bit bitmaps");
        assert_eq!(b.per_wqe_bits, 24, "§6.1: 3 bytes per WQE");
        assert_eq!(b.shared_bytes, 10, "§6.1: 10 shared bytes");
    }

    #[test]
    fn default_bdp_cap_needs_128_bit_bitmaps() {
        // ~110 packets (§4.1) rounds up to 128 bits.
        assert_eq!(bitmap_bits_for(110), 128);
        // 100 Gbps: 2.5× the packets → 288-bit bitmaps (the §6.2
        // synthesis scaled similarly).
        assert_eq!(bitmap_bits_for(275), 288);
    }

    #[test]
    fn cache_fraction_is_3_to_10_percent() {
        // §6.1: "3-10% of the current NIC cache for a couple of
        // thousands of QPs and tens of thousands of WQEs" — Mellanox
        // NICs cache "several MBs" (we take 2–4 MB).
        let b = irn_state_budget(128);
        let scenarios = [
            (1_000u64, 10_000u64, 4 << 20), // light
            (2_000, 20_000, 4 << 20),
            (2_000, 40_000, 4 << 20), // heavy
        ];
        for (qps, wqes, cache) in scenarios {
            let f = b.cache_fraction(qps, wqes, cache);
            assert!(
                (0.02..=0.11).contains(&f),
                "fraction {f:.3} out of the paper's 3-10% ballpark for {qps} QPs"
            );
        }
    }

    #[test]
    fn total_bytes_arithmetic() {
        let b = irn_state_budget(128);
        // One QP, no WQEs: (160+640)/8 + 10 = 110 bytes.
        assert_eq!(b.total_bytes(1, 0), 110);
        // Add 8 WQEs: + 8*3 = 24 bytes.
        assert_eq!(b.total_bytes(1, 8), 134);
    }

    #[test]
    fn bigger_networks_grow_only_bitmaps() {
        let small = irn_state_budget(128);
        let big = irn_state_budget(320); // 100 Gbps-class
        assert_eq!(small.per_qp_state_bits, big.per_qp_state_bits);
        assert_eq!(big.per_qp_bitmap_bits, 5 * 320);
        assert!(big.total_bytes(1, 0) > small.total_bytes(1, 0));
    }
}
