//! End-to-end credits and RNR handling under IRN (Appendix B.3–B.4).
//!
//! RoCE NICs run a credit scheme for operations that consume Receive
//! WQEs: ACKs piggy-back how many Receive WQEs (credits) remain. A
//! sender out of credits may still send the *first* packet of a Send (or
//! all packets of a Write-with-Immediate) as a **probe**; if the
//! receiver has a WQE the operation succeeds, otherwise an RNR
//! ("receiver not ready") NACK triggers go-back-N.
//!
//! IRN keeps the scheme but adds one rule (B.3): an **out-of-sequence**
//! probe arriving without credits is silently dropped — processing it
//! could bind it to the wrong Receive WQE (the paper's two-Sends
//! example), and an RNR NACK would be ill-timed. Loss recovery
//! retransmits the earlier message and the probe alike, so everything
//! "gets back on track".
//!
//! B.4 generalizes: any error NACK (e.g. RNR) makes an IRN sender do
//! go-back-N, and an out-of-sequence packet that *would* produce an
//! error NACK is discarded without a NACK.

/// What the responder does with an arriving credit-consuming packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProbeOutcome {
    /// A Receive WQE is available: process normally, return fresh credit
    /// in the ACK.
    Execute,
    /// In-sequence arrival, no WQE: answer with an RNR NACK (the
    /// requester will go-back-N after a delay).
    RnrNack,
    /// Out-of-sequence arrival, no WQE: drop silently (B.3's rule).
    Drop,
}

/// Responder-side credit bookkeeping.
#[derive(Debug, Default)]
pub struct ResponderCredits {
    available: u32,
}

impl ResponderCredits {
    /// Fresh state with no posted Receive WQEs.
    pub fn new() -> ResponderCredits {
        ResponderCredits::default()
    }

    /// Application posted a Receive WQE.
    pub fn post_receive(&mut self) {
        self.available += 1;
    }

    /// Credits advertised in outgoing ACKs.
    pub fn advertised(&self) -> u32 {
        self.available
    }

    /// Decide the fate of a credit-consuming packet (first packet of a
    /// Send, or a Write-with-Immediate message).
    ///
    /// `in_sequence` — the packet's PSN equals the expected sequence
    /// number (no holes before it).
    pub fn on_consume_attempt(&mut self, in_sequence: bool) -> ProbeOutcome {
        if self.available > 0 {
            self.available -= 1;
            ProbeOutcome::Execute
        } else if in_sequence {
            ProbeOutcome::RnrNack
        } else {
            ProbeOutcome::Drop
        }
    }
}

/// Requester-side credit view plus the B.4 go-back-N error handling.
#[derive(Debug, Default)]
pub struct RequesterCredits {
    credits: u32,
    /// Set while recovering from an RNR NACK (go-back-N in progress).
    pub rnr_backoff: bool,
}

impl RequesterCredits {
    /// Fresh state; `initial` credits negotiated at connection setup.
    pub fn new(initial: u32) -> RequesterCredits {
        RequesterCredits {
            credits: initial,
            rnr_backoff: false,
        }
    }

    /// Credits currently believed available.
    pub fn credits(&self) -> u32 {
        self.credits
    }

    /// An ACK arrived advertising `remaining` receiver credits.
    pub fn on_ack(&mut self, remaining: u32) {
        self.credits = remaining;
        self.rnr_backoff = false;
    }

    /// May a new credit-consuming message start transmitting?
    /// Out of credits ⇒ only as a probe (`Probe`), never while an RNR
    /// go-back-N is pending.
    pub fn send_mode(&self) -> SendMode {
        if self.rnr_backoff {
            SendMode::Blocked
        } else if self.credits > 0 {
            SendMode::Normal
        } else {
            SendMode::Probe
        }
    }

    /// Consume one credit for a normally-sent message.
    pub fn consume(&mut self) {
        debug_assert!(self.credits > 0);
        self.credits -= 1;
    }

    /// An RNR NACK arrived: go-back-N (B.4).
    pub fn on_rnr_nack(&mut self) {
        self.rnr_backoff = true;
    }
}

/// Transmission permission for credit-consuming operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SendMode {
    /// Credits available: send the whole message.
    Normal,
    /// No credits: send only the probe prefix (first Send packet / all
    /// WriteImm packets).
    Probe,
    /// RNR recovery in progress: hold off.
    Blocked,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn execute_consumes_credit() {
        let mut r = ResponderCredits::new();
        r.post_receive();
        assert_eq!(r.advertised(), 1);
        assert_eq!(r.on_consume_attempt(true), ProbeOutcome::Execute);
        assert_eq!(r.advertised(), 0);
    }

    #[test]
    fn in_sequence_probe_without_credit_rnr_nacks() {
        let mut r = ResponderCredits::new();
        assert_eq!(r.on_consume_attempt(true), ProbeOutcome::RnrNack);
    }

    #[test]
    fn out_of_sequence_probe_without_credit_drops() {
        // B.3's example: first Send lost, second arrives as a probe with
        // no credits — placing it would use the wrong WQE; NACKing would
        // be ill-timed. Drop.
        let mut r = ResponderCredits::new();
        assert_eq!(r.on_consume_attempt(false), ProbeOutcome::Drop);
    }

    #[test]
    fn requester_modes() {
        let mut q = RequesterCredits::new(1);
        assert_eq!(q.send_mode(), SendMode::Normal);
        q.consume();
        assert_eq!(q.send_mode(), SendMode::Probe);
        q.on_rnr_nack();
        assert_eq!(q.send_mode(), SendMode::Blocked);
        q.on_ack(3);
        assert_eq!(q.send_mode(), SendMode::Normal);
        assert_eq!(q.credits(), 3);
    }

    #[test]
    fn b3_two_sends_one_wqe_scenario() {
        // One Receive WQE; requester sends message A normally and B as a
        // probe. A is lost; B arrives out of sequence → dropped, not
        // misplaced. After loss recovery redelivers A (in sequence, gets
        // the WQE) and B (in sequence, no WQE → RNR).
        let mut resp = ResponderCredits::new();
        resp.post_receive();

        // B arrives out of sequence with no credit spent yet at the
        // responder? Credits were consumed when A *should* have arrived;
        // the responder decides per arrival: B is OOO and would need the
        // WQE "reserved" for A.
        // Model: A lost. B arrives OOO. The responder sees a consume
        // attempt while expecting A first.
        // It still has 1 credit — but that credit belongs to A's SN.
        // IRN resolves this via recv_WQE_SN matching; the credit module
        // only handles the zero-credit case. Simulate zero credits:
        let mut empty = ResponderCredits::new();
        assert_eq!(empty.on_consume_attempt(false), ProbeOutcome::Drop);

        // Retransmission: A in sequence → executes with the real WQE.
        assert_eq!(resp.on_consume_attempt(true), ProbeOutcome::Execute);
        // B in sequence now, no WQE → well-timed RNR NACK.
        assert_eq!(resp.on_consume_attempt(true), ProbeOutcome::RnrNack);
    }
}
