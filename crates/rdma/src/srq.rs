//! Shared Receive Queues under IRN (Appendix B.2).
//!
//! With an SRQ, Receive WQEs are shared by many QPs, so their
//! `recv_WQE_SN` cannot be assigned at post time. The paper's rule:
//! "rather than allotting it as soon as a new receive WQE is posted …
//! we allot it when new recv WQEs are dequeued from SRQ", and a packet
//! carrying `recv_WQE_SN = k` forces dequeuing every SN up to `k` (its
//! predecessors were consumed by in-flight messages whose packets may
//! still be missing).

use std::collections::BTreeMap;
use std::collections::VecDeque;

use crate::verbs::ReceiveWqe;

/// A shared receive queue for one QP's view (the allotment state is
/// per-QP; the backing pool may be shared — the paper's example walks a
/// single QP, which is what we model).
#[derive(Debug, Default)]
pub struct SharedReceiveQueue {
    /// Un-allotted WQEs in posting order.
    pool: VecDeque<(u64, u64)>, // (id, sink_addr)
    /// WQEs already bound to a recv_WQE_SN, awaiting consumption.
    allotted: BTreeMap<u32, ReceiveWqe>,
    /// Next SN to allot ("running total of allotted recv_WQE_SN").
    next_sn: u32,
}

impl SharedReceiveQueue {
    /// An empty SRQ.
    pub fn new() -> SharedReceiveQueue {
        SharedReceiveQueue::default()
    }

    /// Post a Receive WQE into the shared pool (no SN yet).
    pub fn post(&mut self, id: u64, sink_addr: u64) {
        self.pool.push_back((id, sink_addr));
    }

    /// WQEs waiting in the pool (un-allotted).
    pub fn pool_len(&self) -> usize {
        self.pool.len()
    }

    /// Highest SN allotted so far (i.e. next to be handed out).
    pub fn next_sn(&self) -> u32 {
        self.next_sn
    }

    /// Resolve the WQE for `sn`, dequeuing (and allotting SNs to) as many
    /// pool entries as needed — the paper's example: a packet with
    /// `recv_WQE_SN = 4` arriving when only SN 0 was allotted dequeues
    /// four more WQEs and uses the fourth.
    ///
    /// Returns `None` if the pool runs dry first (an RNR situation —
    /// see [`crate::credits`]).
    pub fn wqe_for_sn(&mut self, sn: u32) -> Option<&ReceiveWqe> {
        while self.next_sn <= sn {
            let (id, sink_addr) = self.pool.pop_front()?;
            self.allotted.insert(
                self.next_sn,
                ReceiveWqe {
                    id,
                    recv_wqe_sn: self.next_sn,
                    sink_addr,
                },
            );
            self.next_sn += 1;
        }
        self.allotted.get(&sn)
    }

    /// Consume (expire) the WQE bound to `sn` — message complete, CQE
    /// fired. Returns the WQE.
    pub fn consume(&mut self, sn: u32) -> Option<ReceiveWqe> {
        self.allotted.remove(&sn)
    }

    /// For Write-with-Immediate on an SRQ the paper expires "the first
    /// available WQE": the lowest outstanding allotted SN, else a fresh
    /// dequeue from the pool.
    pub fn consume_first_available(&mut self) -> Option<ReceiveWqe> {
        if let Some((&sn, _)) = self.allotted.iter().next() {
            return self.allotted.remove(&sn);
        }
        let (id, sink_addr) = self.pool.pop_front()?;
        let sn = self.next_sn;
        self.next_sn += 1;
        Some(ReceiveWqe {
            id,
            recv_wqe_sn: sn,
            sink_addr,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allots_on_dequeue_not_post() {
        let mut srq = SharedReceiveQueue::new();
        srq.post(10, 0x100);
        srq.post(11, 0x200);
        assert_eq!(srq.next_sn(), 0, "posting must not allot SNs");
        let w = srq.wqe_for_sn(0).copied().unwrap();
        assert_eq!((w.id, w.recv_wqe_sn), (10, 0));
        assert_eq!(srq.next_sn(), 1);
    }

    #[test]
    fn paper_example_sn4_dequeues_intermediates() {
        // Appendix B.2's walkthrough: after consuming SN 0, a packet
        // with recv_WQE_SN 4 arrives; SNs 1–4 are allotted and the 4th
        // WQE processes the packet.
        let mut srq = SharedReceiveQueue::new();
        for i in 0..6 {
            srq.post(100 + i, i * 0x10);
        }
        srq.wqe_for_sn(0);
        srq.consume(0);
        let w = srq.wqe_for_sn(4).copied().unwrap();
        assert_eq!(w.id, 104);
        assert_eq!(srq.next_sn(), 5);
        // SNs 1..3 are allotted and outstanding (their messages' packets
        // are presumably in flight).
        assert!(srq.consume(1).is_some());
        assert!(srq.consume(2).is_some());
        assert!(srq.consume(3).is_some());
    }

    #[test]
    fn pool_exhaustion_returns_none() {
        let mut srq = SharedReceiveQueue::new();
        srq.post(1, 0);
        assert!(srq.wqe_for_sn(0).is_some());
        assert!(srq.wqe_for_sn(1).is_none(), "RNR: pool dry");
    }

    #[test]
    fn consume_first_available_prefers_lowest_outstanding() {
        let mut srq = SharedReceiveQueue::new();
        for i in 0..3 {
            srq.post(i, 0);
        }
        srq.wqe_for_sn(1); // allots 0 and 1
        let w = srq.consume_first_available().unwrap();
        assert_eq!(w.recv_wqe_sn, 0, "lowest outstanding SN expires first");
        // Next: SN 1 (still allotted), then a fresh dequeue (SN 2).
        assert_eq!(srq.consume_first_available().unwrap().recv_wqe_sn, 1);
        assert_eq!(srq.consume_first_available().unwrap().recv_wqe_sn, 2);
        assert!(srq.consume_first_available().is_none());
    }

    #[test]
    fn same_sn_resolves_to_same_wqe() {
        let mut srq = SharedReceiveQueue::new();
        srq.post(7, 0xAA);
        let first = srq.wqe_for_sn(0).copied().unwrap();
        let second = srq.wqe_for_sn(0).copied().unwrap();
        assert_eq!(first, second, "all packets of a Send match one WQE");
    }
}
