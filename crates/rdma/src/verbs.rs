//! RDMA operations, work queue elements, and completions (§5.1).
//!
//! "The interface between the user application and the RDMA NIC is
//! provided by Work Queue Elements or WQEs. … Expiration of a WQE upon
//! message completion is followed by the creation of a Completion Queue
//! Element or a CQE."
//!
//! Four message-transfer types exist (§5.1): Write (optionally with
//! immediate data), Read, Send, and Atomic. IRN additionally tags WQEs
//! with explicit sequence numbers (`recv_WQE_SN`, `read_WQE_SN`, §5.3.2)
//! so that out-of-order packets can be matched to the right WQE, and
//! extends packet headers (the RETH remote address on *every* Write
//! packet, §5.3.1; message offsets on Send packets, §5.3.2).

/// The RDMA operation carried by one Request WQE.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RdmaOp {
    /// Write `len` bytes into the responder's memory. No Receive WQE is
    /// consumed.
    Write {
        /// Message length, bytes.
        len: u32,
    },
    /// Write with immediate: like Write, but consumes a Receive WQE at
    /// the responder on completion and delivers `imm` in its CQE.
    WriteImm {
        /// Message length, bytes.
        len: u32,
        /// Immediate data delivered to the responder application.
        imm: u32,
    },
    /// Read `len` bytes from the responder's memory; data flows back as
    /// Read Response packets on the rPSN space.
    Read {
        /// Message length, bytes.
        len: u32,
    },
    /// Send `len` bytes; the sink location comes from the responder's
    /// Receive WQE.
    Send {
        /// Message length, bytes.
        len: u32,
    },
    /// Send with Invalidate (Appendix B.5): a Send that also invalidates
    /// a remote memory region; IRN fences it behind outstanding Writes.
    SendInval {
        /// Message length, bytes.
        len: u32,
        /// The rkey of the region being invalidated.
        rkey: u32,
    },
    /// Atomic read-modify-write; restricted to single-packet messages
    /// (§5.1) and ordered like a Read at the responder.
    Atomic,
}

impl RdmaOp {
    /// Whether the operation moves no payload (zero-length messages are
    /// legal verbs; they still consume one packet and one MSN).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Message length in bytes (Atomics move 8).
    pub fn len(&self) -> u32 {
        match *self {
            RdmaOp::Write { len }
            | RdmaOp::WriteImm { len, .. }
            | RdmaOp::Read { len }
            | RdmaOp::Send { len }
            | RdmaOp::SendInval { len, .. } => len,
            RdmaOp::Atomic => 8,
        }
    }

    /// Number of request-direction packets at the given MTU. Reads and
    /// Atomics are single request packets regardless of length.
    pub fn request_packets(&self, mtu: u32) -> u32 {
        match self {
            RdmaOp::Read { .. } | RdmaOp::Atomic => 1,
            _ => self.len().max(1).div_ceil(mtu),
        }
    }

    /// Does this operation consume a Receive WQE at the responder?
    /// (§5.1: Sends always; Writes only with immediate.)
    pub fn consumes_receive_wqe(&self) -> bool {
        matches!(
            self,
            RdmaOp::WriteImm { .. } | RdmaOp::Send { .. } | RdmaOp::SendInval { .. }
        )
    }

    /// Is this operation queued in the responder's Read WQE buffer and
    /// executed only in order (§5.3.2)?
    pub fn is_read_like(&self) -> bool {
        matches!(self, RdmaOp::Read { .. } | RdmaOp::Atomic)
    }
}

/// A Request WQE: posted by the requester application, one per message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RequestWqe {
    /// Application-chosen identifier, surfaced in the completion.
    pub id: u64,
    /// The operation.
    pub op: RdmaOp,
    /// Remote virtual address (Write/Read/Atomic target).
    pub remote_addr: u64,
    /// `recv_WQE_SN` assigned by the IRN driver for operations that
    /// consume a Receive WQE (§5.3.2); assigned at post time on the
    /// requester and carried in packets.
    pub recv_wqe_sn: Option<u32>,
    /// `read_WQE_SN` assigned for Read/Atomic operations (§5.3.2).
    pub read_wqe_sn: Option<u32>,
}

/// A Receive WQE: posted by the responder application to sink Sends (and
/// expire on Write-with-Immediate completions).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReceiveWqe {
    /// Application-chosen identifier, surfaced in the completion.
    pub id: u64,
    /// Posting-order sequence number (`recv_WQE_SN`, §5.3.2). For SRQs
    /// this is allotted at dequeue time instead (Appendix B.2).
    pub recv_wqe_sn: u32,
    /// Where Send payloads land in responder memory.
    pub sink_addr: u64,
}

/// Which queue a completion belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CqeKind {
    /// Completion of a Request WQE (requester side).
    Request,
    /// Completion of a Receive WQE (responder side).
    Receive,
}

/// A Completion Queue Element.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Cqe {
    /// The WQE that expired.
    pub wqe_id: u64,
    /// Which side completed.
    pub kind: CqeKind,
    /// Responder's message sequence number at completion.
    pub msn: u32,
    /// Immediate data (Write-with-Immediate / Send with solicited data).
    pub imm: Option<u32>,
}

/// Request-direction packet opcodes at the verbs level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PacketOp {
    /// A Write payload packet.
    WriteData,
    /// A Send payload packet.
    SendData,
    /// A Read request (single packet; `read_wqe_sn` set).
    ReadRequest,
    /// An Atomic request (single packet; ordered like a Read).
    AtomicRequest,
}

/// A verbs-level packet in the request direction (requester → responder).
///
/// This deliberately carries IRN's header extensions explicitly so tests
/// can assert on them:
/// * `reth_addr` on **every** Write packet (RoCE carries it on the first
///   only — §5.3.1's "first packet issue");
/// * `msg_offset` on Send packets (§5.3.2, to place data without the
///   preceding packets);
/// * `recv_wqe_sn` / `read_wqe_sn` for WQE matching (§5.3.2);
/// * `last` marking message boundaries for the 2-bitmap (§5.3.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RequestPacket {
    /// Sequence number in the requester's send space (sPSN, §5.4).
    pub psn: u32,
    /// Opcode.
    pub op: PacketOp,
    /// Message this packet belongs to (internal bookkeeping/verification;
    /// a real NIC derives it from PSN ranges).
    pub msg_id: u64,
    /// Remote address for this packet's payload (Write packets; IRN
    /// carries it in every packet).
    pub reth_addr: Option<u64>,
    /// Receive-WQE match key (Send packets: all; WriteImm: last packet).
    pub recv_wqe_sn: Option<u32>,
    /// Read-WQE buffer index (Read/Atomic requests).
    pub read_wqe_sn: Option<u32>,
    /// Payload offset within the message (Send packets, §5.3.2).
    pub msg_offset: u32,
    /// Payload bytes in this packet.
    pub payload_len: u32,
    /// Read length (ReadRequest only).
    pub read_len: u32,
    /// Immediate data (carried on the last packet of WriteImm / Send).
    pub imm: Option<u32>,
    /// Last packet of its message.
    pub last: bool,
}

/// A Read Response packet (responder → requester, rPSN space §5.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReadResponsePacket {
    /// Sequence number in the response space (rPSN).
    pub rpsn: u32,
    /// Which Read WQE this answers (requester-side matching).
    pub wqe_id: u64,
    /// Offset of this packet's payload within the read.
    pub msg_offset: u32,
    /// Payload bytes.
    pub payload_len: u32,
    /// Last packet of the response.
    pub last: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_lengths() {
        assert_eq!(RdmaOp::Write { len: 4096 }.len(), 4096);
        assert_eq!(RdmaOp::Atomic.len(), 8);
    }

    #[test]
    fn request_packet_counts() {
        let mtu = 1000;
        assert_eq!(RdmaOp::Write { len: 1 }.request_packets(mtu), 1);
        assert_eq!(RdmaOp::Write { len: 1000 }.request_packets(mtu), 1);
        assert_eq!(RdmaOp::Write { len: 1001 }.request_packets(mtu), 2);
        assert_eq!(RdmaOp::Send { len: 2500 }.request_packets(mtu), 3);
        // Reads are one request packet no matter the length.
        assert_eq!(RdmaOp::Read { len: 1 << 20 }.request_packets(mtu), 1);
        assert_eq!(RdmaOp::Atomic.request_packets(mtu), 1);
        // Zero-length operations still need one packet.
        assert_eq!(RdmaOp::Write { len: 0 }.request_packets(mtu), 1);
    }

    #[test]
    fn receive_wqe_consumers() {
        assert!(!RdmaOp::Write { len: 10 }.consumes_receive_wqe());
        assert!(RdmaOp::WriteImm { len: 10, imm: 1 }.consumes_receive_wqe());
        assert!(RdmaOp::Send { len: 10 }.consumes_receive_wqe());
        assert!(RdmaOp::SendInval { len: 10, rkey: 2 }.consumes_receive_wqe());
        assert!(!RdmaOp::Read { len: 10 }.consumes_receive_wqe());
        assert!(!RdmaOp::Atomic.consumes_receive_wqe());
    }

    #[test]
    fn read_like_ops() {
        assert!(RdmaOp::Read { len: 1 }.is_read_like());
        assert!(RdmaOp::Atomic.is_read_like());
        assert!(!RdmaOp::Send { len: 1 }.is_read_like());
    }
}
