//! The four NIC packet-processing modules of §6.2, as pure functions.
//!
//! The paper synthesizes exactly four modules on a Kintex Ultrascale
//! FPGA — `receiveData`, `txFree`, `receiveAck`, `timeout` — each taking
//! "the relevant packet metadata and the QP context as streamed inputs"
//! and emitting the updated context plus module-specific outputs. This
//! module reproduces those interfaces in software:
//!
//! * the same inputs and outputs (Table 2's modules);
//! * the same bitmap algorithms (chunked find-first-zero / popcount /
//!   shifts over BDP-sized ring buffers, see [`crate::bitmap`]);
//! * the same transport semantics (§3.1's loss-recovery rules).
//!
//! `irn-transport` builds its IRN sender/receiver directly on these
//! functions, so the logic benchmarked by `irn-bench` (the Table 2
//! substitute) is the logic that produces every simulation result — not
//! a copy.

use crate::bitmap::{RingBitmap, TwoBitmap};

/// Transport-level queue-pair context: the per-QP state §6.1 budgets.
///
/// One side of a QP holds sender state (`cum_acked`, `next_to_send`,
/// recovery fields, SACK bitmap) and receiver state (`expected_seq`,
/// `msn`, receive 2-bitmap); both live here since a QP is bidirectional.
#[derive(Debug, Clone)]
pub struct QpContext {
    // ---- sender-side ----
    /// Cumulative acknowledgement: everything below is delivered.
    pub cum_acked: u32,
    /// Next fresh sequence number to assign.
    pub next_to_send: u32,
    /// Sequence to examine next for retransmission (§6.1: "24 bits to
    /// track the packet sequence to be retransmitted").
    pub retx_cursor: u32,
    /// Last regular packet sent before the first retransmission; leaving
    /// recovery requires `cum_acked` to pass it (§3.1, §6.1's second
    /// 24-bit field).
    pub recovery_seq: u32,
    /// In loss-recovery mode.
    pub in_recovery: bool,
    /// One above the highest selectively-acked sequence (0 = none).
    pub highest_sacked: u32,
    /// Selective-ack bitmap, head at `cum_acked`.
    pub sack: RingBitmap,

    // ---- receiver-side ----
    /// Next expected sequence number.
    pub expected_seq: u32,
    /// Message sequence number (completed messages, §5.3.3).
    pub msn: u32,
    /// Arrival/last-packet 2-bitmap, head at `expected_seq`.
    pub recv: TwoBitmap,
    /// Set while a NACK for the current `expected_seq` has already been
    /// sent and no in-order progress has happened since; RoCE-style
    /// receivers use it to avoid NACK storms (IRN NACKs every OOO
    /// arrival and keeps it `false`).
    pub nack_outstanding: bool,

    // ---- timeout ----
    /// The armed timer is the short RTO_low one (§3.1/§6.2 timeout
    /// module contract).
    pub rto_low_armed: bool,
}

impl QpContext {
    /// Fresh context with all-zero sequence spaces; `bdp_cap` sizes the
    /// bitmaps (in packets).
    pub fn new(bdp_cap: usize) -> QpContext {
        QpContext {
            cum_acked: 0,
            next_to_send: 0,
            retx_cursor: 0,
            recovery_seq: 0,
            in_recovery: false,
            highest_sacked: 0,
            sack: RingBitmap::new(bdp_cap),
            expected_seq: 0,
            msn: 0,
            recv: TwoBitmap::new(bdp_cap),
            nack_outstanding: false,
            rto_low_armed: false,
        }
    }

    /// Packets in flight as the sender sees them (§3.2: "computed as the
    /// difference between current packet's sequence number and last
    /// acknowledged sequence number").
    pub fn in_flight(&self) -> u32 {
        self.next_to_send - self.cum_acked
    }
}

/// Acknowledgement a receiver emits in response to a data packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AckEmit {
    /// Cumulative ACK carrying the expected sequence number.
    Ack {
        /// Receiver's (new) expected sequence number.
        cum: u32,
    },
    /// NACK carrying the cumulative acknowledgement *and* the sequence
    /// that triggered it — IRN's simplified SACK (§3.1).
    Nack {
        /// Receiver's expected sequence number.
        cum: u32,
        /// The out-of-order arrival that triggered this NACK.
        sack: u32,
    },
    /// Nothing to emit (e.g. RoCE-style duplicate suppression).
    None,
}

/// Output of the `receiveData` module.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReceiveDataOut {
    /// Acknowledgement to send back.
    pub ack: AckEmit,
    /// How far the in-order window advanced (0 for OOO arrivals).
    pub advanced: u32,
    /// MSN increment = completed messages = "number of Receive WQEs to
    /// be expired" upper bound (§6.2 module description).
    pub msn_increment: u32,
    /// The packet was newly buffered out-of-order.
    pub buffered_ooo: bool,
    /// The packet was a duplicate (already delivered or buffered).
    pub duplicate: bool,
    /// The packet fell outside the BDP-sized tracking window and must be
    /// discarded (cannot happen when BDP-FC is honoured, §3.2/§6.1).
    pub beyond_window: bool,
}

/// Receiver policy: how the receiver treats out-of-order arrivals.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReceiverMode {
    /// IRN: buffer OOO packets, NACK with SACK info on every OOO arrival
    /// (§3.1).
    Irn,
    /// Current RoCE NICs: discard OOO packets, NACK once per sequence
    /// error until in-order progress resumes (go-back-N partner, §2.1).
    RoceGoBackN,
}

/// `receiveData` (§6.2): triggered on a data-packet arrival; updates the
/// receive bitmaps and produces the (N)ACK plus WQE-expiry counts.
pub fn receive_data(
    ctx: &mut QpContext,
    psn: u32,
    is_last: bool,
    mode: ReceiverMode,
) -> ReceiveDataOut {
    let mut out = ReceiveDataOut {
        ack: AckEmit::None,
        advanced: 0,
        msn_increment: 0,
        buffered_ooo: false,
        duplicate: false,
        beyond_window: false,
    };

    if psn < ctx.expected_seq {
        // Already delivered (retransmitted duplicate): re-ACK so the
        // sender's cumulative state can advance.
        out.duplicate = true;
        out.ack = AckEmit::Ack {
            cum: ctx.expected_seq,
        };
        return out;
    }

    let offset = (psn - ctx.expected_seq) as usize;

    if psn == ctx.expected_seq {
        // In-order: record, slide the 2-bitmap, bump MSN.
        ctx.recv.record(offset, is_last);
        let (advanced, completions) = ctx.recv.slide();
        ctx.expected_seq += advanced as u32;
        ctx.msn += completions as u32;
        ctx.nack_outstanding = false;
        out.advanced = advanced as u32;
        out.msn_increment = completions as u32;
        out.ack = AckEmit::Ack {
            cum: ctx.expected_seq,
        };
        return out;
    }

    // Out of order.
    match mode {
        ReceiverMode::Irn => {
            if offset >= ctx.recv.capacity() {
                // BDP-FC bounds OOO arrivals to the bitmap size (§6.1);
                // anything beyond is discarded defensively.
                out.beyond_window = true;
                return out;
            }
            if ctx.recv.has(offset) {
                out.duplicate = true;
            } else {
                ctx.recv.record(offset, is_last);
                out.buffered_ooo = true;
            }
            // §3.1: "Upon every out-of-order packet arrival, an IRN
            // receiver sends a NACK, which carries both the cumulative
            // acknowledgment … and the sequence number of the packet
            // that triggered the NACK."
            out.ack = AckEmit::Nack {
                cum: ctx.expected_seq,
                sack: psn,
            };
        }
        ReceiverMode::RoceGoBackN => {
            // §2.1: discard and NACK (once per sequence-error episode).
            out.duplicate = false;
            if ctx.nack_outstanding {
                out.ack = AckEmit::None;
            } else {
                ctx.nack_outstanding = true;
                out.ack = AckEmit::Nack {
                    cum: ctx.expected_seq,
                    sack: psn,
                };
            }
        }
    }
    out
}

/// Output of the `txFree` module.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TxFreeOut {
    /// Retransmit this sequence number (loss recovery, §3.1).
    Retransmit {
        /// The lost packet's sequence number.
        psn: u32,
    },
    /// Transmit the next new packet (the caller enforces BDP-FC and
    /// message limits before asking).
    SendNew {
        /// The fresh sequence number to use.
        psn: u32,
    },
    /// Nothing to retransmit; sending new data is not allowed either.
    Idle,
}

/// `txFree` (§6.2): triggered when the link is free for this QP. During
/// loss recovery it performs the look-ahead search of the SACK bitmap
/// for the next sequence to retransmit.
///
/// `can_send_new` is the caller's BDP-FC / window / pending-data gate.
pub fn tx_free(ctx: &mut QpContext, can_send_new: bool) -> TxFreeOut {
    if ctx.in_recovery {
        // §3.1: first retransmission is the cumulative ack; a later
        // packet is lost only if a higher sequence was SACKed.
        while ctx.retx_cursor < ctx.highest_sacked {
            let psn = ctx.retx_cursor;
            if psn < ctx.cum_acked {
                ctx.retx_cursor = ctx.cum_acked;
                continue;
            }
            let off = (psn - ctx.cum_acked) as usize;
            if off < ctx.sack.capacity() && !ctx.sack.get(off) {
                ctx.retx_cursor = psn + 1;
                return TxFreeOut::Retransmit { psn };
            }
            ctx.retx_cursor = psn + 1;
        }
        // No known-lost packets left: §3.1 "when there are no more lost
        // packets to be retransmitted, the sender continues to transmit
        // new packets (if allowed by BDP-FC)".
    }
    if can_send_new {
        let psn = ctx.next_to_send;
        ctx.next_to_send += 1;
        TxFreeOut::SendNew { psn }
    } else {
        TxFreeOut::Idle
    }
}

/// Output of the `receiveAck` module.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ReceiveAckOut {
    /// Packets newly cumulatively acknowledged.
    pub newly_acked: u32,
    /// This (N)ACK put the sender into loss recovery.
    pub entered_recovery: bool,
    /// This ACK completed loss recovery (§3.1 exit rule).
    pub exited_recovery: bool,
}

/// `receiveAck` (§6.2): triggered when an ACK/NACK arrives; advances the
/// cumulative state, shifts the SACK bitmap, records selective acks, and
/// drives recovery entry/exit.
pub fn receive_ack(
    ctx: &mut QpContext,
    cum: u32,
    sack: Option<u32>,
    is_nack: bool,
) -> ReceiveAckOut {
    let mut out = ReceiveAckOut::default();

    // Advance the cumulative point and shift the bitmap head with it.
    if cum > ctx.cum_acked {
        out.newly_acked = cum - ctx.cum_acked;
        ctx.sack.advance((cum - ctx.cum_acked) as usize);
        ctx.cum_acked = cum;
        if ctx.retx_cursor < cum {
            ctx.retx_cursor = cum;
        }
        if ctx.highest_sacked < cum {
            ctx.highest_sacked = cum;
        }
    }

    // Record the selective acknowledgement (NACK trigger sequence).
    if let Some(s) = sack {
        if s >= ctx.cum_acked {
            let off = (s - ctx.cum_acked) as usize;
            if off < ctx.sack.capacity() {
                ctx.sack.set(off);
                if s + 1 > ctx.highest_sacked {
                    ctx.highest_sacked = s + 1;
                }
            }
        }
    }

    // Recovery entry: a NACK signals loss (§3.1).
    if is_nack && !ctx.in_recovery {
        ctx.in_recovery = true;
        ctx.entered_recovery_reset();
        out.entered_recovery = true;
    }

    // Recovery exit: cumulative ack passed the recovery sequence.
    if ctx.in_recovery && ctx.cum_acked > ctx.recovery_seq {
        ctx.in_recovery = false;
        out.exited_recovery = true;
    }
    out
}

impl QpContext {
    /// Shared recovery-entry bookkeeping (NACK or timeout): start
    /// retransmitting from the cumulative ack, remember the last regular
    /// packet sent (§3.1's recovery sequence).
    fn entered_recovery_reset(&mut self) {
        self.retx_cursor = self.cum_acked;
        self.recovery_seq = self.next_to_send.saturating_sub(1).max(self.cum_acked);
    }
}

/// Output of the `timeout` module.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TimeoutOut {
    /// The RTO_low condition no longer holds: re-arm with RTO_high and
    /// take no recovery action (§6.2: "sets an output flag to extend the
    /// timeout to RTO_high").
    ExtendToHigh,
    /// Timeout action executed: enter recovery, retransmit from the
    /// cumulative ack.
    Fired {
        /// Recovery was (re-)entered by this timeout.
        entered_recovery: bool,
    },
}

/// `timeout` (§6.2): called when the armed timer expires.
///
/// `n_threshold` is the paper's `N` (default 3): RTO_low applies only
/// when fewer than `N` packets are in flight, keeping spurious
/// retransmissions negligible (§3.1).
pub fn timeout(ctx: &mut QpContext, n_threshold: u32) -> TimeoutOut {
    if ctx.rto_low_armed && ctx.in_flight() >= n_threshold {
        // Condition for the short timeout does not hold any more.
        ctx.rto_low_armed = false;
        return TimeoutOut::ExtendToHigh;
    }
    let entered = !ctx.in_recovery;
    ctx.in_recovery = true;
    ctx.entered_recovery_reset();
    TimeoutOut::Fired {
        entered_recovery: entered,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const CAP: usize = 128;

    fn ctx() -> QpContext {
        QpContext::new(CAP)
    }

    // ---- receiveData ----

    #[test]
    fn in_order_stream_acks_cumulatively() {
        let mut c = ctx();
        for psn in 0..5 {
            let out = receive_data(&mut c, psn, false, ReceiverMode::Irn);
            assert_eq!(out.ack, AckEmit::Ack { cum: psn + 1 });
            assert_eq!(out.advanced, 1);
            assert!(!out.buffered_ooo && !out.duplicate);
        }
        assert_eq!(c.expected_seq, 5);
    }

    #[test]
    fn irn_ooo_arrival_nacks_with_sack() {
        let mut c = ctx();
        receive_data(&mut c, 0, false, ReceiverMode::Irn);
        // Packet 1 lost; 2 and 3 arrive.
        let out = receive_data(&mut c, 2, false, ReceiverMode::Irn);
        assert_eq!(out.ack, AckEmit::Nack { cum: 1, sack: 2 });
        assert!(out.buffered_ooo);
        let out = receive_data(&mut c, 3, false, ReceiverMode::Irn);
        assert_eq!(out.ack, AckEmit::Nack { cum: 1, sack: 3 });
        // Retransmitted 1 fills the hole: window slides over 1,2,3.
        let out = receive_data(&mut c, 1, false, ReceiverMode::Irn);
        assert_eq!(out.ack, AckEmit::Ack { cum: 4 });
        assert_eq!(out.advanced, 3);
    }

    #[test]
    fn irn_msn_counts_messages_released_in_order() {
        let mut c = ctx();
        // Two messages: {0,1(last)} and {2(last)}; 0 lost initially.
        receive_data(&mut c, 1, true, ReceiverMode::Irn);
        receive_data(&mut c, 2, true, ReceiverMode::Irn);
        assert_eq!(c.msn, 0, "completions held until the hole fills");
        let out = receive_data(&mut c, 0, false, ReceiverMode::Irn);
        assert_eq!(out.msn_increment, 2);
        assert_eq!(c.msn, 2);
    }

    #[test]
    fn irn_duplicate_ooo_is_flagged() {
        let mut c = ctx();
        receive_data(&mut c, 2, false, ReceiverMode::Irn);
        let out = receive_data(&mut c, 2, false, ReceiverMode::Irn);
        assert!(out.duplicate);
        assert_eq!(out.ack, AckEmit::Nack { cum: 0, sack: 2 });
    }

    #[test]
    fn irn_below_window_duplicate_reacks() {
        let mut c = ctx();
        for psn in 0..3 {
            receive_data(&mut c, psn, false, ReceiverMode::Irn);
        }
        let out = receive_data(&mut c, 1, false, ReceiverMode::Irn);
        assert!(out.duplicate);
        assert_eq!(out.ack, AckEmit::Ack { cum: 3 });
    }

    #[test]
    fn irn_beyond_window_discarded() {
        let mut c = ctx();
        let out = receive_data(&mut c, CAP as u32 + 5, false, ReceiverMode::Irn);
        assert!(out.beyond_window);
        assert_eq!(out.ack, AckEmit::None);
    }

    #[test]
    fn roce_discards_ooo_and_nacks_once() {
        let mut c = ctx();
        receive_data(&mut c, 0, false, ReceiverMode::RoceGoBackN);
        let out = receive_data(&mut c, 2, false, ReceiverMode::RoceGoBackN);
        assert_eq!(out.ack, AckEmit::Nack { cum: 1, sack: 2 });
        assert!(!out.buffered_ooo, "RoCE receivers discard OOO packets");
        // Further OOO arrivals in the same episode: silent.
        let out = receive_data(&mut c, 3, false, ReceiverMode::RoceGoBackN);
        assert_eq!(out.ack, AckEmit::None);
        // In-order progress resets the episode.
        let out = receive_data(&mut c, 1, false, ReceiverMode::RoceGoBackN);
        assert_eq!(out.ack, AckEmit::Ack { cum: 2 });
        let out = receive_data(&mut c, 3, false, ReceiverMode::RoceGoBackN);
        assert_eq!(out.ack, AckEmit::Nack { cum: 2, sack: 3 });
    }

    #[test]
    fn roce_dropped_ooo_must_be_retransmitted() {
        // Packets 2,3 discarded; after 1 arrives the stream resumes at 2.
        let mut c = ctx();
        receive_data(&mut c, 0, false, ReceiverMode::RoceGoBackN);
        receive_data(&mut c, 2, false, ReceiverMode::RoceGoBackN);
        receive_data(&mut c, 3, false, ReceiverMode::RoceGoBackN);
        receive_data(&mut c, 1, false, ReceiverMode::RoceGoBackN);
        assert_eq!(c.expected_seq, 2, "2 and 3 were discarded, not buffered");
    }

    // ---- receiveAck / txFree: the §3.1 recovery walk ----

    /// Drive a sender through: send 10, lose 2 and 5, recover.
    #[test]
    fn sack_recovery_retransmits_exactly_the_lost() {
        let mut c = ctx();
        // "Send" 10 packets.
        for _ in 0..10 {
            assert!(matches!(tx_free(&mut c, true), TxFreeOut::SendNew { .. }));
        }
        assert_eq!(c.in_flight(), 10);

        // Receiver saw 0,1 in order; 2 lost; 3,4 OOO; 5 lost; 6..9 OOO.
        receive_ack(&mut c, 2, None, false); // cum ack for 0,1
        let out = receive_ack(&mut c, 2, Some(3), true); // NACK (cum 2, sack 3)
        assert!(out.entered_recovery);
        receive_ack(&mut c, 2, Some(4), true);
        receive_ack(&mut c, 2, Some(6), true);
        receive_ack(&mut c, 2, Some(7), true);
        receive_ack(&mut c, 2, Some(8), true);
        receive_ack(&mut c, 2, Some(9), true);

        // txFree must retransmit exactly 2 then 5, then go back to new.
        assert_eq!(tx_free(&mut c, true), TxFreeOut::Retransmit { psn: 2 });
        assert_eq!(tx_free(&mut c, true), TxFreeOut::Retransmit { psn: 5 });
        match tx_free(&mut c, true) {
            TxFreeOut::SendNew { psn } => assert_eq!(psn, 10),
            other => panic!("expected new packet, got {other:?}"),
        }
    }

    #[test]
    fn recovery_exit_requires_passing_recovery_seq() {
        let mut c = ctx();
        for _ in 0..5 {
            tx_free(&mut c, true);
        }
        // Lose 0: NACK (cum 0, sack 1). recovery_seq = 4.
        let out = receive_ack(&mut c, 0, Some(1), true);
        assert!(out.entered_recovery);
        assert_eq!(c.recovery_seq, 4);
        // Cum advances to 3 (retx of 0 delivered; 1,2 sacked etc.).
        let out = receive_ack(&mut c, 3, None, false);
        assert!(!out.exited_recovery, "cum 3 ≤ recovery_seq 4");
        let out = receive_ack(&mut c, 5, None, false);
        assert!(out.exited_recovery);
        assert!(!c.in_recovery);
    }

    #[test]
    fn no_spurious_retransmit_without_higher_sack() {
        // §3.1: a packet is lost only if a *higher* sequence was SACKed.
        let mut c = ctx();
        for _ in 0..6 {
            tx_free(&mut c, true);
        }
        receive_ack(&mut c, 1, Some(2), true); // 1 delivered; 2 sacked; hole at... cum=1
                                               // Retransmit cursor starts at cum (1). Only psn 1 qualifies
                                               // (sack at 2 is higher); psn 3,4,5 have no higher sack.
        assert_eq!(tx_free(&mut c, true), TxFreeOut::Retransmit { psn: 1 });
        match tx_free(&mut c, true) {
            TxFreeOut::SendNew { psn } => assert_eq!(psn, 6),
            other => panic!("must move to new data, got {other:?}"),
        }
    }

    #[test]
    fn cum_ack_shifts_sack_bitmap() {
        let mut c = ctx();
        for _ in 0..8 {
            tx_free(&mut c, true);
        }
        receive_ack(&mut c, 0, Some(5), true);
        assert!(c.sack.get(5));
        receive_ack(&mut c, 4, None, false);
        // After advancing by 4, the sack at absolute 5 is at offset 1.
        assert!(c.sack.get(1));
        assert!(!c.sack.get(5));
    }

    #[test]
    fn idle_when_nothing_to_do() {
        let mut c = ctx();
        assert_eq!(tx_free(&mut c, false), TxFreeOut::Idle);
    }

    #[test]
    fn duplicate_nack_does_not_reenter_recovery() {
        let mut c = ctx();
        for _ in 0..4 {
            tx_free(&mut c, true);
        }
        let first = receive_ack(&mut c, 0, Some(1), true);
        assert!(first.entered_recovery);
        let second = receive_ack(&mut c, 0, Some(2), true);
        assert!(!second.entered_recovery, "already in recovery");
    }

    // ---- timeout ----

    #[test]
    fn timeout_extends_when_rto_low_condition_fails() {
        let mut c = ctx();
        for _ in 0..5 {
            tx_free(&mut c, true);
        }
        c.rto_low_armed = true;
        // 5 packets in flight ≥ N=3: RTO_low was stale, extend.
        assert_eq!(timeout(&mut c, 3), TimeoutOut::ExtendToHigh);
        assert!(!c.in_recovery, "extension must not trigger recovery");
        assert!(!c.rto_low_armed);
    }

    #[test]
    fn timeout_fires_and_enters_recovery() {
        let mut c = ctx();
        for _ in 0..2 {
            tx_free(&mut c, true);
        }
        c.rto_low_armed = true;
        // 2 in flight < N=3: the short timeout legitimately fires.
        assert_eq!(
            timeout(&mut c, 3),
            TimeoutOut::Fired {
                entered_recovery: true
            }
        );
        assert!(c.in_recovery);
        assert_eq!(c.retx_cursor, 0);
        // With no SACKs, only the cumulative-ack packet retransmits...
        assert_eq!(tx_free(&mut c, false), TxFreeOut::Idle);
        // ...wait: no higher sack exists, so nothing is known-lost; the
        // cursor rule still sends nothing. Timeout-driven retransmission
        // of the head happens because highest_sacked == 0 means txFree
        // yields Idle; the transport layer retransmits `cum_acked`
        // explicitly on Fired (mirrors §3.1's "retransmits packets ...
        // starting with the cumulative acknowledgement").
    }

    #[test]
    fn high_timeout_always_fires() {
        let mut c = ctx();
        for _ in 0..50 {
            tx_free(&mut c, true);
        }
        c.rto_low_armed = false; // RTO_high armed
        assert_eq!(
            timeout(&mut c, 3),
            TimeoutOut::Fired {
                entered_recovery: true
            }
        );
    }

    mod proptests {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// Under any loss/reorder pattern, feeding every receiver ACK
            /// back to the sender and retransmitting whatever txFree asks
            /// for (plus the head on timeout) eventually delivers all
            /// packets in order.
            #[test]
            fn sender_receiver_converge(loss_mask in proptest::collection::vec(prop::bool::ANY, 1..60)) {
                let total = loss_mask.len() as u32;
                let mut s = QpContext::new(128);
                let mut r = QpContext::new(128);

                // Channel: in-order but lossy on first transmission.
                let mut acks: Vec<(u32, Option<u32>, bool)> = Vec::new();
                for (i, lost) in loss_mask.iter().enumerate() {
                    let psn = match tx_free(&mut s, true) {
                        TxFreeOut::SendNew { psn } => psn,
                        other => panic!("unexpected {other:?}"),
                    };
                    prop_assert_eq!(psn, i as u32);
                    if !lost {
                        let out = receive_data(&mut r, psn, psn == total - 1, ReceiverMode::Irn);
                        match out.ack {
                            AckEmit::Ack { cum } => acks.push((cum, None, false)),
                            AckEmit::Nack { cum, sack } => acks.push((cum, Some(sack), true)),
                            AckEmit::None => {}
                        }
                    }
                }
                for (cum, sack, nack) in acks.drain(..) {
                    receive_ack(&mut s, cum, sack, nack);
                }

                // Recovery rounds: retransmit known-lost + timeout head.
                for _round in 0..(total * 4) {
                    if s.cum_acked == total { break; }
                    // Ask txFree for retransmissions only.
                    let mut to_send = Vec::new();
                    while let TxFreeOut::Retransmit { psn } = tx_free(&mut s, false) {
                        to_send.push(psn);
                    }
                    if to_send.is_empty() {
                        // Timeout path: retransmit the cumulative head.
                        timeout(&mut s, 3);
                        to_send.push(s.cum_acked);
                    }
                    for psn in to_send {
                        let out = receive_data(&mut r, psn, psn == total - 1, ReceiverMode::Irn);
                        match out.ack {
                            AckEmit::Ack { cum } => { receive_ack(&mut s, cum, None, false); }
                            AckEmit::Nack { cum, sack } => { receive_ack(&mut s, cum, Some(sack), true); }
                            AckEmit::None => {}
                        }
                    }
                }
                prop_assert_eq!(r.expected_seq, total, "receiver must end with all packets");
                prop_assert_eq!(s.cum_acked, total, "sender must see everything acked");
                prop_assert_eq!(r.msn, 1, "exactly one message boundary");
                prop_assert!(!s.in_recovery);
            }

            /// txFree never retransmits a sequence at/above the highest
            /// SACK and never below the cumulative ack.
            #[test]
            fn retransmissions_stay_in_the_hole_region(
                sacks in proptest::collection::vec(1u32..100, 1..30),
                cum in 0u32..20,
            ) {
                let mut s = QpContext::new(128);
                for _ in 0..100 { tx_free(&mut s, true); }
                receive_ack(&mut s, cum, None, false);
                for sk in &sacks {
                    receive_ack(&mut s, cum, Some(*sk), true);
                }
                while let TxFreeOut::Retransmit { psn } = tx_free(&mut s, false) {
                    prop_assert!(psn >= s.cum_acked);
                    prop_assert!(psn < s.highest_sacked);
                    let off = (psn - s.cum_acked) as usize;
                    prop_assert!(!s.sack.get(off), "never retransmit SACKed data");
                }
            }
        }
    }
}
