//! Queue-pair state machines: requester and responder (§5).
//!
//! These implement the *semantic* half of IRN — how RDMA operations keep
//! their InfiniBand-specified behaviour when packets arrive out of order:
//!
//! * data is DMA'd straight to application memory on arrival, even out
//!   of order, tracked by BDP-sized bitmaps instead of NIC buffering
//!   (§5.3's implementation strategy);
//! * WQE matching uses explicit `recv_WQE_SN` / `read_WQE_SN` carried in
//!   packets (§5.3.2);
//! * "last packet" actions — MSN update, Receive-WQE expiry, CQE
//!   generation — are deferred via the 2-bitmap until all preceding
//!   packets arrive; CQEs created early are *premature CQEs* parked in
//!   main memory (§5.3.3);
//! * Read/Atomic requests wait in the Read WQE buffer and execute only
//!   in order (§5.3.2); read responses flow on the separate rPSN space
//!   and are acknowledged per-packet by the requester (§5.2, §5.4);
//! * completions are delivered to the application in WQE posting order
//!   (InfiniBand ordered-QP semantics), which the premature-CQE
//!   machinery preserves under arbitrary loss and reordering — the
//!   property the integration tests hammer on.
//!
//! Timing, pacing and loss recovery live in `irn-transport`; this module
//! is deliberately clock-free so the semantics can be tested under
//! adversarial packet schedules.

use std::collections::{BTreeMap, HashMap, VecDeque};

use crate::bitmap::TwoBitmap;
use crate::modules::{self, AckEmit, QpContext, ReceiverMode};
use crate::verbs::{
    Cqe, CqeKind, PacketOp, RdmaOp, ReadResponsePacket, ReceiveWqe, RequestPacket, RequestWqe,
};

/// Static QP parameters.
#[derive(Debug, Clone, Copy)]
pub struct QpConfig {
    /// Path MTU in bytes (RoCE default 1 KB, §3.2).
    pub mtu: u32,
    /// BDP cap in packets — bounds outstanding data and sizes every
    /// bitmap (§3.2: ~110 for the default network).
    pub bdp_cap: u32,
}

impl Default for QpConfig {
    fn default() -> Self {
        QpConfig {
            mtu: 1000,
            bdp_cap: 110,
        }
    }
}

/// A write into responder memory, recorded for verification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemWrite {
    /// Target virtual address.
    pub addr: u64,
    /// Bytes written.
    pub len: u32,
    /// Message that produced the write.
    pub msg_id: u64,
    /// Global placement order (DMA order, *not* message order — OOO
    /// placement is the point).
    pub seq: u64,
}

/// The responder's application memory, modelled as a write log.
///
/// Real NICs DMA payloads; the reproduction records *which message wrote
/// which range in which order* so tests can verify placement and the
/// §5.3.4 overwrite semantics.
#[derive(Debug, Default, Clone)]
pub struct Memory {
    writes: Vec<MemWrite>,
}

impl Memory {
    fn place(&mut self, addr: u64, len: u32, msg_id: u64) {
        let seq = self.writes.len() as u64;
        self.writes.push(MemWrite {
            addr,
            len,
            msg_id,
            seq,
        });
    }

    /// All recorded writes, in DMA order.
    pub fn writes(&self) -> &[MemWrite] {
        &self.writes
    }

    /// The message that last wrote the byte at `addr`, if any.
    pub fn last_writer(&self, addr: u64) -> Option<u64> {
        self.writes
            .iter()
            .rev()
            .find(|w| addr >= w.addr && addr < w.addr + w.len as u64)
            .map(|w| w.msg_id)
    }

    /// Total bytes covered by writes of message `msg_id`.
    pub fn bytes_of(&self, msg_id: u64) -> u64 {
        self.writes
            .iter()
            .filter(|w| w.msg_id == msg_id)
            .map(|w| w.len as u64)
            .sum()
    }
}

// ---------------------------------------------------------------------------
// Requester
// ---------------------------------------------------------------------------

/// Span of sequence numbers occupied by one posted message.
#[derive(Debug, Clone, Copy)]
struct MsgSpan {
    wqe: RequestWqe,
    msg_id: u64,
    first_psn: u32,
    packets: u32,
    /// MSN the responder will report once this message completes there.
    expected_msn: u32,
    /// SendInval fencing (Appendix B.5): transmission held until every
    /// earlier message has completed.
    fenced: bool,
}

/// Read-side completion tracking for a Read/Atomic WQE.
#[derive(Debug, Clone)]
struct PendingRead {
    total_packets: u32,
    received: u32,
}

/// The requester half of a queue pair.
///
/// Owns the sPSN space for requests, consumes ACK/NACK/read-response
/// packets, and surfaces CQEs in posting order. Packet *scheduling*
/// (when to transmit, what is lost) is the caller's concern: the
/// requester hands out fresh packets via [`Requester::next_new_packet`]
/// and regenerates any unacknowledged packet via
/// [`Requester::packet_for_psn`] (NICs re-fetch retransmissions over
/// PCIe, §6.3 — there is no retransmission buffer).
#[derive(Debug)]
pub struct Requester {
    cfg: QpConfig,
    /// Sender-side transport context (shared logic with `irn-transport`).
    pub ctx: QpContext,
    msgs: Vec<MsgSpan>,
    /// Index of the first not-fully-transmitted message + packet offset.
    tx_msg: usize,
    tx_pkt: u32,
    next_msg_id: u64,
    next_recv_wqe_sn: u32,
    next_read_wqe_sn: u32,
    /// Completed-MSN high-water mark from ACKs.
    peer_msn: u32,
    /// Completion cursor: messages `< done_msgs` have delivered CQEs.
    done_msgs: usize,
    /// Read/Atomic completion state keyed by message id.
    pending_reads: HashMap<u64, PendingRead>,
    /// rPSN receive tracking (read responses arrive out of order too).
    read_resp: TwoBitmap,
    read_expected_rpsn: u32,
    cqes: VecDeque<Cqe>,
}

/// Acknowledgement emitted by the requester for read-response packets
/// (§5.2: "IRN introduces packets for read (N)ACKs").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReadAckEmit {
    /// Cumulative read-ACK (expected rPSN).
    Ack {
        /// Expected rPSN after this arrival.
        cum: u32,
    },
    /// Read-NACK: cumulative + triggering rPSN.
    Nack {
        /// Expected rPSN.
        cum: u32,
        /// The out-of-order response that triggered the NACK.
        sack: u32,
    },
}

impl Requester {
    /// New requester with fresh sequence spaces.
    pub fn new(cfg: QpConfig) -> Requester {
        Requester {
            cfg,
            ctx: QpContext::new(cfg.bdp_cap as usize),
            msgs: Vec::new(),
            tx_msg: 0,
            tx_pkt: 0,
            next_msg_id: 0,
            next_recv_wqe_sn: 0,
            next_read_wqe_sn: 0,
            peer_msn: 0,
            done_msgs: 0,
            pending_reads: HashMap::new(),
            read_resp: TwoBitmap::new(cfg.bdp_cap as usize),
            read_expected_rpsn: 0,
            cqes: VecDeque::new(),
        }
    }

    /// Post a Request WQE. The driver assigns `recv_WQE_SN` /
    /// `read_WQE_SN` counters here (§5.3.2, §6.1 "counters for assigning
    /// WQE sequence numbers … stored directly in the main memory").
    pub fn post(&mut self, mut wqe: RequestWqe) -> u64 {
        let msg_id = self.next_msg_id;
        self.next_msg_id += 1;

        if wqe.op.consumes_receive_wqe() {
            wqe.recv_wqe_sn = Some(self.next_recv_wqe_sn);
            self.next_recv_wqe_sn += 1;
        }
        if wqe.op.is_read_like() {
            wqe.read_wqe_sn = Some(self.next_read_wqe_sn);
            self.next_read_wqe_sn += 1;
        }

        let packets = wqe.op.request_packets(self.cfg.mtu);
        let first_psn = self
            .msgs
            .last()
            .map(|m| m.first_psn + m.packets)
            .unwrap_or(0);
        let expected_msn = self.msgs.len() as u32 + 1;
        let fenced = matches!(wqe.op, RdmaOp::SendInval { .. });
        self.msgs.push(MsgSpan {
            wqe,
            msg_id,
            first_psn,
            packets,
            expected_msn,
            fenced,
        });
        if wqe.op.is_read_like() {
            let resp_packets = match wqe.op {
                RdmaOp::Read { len } => len.max(1).div_ceil(self.cfg.mtu),
                _ => 1, // Atomic: single response packet
            };
            self.pending_reads.insert(
                msg_id,
                PendingRead {
                    total_packets: resp_packets,
                    received: 0,
                },
            );
        }
        msg_id
    }

    /// Packets in flight (sPSN space).
    pub fn in_flight(&self) -> u32 {
        self.ctx.in_flight()
    }

    /// Next expected read-response sequence number (rPSN space); the
    /// value a read NACK or responder read-timeout replays from (§5.2).
    pub fn read_expected_rpsn(&self) -> u32 {
        self.read_expected_rpsn
    }

    /// True when at least one Read/Atomic response is still incomplete.
    pub fn reads_pending(&self) -> bool {
        self.pending_reads
            .values()
            .any(|p| p.received < p.total_packets)
    }

    /// True when every posted packet has been transmitted at least once.
    pub fn fully_transmitted(&self) -> bool {
        self.tx_msg >= self.msgs.len()
    }

    /// True when every posted WQE has completed.
    pub fn idle(&self) -> bool {
        self.done_msgs == self.msgs.len()
    }

    /// Hand out the next *new* packet, honouring BDP-FC (§3.2) and
    /// SendInval fences (Appendix B.5). Returns `None` when the window
    /// is full, everything is transmitted, or a fence blocks.
    pub fn next_new_packet(&mut self) -> Option<RequestPacket> {
        if self.ctx.in_flight() >= self.cfg.bdp_cap {
            return None; // BDP-FC gate
        }
        let span = *self.msgs.get(self.tx_msg)?;
        if span.fenced && self.done_msgs < self.tx_msg {
            // Fence: hold Send-with-Invalidate until prior work completes.
            return None;
        }
        let pkt = self.build_packet(&span, self.tx_pkt);
        debug_assert_eq!(pkt.psn, self.ctx.next_to_send);
        self.ctx.next_to_send += 1;
        self.tx_pkt += 1;
        if self.tx_pkt == span.packets {
            self.tx_msg += 1;
            self.tx_pkt = 0;
        }
        Some(pkt)
    }

    /// Regenerate the packet bearing `psn` for retransmission. Panics if
    /// `psn` was never assigned.
    pub fn packet_for_psn(&self, psn: u32) -> RequestPacket {
        let idx = self
            .msgs
            .partition_point(|m| m.first_psn + m.packets <= psn);
        let span = self
            .msgs
            .get(idx)
            .unwrap_or_else(|| panic!("psn {psn} beyond posted messages"));
        assert!(psn >= span.first_psn, "psn {psn} not assigned");
        self.build_packet(span, psn - span.first_psn)
    }

    fn build_packet(&self, span: &MsgSpan, pkt_idx: u32) -> RequestPacket {
        let psn = span.first_psn + pkt_idx;
        let last = pkt_idx + 1 == span.packets;
        let mtu = self.cfg.mtu;
        let msg_len = span.wqe.op.len();
        let offset = pkt_idx * mtu;
        let payload = match span.wqe.op {
            RdmaOp::Read { .. } => 0,
            RdmaOp::Atomic => 8,
            _ => msg_len.saturating_sub(offset).min(mtu),
        };
        let (op, reth_addr, recv_sn, read_sn, imm, read_len) = match span.wqe.op {
            RdmaOp::Write { .. } => (
                PacketOp::WriteData,
                // IRN adds the RETH to *every* packet (§5.3.1), pointing
                // at this packet's slice of the target buffer.
                Some(span.wqe.remote_addr + offset as u64),
                None,
                None,
                None,
                0,
            ),
            RdmaOp::WriteImm { imm, .. } => (
                PacketOp::WriteData,
                Some(span.wqe.remote_addr + offset as u64),
                // recv_WQE_SN travels in the *last* packet only (§5.3.2).
                last.then_some(span.wqe.recv_wqe_sn.expect("assigned at post")),
                None,
                last.then_some(imm),
                0,
            ),
            RdmaOp::Send { .. } | RdmaOp::SendInval { .. } => (
                PacketOp::SendData,
                None,
                // Every Send packet carries the recv_WQE_SN and its
                // relative offset (§5.3.2).
                Some(span.wqe.recv_wqe_sn.expect("assigned at post")),
                None,
                None,
                0,
            ),
            RdmaOp::Read { len } => (
                PacketOp::ReadRequest,
                Some(span.wqe.remote_addr),
                None,
                Some(span.wqe.read_wqe_sn.expect("assigned at post")),
                None,
                len,
            ),
            RdmaOp::Atomic => (
                PacketOp::AtomicRequest,
                Some(span.wqe.remote_addr),
                None,
                Some(span.wqe.read_wqe_sn.expect("assigned at post")),
                None,
                0,
            ),
        };
        RequestPacket {
            psn,
            op,
            msg_id: span.msg_id,
            reth_addr,
            recv_wqe_sn: recv_sn,
            read_wqe_sn: read_sn,
            msg_offset: offset,
            payload_len: payload,
            read_len,
            imm,
            last,
        }
    }

    /// Consume an ACK/NACK for the request direction. Returns how many
    /// packets were newly acknowledged (callers feed this to congestion
    /// control).
    pub fn on_ack(&mut self, cum: u32, sack: Option<u32>, is_nack: bool, msn: u32) -> u32 {
        let out = modules::receive_ack(&mut self.ctx, cum, sack, is_nack);
        if msn > self.peer_msn {
            self.peer_msn = msn;
        }
        self.pump_completions();
        out.newly_acked
    }

    /// Consume a read-response / atomic-response packet. Returns the
    /// read (N)ACK to send back (§5.2: per-packet, rPSN space).
    pub fn on_read_response(&mut self, pkt: ReadResponsePacket) -> ReadAckEmit {
        let emit = if pkt.rpsn < self.read_expected_rpsn {
            // Duplicate of an already-delivered response.
            ReadAckEmit::Ack {
                cum: self.read_expected_rpsn,
            }
        } else {
            let off = (pkt.rpsn - self.read_expected_rpsn) as usize;
            assert!(
                off < self.read_resp.capacity(),
                "read responses exceed BDP cap — responder ignored flow control"
            );
            let fresh = !self.read_resp.has(off);
            self.read_resp.record(off, pkt.last);
            if fresh {
                if let Some(pr) = self.pending_reads.get_mut(&pkt.wqe_id_key()) {
                    pr.received += 1;
                }
            }
            if off == 0 {
                let (advanced, _) = self.read_resp.slide();
                self.read_expected_rpsn += advanced as u32;
                ReadAckEmit::Ack {
                    cum: self.read_expected_rpsn,
                }
            } else {
                ReadAckEmit::Nack {
                    cum: self.read_expected_rpsn,
                    sack: pkt.rpsn,
                }
            }
        };
        self.pump_completions();
        emit
    }

    /// Deliver any CQEs whose turn has come (posting order).
    fn pump_completions(&mut self) {
        while self.done_msgs < self.msgs.len() {
            let span = &self.msgs[self.done_msgs];
            let complete = if span.wqe.op.is_read_like() {
                let pr = &self.pending_reads[&span.msg_id];
                pr.received >= pr.total_packets
            } else {
                self.peer_msn >= span.expected_msn
            };
            if !complete {
                break;
            }
            self.cqes.push_back(Cqe {
                wqe_id: span.wqe.id,
                kind: CqeKind::Request,
                msn: span.expected_msn,
                imm: None,
            });
            self.done_msgs += 1;
        }
    }

    /// Drain delivered completions.
    pub fn poll_cq(&mut self) -> Vec<Cqe> {
        self.cqes.drain(..).collect()
    }
}

impl ReadResponsePacket {
    /// The message-id key used by the requester to track this response.
    /// (`wqe_id` doubles as the key because the responder echoes the
    /// request's msg id there.)
    fn wqe_id_key(&self) -> u64 {
        self.wqe_id
    }
}

// ---------------------------------------------------------------------------
// Responder
// ---------------------------------------------------------------------------

/// Completion-relevant metadata parked until the window slides past a
/// message's last packet (§5.3.3's premature CQE, "stored in the main
/// memory, until it gets delivered to the application").
#[derive(Debug, Clone, Copy)]
struct HeldLast {
    msg_id: u64,
    recv_wqe_sn: Option<u32>,
    imm: Option<u32>,
    consumes_recv_wqe: bool,
}

/// A Read/Atomic request parked in the Read WQE buffer (§5.3.2).
#[derive(Debug, Clone, Copy)]
struct BufferedRead {
    psn: u32,
    msg_id: u64,
    addr: u64,
    read_len: u32,
    atomic: bool,
}

/// Actions the responder asks its NIC to perform.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ResponderAction {
    /// Send an ACK (cumulative `cum`, current MSN piggy-backed).
    Ack {
        /// Expected sequence number.
        cum: u32,
        /// Responder MSN after this packet.
        msn: u32,
    },
    /// Send an IRN NACK (cumulative + SACK trigger).
    Nack {
        /// Expected sequence number.
        cum: u32,
        /// Out-of-order arrival that triggered the NACK.
        sack: u32,
        /// Responder MSN.
        msn: u32,
    },
    /// Emit a read/atomic response packet (rPSN space).
    ReadResponse(ReadResponsePacket),
    /// Deliver a CQE to the responder application.
    Completion(Cqe),
}

/// The responder half of a queue pair.
#[derive(Debug)]
pub struct Responder {
    cfg: QpConfig,
    mode: ReceiverMode,
    /// Receive-direction transport context (2-bitmap lives here).
    pub ctx: QpContext,
    /// Application memory (write log).
    pub memory: Memory,
    /// Posted Receive WQEs by recv_WQE_SN.
    recv_wqes: BTreeMap<u32, ReceiveWqe>,
    next_recv_wqe_sn: u32,
    /// Held last-packet metadata by absolute PSN.
    held: HashMap<u32, HeldLast>,
    /// Read WQE buffer indexed by read_WQE_SN (§5.3.2).
    read_buffer: BTreeMap<u32, BufferedRead>,
    /// Next read_WQE_SN to execute (in-order execution point).
    next_read_exec: u32,
    /// rPSN allocator for read responses.
    next_rpsn: u32,
    /// Emitted read-response packets by rPSN, for NACK-driven replay
    /// (regenerated from memory on a real NIC; kept here for fidelity of
    /// the replay protocol).
    read_log: Vec<ReadResponsePacket>,
    /// Count of read responses replayed due to read NACKs.
    pub read_retransmissions: u64,
}

impl Responder {
    /// New responder in IRN mode (buffers OOO packets).
    pub fn new(cfg: QpConfig) -> Responder {
        Responder::with_mode(cfg, ReceiverMode::Irn)
    }

    /// New responder with an explicit receiver mode (RoCE go-back-N
    /// responders discard OOO packets, §2.1).
    pub fn with_mode(cfg: QpConfig, mode: ReceiverMode) -> Responder {
        Responder {
            cfg,
            mode,
            ctx: QpContext::new(cfg.bdp_cap as usize),
            memory: Memory::default(),
            recv_wqes: BTreeMap::new(),
            next_recv_wqe_sn: 0,
            held: HashMap::new(),
            read_buffer: BTreeMap::new(),
            next_read_exec: 0,
            next_rpsn: 0,
            read_log: Vec::new(),
            read_retransmissions: 0,
        }
    }

    /// Post a Receive WQE; the driver assigns its `recv_WQE_SN` in
    /// posting order (§5.3.2).
    pub fn post_receive(&mut self, id: u64, sink_addr: u64) -> u32 {
        let sn = self.next_recv_wqe_sn;
        self.next_recv_wqe_sn += 1;
        self.recv_wqes.insert(
            sn,
            ReceiveWqe {
                id,
                recv_wqe_sn: sn,
                sink_addr,
            },
        );
        sn
    }

    /// Current MSN.
    pub fn msn(&self) -> u32 {
        self.ctx.msn
    }

    /// Number of packets currently buffered out of order.
    pub fn out_of_order_packets(&self) -> usize {
        self.ctx.recv.out_of_order_count()
    }

    /// Process one request-direction packet.
    pub fn on_packet(&mut self, pkt: RequestPacket) -> Vec<ResponderAction> {
        let mut actions = Vec::new();
        let expected_before = self.ctx.expected_seq;

        let out = modules::receive_data(&mut self.ctx, pkt.psn, pkt.last, self.mode);

        if out.beyond_window {
            return actions; // discarded defensively; no NACK (§B.4 spirit)
        }

        let fresh_arrival = !out.duplicate
            && (out.advanced > 0
                || out.buffered_ooo
                || self.mode == ReceiverMode::Irn && pkt.psn >= expected_before);
        let accepted = match self.mode {
            ReceiverMode::Irn => fresh_arrival,
            // RoCE discards OOO arrivals entirely.
            ReceiverMode::RoceGoBackN => out.advanced > 0,
        };

        if accepted && !out.duplicate {
            self.accept_packet(&pkt);
        }

        // Window slid: release held completions and execute ready reads.
        if out.advanced > 0 {
            self.release_range(expected_before, self.ctx.expected_seq, &mut actions);
            self.execute_ready_reads(&mut actions);
        }

        // The transport-level (N)ACK, stamped with the (possibly updated)
        // MSN so the requester can expire Request WQEs (§5.3.3).
        match out.ack {
            AckEmit::Ack { cum } => actions.push(ResponderAction::Ack {
                cum,
                msn: self.ctx.msn,
            }),
            AckEmit::Nack { cum, sack } => actions.push(ResponderAction::Nack {
                cum,
                sack,
                msn: self.ctx.msn,
            }),
            AckEmit::None => {}
        }
        actions
    }

    /// DMA placement + bookkeeping for a freshly-arrived packet.
    fn accept_packet(&mut self, pkt: &RequestPacket) {
        match pkt.op {
            PacketOp::WriteData => {
                // RETH on every packet → place immediately (§5.3.1).
                let addr = pkt.reth_addr.expect("IRN Write packets carry RETH");
                if pkt.payload_len > 0 {
                    self.memory.place(addr, pkt.payload_len, pkt.msg_id);
                }
                if pkt.last {
                    self.held.insert(
                        pkt.psn,
                        HeldLast {
                            msg_id: pkt.msg_id,
                            recv_wqe_sn: pkt.recv_wqe_sn,
                            imm: pkt.imm,
                            consumes_recv_wqe: pkt.recv_wqe_sn.is_some(),
                        },
                    );
                }
            }
            PacketOp::SendData => {
                // recv_WQE_SN + offset identify the sink (§5.3.2).
                let sn = pkt.recv_wqe_sn.expect("Send packets carry recv_WQE_SN");
                let wqe = self
                    .recv_wqes
                    .get(&sn)
                    .unwrap_or_else(|| panic!("no Receive WQE with SN {sn} (RNR; see credits)"));
                if pkt.payload_len > 0 {
                    self.memory.place(
                        wqe.sink_addr + pkt.msg_offset as u64,
                        pkt.payload_len,
                        pkt.msg_id,
                    );
                }
                if pkt.last {
                    self.held.insert(
                        pkt.psn,
                        HeldLast {
                            msg_id: pkt.msg_id,
                            recv_wqe_sn: Some(sn),
                            imm: pkt.imm,
                            consumes_recv_wqe: true,
                        },
                    );
                }
            }
            PacketOp::ReadRequest | PacketOp::AtomicRequest => {
                // Park in the Read WQE buffer until in order (§5.3.2).
                let sn = pkt
                    .read_wqe_sn
                    .expect("Read/Atomic packets carry read_WQE_SN");
                self.read_buffer.insert(
                    sn,
                    BufferedRead {
                        psn: pkt.psn,
                        msg_id: pkt.msg_id,
                        addr: pkt.reth_addr.expect("Read carries the source address"),
                        read_len: if pkt.op == PacketOp::ReadRequest {
                            pkt.read_len
                        } else {
                            8
                        },
                        atomic: pkt.op == PacketOp::AtomicRequest,
                    },
                );
            }
        }
    }

    /// Deliver held completions for every PSN the window slid past.
    fn release_range(&mut self, from: u32, to: u32, actions: &mut Vec<ResponderAction>) {
        for psn in from..to {
            let Some(h) = self.held.remove(&psn) else {
                continue;
            };
            if h.consumes_recv_wqe {
                let sn = h.recv_wqe_sn.expect("consuming completion carries SN");
                let wqe = self
                    .recv_wqes
                    .remove(&sn)
                    .unwrap_or_else(|| panic!("Receive WQE {sn} double-consumed"));
                actions.push(ResponderAction::Completion(Cqe {
                    wqe_id: wqe.id,
                    kind: CqeKind::Receive,
                    msn: self.ctx.msn,
                    imm: h.imm,
                }));
            }
            let _ = h.msg_id;
        }
    }

    /// Execute buffered Read/Atomic requests whose PSN the window has
    /// passed, in read_WQE_SN order.
    fn execute_ready_reads(&mut self, actions: &mut Vec<ResponderAction>) {
        while let Some(br) = self.read_buffer.get(&self.next_read_exec).copied() {
            if br.psn >= self.ctx.expected_seq {
                break; // not yet in order
            }
            self.read_buffer.remove(&self.next_read_exec);
            self.next_read_exec += 1;

            if br.atomic {
                // Atomics read-modify-write the target (§5.1).
                self.memory.place(br.addr, 8, br.msg_id);
            }
            let packets = br.read_len.max(1).div_ceil(self.cfg.mtu).max(1);
            for i in 0..packets {
                let rpsn = self.next_rpsn;
                self.next_rpsn += 1;
                let payload = if br.atomic {
                    8
                } else {
                    br.read_len
                        .saturating_sub(i * self.cfg.mtu)
                        .min(self.cfg.mtu)
                };
                let rp = ReadResponsePacket {
                    rpsn,
                    wqe_id: br.msg_id,
                    msg_offset: i * self.cfg.mtu,
                    payload_len: payload,
                    last: i + 1 == packets,
                };
                self.read_log.push(rp);
                actions.push(ResponderAction::ReadResponse(rp));
            }
        }
    }

    /// Handle a read NACK from the requester: replay the lost response
    /// (the responder is the data source for reads, so it runs the
    /// sender side of loss recovery on the rPSN space — §5.2 notes it
    /// must also implement timeouts).
    pub fn on_read_nack(&mut self, cum_rpsn: u32, _sack: u32) -> Vec<ResponderAction> {
        self.read_retransmissions += 1;
        self.read_log
            .get(cum_rpsn as usize)
            .map(|rp| vec![ResponderAction::ReadResponse(*rp)])
            .unwrap_or_default()
    }

    /// Read-timeout replay of the response at `cum_rpsn` (driven by the
    /// responder's read timer, §5.2/§6.1).
    pub fn on_read_timeout(&mut self, cum_rpsn: u32) -> Vec<ResponderAction> {
        self.on_read_nack(cum_rpsn, cum_rpsn)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> QpConfig {
        QpConfig {
            mtu: 1000,
            bdp_cap: 110,
        }
    }

    fn write_wqe(id: u64, len: u32, addr: u64) -> RequestWqe {
        RequestWqe {
            id,
            op: RdmaOp::Write { len },
            remote_addr: addr,
            recv_wqe_sn: None,
            read_wqe_sn: None,
        }
    }

    /// Deliver every packet of the requester in order; feed acks back.
    fn run_in_order(req: &mut Requester, resp: &mut Responder) -> Vec<ResponderAction> {
        let mut all = Vec::new();
        while let Some(pkt) = req.next_new_packet() {
            for a in resp.on_packet(pkt) {
                match a {
                    ResponderAction::Ack { cum, msn } => {
                        req.on_ack(cum, None, false, msn);
                    }
                    ResponderAction::Nack { cum, sack, msn } => {
                        req.on_ack(cum, Some(sack), true, msn);
                    }
                    ResponderAction::ReadResponse(rp) => {
                        req.on_read_response(rp);
                        all.push(ResponderAction::ReadResponse(rp));
                    }
                    other => all.push(other),
                }
            }
        }
        all
    }

    #[test]
    fn write_completes_and_places_data() {
        let mut req = Requester::new(cfg());
        let mut resp = Responder::new(cfg());
        req.post(write_wqe(7, 2500, 0x1000));
        run_in_order(&mut req, &mut resp);
        let cqes = req.poll_cq();
        assert_eq!(cqes.len(), 1);
        assert_eq!(cqes[0].wqe_id, 7);
        assert_eq!(resp.memory.bytes_of(0), 2500);
        assert_eq!(resp.msn(), 1);
        assert!(req.idle());
    }

    #[test]
    fn write_packets_all_carry_reth() {
        // §5.3.1: IRN adds the RETH to every packet, offset-adjusted.
        let mut req = Requester::new(cfg());
        req.post(write_wqe(1, 3000, 0x4000));
        let mut addrs = Vec::new();
        while let Some(p) = req.next_new_packet() {
            addrs.push(p.reth_addr.expect("every Write packet carries RETH"));
        }
        assert_eq!(addrs, vec![0x4000, 0x4000 + 1000, 0x4000 + 2000]);
    }

    #[test]
    fn ooo_write_places_data_immediately_but_holds_msn() {
        let mut req = Requester::new(cfg());
        let mut resp = Responder::new(cfg());
        req.post(write_wqe(1, 3000, 0x0));
        let p0 = req.next_new_packet().unwrap();
        let p1 = req.next_new_packet().unwrap();
        let p2 = req.next_new_packet().unwrap();
        // Deliver 2 (last) first: data placed, MSN unchanged, NACK sent.
        let acts = resp.on_packet(p2);
        assert_eq!(resp.memory.bytes_of(0), 1000, "OOO data DMA'd directly");
        assert_eq!(resp.msn(), 0, "completion held until in-order");
        assert!(matches!(
            acts[0],
            ResponderAction::Nack {
                cum: 0,
                sack: 2,
                ..
            }
        ));
        resp.on_packet(p1);
        let acts = resp.on_packet(p0);
        assert_eq!(resp.msn(), 1, "hole filled → MSN advances");
        assert!(matches!(
            acts.last().unwrap(),
            ResponderAction::Ack { cum: 3, msn: 1 }
        ));
    }

    #[test]
    fn send_requires_receive_wqe_and_completes_it() {
        let mut req = Requester::new(cfg());
        let mut resp = Responder::new(cfg());
        resp.post_receive(100, 0x9000);
        req.post(RequestWqe {
            id: 2,
            op: RdmaOp::Send { len: 1500 },
            remote_addr: 0,
            recv_wqe_sn: None,
            read_wqe_sn: None,
        });
        let actions = run_in_order(&mut req, &mut resp);
        // Responder-side CQE for the consumed Receive WQE.
        let recv_cqes: Vec<_> = actions
            .iter()
            .filter_map(|a| match a {
                ResponderAction::Completion(c) => Some(*c),
                _ => None,
            })
            .collect();
        assert_eq!(recv_cqes.len(), 1);
        assert_eq!(recv_cqes[0].wqe_id, 100);
        assert_eq!(recv_cqes[0].kind, CqeKind::Receive);
        // Data landed at the Receive WQE's sink.
        assert_eq!(resp.memory.last_writer(0x9000), Some(0));
        assert_eq!(resp.memory.last_writer(0x9000 + 1400), Some(0));
        assert_eq!(req.poll_cq().len(), 1);
    }

    #[test]
    fn send_ooo_packets_place_via_offset() {
        // §5.3.2: Send packets carry recv_WQE_SN + offset so an OOO
        // packet lands at the right sink address.
        let mut req = Requester::new(cfg());
        let mut resp = Responder::new(cfg());
        resp.post_receive(5, 0x2000);
        req.post(RequestWqe {
            id: 1,
            op: RdmaOp::Send { len: 2000 },
            remote_addr: 0,
            recv_wqe_sn: None,
            read_wqe_sn: None,
        });
        let p0 = req.next_new_packet().unwrap();
        let p1 = req.next_new_packet().unwrap();
        resp.on_packet(p1); // second packet first
        let w = resp.memory.writes().last().unwrap();
        assert_eq!(w.addr, 0x2000 + 1000);
        resp.on_packet(p0);
        assert_eq!(resp.memory.last_writer(0x2000), Some(0));
    }

    #[test]
    fn write_imm_consumes_receive_wqe_with_imm() {
        let mut req = Requester::new(cfg());
        let mut resp = Responder::new(cfg());
        resp.post_receive(42, 0);
        req.post(RequestWqe {
            id: 3,
            op: RdmaOp::WriteImm {
                len: 500,
                imm: 0xBEEF,
            },
            remote_addr: 0x100,
            recv_wqe_sn: None,
            read_wqe_sn: None,
        });
        let actions = run_in_order(&mut req, &mut resp);
        let cqe = actions
            .iter()
            .find_map(|a| match a {
                ResponderAction::Completion(c) => Some(*c),
                _ => None,
            })
            .expect("WriteImm must expire the Receive WQE");
        assert_eq!(cqe.imm, Some(0xBEEF));
        assert_eq!(cqe.wqe_id, 42);
    }

    #[test]
    fn plain_write_does_not_touch_receive_wqes() {
        let mut req = Requester::new(cfg());
        let mut resp = Responder::new(cfg());
        resp.post_receive(9, 0);
        req.post(write_wqe(1, 800, 0));
        let actions = run_in_order(&mut req, &mut resp);
        assert!(
            !actions
                .iter()
                .any(|a| matches!(a, ResponderAction::Completion(_))),
            "a plain Write must not consume a Receive WQE (§5.1)"
        );
    }

    #[test]
    fn read_roundtrip_completes() {
        let mut req = Requester::new(cfg());
        let mut resp = Responder::new(cfg());
        req.post(RequestWqe {
            id: 11,
            op: RdmaOp::Read { len: 2500 },
            remote_addr: 0x7000,
            recv_wqe_sn: None,
            read_wqe_sn: None,
        });
        let actions = run_in_order(&mut req, &mut resp);
        let responses = actions
            .iter()
            .filter(|a| matches!(a, ResponderAction::ReadResponse(_)))
            .count();
        assert_eq!(responses, 3, "2500 B at 1 KB MTU = 3 response packets");
        let cqes = req.poll_cq();
        assert_eq!(cqes.len(), 1);
        assert_eq!(cqes[0].wqe_id, 11);
        assert_eq!(resp.msn(), 1, "MSN bumps when the Read executes");
    }

    #[test]
    fn ooo_read_request_waits_for_predecessors() {
        // §5.3.2: "The responder cannot begin processing a Read/Atomic
        // request R, until all packets expected to arrive before R have
        // been received."
        let mut req = Requester::new(cfg());
        let mut resp = Responder::new(cfg());
        req.post(write_wqe(1, 1000, 0)); // psn 0
        req.post(RequestWqe {
            id: 2,
            op: RdmaOp::Read { len: 500 },
            remote_addr: 0x500,
            recv_wqe_sn: None,
            read_wqe_sn: None,
        }); // psn 1
        let w = req.next_new_packet().unwrap();
        let r = req.next_new_packet().unwrap();
        // Read request arrives before the write.
        let acts = resp.on_packet(r);
        assert!(
            !acts
                .iter()
                .any(|a| matches!(a, ResponderAction::ReadResponse(_))),
            "read must wait in the Read WQE buffer"
        );
        let acts = resp.on_packet(w);
        assert!(
            acts.iter()
                .any(|a| matches!(a, ResponderAction::ReadResponse(_))),
            "read executes once in order"
        );
        assert_eq!(resp.msn(), 2);
    }

    #[test]
    fn atomic_is_single_packet_and_ordered() {
        let mut req = Requester::new(cfg());
        let mut resp = Responder::new(cfg());
        req.post(RequestWqe {
            id: 1,
            op: RdmaOp::Atomic,
            remote_addr: 0xA0,
            recv_wqe_sn: None,
            read_wqe_sn: None,
        });
        run_in_order(&mut req, &mut resp);
        assert_eq!(resp.memory.last_writer(0xA0), Some(0));
        assert_eq!(req.poll_cq().len(), 1);
    }

    #[test]
    fn read_responses_acked_per_packet_ooo_nacked() {
        // §5.2: the requester acknowledges every read-response packet.
        let mut req = Requester::new(cfg());
        let mut resp = Responder::new(cfg());
        req.post(RequestWqe {
            id: 1,
            op: RdmaOp::Read { len: 3000 },
            remote_addr: 0,
            recv_wqe_sn: None,
            read_wqe_sn: None,
        });
        let rq = req.next_new_packet().unwrap();
        let acts = resp.on_packet(rq);
        let rps: Vec<ReadResponsePacket> = acts
            .iter()
            .filter_map(|a| match a {
                ResponderAction::ReadResponse(rp) => Some(*rp),
                _ => None,
            })
            .collect();
        assert_eq!(rps.len(), 3);
        // Deliver rpsn 1 first: read NACK with cum 0.
        assert_eq!(
            req.on_read_response(rps[1]),
            ReadAckEmit::Nack { cum: 0, sack: 1 }
        );
        // rpsn 0 fills the hole: cumulative read ACK for 0..2.
        assert_eq!(req.on_read_response(rps[0]), ReadAckEmit::Ack { cum: 2 });
        assert_eq!(req.on_read_response(rps[2]), ReadAckEmit::Ack { cum: 3 });
        assert_eq!(req.poll_cq().len(), 1);
    }

    #[test]
    fn read_nack_replays_lost_response() {
        let mut req = Requester::new(cfg());
        let mut resp = Responder::new(cfg());
        req.post(RequestWqe {
            id: 1,
            op: RdmaOp::Read { len: 2000 },
            remote_addr: 0,
            recv_wqe_sn: None,
            read_wqe_sn: None,
        });
        let rq = req.next_new_packet().unwrap();
        let acts = resp.on_packet(rq);
        let rps: Vec<ReadResponsePacket> = acts
            .iter()
            .filter_map(|a| match a {
                ResponderAction::ReadResponse(rp) => Some(*rp),
                _ => None,
            })
            .collect();
        // Lose rps[0]; deliver rps[1] → NACK → replay of rpsn 0.
        let emit = req.on_read_response(rps[1]);
        let ReadAckEmit::Nack { cum, sack } = emit else {
            panic!("expected read NACK");
        };
        let replay = resp.on_read_nack(cum, sack);
        assert_eq!(replay.len(), 1);
        let ResponderAction::ReadResponse(rp) = replay[0] else {
            panic!();
        };
        assert_eq!(rp.rpsn, 0);
        req.on_read_response(rp);
        assert_eq!(req.poll_cq().len(), 1);
        assert_eq!(resp.read_retransmissions, 1);
    }

    #[test]
    fn completions_delivered_in_posting_order() {
        // A Write posted after a Read must not complete before it, even
        // though its ACK arrives first.
        let mut req = Requester::new(cfg());
        let mut resp = Responder::new(cfg());
        req.post(RequestWqe {
            id: 1,
            op: RdmaOp::Read { len: 1000 },
            remote_addr: 0,
            recv_wqe_sn: None,
            read_wqe_sn: None,
        });
        req.post(write_wqe(2, 1000, 0x100));
        let read_rq = req.next_new_packet().unwrap();
        let write_p = req.next_new_packet().unwrap();

        // Write's packet is processed (and acked) before the read resp.
        let acts = resp.on_packet(read_rq);
        let rp = acts
            .iter()
            .find_map(|a| match a {
                ResponderAction::ReadResponse(rp) => Some(*rp),
                _ => None,
            })
            .unwrap();
        for a in resp.on_packet(write_p) {
            if let ResponderAction::Ack { cum, msn } = a {
                req.on_ack(cum, None, false, msn);
            }
        }
        assert!(
            req.poll_cq().is_empty(),
            "write CQE must wait for the read (ordered QP)"
        );
        req.on_read_response(rp);
        let cqes = req.poll_cq();
        assert_eq!(
            cqes.iter().map(|c| c.wqe_id).collect::<Vec<_>>(),
            vec![1, 2],
            "posting order"
        );
    }

    #[test]
    fn send_inval_fenced_behind_writes() {
        // Appendix B.5: Send-with-Invalidate must not bypass earlier
        // Writes to the region it invalidates.
        let mut req = Requester::new(cfg());
        let mut resp = Responder::new(cfg());
        resp.post_receive(50, 0x8000);
        req.post(write_wqe(1, 1000, 0x3000));
        req.post(RequestWqe {
            id: 2,
            op: RdmaOp::SendInval { len: 100, rkey: 9 },
            remote_addr: 0,
            recv_wqe_sn: None,
            read_wqe_sn: None,
        });
        let w = req.next_new_packet().unwrap();
        assert!(
            req.next_new_packet().is_none(),
            "fence holds SendInval until the Write completes"
        );
        for a in resp.on_packet(w) {
            if let ResponderAction::Ack { cum, msn } = a {
                req.on_ack(cum, None, false, msn);
            }
        }
        assert!(req.next_new_packet().is_some(), "fence lifted");
    }

    #[test]
    fn bdp_fc_blocks_the_window() {
        let small = QpConfig {
            mtu: 1000,
            bdp_cap: 4,
        };
        let mut req = Requester::new(small);
        req.post(write_wqe(1, 10_000, 0));
        let mut got = 0;
        while req.next_new_packet().is_some() {
            got += 1;
        }
        assert_eq!(got, 4, "BDP-FC caps in-flight packets (§3.2)");
        // An ack opens the window again.
        req.on_ack(2, None, false, 0);
        assert!(req.next_new_packet().is_some());
    }

    #[test]
    fn retransmission_regenerates_identical_packet() {
        let mut req = Requester::new(cfg());
        req.post(write_wqe(1, 5000, 0x100));
        let mut originals = Vec::new();
        while let Some(p) = req.next_new_packet() {
            originals.push(p);
        }
        for p in &originals {
            assert_eq!(req.packet_for_psn(p.psn), *p);
        }
    }

    #[test]
    fn overwrite_semantics_last_dma_wins() {
        // §5.3.4: OOO placement can overwrite newer data with an old
        // retransmission; applications use fences. We verify the model
        // records DMA order so the test suite can observe the hazard.
        let mut resp = Responder::new(cfg());
        let mut req = Requester::new(cfg());
        req.post(write_wqe(1, 1000, 0x100)); // msg 0
        req.post(write_wqe(2, 1000, 0x100)); // msg 1 overwrites
        let p0 = req.next_new_packet().unwrap();
        let p1 = req.next_new_packet().unwrap();
        resp.on_packet(p0);
        resp.on_packet(p1);
        assert_eq!(resp.memory.last_writer(0x100), Some(1));
        // A retransmitted stale packet placed after message 1 would win
        // the race — exactly the hazard §5.3.4 describes:
        resp.on_packet(p0);
        // (duplicate is not re-placed: receive_data flags it)
        assert_eq!(resp.memory.last_writer(0x100), Some(1));
    }

    #[test]
    #[should_panic(expected = "no Receive WQE")]
    fn send_without_receive_wqe_panics_like_rnr() {
        let mut req = Requester::new(cfg());
        let mut resp = Responder::new(cfg());
        req.post(RequestWqe {
            id: 1,
            op: RdmaOp::Send { len: 100 },
            remote_addr: 0,
            recv_wqe_sn: None,
            read_wqe_sn: None,
        });
        let p = req.next_new_packet().unwrap();
        resp.on_packet(p); // credits module handles this gracefully
    }
}
