//! BDP-sized ring bitmaps in 32-bit chunks.
//!
//! §6.2 of the paper: "Each bitmap was implemented as a ring buffer …
//! with the head corresponding to the expected sequence number at the
//! receiver (or the cumulative acknowledgement number at the sender). The
//! key bitmap manipulations required by IRN can be reduced to the
//! following three categories of known operations: (i) finding first
//! zero … (ii) popcount … (iii) bit shifts … We optimized the first two
//! operations by dividing the bitmap variables into chunks of 32 bits and
//! operating on these chunks in parallel."
//!
//! [`RingBitmap`] follows that design literally: a fixed-capacity bit
//! ring over `u32` chunks, head-relative indexing, and the three
//! operation families as chunk-parallel algorithms. BDP-FC guarantees
//! the window of interesting sequence numbers never exceeds the BDP cap
//! (§3.2), which is what lets the bitmap be small (128 bits for the
//! paper's default 40 Gbps network).

/// A fixed-capacity ring of bits indexed relative to a moving head.
///
/// Bit `i` refers to sequence number `head + i`; advancing the head by
/// `n` (when the cumulative sequence moves) discards the first `n` bits
/// and appends `n` zero bits at the tail.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RingBitmap {
    chunks: Vec<u32>,
    /// Physical bit index of the logical head.
    head: usize,
    /// Capacity in bits (multiple of 32).
    cap: usize,
}

impl RingBitmap {
    /// A bitmap of at least `bits` capacity (rounded up to 32).
    ///
    /// The paper sizes these to the BDP cap: 128 bits covers the default
    /// 40 Gbps / 24 µs network (110 packets); 100 Gbps needs ~256–320.
    pub fn new(bits: usize) -> RingBitmap {
        assert!(bits > 0, "bitmap capacity must be positive");
        let cap = bits.div_ceil(32) * 32;
        RingBitmap {
            chunks: vec![0; cap / 32],
            head: 0,
            cap,
        }
    }

    /// Capacity in bits.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    fn phys(&self, offset: usize) -> (usize, u32) {
        debug_assert!(offset < self.cap, "offset {offset} beyond cap {}", self.cap);
        let bit = (self.head + offset) % self.cap;
        (bit / 32, 1u32 << (bit % 32))
    }

    /// Set the bit at head-relative `offset`. Returns the previous value.
    pub fn set(&mut self, offset: usize) -> bool {
        let (c, m) = self.phys(offset);
        let was = self.chunks[c] & m != 0;
        self.chunks[c] |= m;
        was
    }

    /// Clear the bit at head-relative `offset`.
    pub fn clear(&mut self, offset: usize) {
        let (c, m) = self.phys(offset);
        self.chunks[c] &= !m;
    }

    /// Read the bit at head-relative `offset`.
    pub fn get(&self, offset: usize) -> bool {
        let (c, m) = self.phys(offset);
        self.chunks[c] & m != 0
    }

    /// Find the head-relative offset of the first zero bit — the next
    /// expected sequence number at a receiver, or the next retransmission
    /// candidate at a sender. Returns `None` if every bit is set.
    ///
    /// Chunk-parallel: scans whole `u32`s, then uses `trailing_ones` on
    /// the first non-full chunk (the "finding first zero" operation of
    /// §6.2).
    pub fn find_first_zero(&self) -> Option<usize> {
        let head_chunk = self.head / 32;
        let head_bit = self.head % 32;
        let n = self.chunks.len();

        // First (possibly partial) chunk: examine bits ≥ head_bit.
        let first = self.chunks[head_chunk] >> head_bit;
        let first_span = 32 - head_bit;
        let to = first.trailing_ones() as usize;
        if to < first_span {
            return Some(to);
        }

        // Whole chunks after the head chunk, wrapping around.
        let mut offset = first_span;
        for i in 1..n {
            let c = self.chunks[(head_chunk + i) % n];
            let to = c.trailing_ones() as usize;
            if to < 32 {
                let found = offset + to;
                // The tail of the ring overlaps the head chunk's low bits;
                // offsets ≥ cap do not exist.
                return (found < self.cap).then_some(found);
            }
            offset += 32;
        }

        // Wrapped back into the low bits of the head chunk.
        if head_bit > 0 {
            let tail = self.chunks[head_chunk] & ((1u32 << head_bit) - 1);
            let to = tail.trailing_ones() as usize;
            if to < head_bit {
                let found = offset + to;
                return (found < self.cap).then_some(found);
            }
        }
        None
    }

    /// Number of set bits in the window (the popcount of §6.2, used to
    /// compute MSN increments and Receive-WQE expirations).
    pub fn popcount(&self) -> usize {
        self.chunks.iter().map(|c| c.count_ones() as usize).sum()
    }

    /// Length of the run of set bits starting at the head (how far the
    /// cumulative sequence may advance).
    pub fn leading_ones(&self) -> usize {
        self.find_first_zero().unwrap_or(self.cap)
    }

    /// Advance the head by `n` bits, clearing the bits passed over (the
    /// "bit shift" of §6.2). The freed positions become the new tail.
    pub fn advance(&mut self, n: usize) {
        assert!(n <= self.cap, "advance {n} beyond capacity {}", self.cap);
        for i in 0..n {
            // Clear as we pass: freed tail slots must read as zero.
            let (c, m) = self.phys(i);
            self.chunks[c] &= !m;
        }
        self.head = (self.head + n) % self.cap;
    }

    /// Set-and-slide helper used by receivers: set `offset`, then return
    /// how many contiguous bits from the head are now set (callers
    /// advance the cumulative sequence by that amount and then call
    /// [`RingBitmap::advance`]).
    pub fn set_and_count_ready(&mut self, offset: usize) -> usize {
        self.set(offset);
        self.leading_ones()
    }

    /// True if no bit is set.
    pub fn is_empty(&self) -> bool {
        self.chunks.iter().all(|&c| c == 0)
    }

    /// Iterate over the offsets of all set bits (ascending). For tests
    /// and debugging; O(capacity).
    pub fn iter_ones(&self) -> impl Iterator<Item = usize> + '_ {
        (0..self.cap).filter(move |&i| self.get(i))
    }
}

/// The responder's 2-bitmap (§5.3.3): per sequence slot it tracks both
/// arrival and whether that packet was a message's *last* packet whose
/// completion actions (MSN update, possibly Receive-WQE expiry + CQE)
/// are pending until all predecessors arrive.
#[derive(Debug, Clone)]
pub struct TwoBitmap {
    /// Packet arrived.
    arrived: RingBitmap,
    /// Packet is the last of a message (triggers MSN update / completion
    /// when the window slides past it).
    is_last: RingBitmap,
}

impl TwoBitmap {
    /// Capacity per plane in bits; sized to the BDP cap like all IRN
    /// bitmaps.
    pub fn new(bits: usize) -> TwoBitmap {
        TwoBitmap {
            arrived: RingBitmap::new(bits),
            is_last: RingBitmap::new(bits),
        }
    }

    /// Record the arrival of the packet at `offset`; `last` marks it as a
    /// message boundary. Idempotent (retransmitted duplicates are fine).
    pub fn record(&mut self, offset: usize, last: bool) {
        self.arrived.set(offset);
        if last {
            self.is_last.set(offset);
        }
    }

    /// Has the packet at `offset` arrived?
    pub fn has(&self, offset: usize) -> bool {
        self.arrived.get(offset)
    }

    /// Slide the window past every contiguously-arrived packet.
    ///
    /// Returns `(advanced, completions)`: how many slots the head moved,
    /// and how many of those were message boundaries — i.e. the MSN
    /// increment (§5.3.3's "popcount to compute the increment in MSN").
    pub fn slide(&mut self) -> (usize, usize) {
        let n = self.arrived.leading_ones();
        if n == 0 {
            return (0, 0);
        }
        let mut completions = 0;
        for i in 0..n {
            if self.is_last.get(i) {
                completions += 1;
            }
        }
        self.arrived.advance(n);
        self.is_last.advance(n);
        (n, completions)
    }

    /// Number of out-of-order packets currently buffered past the head.
    pub fn out_of_order_count(&self) -> usize {
        self.arrived.popcount()
    }

    /// Capacity in bits of each plane.
    pub fn capacity(&self) -> usize {
        self.arrived.capacity()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_is_empty() {
        let b = RingBitmap::new(128);
        assert_eq!(b.capacity(), 128);
        assert!(b.is_empty());
        assert_eq!(b.find_first_zero(), Some(0));
        assert_eq!(b.popcount(), 0);
    }

    #[test]
    fn capacity_rounds_up_to_chunks() {
        assert_eq!(RingBitmap::new(1).capacity(), 32);
        assert_eq!(RingBitmap::new(33).capacity(), 64);
        assert_eq!(RingBitmap::new(110).capacity(), 128); // paper's BDP cap
    }

    #[test]
    fn set_get_clear() {
        let mut b = RingBitmap::new(64);
        assert!(!b.set(5));
        assert!(b.get(5));
        assert!(b.set(5), "second set reports previous value");
        b.clear(5);
        assert!(!b.get(5));
    }

    #[test]
    fn find_first_zero_skips_leading_ones() {
        let mut b = RingBitmap::new(128);
        for i in 0..40 {
            b.set(i);
        }
        assert_eq!(b.find_first_zero(), Some(40));
        b.set(41); // hole at 40
        assert_eq!(b.find_first_zero(), Some(40));
        assert_eq!(b.leading_ones(), 40);
    }

    #[test]
    fn find_first_zero_none_when_full() {
        let mut b = RingBitmap::new(32);
        for i in 0..32 {
            b.set(i);
        }
        assert_eq!(b.find_first_zero(), None);
        assert_eq!(b.leading_ones(), 32);
    }

    #[test]
    fn advance_clears_and_wraps() {
        let mut b = RingBitmap::new(64);
        for i in 0..10 {
            b.set(i);
        }
        b.set(12);
        b.advance(10);
        // Former bit 12 is now at offset 2; bits 0..10 discarded.
        assert_eq!(b.find_first_zero(), Some(0));
        assert!(b.get(2));
        assert_eq!(b.popcount(), 1);
        // Pass the stray bit, then churn set/advance cycles through the
        // wrap point: freed tail slots must always read zero.
        b.advance(3);
        assert!(b.is_empty());
        for _ in 0..80 {
            b.set(0);
            b.advance(1);
        }
        assert!(b.is_empty(), "freed slots must be cleared after wrap");
    }

    #[test]
    fn wraparound_find_first_zero() {
        let mut b = RingBitmap::new(32);
        b.advance(30); // head at physical bit 30
        for i in 0..20 {
            b.set(i); // crosses the physical wrap point
        }
        assert_eq!(b.find_first_zero(), Some(20));
        b.advance(20);
        assert!(b.is_empty());
    }

    #[test]
    fn set_and_count_ready_reports_run() {
        let mut b = RingBitmap::new(64);
        assert_eq!(b.set_and_count_ready(1), 0); // hole at 0
        assert_eq!(b.set_and_count_ready(0), 2); // run of two
    }

    #[test]
    fn iter_ones_matches_gets() {
        let mut b = RingBitmap::new(64);
        for &i in &[3usize, 17, 40, 63] {
            b.set(i);
        }
        let ones: Vec<usize> = b.iter_ones().collect();
        assert_eq!(ones, vec![3, 17, 40, 63]);
    }

    // The bounds check is a debug_assert, so it only fires without
    // optimizations; release builds skip this test.
    #[test]
    #[should_panic]
    #[cfg(debug_assertions)]
    fn offset_beyond_capacity_panics_in_debug() {
        let b = RingBitmap::new(32);
        let _ = b.get(32);
    }

    // ---- TwoBitmap ----

    #[test]
    fn two_bitmap_in_order_messages() {
        let mut t = TwoBitmap::new(128);
        // Message A = packets 0,1 (1 = last); message B = packet 2 (last).
        t.record(0, false);
        assert_eq!(t.slide(), (1, 0));
        t.record(0, true); // old offset 1, now at head
        assert_eq!(t.slide(), (1, 1));
        t.record(0, true);
        assert_eq!(t.slide(), (1, 1));
    }

    #[test]
    fn two_bitmap_out_of_order_holds_completions() {
        let mut t = TwoBitmap::new(128);
        // Packets 1 and 2 arrive first (2 is a message boundary).
        t.record(1, false);
        t.record(2, true);
        assert_eq!(t.slide(), (0, 0), "hole at 0 blocks everything");
        assert_eq!(t.out_of_order_count(), 2);
        // Packet 0 (its own message) fills the hole: everything releases.
        t.record(0, true);
        assert_eq!(t.slide(), (3, 2), "two message boundaries release");
        assert_eq!(t.out_of_order_count(), 0);
    }

    #[test]
    fn two_bitmap_duplicate_arrivals_are_idempotent() {
        let mut t = TwoBitmap::new(128);
        t.record(0, true);
        t.record(0, true);
        assert_eq!(t.slide(), (1, 1));
    }

    mod proptests {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// The ring bitmap must agree with a naive VecDeque<bool>
            /// model under arbitrary interleavings of set/advance.
            #[test]
            fn matches_naive_model(ops in proptest::collection::vec((0usize..128, prop::bool::ANY), 1..200)) {
                let cap = 128;
                let mut ring = RingBitmap::new(cap);
                let mut model = std::collections::VecDeque::from(vec![false; cap]);
                for (off, do_advance) in ops {
                    if do_advance {
                        let n = ring.leading_ones();
                        let model_n = model.iter().take_while(|&&b| b).count();
                        prop_assert_eq!(n, model_n);
                        ring.advance(n);
                        for _ in 0..n { model.pop_front(); model.push_back(false); }
                    } else {
                        ring.set(off);
                        model[off] = true;
                    }
                    // Invariants after every op.
                    let ffz = ring.find_first_zero();
                    let model_ffz = model.iter().position(|&b| !b);
                    prop_assert_eq!(ffz, model_ffz);
                    prop_assert_eq!(ring.popcount(), model.iter().filter(|&&b| b).count());
                }
            }

            /// Popcount never exceeds capacity and advance(leading_ones)
            /// always leaves a zero at the head (or an empty map).
            #[test]
            fn head_invariant(offsets in proptest::collection::vec(0usize..110, 0..110)) {
                let mut b = RingBitmap::new(110);
                for off in offsets {
                    b.set(off);
                    let n = b.leading_ones();
                    b.advance(n);
                    if let Some(z) = b.find_first_zero() {
                        prop_assert_eq!(z, 0, "after sliding, head bit must be zero");
                    }
                }
            }
        }
    }
}
