//! # irn-rdma — RDMA verbs semantics and NIC-side machinery (§5–§6)
//!
//! The paper's §5 ("Implementation Considerations") describes how IRN's
//! transport changes interact with RDMA's operation semantics: Work Queue
//! Elements (WQEs), Completion Queue Elements (CQEs), message sequence
//! numbers (MSNs), and — the crux — supporting *out-of-order packet
//! delivery* at the responder, which current RoCE NICs simply do not do.
//! This crate implements that machinery:
//!
//! * [`bitmap`] — BDP-sized ring bitmaps in 32-bit chunks, with the exact
//!   three operation families the paper synthesizes on an FPGA (§6.2):
//!   find-first-zero, popcount, and head shifts;
//! * [`verbs`] — operations (Write, Write-with-Immediate, Read, Send,
//!   Atomic), WQEs, CQEs;
//! * [`qp`] — requester and responder queue-pair state machines,
//!   including the sPSN/rPSN split (§5.4), read (N)ACKs (§5.2), and the
//!   2-bitmap + premature-CQE mechanics (§5.3.3);
//! * [`srq`] — shared receive queues with dequeue-time sequence-number
//!   allotment (Appendix B.2);
//! * [`credits`] — end-to-end credit handling and RNR-NACK rules
//!   (Appendix B.3–B.4);
//! * [`modules`] — the four packet-processing modules the paper
//!   synthesizes (`receiveData`, `txFree`, `receiveAck`, `timeout`) as
//!   pure functions over a QP context, benchmarked by `irn-bench` as the
//!   Table 2 substitute;
//! * [`state_budget`] — the §6.1 accounting of additional NIC state
//!   (52/104/160 bits per QP, five BDP-sized bitmaps, 3 B per WQE, 10 B
//!   shared), reproduced from configuration.
//!
//! The queue-pair model here is deliberately network-agnostic: packets go
//! in, actions come out. Integration tests (and the `irn-transport`
//! crate) drive it through lossy, reordering channels to exercise every
//! §5.3 corner case.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bitmap;
pub mod credits;
pub mod modules;
pub mod qp;
pub mod srq;
pub mod state_budget;
pub mod verbs;

pub use bitmap::RingBitmap;
pub use qp::{Requester, Responder};
pub use verbs::{Cqe, CqeKind, RdmaOp, ReceiveWqe, RequestWqe};
