//! Differential tests for the distributed executor: the worker-pool
//! backend must be **byte-identical** to the in-process executor at any
//! fleet size — including across worker death, reassignment, and
//! timeout — and every degradation must surface as the documented
//! typed-error/exit(2) path, never as silent partial output.
//!
//! Library-level tests drive [`WorkerPool`] directly over spawned
//! `repro worker` processes; CLI-level tests run the full coordinator
//! binary and diff its bytes. Both keep cells tiny (quick-scale fig1 or
//! `ExperimentConfig::quick`) so the suite fits the debug-profile test
//! budget; the full `repro all --seeds 2` three-worker differential —
//! same invariant at paper batch size — runs in CI's release-profile
//! worker-fanout job.

use std::io::{BufRead, BufReader, Write};
use std::process::{Child, Command, Stdio};
use std::sync::Arc;

use irn_core::ExperimentConfig;
use irn_harness::{
    Cell, Executor, Harness, HarnessError, PoolConfig, ThreadExecutor, WorkerPool, WorkerSpec,
};
use serde::Serialize;

/// The compiled `repro` binary under test.
fn repro_exe() -> String {
    env!("CARGO_BIN_EXE_repro").to_string()
}

/// A spawn spec for one stdio worker, with extra CLI args.
fn spawn_spec(extra: &[&str]) -> WorkerSpec {
    let mut argv = vec![repro_exe(), "worker".to_string()];
    argv.extend(extra.iter().map(|s| s.to_string()));
    WorkerSpec::Spawn { argv }
}

/// A small mixed batch: cheap cells, several distinct scenarios.
fn batch(n: usize) -> Vec<Cell> {
    (0..n)
        .map(|i| {
            Cell::new(
                format!("cell{i}"),
                ExperimentConfig::quick(30 + i)
                    .with_seed(i as u64 + 1)
                    .with_pfc(i % 2 == 0),
            )
        })
        .collect()
}

/// Serialize outcomes for bit-exact comparison (JSON tree equality is
/// the same equality the artifact envelopes are built from).
fn result_trees(outcomes: &[irn_harness::CellOutcome]) -> Vec<serde::json::Value> {
    outcomes.iter().map(|o| o.result.to_json()).collect()
}

#[test]
fn worker_pool_matches_in_process_at_1_2_4_workers() {
    let cells = batch(6);
    let reference = ThreadExecutor::new(2).run_cells(&cells, None).unwrap();
    for fleet in [1, 2, 4] {
        let pool = WorkerPool::new(PoolConfig::new(
            (0..fleet).map(|_| spawn_spec(&[])).collect(),
        ));
        let got = pool.run_cells(&cells, None).unwrap();
        assert_eq!(
            result_trees(&got),
            result_trees(&reference),
            "fleet of {fleet} diverged from in-process results"
        );
        let stats = pool.worker_stats();
        assert_eq!(stats.len(), fleet);
        assert_eq!(stats.iter().map(|s| s.cells).sum::<usize>(), cells.len());
        assert!(stats.iter().all(|s| s.alive && s.failures == 0));
    }
}

#[test]
fn killed_worker_mid_batch_reassigns_and_stays_byte_identical() {
    let cells = batch(5);
    let reference = ThreadExecutor::new(2).run_cells(&cells, None).unwrap();
    // One healthy worker plus one that answers a single cell, then
    // consumes the next work frame and dies without responding — the
    // coordinator must notice the EOF and reassign that cell.
    let pool = WorkerPool::new(PoolConfig::new(vec![
        spawn_spec(&[]),
        spawn_spec(&["--exit-after", "1"]),
    ]));
    let got = pool.run_cells(&cells, None).unwrap();
    assert_eq!(
        result_trees(&got),
        result_trees(&reference),
        "reassignment after worker death changed result bytes"
    );
    let stats = pool.worker_stats();
    let dead: Vec<_> = stats.iter().filter(|s| !s.alive).collect();
    assert_eq!(dead.len(), 1, "exactly the faulty worker drops: {stats:?}");
    assert_eq!(dead[0].failures, 1);
    assert!(dead[0].last_error.is_some());
    // The survivor picked up the slack: all cells accounted for.
    assert_eq!(stats.iter().map(|s| s.cells).sum::<usize>(), cells.len());
}

/// Closed-loop cells over a 3-worker fleet with one rigged death:
/// driver-spawned flows are generated *inside* each worker's event
/// loop, so this pins that reactive workloads ship the same bytes as
/// the in-process executor — app metrics included — even across
/// reassignment after a worker dies.
#[test]
fn closed_loop_fleet_with_rigged_death_is_byte_identical() {
    use irn_core::sim::Duration;
    use irn_core::{TopologySpec, TrafficModel};
    let mk = |traffic: TrafficModel, seed: u64| {
        ExperimentConfig {
            topology: TopologySpec::SingleSwitch(8),
            traffic,
            ..ExperimentConfig::paper_default(1)
        }
        .with_seed(seed)
    };
    let cells: Vec<Cell> = vec![
        Cell::new(
            "rpc",
            mk(
                TrafficModel::RpcClosedLoop {
                    clients: 3,
                    ops_per_client: 5,
                    window: 2,
                    request_bytes: 15_000,
                    response_bytes: 800,
                    think: Duration::micros(30),
                    fanout: 2,
                },
                11,
            ),
        ),
        Cell::new(
            "allreduce",
            mk(
                TrafficModel::Allreduce {
                    algorithm: irn_core::AllreduceAlgo::Ring,
                    participants: 6,
                    bytes: 150_000,
                    iterations: 2,
                },
                12,
            ),
        ),
        Cell::new(
            "replicate",
            mk(
                TrafficModel::LeaderReplicate {
                    clients: 2,
                    followers: 3,
                    quorum: 2,
                    ops_per_client: 4,
                    request_bytes: 9_000,
                    ack_bytes: 64,
                    think: Duration::micros(20),
                },
                13,
            ),
        ),
        // One open-loop cell mixed in: reassignment order must not
        // depend on workload class.
        Cell::new("poisson", ExperimentConfig::quick(30).with_seed(14)),
    ];
    let reference = ThreadExecutor::new(2).run_cells(&cells, None).unwrap();
    for (_, wall) in reference.iter().map(|o| (&o.result, o.wall)) {
        assert!(wall.as_nanos() > 0);
    }
    let pool = WorkerPool::new(PoolConfig::new(vec![
        spawn_spec(&[]),
        spawn_spec(&[]),
        spawn_spec(&["--exit-after", "0"]),
    ]));
    let got = pool.run_cells(&cells, None).unwrap();
    assert_eq!(
        result_trees(&got),
        result_trees(&reference),
        "closed-loop fleet diverged from in-process results"
    );
    // The app-metrics block crossed the wire for the closed-loop cells.
    for (o, label) in got.iter().zip(["rpc", "allreduce", "replicate"]) {
        assert!(
            o.result.app.is_some(),
            "{label} cell lost its app metrics over the wire"
        );
    }
    let stats = pool.worker_stats();
    assert_eq!(
        stats.iter().filter(|s| !s.alive).count(),
        1,
        "the rigged worker died: {stats:?}"
    );
    assert_eq!(stats.iter().map(|s| s.cells).sum::<usize>(), cells.len());
}

#[test]
fn fleet_trace_with_rigged_death_matches_in_process_bytes() {
    // The load-bearing trace invariant at fleet scope: a 3-worker pool
    // with one worker rigged to die on its very first cell must still
    // reassemble per-cell trace chunks into bytes identical to the
    // in-process executor — reassignment may not duplicate, drop, or
    // reorder a single line. (`--exit-after 0` rather than 1: every
    // worker is guaranteed a first cell, but with fewer cells than can
    // drain before the rigged worker asks again, a *second* frame may
    // never arrive and the death this test depends on would be racy.)
    let cells = batch(5);
    let spec = irn_telemetry::TraceSpec::default();
    let reference = ThreadExecutor::new(2)
        .run_cells(&cells, Some(&spec))
        .unwrap();
    let pool = WorkerPool::new(PoolConfig::new(vec![
        spawn_spec(&[]),
        spawn_spec(&[]),
        spawn_spec(&["--exit-after", "0"]),
    ]));
    let got = pool.run_cells(&cells, Some(&spec)).unwrap();
    assert_eq!(
        result_trees(&got),
        result_trees(&reference),
        "traced fleet diverged on results"
    );
    let lines = |outcomes: &[irn_harness::CellOutcome]| -> Vec<String> {
        outcomes
            .iter()
            .flat_map(|o| o.trace.as_ref().expect("chunk per cell").lines.clone())
            .collect()
    };
    assert_eq!(
        lines(&got),
        lines(&reference),
        "fleet trace bytes diverged from in-process run"
    );
    let stats = pool.worker_stats();
    assert_eq!(
        stats.iter().filter(|s| !s.alive).count(),
        1,
        "the rigged worker died: {stats:?}"
    );
    assert_eq!(stats.iter().map(|s| s.cells).sum::<usize>(), cells.len());
}

#[test]
fn hung_worker_times_out_and_batch_completes() {
    // A listener that accepts but never answers stands in for a hung
    // worker; the per-cell timeout must forfeit its cell to the healthy
    // one instead of stalling the batch.
    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    let hold = std::thread::spawn(move || {
        let conns: Vec<_> = listener.incoming().take(1).collect();
        std::thread::sleep(std::time::Duration::from_secs(20));
        drop(conns);
    });

    let cells = batch(3);
    let reference = ThreadExecutor::new(1).run_cells(&cells, None).unwrap();
    let mut cfg = PoolConfig::new(vec![spawn_spec(&[]), WorkerSpec::Connect { addr }]);
    cfg.cell_timeout = std::time::Duration::from_secs(2);
    let pool = WorkerPool::new(cfg);
    let got = pool.run_cells(&cells, None).unwrap();
    assert_eq!(result_trees(&got), result_trees(&reference));
    let stats = pool.worker_stats();
    let hung = stats
        .iter()
        .find(|s| !s.alive)
        .expect("hung worker dropped");
    assert!(
        hung.last_error
            .as_deref()
            .unwrap_or("")
            .contains("timed out"),
        "{stats:?}"
    );
    drop(pool); // closes the held connection so the holder thread can end
    hold.join().unwrap();
}

#[test]
fn persistently_failing_cell_exhausts_attempts_with_typed_error() {
    // An in-test "worker" that answers every work frame with an error
    // frame: the connection stays healthy, so the pool retries the cell
    // until max_attempts, then fails the batch with CellFailed.
    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    let server = std::thread::spawn(move || {
        let (stream, _) = listener.accept().unwrap();
        let reader = BufReader::new(stream.try_clone().unwrap());
        let mut out = stream;
        for line in reader.lines() {
            let Ok(line) = line else { break };
            let id = serde::json::from_str(&line)
                .ok()
                .and_then(|v| v.get("id").and_then(serde::json::Value::as_u64));
            let reply = format!(
                "{{\"frame\":\"error-v1\",\"id\":{},\"error\":\"synthetic refusal\"}}\n",
                id.map_or("null".to_string(), |i| i.to_string())
            );
            if out.write_all(reply.as_bytes()).is_err() {
                break;
            }
        }
    });

    let mut cfg = PoolConfig::new(vec![WorkerSpec::Connect { addr }]);
    cfg.max_attempts = 2;
    let pool = WorkerPool::new(cfg);
    let err = pool.run_cells(&batch(1), None).unwrap_err();
    match &err {
        HarnessError::CellFailed {
            index,
            attempts,
            detail,
            completed,
            total,
            ..
        } => {
            assert_eq!((*index, *attempts), (0, 2));
            assert!(detail.contains("synthetic refusal"), "{err}");
            assert_eq!((*completed, *total), (0, 1));
        }
        other => panic!("wrong error: {other}"),
    }
    assert_eq!(err.partial_progress(), Some((0, 1)));
    drop(pool);
    server.join().unwrap();
}

#[test]
fn pool_plugs_into_harness_and_replicate_layers() {
    // The whole orchestration stack above the seam — Harness, batches —
    // runs unchanged on the distributed backend.
    let pool = Arc::new(WorkerPool::new(PoolConfig::new(vec![
        spawn_spec(&[]),
        spawn_spec(&[]),
    ])));
    let distributed = Harness::with_executor(pool);
    let cells = batch(4);
    let a = distributed.run(&cells);
    let b = Harness::serial().run(&cells);
    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.to_json(), y.to_json());
    }
}

// ---------------------------------------------------------------------
// CLI-level differentials: the full coordinator binary, diffed by byte
// ---------------------------------------------------------------------

struct CliRun {
    stdout: Vec<u8>,
    json: Vec<u8>,
    status: std::process::ExitStatus,
}

/// Run `repro fig1 --seeds 2 --json <tmp>` with extra args; capture
/// stdout bytes and the emitted envelope bytes.
fn run_fig1(tag: &str, extra: &[&str]) -> CliRun {
    let dir = std::env::temp_dir().join(format!("irn-worker-test-{tag}-{}", std::process::id()));
    let out = Command::new(repro_exe())
        .args(["fig1", "--seeds", "2", "--json"])
        .arg(&dir)
        .args(extra)
        .output()
        .expect("repro runs");
    let json = std::fs::read(dir.join("fig1.json")).unwrap_or_default();
    let _ = std::fs::remove_dir_all(&dir);
    CliRun {
        stdout: out.stdout,
        json,
        status: out.status,
    }
}

#[test]
fn cli_worker_mode_is_byte_identical_at_1_2_4_workers() {
    let reference = run_fig1("ref", &["--jobs", "2"]);
    assert!(reference.status.success());
    assert!(!reference.stdout.is_empty() && !reference.json.is_empty());
    for fleet in ["1", "2", "4"] {
        let got = run_fig1(&format!("w{fleet}"), &["--workers", fleet]);
        assert!(got.status.success(), "fleet of {fleet} failed");
        assert_eq!(
            got.stdout, reference.stdout,
            "stdout diverged at --workers {fleet}"
        );
        assert_eq!(
            got.json, reference.json,
            "JSON envelope diverged at --workers {fleet}"
        );
    }
}

#[test]
fn cli_coordinator_survives_worker_killed_mid_batch() {
    // A TCP worker rigged to die on its first cell, fronted by one
    // healthy spawned worker: the coordinator must finish the batch via
    // reassignment with byte-identical output.
    let mut victim = Command::new(repro_exe())
        .args(["worker", "--listen", "127.0.0.1:0", "--exit-after", "0"])
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("victim worker starts");
    let addr = read_listen_addr(&mut victim);

    let reference = run_fig1("kref", &["--jobs", "1"]);
    let got = run_fig1("kill", &["--workers", "1", "--connect", &addr]);
    let _ = victim.wait();
    assert!(
        got.status.success(),
        "coordinator failed after worker death"
    );
    assert_eq!(
        got.stdout, reference.stdout,
        "stdout changed after reassignment"
    );
    assert_eq!(
        got.json, reference.json,
        "envelope changed after reassignment"
    );
}

#[test]
fn cli_quorum_loss_exits_2_with_partial_report() {
    // Port 1 refuses connections: the whole (single-worker) fleet is
    // gone before the first cell, which must be the typed exit(2) path.
    let out = Command::new(repro_exe())
        .args(["fig1", "--seeds", "2", "--connect", "127.0.0.1:1"])
        .output()
        .expect("repro runs");
    assert_eq!(out.status.code(), Some(2));
    assert!(out.stdout.is_empty(), "no partial report rows on stdout");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("quorum"), "{err}");
    assert!(err.contains("0/4 cells"), "partial progress missing: {err}");
}

#[test]
fn cli_memory_json_gauge_validates_and_is_jobs_invariant() {
    // The memory-v1 gauge is determinism-class deterministic: the same
    // batch at --jobs 1 and --jobs 2 must write byte-identical files,
    // and the file must pass the diff-memory validator (self-diff shows
    // zero drift, exit 0, no warning annotations).
    let dir = std::env::temp_dir().join(format!("irn-memgauge-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let gauge = |jobs: &str| -> Vec<u8> {
        let path = dir.join(format!("mem-j{jobs}.json"));
        let out = Command::new(repro_exe())
            .args(["fig1", "--seeds", "2", "--jobs", jobs, "--memory-json"])
            .arg(&path)
            .output()
            .expect("repro runs");
        assert!(out.status.success(), "--jobs {jobs} run failed");
        std::fs::read(&path).expect("gauge file written")
    };
    let j1 = gauge("1");
    let j2 = gauge("2");
    assert_eq!(j1, j2, "memory gauge bytes depend on --jobs");

    let path = dir.join("mem-j1.json");
    let out = Command::new(repro_exe())
        .args(["diff-memory"])
        .arg(&path)
        .arg(&path)
        .output()
        .expect("repro runs");
    assert_eq!(out.status.code(), Some(0), "self-diff must validate");
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("fig1"), "gauge row missing: {text}");
    assert!(
        !text.contains("::warning"),
        "self-diff produced drift warnings: {text}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn cli_memory_json_malformed_path_exits_2() {
    // A directory where a file is needed must die before the batch
    // runs, on the input-error path (exit 2, nothing on stdout).
    let out = Command::new(repro_exe())
        .args(["fig1", "--seeds", "2", "--memory-json"])
        .arg(std::env::temp_dir())
        .output()
        .expect("repro runs");
    assert_eq!(out.status.code(), Some(2));
    assert!(out.stdout.is_empty(), "no report rows before the failure");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("--memory-json"), "{err}");
}

#[test]
fn cli_diff_memory_rejects_non_gauge_files() {
    let path = std::env::temp_dir().join(format!("irn-notgauge-{}.json", std::process::id()));
    std::fs::write(&path, "{\"schema\":\"bench-trajectory-v1\"}").unwrap();
    let out = Command::new(repro_exe())
        .args(["diff-memory"])
        .arg(&path)
        .arg(&path)
        .output()
        .expect("repro runs");
    let _ = std::fs::remove_file(&path);
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("memory-v1"), "{err}");
}

/// Read the `listening HOST:PORT` line a `--listen 127.0.0.1:0` worker
/// prints once bound.
fn read_listen_addr(worker: &mut Child) -> String {
    let stdout = worker.stdout.take().expect("piped stdout");
    let mut line = String::new();
    BufReader::new(stdout).read_line(&mut line).unwrap();
    let addr = line
        .strip_prefix("listening ")
        .unwrap_or_else(|| panic!("unexpected worker banner: {line:?}"))
        .trim()
        .to_string();
    assert!(addr.contains(':'), "{addr}");
    addr
}
