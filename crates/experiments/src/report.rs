//! Report structures: rows of named values, printed like the paper's
//! tables and consumable by tests.

use irn_harness::Stats;
use serde::Serialize;
use std::fmt::Write as _;

/// One labelled result row (one bar of a figure / one line of a table).
#[derive(Debug, Clone, Serialize)]
pub struct Row {
    /// Configuration label, e.g. `"IRN"` or `"RoCE + PFC, Timely"`.
    pub label: String,
    /// `(metric name, value)` pairs in display order.
    pub values: Vec<(String, f64)>,
}

impl Row {
    /// Build a row.
    pub fn new(label: impl Into<String>) -> Row {
        Row {
            label: label.into(),
            values: Vec::new(),
        }
    }

    /// Append a metric.
    pub fn push(mut self, name: &str, value: f64) -> Row {
        self.values.push((name.to_string(), value));
        self
    }

    /// Append a replicated metric: the mean under `name`, and — when
    /// the aggregate spans more than one seed — the 95% confidence
    /// half-width under `<name>_ci95`. Single-seed runs get no ci95
    /// column, so their rows keep the pre-replication shape.
    pub fn push_stats(mut self, name: &str, stats: &Stats) -> Row {
        self = self.push(name, stats.mean);
        if stats.n > 1 {
            self = self.push(&format!("{name}_ci95"), stats.ci95);
        }
        self
    }

    /// Look up a metric by name (panics if absent — report bugs are
    /// test failures).
    pub fn get(&self, name: &str) -> f64 {
        self.values
            .iter()
            .find(|(n, _)| n == name)
            .unwrap_or_else(|| panic!("row '{}' has no metric '{name}'", self.label))
            .1
    }
}

/// A full experiment report (one figure or table).
#[derive(Debug, Clone, Serialize)]
pub struct Report {
    /// Artifact id, e.g. `"Figure 1"`.
    pub id: String,
    /// Human title.
    pub title: String,
    /// What the paper found (for side-by-side reading).
    pub paper_expectation: String,
    /// Result rows.
    pub rows: Vec<Row>,
}

impl Report {
    /// Build an empty report.
    pub fn new(id: &str, title: &str, paper_expectation: &str) -> Report {
        Report {
            id: id.to_string(),
            title: title.to_string(),
            paper_expectation: paper_expectation.to_string(),
            rows: Vec::new(),
        }
    }

    /// Append a row.
    pub fn add(&mut self, row: Row) {
        self.rows.push(row);
    }

    /// Row lookup by label.
    pub fn row(&self, label: &str) -> &Row {
        self.rows
            .iter()
            .find(|r| r.label == label)
            .unwrap_or_else(|| panic!("{} has no row '{label}'", self.id))
    }

    /// Render as an aligned text table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "== {}: {} ==", self.id, self.title);
        let _ = writeln!(out, "   paper: {}", self.paper_expectation);
        if self.rows.is_empty() {
            let _ = writeln!(out, "   (no rows)");
            return out;
        }
        // Column set = union of metric names, first-seen order.
        let mut cols: Vec<String> = Vec::new();
        for row in &self.rows {
            for (name, _) in &row.values {
                if !cols.iter().any(|c| c == name) {
                    cols.push(name.clone());
                }
            }
        }
        let label_w = self
            .rows
            .iter()
            .map(|r| r.label.len())
            .max()
            .unwrap_or(8)
            .max(8);
        let _ = write!(out, "   {:label_w$}", "config");
        for c in &cols {
            let _ = write!(out, "  {c:>14}");
        }
        let _ = writeln!(out);
        for row in &self.rows {
            let _ = write!(out, "   {:label_w$}", row.label);
            for c in &cols {
                match row.values.iter().find(|(n, _)| n == c) {
                    Some((_, v)) => {
                        let _ = write!(out, "  {:>14}", format_value(*v));
                    }
                    None => {
                        let _ = write!(out, "  {:>14}", "-");
                    }
                }
            }
            let _ = writeln!(out);
        }
        out
    }
}

/// Human formatting: small numbers get decimals, large get separators.
fn format_value(v: f64) -> String {
    if !v.is_finite() {
        return format!("{v}");
    }
    let a = v.abs();
    if a >= 1000.0 {
        format!("{v:.0}")
    } else if a >= 10.0 {
        format!("{v:.2}")
    } else {
        format!("{v:.4}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn row_roundtrip() {
        let r = Row::new("IRN").push("slowdown", 2.5).push("fct_ms", 0.9);
        assert_eq!(r.get("slowdown"), 2.5);
        assert_eq!(r.get("fct_ms"), 0.9);
    }

    #[test]
    #[should_panic]
    fn missing_metric_panics() {
        Row::new("IRN").push("a", 1.0).get("b");
    }

    #[test]
    fn render_has_all_labels_and_columns() {
        let mut rep = Report::new("Figure 1", "IRN vs RoCE", "IRN wins");
        rep.add(Row::new("IRN").push("slowdown", 2.5));
        rep.add(
            Row::new("RoCE + PFC")
                .push("slowdown", 5.1)
                .push("p99", 42.0),
        );
        let text = rep.render();
        assert!(text.contains("Figure 1"));
        assert!(text.contains("IRN"));
        assert!(text.contains("RoCE + PFC"));
        assert!(text.contains("slowdown"));
        assert!(text.contains("p99"));
        assert!(text.contains("2.5"));
    }

    #[test]
    fn row_lookup_by_label() {
        let mut rep = Report::new("T", "t", "p");
        rep.add(Row::new("a").push("m", 1.0));
        assert_eq!(rep.row("a").get("m"), 1.0);
    }
}
