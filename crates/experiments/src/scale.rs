//! Experiment scale: quick (CI/bench) vs full (paper).

use irn_core::workload::SizeDistribution;
use irn_core::{ExperimentConfig, TopologySpec, TrafficModel};

/// How big to run each experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Scale {
    /// Fat-tree arity (paper default: 6 → 54 hosts).
    pub fat_tree_k: usize,
    /// Flows per Poisson run.
    pub flows: usize,
    /// Repetitions for incast averaging (paper: 100).
    pub incast_reps: usize,
    /// Incast total response bytes (paper: 150 MB).
    pub incast_bytes: u64,
    /// Seed replicates per cell for Poisson-workload artifacts
    /// (fig1–fig8, fig10–fig12, incast-cross, the appendix tables).
    /// Every reported metric is aggregated as mean ± ci95 over this
    /// many seed-shifted runs; `repro --seeds N` overrides it.
    pub seeds: usize,
}

/// The default seed-replicate count for Poisson-workload artifacts.
pub const DEFAULT_SEEDS: usize = 5;

impl Scale {
    /// CI/bench scale: k=4 (16 hosts), hundreds of flows, small incast.
    pub fn quick() -> Scale {
        Scale {
            fat_tree_k: 4,
            flows: 400,
            incast_reps: 3,
            incast_bytes: 15_000_000,
            seeds: DEFAULT_SEEDS,
        }
    }

    /// Paper scale: k=6 (54 hosts), thousands of flows, 150 MB incast.
    pub fn full() -> Scale {
        Scale {
            fat_tree_k: 6,
            flows: 3000,
            incast_reps: 10,
            incast_bytes: 150_000_000,
            seeds: DEFAULT_SEEDS,
        }
    }

    /// This scale with a different seed-replicate count (the
    /// `repro --seeds N` override).
    pub fn with_seeds(mut self, seeds: usize) -> Scale {
        assert!(seeds >= 1, "need at least one seed");
        self.seeds = seeds;
        self
    }

    /// Display name for artifact metadata: `"quick"`/`"full"` when the
    /// scale matches a preset, `"custom"` otherwise. The seed count is
    /// deliberately ignored — it is reported separately in the JSON
    /// envelope's `seeds` field, so `--seeds 3` at quick scale is still
    /// `"quick"`.
    pub fn label(&self) -> &'static str {
        let sized = |preset: Scale| Scale {
            seeds: self.seeds,
            ..preset
        };
        if *self == sized(Scale::quick()) {
            "quick"
        } else if *self == sized(Scale::full()) {
            "full"
        } else {
            "custom"
        }
    }

    /// The §4.1 default-case config at this scale.
    pub fn base(&self) -> ExperimentConfig {
        ExperimentConfig {
            topology: TopologySpec::FatTree(self.fat_tree_k),
            traffic: TrafficModel::Poisson {
                load: 0.7,
                sizes: SizeDistribution::HeavyTailed,
                flow_count: self.flows,
            },
            ..ExperimentConfig::paper_default(self.flows)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn label_ignores_seed_count() {
        assert_eq!(Scale::quick().label(), "quick");
        assert_eq!(Scale::quick().with_seeds(3).label(), "quick");
        assert_eq!(Scale::full().with_seeds(1).label(), "full");
        let mut custom = Scale::quick();
        custom.flows += 1;
        assert_eq!(custom.label(), "custom");
    }

    #[test]
    #[should_panic(expected = "at least one seed")]
    fn zero_seeds_rejected() {
        let _ = Scale::quick().with_seeds(0);
    }
}
