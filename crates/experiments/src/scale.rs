//! Experiment scale: quick (CI/bench) vs full (paper).

use irn_core::workload::SizeDistribution;
use irn_core::{ExperimentConfig, TopologySpec, Workload};

/// How big to run each experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Scale {
    /// Fat-tree arity (paper default: 6 → 54 hosts).
    pub fat_tree_k: usize,
    /// Flows per Poisson run.
    pub flows: usize,
    /// Repetitions for incast averaging (paper: 100).
    pub incast_reps: usize,
    /// Incast total response bytes (paper: 150 MB).
    pub incast_bytes: u64,
}

impl Scale {
    /// CI/bench scale: k=4 (16 hosts), hundreds of flows, small incast.
    pub fn quick() -> Scale {
        Scale {
            fat_tree_k: 4,
            flows: 400,
            incast_reps: 3,
            incast_bytes: 15_000_000,
        }
    }

    /// Paper scale: k=6 (54 hosts), thousands of flows, 150 MB incast.
    pub fn full() -> Scale {
        Scale {
            fat_tree_k: 6,
            flows: 3000,
            incast_reps: 10,
            incast_bytes: 150_000_000,
        }
    }

    /// Display name for artifact metadata: `"quick"`/`"full"` when the
    /// scale matches a preset, `"custom"` otherwise.
    pub fn label(&self) -> &'static str {
        if *self == Scale::quick() {
            "quick"
        } else if *self == Scale::full() {
            "full"
        } else {
            "custom"
        }
    }

    /// The §4.1 default-case config at this scale.
    pub fn base(&self) -> ExperimentConfig {
        ExperimentConfig {
            topology: TopologySpec::FatTree(self.fat_tree_k),
            workload: Workload::Poisson {
                load: 0.7,
                sizes: SizeDistribution::HeavyTailed,
                flow_count: self.flows,
            },
            ..ExperimentConfig::paper_default(self.flows)
        }
    }
}
