//! One runner per figure/table of the paper's evaluation.
//!
//! Every simulation-backed runner expresses its experiment matrix as a
//! [`Plan`]: a batch of [`Cell`]s plus a deferred assembly step that
//! folds the results into a [`Report`]. Poisson-workload artifacts fan
//! every logical cell out over [`Scale::seeds`] seed-shifted replicates
//! (stride [`SEED_STRIDE`], matching Figure 9's incast averaging), so
//! each reported metric row carries `mean` and — when more than one
//! seed ran — a `<metric>_ci95` companion column. Ratio rows (Figure 9,
//! the appendix tables) pair IRN and RoCE runs **seed by seed** before
//! aggregating, so common workload noise differences out of the ratio.
//!
//! Plans from several artifacts can be spliced into one global batch
//! (see [`crate::artifacts::run_batched`]); results come back in
//! submission order, which keeps report assembly — and therefore the
//! rendered output — byte-identical at any job count. Only
//! `table1`/`table2` run inline: they *time* packet-processing paths on
//! the CPU, and sharing cores would skew the measurement.

use irn_core::sim::Duration;
use irn_core::transport::cc::CcKind;
use irn_core::transport::config::TransportKind;
use irn_core::workload::SizeDistribution;
use irn_core::{ExperimentConfig, RunResult, TrafficModel};
use irn_harness::sweep::cc_suffix;
use irn_harness::{Cell, Replicate, ReplicateResult, ReplicateSet, Stats, SweepGrid, Variant};
use irn_rdma::modules::{self, QpContext, ReceiverMode};
use irn_rdma::state_budget::{bitmap_bits_for, irn_state_budget};

use crate::plan::Plan;
use crate::report::{Report, Row};
use crate::scale::Scale;

/// Seed stride between replicates of one cell. Strided (rather than
/// consecutive) seeds keep replicate seed sets disjoint from the small
/// integers used as explicit seeds elsewhere.
pub const SEED_STRIDE: u64 = 101;

/// A named metric extracted from one run.
pub(crate) type Metric = (&'static str, fn(&RunResult) -> f64);

/// The three §4.1 headline metrics (times in milliseconds, as the
/// paper's figures report them).
pub(crate) const FCT_METRICS: [Metric; 3] = [
    ("avg_slowdown", |r| r.summary.avg_slowdown),
    ("avg_fct_ms", |r| r.summary.avg_fct.as_millis_f64()),
    ("p99_fct_ms", |r| r.summary.p99_fct.as_millis_f64()),
];

/// Figure 7 reports average FCT only.
const AVG_FCT_METRIC: [Metric; 1] = [("avg_fct_ms", |r| r.summary.avg_fct.as_millis_f64())];

/// §4.4.3 adds the incast RCT to the headline metrics.
pub(crate) const INCAST_METRICS: [Metric; 4] = [
    ("avg_slowdown", |r| r.summary.avg_slowdown),
    ("avg_fct_ms", |r| r.summary.avg_fct.as_millis_f64()),
    ("p99_fct_ms", |r| r.summary.p99_fct.as_millis_f64()),
    ("incast_rct_ms", |r| r.rct().as_millis_f64()),
];

/// Closed-loop workloads report per-operation latency (the application
/// round trip the driver observed), not per-flow FCT: an op spans a
/// whole request/response (or iteration, or commit) chain, which is the
/// number an RPC or replication user actually sees.
pub(crate) const APP_METRICS: [Metric; 4] = [
    ("ops", |r| r.app.as_ref().map_or(0.0, |a| a.ops() as f64)),
    ("op_mean_ms", |r| {
        r.app
            .as_ref()
            .map_or(0.0, |a| a.mean_latency().as_millis_f64())
    }),
    ("op_p50_ms", |r| {
        r.app
            .as_ref()
            .map_or(0.0, |a| a.percentile_latency(0.50).as_millis_f64())
    }),
    ("op_p99_ms", |r| {
        r.app
            .as_ref()
            .map_or(0.0, |a| a.percentile_latency(0.99).as_millis_f64())
    }),
];

/// Fan each logical cell out over the scale's seed set (the cell's own
/// seed is the base of the strided set).
fn replicate_cells(cells: Vec<Cell>, scale: Scale) -> ReplicateSet {
    ReplicateSet::new(
        cells
            .into_iter()
            .map(|c| {
                let base_seed = c.config().seed;
                Replicate::strided(c, base_seed, scale.seeds, SEED_STRIDE)
            })
            .collect(),
    )
}

/// The common figure shape: one row per logical cell, each metric
/// aggregated over the seed replicates as mean (± ci95 when n > 1).
fn metrics_plan(rep: Report, cells: Vec<Cell>, scale: Scale, metrics: &'static [Metric]) -> Plan {
    let set = replicate_cells(cells, scale);
    let flat = set.cells();
    Plan::new(flat, move |results| {
        let mut rep = rep;
        for rr in set.collect(results) {
            let mut row = Row::new(rr.label.clone());
            for (name, f) in metrics {
                row = row.push_stats(name, &rr.stats(*f));
            }
            rep.add(row);
        }
        rep
    })
}

/// Seed-aligned ratio aggregate: `f(num_i) / f(den_i)` per seed, then
/// [`Stats`] over the per-seed ratios. Pairing by seed differences the
/// common workload realization out of the ratio — exactly the pairing
/// Figure 9 uses for IRN/RoCE.
fn ratio_stats(num: &ReplicateResult, den: &ReplicateResult, f: fn(&RunResult) -> f64) -> Stats {
    let ratios: Vec<f64> = num
        .runs
        .iter()
        .zip(&den.runs)
        .map(|((sa, a), (sb, b))| {
            debug_assert_eq!(sa, sb, "ratio replicates must align by seed");
            f(a) / f(b)
        })
        .collect();
    Stats::from_values(&ratios)
}

/// The `IRN` variant (selective repeat, no PFC).
fn irn() -> Variant {
    Variant::new("IRN", TransportKind::Irn, false)
}

/// The `RoCE (PFC)` variant (go-back-N behind a lossless fabric).
fn roce_pfc() -> Variant {
    Variant::new("RoCE (PFC)", TransportKind::Roce, true)
}

/// Figure 1: IRN (without PFC) vs RoCE (with PFC), no explicit CC.
pub fn fig1(scale: Scale) -> Plan {
    let rep = Report::new(
        "Figure 1",
        "Comparing IRN and RoCE's performance",
        "IRN is 2.8-3.7x better than RoCE across all three metrics",
    );
    let cells = SweepGrid::new(scale.base())
        .variants([irn(), roce_pfc()])
        .build();
    metrics_plan(rep, cells, scale, &FCT_METRICS)
}

/// Figure 2: impact of enabling PFC with IRN.
pub fn fig2(scale: Scale) -> Plan {
    let rep = Report::new(
        "Figure 2",
        "Impact of enabling PFC with IRN",
        "PFC degrades IRN by ~1.5-2x (congestion spreading); IRN does not need PFC",
    );
    let cells = SweepGrid::new(scale.base())
        .variants([Variant::new("IRN + PFC", TransportKind::Irn, true), irn()])
        .build();
    metrics_plan(rep, cells, scale, &FCT_METRICS)
}

/// Figure 3: impact of disabling PFC with RoCE.
pub fn fig3(scale: Scale) -> Plan {
    let rep = Report::new(
        "Figure 3",
        "Impact of disabling PFC with RoCE",
        "disabling PFC degrades RoCE by 1.5-3x (go-back-N retransmission storms)",
    );
    let cells = SweepGrid::new(scale.base())
        .variants([
            roce_pfc(),
            Variant::new("RoCE no PFC", TransportKind::Roce, false),
        ])
        .build();
    metrics_plan(rep, cells, scale, &FCT_METRICS)
}

/// Figure 4: IRN vs RoCE with explicit congestion control.
pub fn fig4(scale: Scale) -> Plan {
    let rep = Report::new(
        "Figure 4",
        "IRN vs RoCE with Timely and DCQCN",
        "IRN remains 1.5-2.2x better than RoCE under both CC schemes",
    );
    let cells = SweepGrid::new(scale.base())
        .variants([irn(), roce_pfc()])
        .ccs([CcKind::Timely, CcKind::Dcqcn])
        .build();
    metrics_plan(rep, cells, scale, &FCT_METRICS)
}

/// Figure 5: IRN with/without PFC under explicit congestion control.
pub fn fig5(scale: Scale) -> Plan {
    let rep = Report::new(
        "Figure 5",
        "Impact of enabling PFC with IRN under Timely/DCQCN",
        "largely unaffected: improvement <1%, worst degradation ~3.4%",
    );
    let cells = SweepGrid::new(scale.base())
        .variants([Variant::new("IRN + PFC", TransportKind::Irn, true), irn()])
        .ccs([CcKind::Timely, CcKind::Dcqcn])
        .build();
    metrics_plan(rep, cells, scale, &FCT_METRICS)
}

/// Figure 6: RoCE with/without PFC under explicit congestion control.
pub fn fig6(scale: Scale) -> Plan {
    let rep = Report::new(
        "Figure 6",
        "Impact of disabling PFC with RoCE under Timely/DCQCN",
        "RoCE still needs PFC: enabling it improves 1.35-3.5x (no-PFC+DCQCN = Resilient RoCE)",
    );
    let cells = SweepGrid::new(scale.base())
        .variants([
            roce_pfc(),
            Variant::new("RoCE no PFC", TransportKind::Roce, false),
        ])
        .ccs([CcKind::Timely, CcKind::Dcqcn])
        .build();
    metrics_plan(rep, cells, scale, &FCT_METRICS)
}

/// Figure 7: factor analysis — IRN vs IRN+go-back-N vs IRN−BDP-FC.
pub fn fig7(scale: Scale) -> Plan {
    let rep = Report::new(
        "Figure 7",
        "Factor analysis of IRN (avg FCT)",
        "go-back-N hurts more than removing BDP-FC; both hurt vs full IRN",
    );
    let cells = SweepGrid::new(scale.base())
        .variants([
            irn(),
            Variant::new("IRN w/ GBN", TransportKind::IrnGoBackN, false),
            Variant::new("IRN w/o BDP-FC", TransportKind::IrnNoBdpFc, false),
        ])
        .ccs([CcKind::None, CcKind::Timely, CcKind::Dcqcn])
        .build();
    metrics_plan(rep, cells, scale, &AVG_FCT_METRIC)
}

/// Figure 8: tail latency CDF (90-99.9%ile) of single-packet messages.
/// Percentiles are computed per seed, then aggregated; seeds whose run
/// produced no single-packet messages are excluded from that row's
/// aggregate (and the row is dropped if no seed produced any).
pub fn fig8(scale: Scale) -> Plan {
    let rep = Report::new(
        "Figure 8",
        "Tail latency of single-packet messages (ms)",
        "IRN (no PFC) has the best tail across all CC schemes (RTO_low recovery)",
    );
    let cells = SweepGrid::new(scale.base())
        .variants([
            roce_pfc(),
            Variant::new("IRN + PFC", TransportKind::Irn, true),
            irn(),
        ])
        .ccs([CcKind::None, CcKind::Timely, CcKind::Dcqcn])
        .build();
    let set = replicate_cells(cells, scale);
    let flat = set.cells();
    Plan::new(flat, move |results| {
        let mut rep = rep;
        for rr in set.collect(results) {
            let mut row = Row::new(rr.label.clone());
            let mut any = false;
            for (name, q) in [("p90_ms", 0.90), ("p99_ms", 0.99), ("p99.9_ms", 0.999)] {
                let values: Vec<f64> = rr
                    .runs
                    .iter()
                    .filter_map(|(_, r)| {
                        let sp = r.metrics.single_packet_messages();
                        (!sp.is_empty()).then(|| sp.percentile_fct(q).as_millis_f64())
                    })
                    .collect();
                if values.is_empty() {
                    continue;
                }
                any = true;
                row = row.push_stats(name, &Stats::from_values(&values));
            }
            if any {
                rep.add(row);
            }
        }
        rep
    })
}

/// Figure 9: incast RCT ratio (IRN without PFC over RoCE with PFC) for
/// varying fan-in M, averaged over [`Scale::incast_reps`] seed-aligned
/// replicate pairs.
pub fn fig9(scale: Scale) -> Plan {
    let base = scale.base();
    let hosts = base.topology.hosts();
    let ms: Vec<usize> = if hosts >= 54 {
        vec![10, 20, 30, 40, 50]
    } else {
        vec![4, 8, 12]
    };
    let rep = Report::new(
        "Figure 9",
        "Incast: RCT ratio IRN/RoCE vs fan-in M",
        "ratio stays within ~2.5% of 1.0 (incast without cross-traffic is PFC's best case)",
    );

    // Pair an IRN replicate with a RoCE replicate per (cc, M); the
    // ReplicateSet merges every per-seed cell into one flat batch.
    let mut labels = Vec::new();
    let mut reps = Vec::new();
    for cc in [CcKind::None, CcKind::Dcqcn, CcKind::Timely] {
        for &m in &ms {
            let wl = TrafficModel::Incast {
                m,
                total_bytes: scale.incast_bytes,
            };
            let fanout = |t, pfc| {
                Replicate::strided(
                    Cell::tpc("incast", &base.clone().with_traffic(wl.clone()), t, pfc, cc),
                    base.seed,
                    scale.incast_reps,
                    SEED_STRIDE,
                )
            };
            labels.push(format!("M={m}{}", cc_suffix(cc)));
            reps.push(fanout(TransportKind::Irn, false));
            reps.push(fanout(TransportKind::Roce, true));
        }
    }
    let set = ReplicateSet::new(reps);
    let flat = set.cells();
    Plan::new(flat, move |results| {
        let mut rep = rep;
        let collected = set.collect(results);
        for (label, pair) in labels.iter().zip(collected.chunks_exact(2)) {
            let stats = ratio_stats(&pair[0], &pair[1], |r| r.rct().as_nanos() as f64);
            rep.add(Row::new(label.clone()).push_stats("rct_ratio_irn_over_roce", &stats));
        }
        rep
    })
}

/// §4.4.3 (text): incast with cross-traffic.
pub fn incast_cross(scale: Scale) -> Plan {
    let base = scale.base();
    let hosts = base.topology.hosts();
    let m = if hosts >= 54 { 30 } else { 8 };
    let rep = Report::new(
        "§4.4.3",
        "Incast (M striped) with 50%-load cross-traffic",
        "IRN RCT 4-30% lower than RoCE; background flows 32-87% better with IRN",
    );
    let mut cells = Vec::new();
    for cc in [CcKind::None, CcKind::Timely, CcKind::Dcqcn] {
        let wl = TrafficModel::incast_with_cross(
            m,
            scale.incast_bytes,
            0.5,
            SizeDistribution::HeavyTailed,
            scale.flows / 2,
        );
        let with_wl = base.clone().with_traffic(wl);
        cells.push(Cell::tpc(
            format!("IRN{}", cc_suffix(cc)),
            &with_wl,
            TransportKind::Irn,
            false,
            cc,
        ));
        cells.push(Cell::tpc(
            format!("RoCE (PFC){}", cc_suffix(cc)),
            &with_wl,
            TransportKind::Roce,
            true,
            cc,
        ));
    }
    metrics_plan(rep, cells, scale, &INCAST_METRICS)
}

/// Figure 10: Resilient RoCE (RoCE + DCQCN, no PFC) vs IRN (no CC).
pub fn fig10(scale: Scale) -> Plan {
    let base = scale.base();
    let rep = Report::new(
        "Figure 10",
        "Resilient RoCE vs IRN",
        "IRN, even without CC, significantly beats Resilient RoCE",
    );
    let cells = vec![
        Cell::tpc(
            "Resilient RoCE",
            &base,
            TransportKind::Roce,
            false,
            CcKind::Dcqcn,
        ),
        Cell::tpc("IRN", &base, TransportKind::Irn, false, CcKind::None),
    ];
    metrics_plan(rep, cells, scale, &FCT_METRICS)
}

/// Figure 11: iWARP (full TCP stack) vs IRN.
pub fn fig11(scale: Scale) -> Plan {
    let base = scale.base();
    let rep = Report::new(
        "Figure 11",
        "iWARP's transport (TCP stack) vs IRN",
        "IRN: ~21% better slowdown (no slow start), comparable FCTs; IRN+AIMD beats iWARP",
    );
    let cells = vec![
        Cell::tpc(
            "iWARP (TCP)",
            &base,
            TransportKind::IwarpTcp,
            false,
            CcKind::None,
        ),
        Cell::tpc("IRN", &base, TransportKind::Irn, false, CcKind::None),
        Cell::tpc("IRN + AIMD", &base, TransportKind::Irn, false, CcKind::Aimd),
    ];
    metrics_plan(rep, cells, scale, &FCT_METRICS)
}

/// Figure 12: IRN with worst-case implementation overheads.
pub fn fig12(scale: Scale) -> Plan {
    let base = scale.base();
    let mut worst = base.clone();
    worst.extra_header = 16;
    worst.retx_fetch_delay = Duration::micros(2);
    let rep = Report::new(
        "Figure 12",
        "IRN worst-case overheads (+16B header/packet, 2us retx fetch)",
        "overheads cost only 4-7%; IRN stays 35-63% better than RoCE+PFC",
    );
    let mut cells = Vec::new();
    for cc in [CcKind::None, CcKind::Timely, CcKind::Dcqcn] {
        cells.push(Cell::tpc(
            format!("RoCE (PFC){}", cc_suffix(cc)),
            &base,
            TransportKind::Roce,
            true,
            cc,
        ));
        cells.push(Cell::tpc(
            format!("IRN{}", cc_suffix(cc)),
            &base,
            TransportKind::Irn,
            false,
            cc,
        ));
        cells.push(Cell::tpc(
            format!("IRN worst-case{}", cc_suffix(cc)),
            &worst,
            TransportKind::Irn,
            false,
            cc,
        ));
    }
    metrics_plan(rep, cells, scale, &FCT_METRICS)
}

// ---------------------------------------------------------------------
// Tables
// ---------------------------------------------------------------------

const APPENDIX_CCS: [CcKind; 3] = [CcKind::None, CcKind::Timely, CcKind::Dcqcn];

/// The appendix-table layout: IRN absolute + two ratios, per CC scheme,
/// across a sweep of variant base configs. Every per-seed cell of the
/// whole table goes to the harness as a single batch; absolute rows
/// aggregate per metric over seeds, ratio rows pair the numerator and
/// denominator runs seed by seed (see [`ratio_stats`]).
fn appendix_plan(rep: Report, bases: Vec<(String, ExperimentConfig)>, scale: Scale) -> Plan {
    let mut keys = Vec::new();
    let mut reps = Vec::new();
    for (variant, base) in &bases {
        for cc in APPENDIX_CCS {
            keys.push(format!("{variant}{}", cc_suffix(cc)));
            for (label, t, pfc) in [
                ("irn", TransportKind::Irn, false),
                ("irn+pfc", TransportKind::Irn, true),
                ("roce+pfc", TransportKind::Roce, true),
            ] {
                reps.push(Replicate::strided(
                    Cell::tpc(label, base, t, pfc, cc),
                    base.seed,
                    scale.seeds,
                    SEED_STRIDE,
                ));
            }
        }
    }
    let set = ReplicateSet::new(reps);
    let flat = set.cells();
    Plan::new(flat, move |results| {
        let mut rep = rep;
        let collected = set.collect(results);
        for (key, chunk) in keys.iter().zip(collected.chunks_exact(3)) {
            let (irn, irn_pfc, roce_pfc) = (&chunk[0], &chunk[1], &chunk[2]);
            let mut row = Row::new(format!("{key} IRN"));
            for (name, f) in &FCT_METRICS {
                row = row.push_stats(name, &irn.stats(*f));
            }
            rep.add(row);
            for (suffix, denom) in [("IRN/IRN+PFC", irn_pfc), ("IRN/RoCE+PFC", roce_pfc)] {
                let mut row = Row::new(format!("{key} {suffix}"));
                for (name, f) in &FCT_METRICS {
                    row = row.push_stats(name, &ratio_stats(irn, denom, *f));
                }
                rep.add(row);
            }
        }
        rep
    })
}

/// Table 3: link-utilization sweep (30-90%).
pub fn table3(scale: Scale) -> Plan {
    let rep = Report::new(
        "Table 3",
        "Robustness to link utilization (30/50/70/90%)",
        "higher load -> PFC hurts more; ratios fall with load",
    );
    let bases: Vec<(String, ExperimentConfig)> = [0.3, 0.5, 0.7, 0.9]
        .iter()
        .map(|&load| {
            let mut base = scale.base();
            base.traffic = TrafficModel::Poisson {
                load,
                sizes: SizeDistribution::HeavyTailed,
                flow_count: scale.flows,
            };
            (format!("{}%", (load * 100.0) as u32), base)
        })
        .collect();
    appendix_plan(rep, bases, scale)
}

/// Table 4: bandwidth sweep (10/40/100 Gbps).
pub fn table4(scale: Scale) -> Plan {
    let rep = Report::new(
        "Table 4",
        "Robustness to link bandwidth (10/40/100 Gbps)",
        "higher bandwidth -> relative cost of loss recovery rises, gap narrows",
    );
    let bases: Vec<(String, ExperimentConfig)> = [10u64, 40, 100]
        .iter()
        .map(|&gbps| {
            let mut base = scale.base();
            base.bandwidth = irn_core::net::Bandwidth::from_gbps(gbps);
            // Buffers stay 2x the (bandwidth-dependent) BDP as in §4.1.
            let diameter = 6;
            base.buffer_bytes = 2 * base.bdp_bytes(diameter).max(10_000);
            (format!("{gbps}G"), base)
        })
        .collect();
    appendix_plan(rep, bases, scale)
}

/// Table 5: topology scale sweep.
pub fn table5(scale: Scale) -> Plan {
    let rep = Report::new(
        "Table 5",
        "Robustness to fat-tree scale",
        "trends stay roughly constant as the topology scales out",
    );
    let ks: Vec<usize> = if scale.fat_tree_k >= 6 {
        vec![6, 8, 10]
    } else {
        vec![4, 6]
    };
    let bases: Vec<(String, ExperimentConfig)> = ks
        .iter()
        .map(|&k| {
            let mut base = scale.base();
            base.topology = irn_core::TopologySpec::FatTree(k);
            (format!("k={k}"), base)
        })
        .collect();
    appendix_plan(rep, bases, scale)
}

/// Table 6: workload-pattern sweep.
pub fn table6(scale: Scale) -> Plan {
    let rep = Report::new(
        "Table 6",
        "Robustness to workload (heavy-tailed vs uniform 500KB-5MB)",
        "key trends hold for the uniform storage-style workload too",
    );
    let bases: Vec<(String, ExperimentConfig)> = [
        ("heavy", SizeDistribution::HeavyTailed),
        ("uniform", SizeDistribution::Uniform500KbTo5Mb),
    ]
    .iter()
    .map(|&(label, sizes)| {
        let mut base = scale.base();
        // Uniform flows are ~16x larger on average; scale the count down
        // to keep run times comparable at equal load.
        let flows = if label == "uniform" {
            (scale.flows / 8).max(60)
        } else {
            scale.flows
        };
        base.traffic = TrafficModel::Poisson {
            load: 0.7,
            sizes,
            flow_count: flows,
        };
        (label.to_string(), base)
    })
    .collect();
    appendix_plan(rep, bases, scale)
}

/// Table 7: buffer-size sweep (60-480 KB per port).
pub fn table7(scale: Scale) -> Plan {
    let rep = Report::new(
        "Table 7",
        "Robustness to per-port buffer size",
        "smaller buffers -> more pauses, PFC hurts more; larger -> differences shrink",
    );
    let bases: Vec<(String, ExperimentConfig)> = [60u64, 120, 240, 480]
        .iter()
        .map(|&kb| {
            let mut base = scale.base();
            base.buffer_bytes = kb * 1000;
            (format!("{kb}KB"), base)
        })
        .collect();
    appendix_plan(rep, bases, scale)
}

/// Table 8: RTO_high sweep (1x/2x/4x of ~320 µs).
pub fn table8(scale: Scale) -> Plan {
    let rep = Report::new(
        "Table 8",
        "Robustness to RTO_high over-estimation",
        "IRN is insensitive to RTO_high (320/640/1280 us)",
    );
    let bases: Vec<(String, ExperimentConfig)> = [1u64, 2, 4]
        .iter()
        .map(|&mult| {
            let mut base = scale.base();
            base.rto_high = Some(Duration::micros(320 * mult));
            (format!("{}us", 320 * mult), base)
        })
        .collect();
    appendix_plan(rep, bases, scale)
}

/// Table 9: N (RTO_low threshold) sweep.
pub fn table9(scale: Scale) -> Plan {
    let rep = Report::new(
        "Table 9",
        "Robustness to N (RTO_low in-flight threshold)",
        "IRN is insensitive to N (3/10/15)",
    );
    let bases: Vec<(String, ExperimentConfig)> = [3u32, 10, 15]
        .iter()
        .map(|&n| {
            let mut base = scale.base();
            base.rto_low_n = n;
            (format!("N={n}"), base)
        })
        .collect();
    appendix_plan(rep, bases, scale)
}

// ---------------------------------------------------------------------
// Table 1 & 2 substitutes (hardware experiments)
// ---------------------------------------------------------------------

/// Table 1 substitute: per-packet transport processing cost, IRN/RoCE
/// vs the iWARP TCP stack, measured on the CPU.
///
/// The real Table 1 measures NIC hardware (Chelsio T-580-CR vs Mellanox
/// MCX416A); we cannot buy NICs, so this reproduces the *architectural*
/// claim — the TCP stack does more per-packet work — by timing the two
/// stacks' packet-processing paths in this reproduction. The paper's
/// hardware numbers are quoted in EXPERIMENTS.md alongside. Runs
/// inline (never on the worker pool): it measures wall-clock ns/packet.
pub fn table1() -> Report {
    use irn_core::net::{FlowId, HostId, Packet};
    use irn_core::sim::Time;
    use irn_core::transport::config::TransportConfig;
    use irn_core::transport::tcp::{TcpReceiver, TcpSender};
    use irn_core::transport::{ReceiverQp, SenderPoll, SenderQp};

    let mut rep = Report::new(
        "Table 1 (substitute)",
        "Per-packet transport processing cost on CPU (ns/packet; lower = leaner stack)",
        "hardware: iWARP 3x higher latency, 4x lower message rate than RoCE",
    );
    const PACKETS: u64 = 2_000_000;
    let cfg = TransportConfig::irn_default();
    let bytes = PACKETS * 1000;

    // IRN path: sender poll + receiver on_data + sender on_ack.
    let t0 = std::time::Instant::now();
    {
        let mut s = SenderQp::new(
            cfg.clone(),
            FlowId(0),
            HostId(0),
            HostId(1),
            bytes,
            CcKind::None,
            Time::ZERO,
        );
        let mut r = ReceiverQp::new(
            &cfg,
            FlowId(0),
            HostId(0),
            HostId(1),
            s.total_packets(),
            CcKind::None,
        );
        let mut now = Time::ZERO;
        let mut processed = 0u64;
        while processed < PACKETS {
            now += Duration::nanos(210);
            match s.poll(now) {
                SenderPoll::Packet(pkt) => {
                    let out = r.on_data(now, &pkt);
                    if let Some(ack) = out.ack {
                        s.on_ack_packet(now, &ack);
                    }
                    processed += 1;
                }
                _ => {
                    // Window closed: acks above will reopen it.
                    unreachable!("lock-step loop never blocks");
                }
            }
        }
    }
    let irn_ns = t0.elapsed().as_nanos() as f64 / PACKETS as f64;

    // iWARP path: TCP sender/receiver in the same lock-step loop.
    let t1 = std::time::Instant::now();
    {
        let mut s = TcpSender::new(cfg.clone(), FlowId(0), HostId(0), HostId(1), bytes);
        let mut r = TcpReceiver::new(&cfg, FlowId(0), HostId(0), HostId(1), s.total_packets());
        let mut now = Time::ZERO;
        let mut processed = 0u64;
        while processed < PACKETS {
            now += Duration::nanos(210);
            match s.poll(now) {
                SenderPoll::Packet(pkt) => {
                    let (ack, _) = r.on_data(now, &pkt);
                    s.on_ack_packet(now, &ack);
                    processed += 1;
                }
                _ => unreachable!("cwnd grows; acks keep the loop moving"),
            }
        }
    }
    let tcp_ns = t1.elapsed().as_nanos() as f64 / PACKETS as f64;

    // RoCE path: go-back-N sender + discard receiver.
    let t2 = std::time::Instant::now();
    {
        let rcfg = TransportConfig::roce_default(true);
        let mut s = SenderQp::new(
            rcfg.clone(),
            FlowId(0),
            HostId(0),
            HostId(1),
            bytes,
            CcKind::None,
            Time::ZERO,
        );
        let mut r = ReceiverQp::new(
            &rcfg,
            FlowId(0),
            HostId(0),
            HostId(1),
            s.total_packets(),
            CcKind::None,
        );
        let mut now = Time::ZERO;
        let mut processed = 0u64;
        while processed < PACKETS {
            now += Duration::nanos(210);
            match s.poll(now) {
                SenderPoll::Packet(pkt) => {
                    let out = r.on_data(now, &pkt);
                    if let Some(ack) = out.ack {
                        s.on_ack_packet(now, &ack);
                    }
                    processed += 1;
                }
                _ => unreachable!(),
            }
        }
        let _ = Packet::data(FlowId(0), HostId(0), HostId(1), 0, 0);
    }
    let roce_ns = t2.elapsed().as_nanos() as f64 / PACKETS as f64;

    rep.add(Row::new("RoCE").push("ns_per_packet", roce_ns));
    rep.add(Row::new("IRN").push("ns_per_packet", irn_ns));
    rep.add(
        Row::new("iWARP (TCP)")
            .push("ns_per_packet", tcp_ns)
            .push("vs_irn", tcp_ns / irn_ns.max(1e-9)),
    );
    rep
}

/// Table 2 substitute: the four packet-processing modules timed on the
/// CPU, plus the §6.1 state accounting. Runs inline (never on the
/// worker pool): it measures wall-clock ns/op.
pub fn table2() -> Report {
    let mut rep = Report::new(
        "Table 2 (substitute)",
        "Packet-processing modules: ns/op on CPU (paper: FPGA synthesis, 15.9-16.5ns, 45-318 Mpps)",
        "receiveData is the costliest (bitmap ops); timeout is trivial",
    );
    const OPS: u64 = 4_000_000;

    // receiveData over a loss-riddled sequence.
    let t = std::time::Instant::now();
    {
        let mut ctx = QpContext::new(128);
        let mut psn = 0u32;
        for i in 0..OPS {
            // Every 13th packet "lost": arrivals run ahead and backfill.
            let this = if i % 13 == 12 {
                psn.saturating_sub(1)
            } else {
                psn
            };
            modules::receive_data(&mut ctx, this, false, ReceiverMode::Irn);
            psn = ctx.expected_seq.max(psn) + u32::from(i % 13 != 12);
            if ctx.expected_seq > 1_000_000 {
                ctx = QpContext::new(128);
                psn = 0;
            }
        }
    }
    let recv_data = t.elapsed().as_nanos() as f64 / OPS as f64;

    // txFree during recovery with a holey SACK bitmap.
    let t = std::time::Instant::now();
    {
        let mut ctx = QpContext::new(128);
        for _ in 0..100 {
            modules::tx_free(&mut ctx, true);
        }
        modules::receive_ack(&mut ctx, 10, Some(90), true);
        for i in 0..OPS {
            if modules::tx_free(&mut ctx, true) == modules::TxFreeOut::Idle {
                ctx.retx_cursor = ctx.cum_acked; // rewind the scan
            }
            if i % 64 == 0 {
                ctx.in_recovery = true;
            }
        }
    }
    let tx_free = t.elapsed().as_nanos() as f64 / OPS as f64;

    // receiveAck with alternating cumulative/SACK updates.
    let t = std::time::Instant::now();
    {
        let mut ctx = QpContext::new(128);
        ctx.next_to_send = u32::MAX / 2;
        let mut cum = 0u32;
        for i in 0..OPS {
            if i % 3 == 0 {
                cum += 1;
                modules::receive_ack(&mut ctx, cum, None, false);
            } else {
                modules::receive_ack(&mut ctx, cum, Some(cum + 1 + (i % 50) as u32), true);
            }
        }
    }
    let recv_ack = t.elapsed().as_nanos() as f64 / OPS as f64;

    // timeout checks.
    let t = std::time::Instant::now();
    {
        let mut ctx = QpContext::new(128);
        ctx.next_to_send = 100;
        for i in 0..OPS {
            ctx.rto_low_armed = i % 2 == 0;
            ctx.in_recovery = false;
            modules::timeout(&mut ctx, 3);
        }
    }
    let timeout_ns = t.elapsed().as_nanos() as f64 / OPS as f64;

    for (name, ns) in [
        ("receiveData", recv_data),
        ("txFree", tx_free),
        ("receiveAck", recv_ack),
        ("timeout", timeout_ns),
    ] {
        rep.add(
            Row::new(name)
                .push("ns_per_op", ns)
                .push("mops_per_sec", 1000.0 / ns.max(1e-9)),
        );
    }

    // §6.1 state accounting rides along (same section of the paper).
    let b = irn_state_budget(bitmap_bits_for(110));
    rep.add(
        Row::new("state/QP (bits)")
            .push("transport", b.per_qp_state_bits as f64)
            .push("bitmaps", b.per_qp_bitmap_bits as f64),
    );
    rep.add(
        Row::new("cache frac (2k QPs, 20k WQEs, 4MB)")
            .push("fraction", b.cache_fraction(2000, 20_000, 4 << 20)),
    );
    rep
}

/// `bench-fwd-churn`: the packet-path stressor behind the BENCH trend
/// line's forwarding figure. A permutation shuffle keeps every host
/// sending at once, so most flows cross pods and every packet walks the
/// full 5-hop fat-tree path — maximum switch enqueue/dequeue churn per
/// delivered byte, the exact shape the arena/SoA hot path optimizes.
/// The report rows are ordinary replicated FCT metrics; the artifact's
/// real payload is its events/sec row in the `--timing-json` file.
pub fn bench_fwd_churn(scale: Scale) -> Plan {
    let rep = Report::new(
        "bench-fwd-churn",
        "Packet-path bench: cross-pod shuffle (hop-heavy forwarding churn)",
        "timing artifact for the BENCH trajectory; FCT rows are a determinism canary",
    );
    let wl = TrafficModel::Shuffle {
        flow_bytes: 64_000,
        rounds: 3,
        round_gap: Duration::micros(50),
    };
    let cells = SweepGrid::new(scale.base().with_traffic(wl))
        .variants([irn()])
        .build();
    metrics_plan(rep, cells, scale, &FCT_METRICS)
}

/// `bench-incast-burst`: the delivery-burst stressor behind the BENCH
/// trend line's incast figure. An M-to-1 incast fires every sender at
/// time zero, concentrating same-timestep arrivals at the fan-in
/// switch — the shape that exercises VOQ buildup, PFC/ECN bookkeeping,
/// and the engine's batched switch→host delivery path.
pub fn bench_incast_burst(scale: Scale) -> Plan {
    let base = scale.base();
    let m = if base.topology.hosts() >= 54 { 30 } else { 8 };
    let rep = Report::new(
        "bench-incast-burst",
        "Packet-path bench: M-to-1 incast (delivery burst)",
        "timing artifact for the BENCH trajectory; RCT rows are a determinism canary",
    );
    let wl = TrafficModel::Incast {
        m,
        total_bytes: scale.incast_bytes,
    };
    let cells = SweepGrid::new(base.with_traffic(wl))
        .variants([irn()])
        .build();
    metrics_plan(rep, cells, scale, &INCAST_METRICS)
}

// ---------------------------------------------------------------------
// Closed-loop application artifacts
// ---------------------------------------------------------------------

/// Loss rates for the closed-loop loss × transport sweeps: clean,
/// Figure 10's 0.1%, and an aggressive 1%.
const APP_LOSS_RATES: [f64; 3] = [0.0, 0.001, 0.01];

/// The closed-loop comparison matrix: each loss rate × {IRN, RoCE},
/// both lossy-mode (no PFC), one row per cell, reporting per-op
/// latency. RoCE runs without PFC here because §4.1's RoCE-with-PFC
/// configuration disables timeouts (PFC is assumed to prevent loss),
/// so injected drops would be unrecoverable. Open-loop sweeps hold
/// arrivals fixed as the fabric degrades; closed-loop ops *wait* for
/// their predecessors, so transport-level recovery cost (selective
/// repeat vs go-back-N) compounds into op latency — that divergence
/// is the point of these artifacts.
fn app_loss_plan(rep: Report, base: ExperimentConfig, scale: Scale) -> Plan {
    let mut cells = Vec::new();
    for &loss in &APP_LOSS_RATES {
        let mut cfg = base.clone();
        cfg.loss_injection = loss;
        let pct = loss * 100.0;
        cells.push(Cell::tpc(
            format!("IRN loss={pct}%"),
            &cfg,
            TransportKind::Irn,
            false,
            CcKind::None,
        ));
        cells.push(Cell::tpc(
            format!("RoCE loss={pct}%"),
            &cfg,
            TransportKind::Roce,
            false,
            CcKind::None,
        ));
    }
    metrics_plan(rep, cells, scale, &APP_METRICS)
}

/// `rpc-loss`: closed-loop RPC (fanout 2, window 2) under the loss ×
/// transport sweep.
pub fn rpc_loss(scale: Scale) -> Plan {
    let rep = Report::new(
        "rpc-loss",
        "Closed-loop RPC op latency: loss rate x {IRN, RoCE}",
        "closed-loop op latency diverges with loss: go-back-N recovery stalls the window",
    );
    let mut base = scale.base();
    base.traffic = TrafficModel::RpcClosedLoop {
        clients: 8,
        ops_per_client: (scale.flows / 32).max(2) as u32,
        window: 2,
        request_bytes: 40_000,
        response_bytes: 1_000,
        think: Duration::micros(50),
        fanout: 2,
    };
    app_loss_plan(rep, base, scale)
}

/// `allreduce-loss`: ring allreduce iterations under the loss ×
/// transport sweep. Phase barriers make every iteration as slow as its
/// slowest flow, so a single retransmission storm shows up directly in
/// the iteration time.
pub fn allreduce_loss(scale: Scale) -> Plan {
    let rep = Report::new(
        "allreduce-loss",
        "Ring allreduce iteration latency: loss rate x {IRN, RoCE}",
        "phase barriers amplify tail flows; selective repeat keeps iterations tight",
    );
    let mut base = scale.base();
    base.traffic = TrafficModel::Allreduce {
        algorithm: irn_core::AllreduceAlgo::Ring,
        participants: 8,
        bytes: 1 << 20,
        iterations: (scale.flows / 112).max(2) as u32,
    };
    app_loss_plan(rep, base, scale)
}

/// `replicate-loss`: leader/quorum replication commits under the loss ×
/// transport sweep.
pub fn replicate_loss(scale: Scale) -> Plan {
    let rep = Report::new(
        "replicate-loss",
        "Leader replication commit latency: loss rate x {IRN, RoCE}",
        "quorum acks hide one slow follower; loss beyond that lands on the commit path",
    );
    let mut base = scale.base();
    base.traffic = TrafficModel::LeaderReplicate {
        clients: 4,
        followers: 3,
        quorum: 2,
        ops_per_client: (scale.flows / 32).max(2) as u32,
        request_bytes: 20_000,
        ack_bytes: 64,
        think: Duration::micros(50),
    };
    app_loss_plan(rep, base, scale)
}

/// §6.1: the NIC state budget as its own printable report.
pub fn state_budget_report() -> Report {
    let mut rep = Report::new(
        "§6.1",
        "IRN additional NIC state",
        "52 bits/side, 160 bits/QP + five 128-bit bitmaps (640b), 3B/WQE, 10B shared; 3-10% of cache",
    );
    let b = irn_state_budget(bitmap_bits_for(110));
    rep.add(
        Row::new("per-QP")
            .push("state_bits", b.per_qp_state_bits as f64)
            .push("bitmap_bits", b.per_qp_bitmap_bits as f64)
            .push("per_side_bits", b.per_side_state_bits() as f64),
    );
    rep.add(Row::new("per-WQE").push("extra_bits", b.per_wqe_bits as f64));
    rep.add(Row::new("shared").push("bytes", b.shared_bytes as f64));
    for (qps, wqes) in [(1000u64, 10_000u64), (2000, 20_000), (2000, 40_000)] {
        rep.add(
            Row::new(format!("{qps} QPs, {wqes} WQEs, 4MB cache"))
                .push("fraction", b.cache_fraction(qps, wqes, 4 << 20)),
        );
    }
    rep
}
