//! Executing user `scenario-v1` files through the experiment machinery.
//!
//! `repro run --scenario FILE...` is the consumer of the declarative
//! [`Scenario`] API: each file parses into a validated scenario, fans
//! out over seed replicates exactly like the registry's Poisson
//! artifacts (strided seeds, mean ± ci95 aggregation), and joins the
//! same global submission-ordered batch executor — so `--jobs`,
//! `--seeds`, `--json`, and `--timing-json` all compose with scenario
//! runs just as they do with registry artifacts.

use irn_core::Scenario;
use irn_harness::{Cell, Replicate, ReplicateSet};
use serde::json::{self, Value};
use serde::Serialize;

use crate::artifacts::SCHEMA_VERSION;
use crate::plan::Plan;
use crate::report::{Report, Row};
use crate::runners::{Metric, APP_METRICS, FCT_METRICS, INCAST_METRICS, SEED_STRIDE};

/// The plan for one scenario: its cell fanned out over `seeds` strided
/// replicates (base = the scenario's own seed), assembled into a
/// one-row report of the headline metrics — per-operation latency for
/// closed-loop traffic, incast RCT when the traffic has an incast
/// population, plain FCT otherwise.
pub fn scenario_plan(scenario: &Scenario, seeds: usize) -> Plan {
    let traffic = &scenario.config().traffic;
    let metrics: &'static [Metric] = if traffic.is_closed_loop() {
        &APP_METRICS
    } else if traffic.has_incast_population() {
        &INCAST_METRICS
    } else {
        &FCT_METRICS
    };
    let cell = Cell::from_scenario(scenario.clone());
    let base_seed = cell.config().seed;
    let set = ReplicateSet::new(vec![Replicate::strided(
        cell,
        base_seed,
        seeds,
        SEED_STRIDE,
    )]);
    let flat = set.cells();
    let rep = Report::new(
        scenario.name(),
        "user scenario (scenario-v1)",
        "user-defined scenario; no paper counterpart",
    );
    Plan::new(flat, move |results| {
        let mut rep = rep;
        let rr = &set.collect(results)[0];
        let mut row = Row::new(rr.label.clone());
        for (name, f) in metrics {
            row = row.push_stats(name, &rr.stats(*f));
        }
        rep.add(row);
        rep
    })
}

/// Serialize a scenario run as a schema-v2 envelope (pretty-printed,
/// trailing newline). Shape matches the registry artifacts' envelopes —
/// `repro --verify-json` accepts it — with the executed scenario
/// document embedded under `scenario` so a result file is
/// self-describing and replayable. `telemetry` is the run's
/// unified-counters block (see `docs/SCHEMA.md`); pass `None` to omit
/// the key.
pub fn scenario_json(
    scenario: &Scenario,
    seeds: usize,
    report: &Report,
    telemetry: Option<&crate::telemetry::TelemetrySummary>,
) -> String {
    let mut fields = vec![
        ("schema_version".to_string(), SCHEMA_VERSION.to_json()),
        ("artifact".to_string(), scenario.slug().to_json()),
        ("scale".to_string(), "scenario".to_json()),
        ("seeds".to_string(), (seeds as u64).to_json()),
        ("determinism".to_string(), "replicated".to_json()),
        ("scenario".to_string(), scenario.to_json_value()),
        ("report".to_string(), report.to_json()),
    ];
    if let Some(t) = telemetry {
        fields.push(("telemetry".to_string(), t.to_json_value()));
    }
    let envelope = Value::Object(fields);
    let mut text = json::to_string_pretty(&envelope);
    text.push('\n');
    text
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::artifacts;
    use irn_core::{TopologySpec, TrafficModel};
    use irn_harness::Harness;

    fn tiny_scenario(seed: u64) -> Scenario {
        Scenario::builder("tiny incast")
            .topology(TopologySpec::SingleSwitch(8))
            .traffic(TrafficModel::Incast {
                m: 4,
                total_bytes: 400_000,
            })
            .seed(seed)
            .build()
            .unwrap()
    }

    #[test]
    fn scenario_plan_replicates_and_reports_incast_metrics() {
        let s = tiny_scenario(5);
        let plan = scenario_plan(&s, 3);
        assert_eq!(plan.cell_count(), 3, "three seed replicates");
        let rep = plan.run(&Harness::new(2));
        assert_eq!(rep.rows.len(), 1);
        let row = &rep.rows[0];
        assert_eq!(row.label, "tiny incast");
        assert!(row.values.iter().any(|(n, _)| n == "incast_rct_ms"));
        assert!(row.values.iter().any(|(n, _)| n == "incast_rct_ms_ci95"));
    }

    /// An Incast-*shaped* part declared `primary` has no incast metric
    /// population: the plan must select the plain FCT metrics and run
    /// without panicking (this is a valid user scenario).
    #[test]
    fn incast_model_in_primary_population_uses_fct_metrics() {
        let s = Scenario::builder("primary-population incast")
            .topology(TopologySpec::SingleSwitch(8))
            .traffic(TrafficModel::Compose(vec![irn_core::Component {
                model: TrafficModel::Incast {
                    m: 4,
                    total_bytes: 400_000,
                },
                population: irn_core::Population::Primary,
                seed_salt: 0,
                start: irn_core::Start::Zero,
            }]))
            .build()
            .unwrap();
        let rep = scenario_plan(&s, 1).run(&Harness::new(1));
        let row = &rep.rows[0];
        assert!(row.values.iter().any(|(n, _)| n == "avg_fct_ms"));
        assert!(!row.values.iter().any(|(n, _)| n == "incast_rct_ms"));
    }

    /// Closed-loop scenarios report the per-operation metric set.
    #[test]
    fn closed_loop_scenario_reports_op_metrics() {
        let s = Scenario::builder("tiny rpc")
            .topology(TopologySpec::SingleSwitch(6))
            .traffic(TrafficModel::RpcClosedLoop {
                clients: 2,
                ops_per_client: 4,
                window: 1,
                request_bytes: 8_000,
                response_bytes: 500,
                think: irn_core::sim::Duration::micros(20),
                fanout: 1,
            })
            .build()
            .unwrap();
        let rep = scenario_plan(&s, 2).run(&Harness::new(2));
        let row = &rep.rows[0];
        assert!(row.values.iter().any(|(n, _)| n == "op_p99_ms"));
        assert!(!row.values.iter().any(|(n, _)| n == "avg_fct_ms"));
        let ops = row.values.iter().find(|(n, _)| n == "ops").unwrap().1;
        assert_eq!(ops, 8.0, "2 clients x 4 ops, identical over seeds");
    }

    #[test]
    fn scenario_runs_are_deterministic_across_job_counts() {
        let s = tiny_scenario(7);
        let a = scenario_plan(&s, 2).run(&Harness::new(1));
        let b = scenario_plan(&s, 2).run(&Harness::new(8));
        assert_eq!(a.render(), b.render());
    }

    #[test]
    fn scenario_envelope_passes_the_artifact_verifier() {
        let s = tiny_scenario(5);
        let rep = scenario_plan(&s, 2).run(&Harness::new(2));
        let text = scenario_json(&s, 2, &rep, None);
        artifacts::verify_artifact_json(&s.slug(), &text).unwrap();
        // The embedded scenario document round-trips.
        let v = json::from_str(&text).unwrap();
        let embedded = v.get("scenario").unwrap();
        assert_eq!(Scenario::from_json_value(embedded).unwrap(), s);
    }

    /// A scenario whose slug collides with a registry artifact of a
    /// different determinism class must still verify: scenario
    /// envelopes are named after the scenario, not held to the
    /// registry's class table.
    #[test]
    fn registry_colliding_scenario_name_still_verifies() {
        let s = tiny_scenario(5).with_name("state budget").unwrap();
        assert_eq!(s.slug(), "state-budget", "collides with the registry");
        let rep = scenario_plan(&s, 1).run(&Harness::new(1));
        let text = scenario_json(&s, 1, &rep, None);
        artifacts::verify_artifact_json("state-budget", &text).unwrap();
    }
}
