//! The unified `telemetry` envelope block: every counter the vertical
//! already keeps — [`irn_core::SchedCounters`], the fabric's
//! `FabricStats` (from `irn-net`, not a dependency of this crate), the
//! per-flow transport totals — folded
//! into one serializable summary per artifact, with a per-transport
//! breakdown of the drop/pause/retransmit/mark counters.
//!
//! Everything here is a pure sum of deterministic `RunResult` counters,
//! so the block inherits the artifact's determinism class: for
//! deterministic artifacts it is byte-identical at any `--jobs` and any
//! fleet size. The serialized shape is documented in `docs/SCHEMA.md`;
//! the drop partition invariant (`drops.total = drops.buffer +
//! drops.injected`, and the by-kind rows summing to the totals) is
//! enforced by `verify_artifact_json` and the integration suite.

use irn_core::transport::config::TransportKind;
use irn_core::RunResult;
use serde::json::Value;
use serde::Serialize;

/// The scenario-v1 spelling of a transport kind (the same table
/// `Scenario` serialization uses).
pub fn transport_kind_label(kind: TransportKind) -> &'static str {
    match kind {
        TransportKind::Irn => "irn",
        TransportKind::Roce => "roce",
        TransportKind::IrnGoBackN => "irn_go_back_n",
        TransportKind::IrnNoBdpFc => "irn_no_bdp_fc",
        TransportKind::IwarpTcp => "iwarp_tcp",
    }
}

/// Counters attributable to one transport kind (each cell runs exactly
/// one transport, so its fabric counters are charged to that kind).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KindCounters {
    /// Cells that ran this transport.
    pub cells: u64,
    /// Data packets transmitted (including retransmissions).
    pub sent: u64,
    /// Retransmitted packets.
    pub retransmitted: u64,
    /// NACKs received by senders.
    pub nacks: u64,
    /// Retransmission timeouts fired.
    pub timeouts: u64,
    /// DCQCN CNPs received by senders.
    pub cnps: u64,
    /// Packets dropped to buffer overflow in those cells.
    pub buffer_drops: u64,
    /// Packets dropped by fault injection in those cells.
    pub injected_drops: u64,
    /// PFC X-OFF frames generated in those cells.
    pub pauses: u64,
    /// Data packets ECN-marked in those cells.
    pub ecn_marked: u64,
}

impl KindCounters {
    fn add(&mut self, r: &RunResult) {
        self.cells += 1;
        self.sent += r.transport.sent;
        self.retransmitted += r.transport.retransmitted;
        self.nacks += r.transport.nacks;
        self.timeouts += r.transport.timeouts;
        self.cnps += r.transport.cnps;
        self.buffer_drops += r.fabric.buffer_drops;
        self.injected_drops += r.fabric.injected_drops;
        self.pauses += r.fabric.pauses;
        self.ecn_marked += r.fabric.ecn_marked;
    }

    fn to_json_value(self, kind: &str) -> Value {
        Value::Object(vec![
            ("kind".to_string(), kind.to_json()),
            ("cells".to_string(), self.cells.to_json()),
            ("sent".to_string(), self.sent.to_json()),
            ("retransmitted".to_string(), self.retransmitted.to_json()),
            ("nacks".to_string(), self.nacks.to_json()),
            ("timeouts".to_string(), self.timeouts.to_json()),
            ("cnps".to_string(), self.cnps.to_json()),
            (
                "drops".to_string(),
                drops_object(self.buffer_drops, self.injected_drops),
            ),
            ("pauses".to_string(), self.pauses.to_json()),
            ("ecn_marked".to_string(), self.ecn_marked.to_json()),
        ])
    }
}

/// The drop partition: `total` is always `buffer + injected`.
fn drops_object(buffer: u64, injected: u64) -> Value {
    Value::Object(vec![
        ("total".to_string(), (buffer + injected).to_json()),
        ("buffer".to_string(), buffer.to_json()),
        ("injected".to_string(), injected.to_json()),
    ])
}

/// The unified counters for one artifact (or one scenario batch): sums
/// over every cell's `RunResult`, plus the per-transport breakdown.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TelemetrySummary {
    /// Cells summed into this block.
    pub cells: u64,
    /// Simulation events across those cells.
    pub events: u64,
    /// Flow arrivals processed (scheduler counter).
    pub flow_arrivals: u64,
    /// Fabric events processed.
    pub fabric_events: u64,
    /// Live QP-timer expiries delivered.
    pub qp_timer_events: u64,
    /// NIC pacing wake-ups delivered.
    pub nic_wake_events: u64,
    /// Timer arms requested of the scheduler.
    pub timer_arms: u64,
    /// Timer cancels requested of the scheduler.
    pub timer_cancels: u64,
    /// Stale timer entries reclaimed lazily by the scheduler.
    pub stale_timer_reclaims: u64,
    /// Events scheduled in the past and clamped to "now".
    pub past_clamps: u64,
    /// Packets delivered to hosts.
    pub delivered_pkts: u64,
    /// Wire bytes delivered to hosts.
    pub delivered_bytes: u64,
    /// Packets dropped to buffer overflow.
    pub buffer_drops: u64,
    /// Packets dropped by fault injection.
    pub injected_drops: u64,
    /// PFC X-OFF frames generated.
    pub pauses: u64,
    /// PFC X-ON frames generated.
    pub resumes: u64,
    /// Data packets ECN-marked.
    pub ecn_marked: u64,
    /// Transport counters per kind, in first-appearance order
    /// (deterministic: cells are visited in submission order).
    pub by_kind: Vec<(TransportKind, KindCounters)>,
}

impl TelemetrySummary {
    /// Fold one cell's result in, charged to its transport kind.
    pub fn add(&mut self, kind: TransportKind, r: &RunResult) {
        self.cells += 1;
        self.events += r.events;
        self.flow_arrivals += r.sched.flow_arrivals;
        self.fabric_events += r.sched.fabric_events;
        self.qp_timer_events += r.sched.qp_timer_events;
        self.nic_wake_events += r.sched.nic_wake_events;
        self.timer_arms += r.sched.timer_arms;
        self.timer_cancels += r.sched.timer_cancels;
        self.stale_timer_reclaims += r.sched.stale_timer_reclaims;
        self.past_clamps += r.sched.past_clamps;
        self.delivered_pkts += r.fabric.delivered_pkts;
        self.delivered_bytes += r.fabric.delivered_bytes;
        self.buffer_drops += r.fabric.buffer_drops;
        self.injected_drops += r.fabric.injected_drops;
        self.pauses += r.fabric.pauses;
        self.resumes += r.fabric.resumes;
        self.ecn_marked += r.fabric.ecn_marked;
        match self.by_kind.iter_mut().find(|(k, _)| *k == kind) {
            Some((_, c)) => c.add(r),
            None => {
                let mut c = KindCounters::default();
                c.add(r);
                self.by_kind.push((kind, c));
            }
        }
    }

    /// Total packets dropped (the partitioned sum).
    pub fn drops_total(&self) -> u64 {
        self.buffer_drops + self.injected_drops
    }

    /// Transport totals across every kind.
    pub fn transport_totals(&self) -> KindCounters {
        let mut t = KindCounters::default();
        for (_, c) in &self.by_kind {
            t.cells += c.cells;
            t.sent += c.sent;
            t.retransmitted += c.retransmitted;
            t.nacks += c.nacks;
            t.timeouts += c.timeouts;
            t.cnps += c.cnps;
            t.buffer_drops += c.buffer_drops;
            t.injected_drops += c.injected_drops;
            t.pauses += c.pauses;
            t.ecn_marked += c.ecn_marked;
        }
        t
    }

    /// The serialized `telemetry` block (ordered object; see
    /// `docs/SCHEMA.md`).
    pub fn to_json_value(&self) -> Value {
        let totals = self.transport_totals();
        Value::Object(vec![
            ("cells".to_string(), self.cells.to_json()),
            ("events".to_string(), self.events.to_json()),
            (
                "sched".to_string(),
                Value::Object(vec![
                    ("flow_arrivals".to_string(), self.flow_arrivals.to_json()),
                    ("fabric_events".to_string(), self.fabric_events.to_json()),
                    (
                        "qp_timer_events".to_string(),
                        self.qp_timer_events.to_json(),
                    ),
                    (
                        "nic_wake_events".to_string(),
                        self.nic_wake_events.to_json(),
                    ),
                    ("timer_arms".to_string(), self.timer_arms.to_json()),
                    ("timer_cancels".to_string(), self.timer_cancels.to_json()),
                    (
                        "stale_timer_reclaims".to_string(),
                        self.stale_timer_reclaims.to_json(),
                    ),
                    ("past_clamps".to_string(), self.past_clamps.to_json()),
                ]),
            ),
            (
                "fabric".to_string(),
                Value::Object(vec![
                    ("delivered_pkts".to_string(), self.delivered_pkts.to_json()),
                    (
                        "delivered_bytes".to_string(),
                        self.delivered_bytes.to_json(),
                    ),
                    (
                        "drops".to_string(),
                        drops_object(self.buffer_drops, self.injected_drops),
                    ),
                    ("pauses".to_string(), self.pauses.to_json()),
                    ("resumes".to_string(), self.resumes.to_json()),
                    ("ecn_marked".to_string(), self.ecn_marked.to_json()),
                ]),
            ),
            (
                "transport".to_string(),
                Value::Object(vec![
                    (
                        "total".to_string(),
                        Value::Object(vec![
                            ("sent".to_string(), totals.sent.to_json()),
                            ("retransmitted".to_string(), totals.retransmitted.to_json()),
                            ("nacks".to_string(), totals.nacks.to_json()),
                            ("timeouts".to_string(), totals.timeouts.to_json()),
                            ("cnps".to_string(), totals.cnps.to_json()),
                        ]),
                    ),
                    (
                        "by_kind".to_string(),
                        Value::Array(
                            self.by_kind
                                .iter()
                                .map(|(k, c)| c.to_json_value(transport_kind_label(*k)))
                                .collect(),
                        ),
                    ),
                ]),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use irn_core::ExperimentConfig;

    fn result_for(kind: TransportKind) -> RunResult {
        let mut cfg = ExperimentConfig::quick(8);
        cfg.transport = kind;
        irn_core::run(cfg)
    }

    #[test]
    fn summary_partitions_drops_and_kinds() {
        let irn = result_for(TransportKind::Irn);
        let roce = result_for(TransportKind::Roce);
        let mut s = TelemetrySummary::default();
        s.add(TransportKind::Irn, &irn);
        s.add(TransportKind::Roce, &roce);
        s.add(TransportKind::Irn, &irn);

        assert_eq!(s.cells, 3);
        assert_eq!(s.events, 2 * irn.events + roce.events);
        assert_eq!(s.drops_total(), s.buffer_drops + s.injected_drops);
        assert_eq!(s.by_kind.len(), 2);
        let totals = s.transport_totals();
        assert_eq!(totals.cells, 3);
        assert_eq!(totals.sent, 2 * irn.transport.sent + roce.transport.sent);
        // Fabric counters charged to kinds partition the fabric sums.
        assert_eq!(totals.buffer_drops + totals.injected_drops, s.drops_total());
        assert_eq!(totals.pauses, s.pauses);
        assert_eq!(totals.ecn_marked, s.ecn_marked);
    }

    #[test]
    fn json_block_carries_the_partition() {
        let mut s = TelemetrySummary::default();
        s.add(TransportKind::Irn, &result_for(TransportKind::Irn));
        let v = s.to_json_value();
        let fabric = v.get("fabric").unwrap();
        let drops = fabric.get("drops").unwrap();
        let total = drops.get("total").and_then(Value::as_u64).unwrap();
        let buffer = drops.get("buffer").and_then(Value::as_u64).unwrap();
        let injected = drops.get("injected").and_then(Value::as_u64).unwrap();
        assert_eq!(total, buffer + injected);
        let by_kind = v
            .get("transport")
            .and_then(|t| t.get("by_kind"))
            .and_then(Value::as_array)
            .unwrap();
        assert_eq!(by_kind.len(), 1);
        assert_eq!(by_kind[0].get("kind").and_then(Value::as_str), Some("irn"));
    }

    #[test]
    fn labels_match_the_scenario_spelling() {
        assert_eq!(transport_kind_label(TransportKind::Irn), "irn");
        assert_eq!(transport_kind_label(TransportKind::IwarpTcp), "iwarp_tcp");
    }
}
