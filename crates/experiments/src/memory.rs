//! The `memory-v1` gauge: the analytic peak-memory accounting every
//! run already carries ([`irn_core::MemoryStats`]) folded into one
//! summary per artifact, and serialized as the gauge file behind
//! `repro --memory-json FILE` / `repro diff-memory`.
//!
//! Everything here is a pure fold of deterministic `RunResult` fields
//! — the gauge is byte-identical at any `--jobs` value and across any
//! worker fleet of the same build (the byte counts come from
//! `size_of`, so they are platform/build-specific, not run-specific).
//! That is why, unlike the `bench-trajectory-v1` timing file, the
//! envelope records no job count and carries determinism class
//! `deterministic`. The serialized shape is documented in
//! `docs/SCHEMA.md`.

use crate::artifacts::BatchRun;
use crate::scale::Scale;
use irn_core::{legacy_per_flow_bytes, RunResult};
use serde::json::{self, Value};
use serde::Serialize;

/// The memory gauge for one artifact (or one scenario batch): peak
/// state over every cell's `RunResult`, plus the worst per-flow cost.
///
/// Peaks take the **max** over cells — cells run concurrently under
/// `--jobs`, but the gauge tracks the per-cell high-water mark, which
/// is what bounds a single million-flow simulation. Flows sum, so
/// `flows` is the artifact's total completed-flow volume.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct MemorySummary {
    /// Cells folded into this gauge.
    pub cells: u64,
    /// Completed flows summed over those cells.
    pub flows: u64,
    /// Largest per-cell peak of slab + histogram bytes.
    pub peak_bytes: u64,
    /// Largest per-cell peak of live flow-slab bytes.
    pub peak_flow_state_bytes: u64,
    /// Largest per-cell metrics-histogram heap footprint.
    pub metrics_bytes: u64,
    /// Largest per-cell allocated histogram bucket count.
    pub hist_buckets: u64,
    /// Largest per-cell peak footprint of the fabric's packet arena.
    pub pkt_pool_bytes: u64,
    /// Largest per-cell high-water mark of packets simultaneously in
    /// flight (peak arena occupancy).
    pub pkt_pool_pkts: u64,
    /// Worst per-cell `peak_bytes / flows` ratio — the headline the
    /// diet is judged by (see `MemoryStats::bytes_per_flow`).
    pub worst_bytes_per_flow: f64,
}

impl MemorySummary {
    /// Fold one cell's gauge into the artifact summary.
    pub fn add(&mut self, r: &RunResult) {
        self.cells += 1;
        self.flows += r.memory.flows;
        self.peak_bytes = self.peak_bytes.max(r.memory.peak_bytes());
        self.peak_flow_state_bytes = self
            .peak_flow_state_bytes
            .max(r.memory.peak_flow_state_bytes);
        self.metrics_bytes = self.metrics_bytes.max(r.memory.metrics_bytes);
        self.hist_buckets = self.hist_buckets.max(r.memory.hist_buckets);
        self.pkt_pool_bytes = self.pkt_pool_bytes.max(r.memory.pkt_pool_bytes);
        self.pkt_pool_pkts = self.pkt_pool_pkts.max(r.memory.pkt_pool_pkts);
        self.worst_bytes_per_flow = self.worst_bytes_per_flow.max(r.memory.bytes_per_flow());
    }

    /// The gauge as one ordered JSON object (one `artifacts` row of the
    /// `memory-v1` file).
    pub fn to_json_value(&self, name: &str) -> Value {
        Value::Object(vec![
            ("artifact".to_string(), name.to_json()),
            ("cells".to_string(), self.cells.to_json()),
            ("flows".to_string(), self.flows.to_json()),
            ("peak_bytes".to_string(), self.peak_bytes.to_json()),
            (
                "peak_flow_state_bytes".to_string(),
                self.peak_flow_state_bytes.to_json(),
            ),
            ("metrics_bytes".to_string(), self.metrics_bytes.to_json()),
            ("hist_buckets".to_string(), self.hist_buckets.to_json()),
            ("pkt_pool_bytes".to_string(), self.pkt_pool_bytes.to_json()),
            ("pkt_pool_pkts".to_string(), self.pkt_pool_pkts.to_json()),
            (
                "bytes_per_flow".to_string(),
                self.worst_bytes_per_flow.to_json(),
            ),
        ])
    }
}

/// Serialize a batch's memory gauges as the `memory-v1` JSON
/// (pretty-printed, trailing newline): one record per simulation-backed
/// artifact plus the pre-refactor per-flow-record baseline
/// ([`legacy_per_flow_bytes`]) the ratios are judged against. Inline
/// artifacts run no cells and contribute no row. Unlike the timing
/// file, these bytes are **deterministic**: identical at any `--jobs`
/// and across any worker fleet of the same build.
pub fn memory_json(batch: &BatchRun, scale: &Scale) -> String {
    let artifacts: Vec<Value> = batch
        .timing
        .iter()
        .zip(&batch.memory)
        .filter_map(|(t, m)| m.as_ref().map(|m| m.to_json_value(&t.name)))
        .collect();
    let envelope = Value::Object(vec![
        ("schema".to_string(), "memory-v1".to_json()),
        ("determinism".to_string(), "deterministic".to_json()),
        ("scale".to_string(), scale.label().to_json()),
        ("seeds".to_string(), (scale.seeds as u64).to_json()),
        (
            "legacy_per_flow_bytes".to_string(),
            (legacy_per_flow_bytes() as u64).to_json(),
        ),
        ("artifacts".to_string(), Value::Array(artifacts)),
    ]);
    let mut text = json::to_string_pretty(&envelope);
    text.push('\n');
    text
}

/// Validate a `memory-v1` file: parse, check the schema tag, and check
/// every `artifacts` row for the numeric fields `diff-memory` compares.
/// Returns a human-readable error referencing `docs/SCHEMA.md`.
pub fn verify_memory_json(text: &str) -> Result<Value, String> {
    let err = |msg: &str| format!("{msg} (see docs/SCHEMA.md)");
    let v = json::from_str(text).map_err(|e| err(&e.to_string()))?;
    if v.get("schema").and_then(Value::as_str) != Some("memory-v1") {
        return Err(err("not a memory-v1 file"));
    }
    let Some(rows) = v.get("artifacts").and_then(Value::as_array) else {
        return Err(err("missing 'artifacts' array"));
    };
    for row in rows {
        if row.get("artifact").and_then(Value::as_str).is_none() {
            return Err(err("artifacts row without an 'artifact' name"));
        }
        for field in ["flows", "peak_bytes", "hist_buckets"] {
            if row.get(field).and_then(Value::as_u64).is_none() {
                return Err(err(&format!("artifacts row missing numeric '{field}'")));
            }
        }
        if row.get("bytes_per_flow").and_then(Value::as_f64).is_none() {
            return Err(err("artifacts row missing numeric 'bytes_per_flow'"));
        }
    }
    Ok(v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use irn_core::MemoryStats;

    fn result_with(memory: MemoryStats) -> RunResult {
        let mut r = irn_core::run(
            irn_core::ExperimentConfig::quick(2)
                .with_transport(irn_core::transport::config::TransportKind::Irn),
        );
        r.memory = memory;
        r
    }

    #[test]
    fn summary_folds_max_peaks_and_summed_flows() {
        let mut s = MemorySummary::default();
        s.add(&result_with(MemoryStats {
            peak_flow_state_bytes: 100,
            metrics_bytes: 50,
            flows: 10,
            hist_buckets: 8,
            pkt_pool_bytes: 0,
            pkt_pool_pkts: 3,
        }));
        s.add(&result_with(MemoryStats {
            peak_flow_state_bytes: 40,
            metrics_bytes: 300,
            flows: 5,
            hist_buckets: 2,
            pkt_pool_bytes: 64,
            pkt_pool_pkts: 1,
        }));
        assert_eq!(s.cells, 2);
        assert_eq!(s.flows, 15);
        // Peaks are per-cell maxima, not sums: 100+50+0=150 vs
        // 40+300+64=404. Pool fields fold independently: bytes from
        // cell 2, packet high-water from cell 1.
        assert_eq!(s.peak_bytes, 404);
        assert_eq!(s.peak_flow_state_bytes, 100);
        assert_eq!(s.metrics_bytes, 300);
        assert_eq!(s.hist_buckets, 8);
        assert_eq!(s.pkt_pool_bytes, 64);
        assert_eq!(s.pkt_pool_pkts, 3);
        // Worst ratio is cell 2's 404/5 = 80.8.
        assert!((s.worst_bytes_per_flow - 80.8).abs() < 1e-12);
    }

    #[test]
    fn verify_accepts_round_trip_and_rejects_garbage() {
        let text = r#"{
            "schema": "memory-v1",
            "determinism": "deterministic",
            "scale": "quick",
            "seeds": 2,
            "legacy_per_flow_bytes": 100,
            "artifacts": [
                {"artifact": "fig2", "cells": 4, "flows": 800,
                 "peak_bytes": 40000, "peak_flow_state_bytes": 9000,
                 "metrics_bytes": 31000, "hist_buckets": 120,
                 "bytes_per_flow": 200.0}
            ]
        }"#;
        verify_memory_json(text).expect("valid gauge accepted");
        assert!(verify_memory_json("{}").is_err(), "missing schema tag");
        assert!(
            verify_memory_json(r#"{"schema":"memory-v1"}"#).is_err(),
            "missing artifacts array"
        );
        assert!(
            verify_memory_json(
                r#"{"schema":"memory-v1","artifacts":[{"artifact":"x","flows":1}]}"#
            )
            .is_err(),
            "row missing peak_bytes"
        );
    }
}
