//! # irn-experiments — regenerating every figure and table of the paper
//!
//! One runner per evaluation artifact of "Revisiting Network Support for
//! RDMA" (SIGCOMM 2018). Each runner builds its experiment matrix from
//! [`irn_core::ExperimentConfig`], runs the simulations, and returns a
//! [`Report`] that prints rows shaped like the paper's (and that tests
//! can assert directional claims against).
//!
//! Run them through the `repro` binary:
//!
//! ```text
//! repro fig1            # quick scale (k=4 fat-tree, 16 hosts)
//! repro --full fig1     # paper scale (k=6 fat-tree, 54 hosts)
//! repro all             # everything
//! ```
//!
//! Absolute numbers will not match the paper — the substrate is a clean
//! reimplementation and the exact flow-size CDF of \[19\] is not public —
//! but the *shape* of each comparison (who wins, roughly by how much,
//! how trends move across sweeps) is the reproduction target; see
//! EXPERIMENTS.md for the side-by-side record.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod report;
pub mod runners;
pub mod scale;

pub use report::{Report, Row};
pub use runners::*;
pub use scale::Scale;
