//! # irn-experiments — regenerating every figure and table of the paper
//!
//! One runner per evaluation artifact of "Revisiting Network Support for
//! RDMA" (SIGCOMM 2018). Each runner builds its experiment matrix from
//! [`irn_core::ExperimentConfig`], runs the simulations, and returns a
//! [`Report`] that prints rows shaped like the paper's (and that tests
//! can assert directional claims against).
//!
//! Each simulation-backed runner expresses its experiment matrix as a
//! [`Plan`] — cells plus a deferred assembly — with every
//! Poisson-workload cell fanned out over [`Scale::seeds`] seed
//! replicates, so each reported metric carries a mean and a
//! `<metric>_ci95` confidence half-width. `repro` splices the plans of
//! every requested artifact into **one** globally interleaved batch
//! ([`artifacts::run_batched`]): independent cells run in parallel
//! across artifacts while reports render byte-identically at any job
//! count.
//!
//! Run them through the `repro` binary:
//!
//! ```text
//! repro fig1                     # quick scale (k=4 fat-tree, 16 hosts)
//! repro --full fig1              # paper scale (k=6 fat-tree, 54 hosts)
//! repro all --jobs 8             # everything, one global batch, 8 workers
//! repro all --seeds 3            # 3 seed replicates per Poisson cell
//! repro all --json out/          # also persist one JSON file per artifact
//! repro --list                   # names + determinism class + seed counts
//! repro --verify-json out/       # validate a previously emitted JSON dir
//! ```
//!
//! Absolute numbers will not match the paper — the substrate is a clean
//! reimplementation and the exact flow-size CDF of \[19\] is not public —
//! but the *shape* of each comparison (who wins, roughly by how much,
//! how trends move across sweeps) is the reproduction target; see
//! EXPERIMENTS.md for the side-by-side record.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod artifacts;
pub mod memory;
pub mod plan;
pub mod report;
pub mod runners;
pub mod scale;
pub mod scenario_run;
pub mod telemetry;

pub use artifacts::{Artifact, Determinism, WorkloadClass, ARTIFACTS};
pub use irn_harness::Harness;
pub use memory::{memory_json, verify_memory_json, MemorySummary};
pub use plan::Plan;
pub use report::{Report, Row};
pub use runners::*;
pub use scale::Scale;
pub use scenario_run::{scenario_json, scenario_plan};
pub use telemetry::TelemetrySummary;
