//! The artifact registry: every figure/table the `repro` binary can
//! regenerate, as data.
//!
//! One source of truth for artifact names, determinism classes, and
//! seed counts keeps the CLI, the JSON emitter, the CI verifier, and
//! the determinism tests agreeing on what exists — a misspelled name is
//! a hard error everywhere instead of silent empty output.
//!
//! Simulation-backed artifacts expose a [`Plan`] (cells + deferred
//! assembly), which is what lets [`run_batched`] splice every requested
//! artifact's cells into **one** globally interleaved batch: the worker
//! pool never drains between artifacts, so a small artifact queued
//! after a big one no longer waits for a fresh batch. Output stays
//! byte-identical to sequential runs at any job count because results
//! come back in submission order and each assembly is pure.

use irn_core::RunResult;
use irn_harness::{CellOutcome, Harness, HarnessError, WorkerStats};
use irn_telemetry::TraceSpec;
use serde::json::{self, Value};
use serde::Serialize;

use crate::memory::MemorySummary;
use crate::plan::Plan;
use crate::report::Report;
use crate::runners;
use crate::scale::Scale;
use crate::telemetry::TelemetrySummary;

/// Version stamp of the JSON artifact envelope. Version 2 added the
/// `seeds` and `determinism` fields and the `<metric>_ci95` row
/// columns; see `docs/SCHEMA.md` for the field-by-field reference and
/// the v1 → v2 migration table.
pub const SCHEMA_VERSION: u64 = 2;

/// How an artifact's numbers behave across runs and seeds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Determinism {
    /// Random-workload simulation replicated over seeds: rows report
    /// mean ± ci95 aggregates. Byte-reproducible run to run (the seed
    /// set is derived from the config), and sensitive to `--seeds`.
    Replicated,
    /// Pure function of the config with seed-independent output
    /// (analytical accounting): byte-reproducible and unaffected by
    /// `--seeds`.
    Deterministic,
    /// CPU wall-clock timing substitute: numbers legitimately vary run
    /// to run and never enter a parallel batch.
    Timing,
}

impl Determinism {
    /// The class name as it appears in `--list` output and the JSON
    /// envelope's `determinism` field.
    pub fn as_str(self) -> &'static str {
        match self {
            Determinism::Replicated => "replicated",
            Determinism::Deterministic => "deterministic",
            Determinism::Timing => "timing",
        }
    }
}

/// How an artifact's workload generates flows — orthogonal to
/// [`Determinism`] (a closed-loop sweep is still byte-reproducible and
/// seed-replicated; the class describes *traffic shape*, not noise).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkloadClass {
    /// Arrivals precomputed up front (Poisson, incast, shuffle):
    /// offered load is fixed regardless of how the fabric behaves.
    OpenLoop,
    /// Flows spawned in reaction to completions (RPC, allreduce,
    /// replication): a slow fabric slows the offered load itself.
    ClosedLoop,
    /// No flow workload at all (analytical accounting, CPU timing).
    Deterministic,
}

impl WorkloadClass {
    /// The class name as printed by `repro --list`.
    pub fn as_str(self) -> &'static str {
        match self {
            WorkloadClass::OpenLoop => "open-loop",
            WorkloadClass::ClosedLoop => "closed-loop",
            WorkloadClass::Deterministic => "deterministic",
        }
    }
}

/// How an artifact is produced.
enum Kind {
    /// Simulation-backed: expands to a [`Plan`] whose cells can join a
    /// global batch.
    Sim(fn(Scale) -> Plan),
    /// Computed inline (CPU-timing substitutes, analytical accounting);
    /// never scheduled on the worker pool.
    Inline(fn() -> Report),
}

/// One reproducible evaluation artifact (a figure or table).
pub struct Artifact {
    /// CLI name and JSON file stem, e.g. `"fig1"`.
    pub name: &'static str,
    /// Determinism class (see [`Determinism`]).
    pub determinism: Determinism,
    /// Workload class (see [`WorkloadClass`]).
    pub workload: WorkloadClass,
    kind: Kind,
    seeds: fn(&Scale) -> usize,
}

impl Artifact {
    /// True unless this is a CPU-timing substitute — i.e. re-running
    /// with the same config produces byte-identical output.
    pub fn deterministic(&self) -> bool {
        self.determinism != Determinism::Timing
    }

    /// Seed replicates behind each of this artifact's reported values
    /// at `scale` (1 for seed-independent and timing artifacts).
    pub fn seed_count(&self, scale: &Scale) -> usize {
        (self.seeds)(scale)
    }

    /// The artifact's schedulable plan, or `None` for inline artifacts.
    pub fn plan(&self, scale: Scale) -> Option<Plan> {
        match self.kind {
            Kind::Sim(f) => Some(f(scale)),
            Kind::Inline(_) => None,
        }
    }

    /// Regenerate this artifact on its own (the single-artifact path;
    /// `repro` uses [`run_batched`] so multiple artifacts share one
    /// batch).
    pub fn run(&self, scale: Scale, harness: &Harness) -> Report {
        match self.kind {
            Kind::Sim(f) => f(scale).run(harness),
            Kind::Inline(f) => f(),
        }
    }
}

/// The scale's Poisson seed-replicate count (registry metadata hook).
fn scale_seeds(s: &Scale) -> usize {
    s.seeds
}

/// The scale's incast repetition count (fig9's replicate count).
fn incast_reps(s: &Scale) -> usize {
    s.incast_reps
}

/// Seed count for artifacts that never replicate.
fn one_seed(_: &Scale) -> usize {
    1
}

/// Replicated open-loop simulation artifact driven by the scale's seed
/// count.
const fn sim(name: &'static str, runner: fn(Scale) -> Plan) -> Artifact {
    Artifact {
        name,
        determinism: Determinism::Replicated,
        workload: WorkloadClass::OpenLoop,
        kind: Kind::Sim(runner),
        seeds: scale_seeds,
    }
}

/// Replicated **closed-loop** simulation artifact: same batching and
/// seed replication as [`sim`], but the workload spawns flows in
/// reaction to completions (reported by `--list` as `closed-loop`).
const fn sim_closed(name: &'static str, runner: fn(Scale) -> Plan) -> Artifact {
    Artifact {
        name,
        determinism: Determinism::Replicated,
        workload: WorkloadClass::ClosedLoop,
        kind: Kind::Sim(runner),
        seeds: scale_seeds,
    }
}

/// Every artifact, in presentation order (the order `repro all` prints).
pub static ARTIFACTS: &[Artifact] = &[
    sim("fig1", runners::fig1),
    sim("fig2", runners::fig2),
    sim("fig3", runners::fig3),
    sim("fig4", runners::fig4),
    sim("fig5", runners::fig5),
    sim("fig6", runners::fig6),
    sim("fig7", runners::fig7),
    sim("fig8", runners::fig8),
    Artifact {
        name: "fig9",
        determinism: Determinism::Replicated,
        workload: WorkloadClass::OpenLoop,
        kind: Kind::Sim(runners::fig9),
        // Incast averaging predates the Poisson replication and keeps
        // its own repetition count (paper: up to 100).
        seeds: incast_reps,
    },
    sim("incast-cross", runners::incast_cross),
    sim("fig10", runners::fig10),
    sim("fig11", runners::fig11),
    sim("fig12", runners::fig12),
    Artifact {
        name: "table1",
        determinism: Determinism::Timing,
        workload: WorkloadClass::Deterministic,
        kind: Kind::Inline(runners::table1),
        seeds: one_seed,
    },
    Artifact {
        name: "table2",
        determinism: Determinism::Timing,
        workload: WorkloadClass::Deterministic,
        kind: Kind::Inline(runners::table2),
        seeds: one_seed,
    },
    sim("table3", runners::table3),
    sim("table4", runners::table4),
    sim("table5", runners::table5),
    sim("table6", runners::table6),
    sim("table7", runners::table7),
    sim("table8", runners::table8),
    sim("table9", runners::table9),
    Artifact {
        name: "state-budget",
        determinism: Determinism::Deterministic,
        workload: WorkloadClass::Deterministic,
        kind: Kind::Inline(runners::state_budget_report),
        seeds: one_seed,
    },
    // Closed-loop application workloads (§ traffic models beyond the
    // paper's open-loop sweeps): each sweeps loss rate × {IRN, RoCE}
    // and reports per-operation latency instead of per-flow FCT.
    sim_closed("rpc-loss", runners::rpc_loss),
    sim_closed("allreduce-loss", runners::allreduce_loss),
    sim_closed("replicate-loss", runners::replicate_loss),
    // Packet-path stressors for the BENCH trajectory: hop-heavy
    // cross-pod forwarding churn and an M-to-1 delivery burst. Their
    // reports are ordinary replicated metrics (a determinism canary);
    // the payload is their events/sec rows in `--timing-json`, which
    // `diff-timing` trends across CI runs.
    sim("bench-fwd-churn", runners::bench_fwd_churn),
    sim("bench-incast-burst", runners::bench_incast_burst),
];

/// Look an artifact up by CLI name.
pub fn find(name: &str) -> Option<&'static Artifact> {
    ARTIFACTS.iter().find(|a| a.name == name)
}

/// The names from `wanted` that name no artifact (and are not `all`).
pub fn unknown_names<'a>(wanted: &[&'a str]) -> Vec<&'a str> {
    wanted
        .iter()
        .filter(|n| **n != "all" && find(n).is_none())
        .copied()
        .collect()
}

/// Per-artifact throughput observations from a batched run. Everything
/// here is wall-clock instrumentation — determinism class `timing` — so
/// it is reported on stderr and in the bench-trajectory JSON, never in
/// the schema-v2 artifact envelopes.
pub struct ArtifactTiming {
    /// Artifact name (registry key), or a scenario slug for
    /// `repro run --scenario` batches.
    pub name: String,
    /// Simulation cells the artifact contributed to the batch (0 for
    /// inline artifacts).
    pub cells: usize,
    /// Simulation events processed across those cells (deterministic).
    pub events: u64,
    /// Summed per-cell wall-clock execution time on the workers. With
    /// more jobs than cores this includes time-sharing wait, so
    /// compare runs at equal `jobs` (recorded alongside it in the
    /// timing JSON).
    pub cell_wall: std::time::Duration,
}

impl ArtifactTiming {
    /// Events per summed cell-second across this artifact's cells —
    /// the scheduler-throughput figure the BENCH trend line tracks
    /// (jobs-sensitive; see [`ArtifactTiming::cell_wall`]).
    pub fn events_per_sec(&self) -> f64 {
        let s = self.cell_wall.as_secs_f64();
        if s > 0.0 {
            self.events as f64 / s
        } else {
            0.0
        }
    }
}

/// The flight-recorder output of a traced batch: every cell's trace
/// lines concatenated in submission order. Because each line stamps its
/// cell's global submission index and each cell's capture is
/// independent, these bytes are identical at any `--jobs` and across
/// any worker fleet (see `docs/TRACING.md`).
pub struct BatchTrace {
    /// `trace-v1` NDJSON lines in `(cell, emission)` order, without the
    /// header line ([`irn_telemetry::header_line`] is prepended at
    /// write-out, since only the CLI knows the source description).
    pub lines: Vec<String>,
    /// Events discarded by ring-buffer overflow, summed over cells
    /// (each overflowing cell also carries an inline `trace.truncated`
    /// marker line).
    pub dropped: u64,
}

/// The outcome of [`run_batched`].
pub struct BatchRun {
    /// One report per selected artifact, in selection order.
    pub reports: Vec<Report>,
    /// Cells the global batch submitted to the executor.
    pub cell_count: usize,
    /// Wall-clock time of the executor pass alone. Inline artifacts
    /// (the CPU-timing tables) run *after* the batch and are excluded,
    /// so this is the number to judge `--jobs` scaling against.
    pub batch_time: std::time::Duration,
    /// Simulation events processed across the whole batch.
    pub total_events: u64,
    /// Per-artifact cell/event/CPU-time observations, in selection
    /// order (aligned with `reports`).
    pub timing: Vec<ArtifactTiming>,
    /// Per-artifact unified counters, in selection order (aligned with
    /// `reports`; `None` for inline artifacts, which run no cells).
    /// Deterministic — these feed the envelope's `telemetry` block.
    pub telemetry: Vec<Option<TelemetrySummary>>,
    /// Per-artifact peak-memory gauges, in selection order (aligned
    /// with `reports`; `None` for inline artifacts). Deterministic —
    /// these feed the `memory-v1` file behind `--memory-json`.
    pub memory: Vec<Option<MemorySummary>>,
    /// Captured trace lines when the batch ran with a
    /// [`TraceSpec`]; `None` on untraced runs.
    pub trace: Option<BatchTrace>,
}

impl BatchRun {
    /// Batch-wide events per wall-clock second (all workers combined).
    pub fn events_per_sec(&self) -> f64 {
        let s = self.batch_time.as_secs_f64();
        if s > 0.0 {
            self.total_events as f64 / s
        } else {
            0.0
        }
    }
}

/// Run `selected` artifacts through **one** globally interleaved batch:
/// every simulation-backed artifact is planned first, all planned cells
/// are concatenated in selection order into a single submission-ordered
/// batch, the executor runs it once, and each artifact assembles its
/// own slice of the results. Inline artifacts run at their position in
/// the output order, after the batch (so CPU-timing substitutes never
/// share cores with simulation workers).
///
/// The reports are byte-identical to running each artifact alone, at
/// any job count: the executor returns results in submission order,
/// each cell is a pure function of its config, and each assembly is a
/// pure function of its result slice.
pub fn run_batched(selected: &[&Artifact], scale: Scale, harness: &Harness) -> BatchRun {
    try_run_batched(selected, scale, harness).unwrap_or_else(|e| panic!("executor failed: {e}"))
}

/// The fallible form of [`run_batched`]: a degraded distributed backend
/// surfaces as a typed [`HarnessError`] (carrying completed/total cell
/// counts) instead of a panic. The in-process executor never errors.
pub fn try_run_batched(
    selected: &[&Artifact],
    scale: Scale,
    harness: &Harness,
) -> Result<BatchRun, HarnessError> {
    try_run_batched_traced(selected, scale, harness, None)
}

/// [`try_run_batched`] with the flight recorder on when `trace` is
/// `Some`: every cell runs under a capture and the returned
/// [`BatchRun::trace`] carries the batch-wide `trace-v1` lines.
pub fn try_run_batched_traced(
    selected: &[&Artifact],
    scale: Scale,
    harness: &Harness,
    trace: Option<&TraceSpec>,
) -> Result<BatchRun, HarnessError> {
    let items = selected
        .iter()
        .map(|a| (a.name.to_string(), a.plan(scale)))
        .collect();
    try_run_plan_batch_traced(items, |i| selected[i].run(scale, harness), harness, trace)
}

/// The generic global-batch runner beneath [`run_batched`] (and beneath
/// `repro run --scenario`): concatenate every item's planned cells into
/// one submission-ordered batch, execute it once, then demux each
/// item's slice back through its assembly. Items without a plan are
/// produced by `inline(index)` *after* the batch, at their position in
/// the output order.
pub fn run_plan_batch(
    items: Vec<(String, Option<Plan>)>,
    inline: impl Fn(usize) -> Report,
    harness: &Harness,
) -> BatchRun {
    try_run_plan_batch(items, inline, harness).unwrap_or_else(|e| panic!("executor failed: {e}"))
}

/// The fallible form of [`run_plan_batch`] — see [`try_run_batched`].
pub fn try_run_plan_batch(
    items: Vec<(String, Option<Plan>)>,
    inline: impl Fn(usize) -> Report,
    harness: &Harness,
) -> Result<BatchRun, HarnessError> {
    try_run_plan_batch_traced(items, inline, harness, None)
}

/// [`try_run_plan_batch`] with an optional [`TraceSpec`]: when `Some`,
/// every cell runs under the flight recorder and the per-cell trace
/// chunks are concatenated — in submission order, which is also cell-id
/// order — into [`BatchRun::trace`].
pub fn try_run_plan_batch_traced(
    items: Vec<(String, Option<Plan>)>,
    inline: impl Fn(usize) -> Report,
    harness: &Harness,
    trace: Option<&TraceSpec>,
) -> Result<BatchRun, HarnessError> {
    let mut plans: Vec<(String, Option<Plan>)> = items;
    let mut batch = Vec::new();
    for (_, plan) in &mut plans {
        if let Some(plan) = plan {
            batch.append(&mut plan.take_cells());
        }
    }
    let cell_count = batch.len();
    // The per-cell transport kinds, in submission order: each result's
    // counters are charged to its cell's kind in the telemetry summary.
    let kinds: Vec<_> = batch.iter().map(|c| c.config().transport).collect();
    let t = std::time::Instant::now();
    let outcomes: Vec<CellOutcome> = match trace {
        None => harness
            .try_run_timed(&batch)?
            .into_iter()
            .map(|(result, wall)| CellOutcome {
                result,
                wall,
                trace: None,
            })
            .collect(),
        Some(spec) => harness.try_run_traced(&batch, spec)?,
    };
    let batch_time = t.elapsed();
    let batch_trace = trace.map(|_| {
        let mut lines = Vec::new();
        let mut dropped = 0u64;
        for o in &outcomes {
            if let Some(chunk) = &o.trace {
                lines.extend_from_slice(&chunk.lines);
                dropped += chunk.dropped;
            }
        }
        BatchTrace { lines, dropped }
    });
    let mut results = outcomes.into_iter().zip(kinds);
    let mut total_events = 0u64;
    let mut timing = Vec::with_capacity(plans.len());
    let mut telemetry = Vec::with_capacity(plans.len());
    let mut memory = Vec::with_capacity(plans.len());
    let reports = plans
        .into_iter()
        .enumerate()
        .map(|(i, (name, plan))| match plan {
            Some(plan) => {
                let n = plan.cell_count();
                let mut events = 0u64;
                let mut cell_wall = std::time::Duration::ZERO;
                let mut summary = TelemetrySummary::default();
                let mut gauge = MemorySummary::default();
                let slice: Vec<RunResult> = results
                    .by_ref()
                    .take(n)
                    .map(|(o, kind)| {
                        events += o.result.events;
                        cell_wall += o.wall;
                        summary.add(kind, &o.result);
                        gauge.add(&o.result);
                        o.result
                    })
                    .collect();
                total_events += events;
                timing.push(ArtifactTiming {
                    name,
                    cells: n,
                    events,
                    cell_wall,
                });
                telemetry.push(Some(summary));
                memory.push(Some(gauge));
                plan.assemble(slice)
            }
            None => {
                timing.push(ArtifactTiming {
                    name,
                    cells: 0,
                    events: 0,
                    cell_wall: std::time::Duration::ZERO,
                });
                telemetry.push(None);
                memory.push(None);
                inline(i)
            }
        })
        .collect();
    Ok(BatchRun {
        reports,
        cell_count,
        batch_time,
        total_events,
        timing,
        telemetry,
        memory,
        trace: batch_trace,
    })
}

/// Serialize a batch's throughput observations as the
/// `bench-trajectory` JSON (pretty-printed, trailing newline): one
/// record per artifact (cells, events, summed per-cell wall seconds,
/// events/sec) plus batch-wide totals. Determinism class `timing`:
/// the numbers legitimately vary run to run, which is exactly why this
/// file is separate from the schema-v2 artifact envelopes (and why
/// `--verify-json` ignores it). The CI uploads one of these per run —
/// the points of the ROADMAP's BENCH trend line.
///
/// `workers` is the distributed backend's per-worker breakdown
/// ([`irn_harness::WorkerPool::worker_stats`]); in-process runs pass
/// `&[]` and the `workers` array is omitted.
pub fn timing_json(
    batch: &BatchRun,
    scale: &Scale,
    jobs: usize,
    workers: &[WorkerStats],
) -> String {
    let artifacts: Vec<Value> = batch
        .timing
        .iter()
        .map(|t| {
            Value::Object(vec![
                ("artifact".to_string(), t.name.to_json()),
                ("cells".to_string(), (t.cells as u64).to_json()),
                ("events".to_string(), t.events.to_json()),
                (
                    "cell_wall_s".to_string(),
                    t.cell_wall.as_secs_f64().to_json(),
                ),
                ("events_per_sec".to_string(), t.events_per_sec().to_json()),
            ])
        })
        .collect();
    let mut fields = vec![
        ("schema".to_string(), "bench-trajectory-v1".to_json()),
        ("determinism".to_string(), "timing".to_json()),
        ("scale".to_string(), scale.label().to_json()),
        ("seeds".to_string(), (scale.seeds as u64).to_json()),
        ("jobs".to_string(), (jobs as u64).to_json()),
        ("cells".to_string(), (batch.cell_count as u64).to_json()),
        ("total_events".to_string(), batch.total_events.to_json()),
        (
            "batch_wall_s".to_string(),
            batch.batch_time.as_secs_f64().to_json(),
        ),
        (
            "events_per_sec".to_string(),
            batch.events_per_sec().to_json(),
        ),
        ("artifacts".to_string(), Value::Array(artifacts)),
    ];
    if !workers.is_empty() {
        let rows: Vec<Value> = workers
            .iter()
            .map(|w| {
                Value::Object(vec![
                    ("worker".to_string(), w.name.to_json()),
                    ("cells".to_string(), (w.cells as u64).to_json()),
                    ("cell_wall_s".to_string(), w.cell_wall_s.to_json()),
                    ("failures".to_string(), (w.failures as u64).to_json()),
                    ("alive".to_string(), w.alive.to_json()),
                ])
            })
            .collect();
        fields.push(("workers".to_string(), Value::Array(rows)));
    }
    let envelope = Value::Object(fields);
    let mut text = json::to_string_pretty(&envelope);
    text.push('\n');
    text
}

/// Serialize one artifact as its JSON envelope (pretty-printed, with a
/// trailing newline). The envelope deliberately excludes job counts and
/// timings so the bytes depend only on `(artifact, scale, report,
/// telemetry)` — `--jobs 1` and `--jobs 64` must emit identical files.
/// `telemetry` is the artifact's unified-counters block
/// ([`BatchRun::telemetry`]); inline artifacts, which run no cells,
/// pass `None` and the key is omitted. The full format is documented in
/// `docs/SCHEMA.md`.
pub fn artifact_json(
    artifact: &Artifact,
    scale: &Scale,
    report: &Report,
    telemetry: Option<&TelemetrySummary>,
) -> String {
    let mut fields = vec![
        ("schema_version".to_string(), SCHEMA_VERSION.to_json()),
        ("artifact".to_string(), artifact.name.to_json()),
        ("scale".to_string(), scale.label().to_json()),
        (
            "seeds".to_string(),
            (artifact.seed_count(scale) as u64).to_json(),
        ),
        (
            "determinism".to_string(),
            artifact.determinism.as_str().to_json(),
        ),
        ("report".to_string(), report.to_json()),
    ];
    if let Some(t) = telemetry {
        fields.push(("telemetry".to_string(), t.to_json_value()));
    }
    let envelope = Value::Object(fields);
    let mut text = json::to_string_pretty(&envelope);
    text.push('\n');
    text
}

/// A verification failure message that points the reader at the schema
/// reference.
fn schema_err(name: &str, msg: impl std::fmt::Display) -> String {
    format!("{name}: {msg} (see docs/SCHEMA.md)")
}

/// Validate one artifact's JSON text: parse it and check the envelope
/// shape against schema version [`SCHEMA_VERSION`]. Returns a
/// human-readable error — referencing `docs/SCHEMA.md` — on failure.
pub fn verify_artifact_json(name: &str, text: &str) -> Result<(), String> {
    let v = json::from_str(text).map_err(|e| schema_err(name, e))?;
    match v.get("schema_version").and_then(Value::as_u64) {
        Some(SCHEMA_VERSION) => {}
        Some(found) => {
            return Err(schema_err(
                name,
                format!(
                    "schema_version {found}, expected {SCHEMA_VERSION} — \
                     v1 envelopes predate seed metadata; regenerate or migrate"
                ),
            ));
        }
        None => return Err(schema_err(name, "missing numeric schema_version")),
    }
    if v.get("artifact").and_then(Value::as_str) != Some(name) {
        return Err(schema_err(
            name,
            "'artifact' field does not match file name",
        ));
    }
    let Some(seeds) = v.get("seeds").and_then(Value::as_u64) else {
        return Err(schema_err(name, "missing numeric 'seeds' field"));
    };
    if seeds == 0 {
        return Err(schema_err(name, "'seeds' must be >= 1"));
    }
    let Some(class) = v.get("determinism").and_then(Value::as_str) else {
        return Err(schema_err(name, "missing 'determinism' field"));
    };
    if !["replicated", "deterministic", "timing"].contains(&class) {
        return Err(schema_err(name, format!("unknown determinism '{class}'")));
    }
    // Scenario-run envelopes (marked by the embedded scenario document
    // and `scale: "scenario"`) are named after the *scenario*, so a
    // name that happens to match a registry artifact must not be held
    // to that artifact's determinism class.
    let is_scenario_envelope =
        v.get("scenario").is_some() && v.get("scale").and_then(Value::as_str) == Some("scenario");
    if !is_scenario_envelope {
        if let Some(artifact) = find(name) {
            if class != artifact.determinism.as_str() {
                return Err(schema_err(
                    name,
                    format!(
                        "determinism '{class}' does not match the registry's '{}'",
                        artifact.determinism.as_str()
                    ),
                ));
            }
        }
    }
    let Some(report) = v.get("report") else {
        return Err(schema_err(name, "no 'report' object"));
    };
    let Some(rows) = report.get("rows").and_then(Value::as_array) else {
        return Err(schema_err(name, "report has no 'rows' array"));
    };
    if rows.is_empty() {
        return Err(schema_err(name, "report has zero rows"));
    }
    for row in rows {
        if row.get("label").and_then(Value::as_str).is_none() {
            return Err(schema_err(name, "row without a label"));
        }
        // ci95 semantics: every `<metric>_ci95` column must accompany
        // its `<metric>` mean in the same row.
        let Some(values) = row.get("values").and_then(Value::as_array) else {
            continue;
        };
        let names: Vec<&str> = values
            .iter()
            .filter_map(|pair| pair.as_array()?.first()?.as_str())
            .collect();
        for n in &names {
            if let Some(base) = n.strip_suffix("_ci95") {
                if !names.contains(&base) {
                    return Err(schema_err(
                        name,
                        format!("row has '{n}' without its '{base}' mean"),
                    ));
                }
            }
        }
    }
    if let Some(t) = v.get("telemetry") {
        verify_telemetry_block(name, t)?;
    }
    Ok(())
}

/// Validate an envelope's optional `telemetry` block: the counters must
/// be present and the partition invariants must hold — `drops.total =
/// drops.buffer + drops.injected`, and the per-transport `by_kind` rows
/// must sum back to the fabric drop total and the cell count.
fn verify_telemetry_block(name: &str, t: &Value) -> Result<(), String> {
    let cells = t
        .get("cells")
        .and_then(Value::as_u64)
        .ok_or_else(|| schema_err(name, "telemetry block missing numeric 'cells'"))?;
    let drops = t
        .get("fabric")
        .and_then(|f| f.get("drops"))
        .ok_or_else(|| schema_err(name, "telemetry block missing 'fabric.drops'"))?;
    let part = |key: &str| {
        drops
            .get(key)
            .and_then(Value::as_u64)
            .ok_or_else(|| schema_err(name, format!("telemetry drops missing '{key}'")))
    };
    let (total, buffer, injected) = (part("total")?, part("buffer")?, part("injected")?);
    if total != buffer + injected {
        return Err(schema_err(
            name,
            format!("telemetry drops partition broken: {total} != {buffer} + {injected}"),
        ));
    }
    let by_kind = t
        .get("transport")
        .and_then(|tr| tr.get("by_kind"))
        .and_then(Value::as_array)
        .ok_or_else(|| schema_err(name, "telemetry block missing 'transport.by_kind'"))?;
    let mut kind_cells = 0u64;
    let mut kind_drops = 0u64;
    for row in by_kind {
        kind_cells += row.get("cells").and_then(Value::as_u64).unwrap_or(0);
        kind_drops += row
            .get("drops")
            .and_then(|d| d.get("total"))
            .and_then(Value::as_u64)
            .unwrap_or(0);
    }
    if kind_cells != cells {
        return Err(schema_err(
            name,
            format!("telemetry by_kind cells sum to {kind_cells}, envelope says {cells}"),
        ));
    }
    if kind_drops != total {
        return Err(schema_err(
            name,
            format!("telemetry by_kind drops sum to {kind_drops}, fabric says {total}"),
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::Row;

    #[test]
    fn registry_names_are_unique_and_findable() {
        for a in ARTIFACTS {
            assert!(std::ptr::eq(find(a.name).unwrap(), a));
        }
        let mut names: Vec<&str> = ARTIFACTS.iter().map(|a| a.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), ARTIFACTS.len());
    }

    #[test]
    fn unknown_names_flags_only_misspellings() {
        assert!(unknown_names(&["fig1", "all", "table9"]).is_empty());
        assert_eq!(
            unknown_names(&["fig13", "fig1", "tabel3"]),
            ["fig13", "tabel3"]
        );
    }

    #[test]
    fn seed_counts_follow_the_scale() {
        let scale = Scale::quick().with_seeds(7);
        assert_eq!(find("fig1").unwrap().seed_count(&scale), 7);
        assert_eq!(find("table3").unwrap().seed_count(&scale), 7);
        assert_eq!(
            find("fig9").unwrap().seed_count(&scale),
            scale.incast_reps,
            "fig9 keeps its incast repetition count"
        );
        assert_eq!(find("table1").unwrap().seed_count(&scale), 1);
        assert_eq!(find("state-budget").unwrap().seed_count(&scale), 1);
    }

    #[test]
    fn determinism_classes_partition_the_registry() {
        let timing: Vec<&str> = ARTIFACTS
            .iter()
            .filter(|a| a.determinism == Determinism::Timing)
            .map(|a| a.name)
            .collect();
        assert_eq!(timing, ["table1", "table2"]);
        let det: Vec<&str> = ARTIFACTS
            .iter()
            .filter(|a| a.determinism == Determinism::Deterministic)
            .map(|a| a.name)
            .collect();
        assert_eq!(det, ["state-budget"]);
        for a in ARTIFACTS {
            assert_eq!(a.deterministic(), a.determinism != Determinism::Timing);
            // Inline ⇔ no plan; planned ⇔ replicated here.
            let planned = a.plan(Scale::quick().with_seeds(1)).is_some();
            assert_eq!(planned, a.determinism == Determinism::Replicated);
        }
    }

    #[test]
    fn workload_classes_partition_the_registry() {
        let closed: Vec<&str> = ARTIFACTS
            .iter()
            .filter(|a| a.workload == WorkloadClass::ClosedLoop)
            .map(|a| a.name)
            .collect();
        assert_eq!(closed, ["rpc-loss", "allreduce-loss", "replicate-loss"]);
        for a in ARTIFACTS {
            // Inline artifacts run no flows; simulation artifacts are
            // open- or closed-loop, never "deterministic".
            let planned = a.plan(Scale::quick().with_seeds(1)).is_some();
            assert_eq!(planned, a.workload != WorkloadClass::Deterministic);
            // Closed-loop sweeps are still seed-replicated simulations.
            if a.workload == WorkloadClass::ClosedLoop {
                assert_eq!(a.determinism, Determinism::Replicated);
            }
        }
    }

    #[test]
    fn envelope_round_trips_and_verifies() {
        let scale = Scale::quick();
        let mut rep = Report::new("Figure 1", "t", "p");
        rep.add(Row::new("IRN").push("avg_slowdown", 2.5));
        let fig1 = find("fig1").unwrap();
        let text = artifact_json(fig1, &scale, &rep, None);
        verify_artifact_json("fig1", &text).unwrap();
        // Round-trip at the value level: parse → re-render → re-parse.
        let v = json::from_str(&text).unwrap();
        assert_eq!(json::from_str(&json::to_string(&v)).unwrap(), v);
        assert_eq!(v.get("schema_version").and_then(Value::as_u64), Some(2));
        assert_eq!(
            v.get("seeds").and_then(Value::as_u64),
            Some(scale.seeds as u64)
        );
        assert_eq!(
            v.get("determinism").and_then(Value::as_str),
            Some("replicated")
        );
        // Mismatched name, broken text, empty rows all fail, and the
        // errors point at the schema reference.
        assert!(verify_artifact_json("fig2", &text).is_err());
        assert!(verify_artifact_json("fig1", "{").is_err());
        let empty = artifact_json(fig1, &scale, &Report::new("f", "t", "p"), None);
        let err = verify_artifact_json("fig1", &empty).unwrap_err();
        assert!(
            err.contains("docs/SCHEMA.md"),
            "error must cite the schema doc: {err}"
        );
    }

    #[test]
    fn verifier_rejects_v1_envelopes_and_orphan_ci95() {
        // A v1-shaped envelope (no seeds/determinism, old version).
        let v1 = r#"{"schema_version": 1, "artifact": "fig1", "scale": "quick",
                     "report": {"rows": [{"label": "IRN", "values": [["m", 1.0]]}]}}"#;
        let err = verify_artifact_json("fig1", v1).unwrap_err();
        assert!(err.contains("schema_version 1"), "{err}");
        assert!(err.contains("docs/SCHEMA.md"), "{err}");
        // ci95 column without its mean.
        let orphan = format!(
            r#"{{"schema_version": {SCHEMA_VERSION}, "artifact": "fig1", "scale": "quick",
                "seeds": 5, "determinism": "replicated",
                "report": {{"rows": [{{"label": "IRN", "values": [["m_ci95", 0.1]]}}]}}}}"#
        );
        let err = verify_artifact_json("fig1", &orphan).unwrap_err();
        assert!(err.contains("without its"), "{err}");
        // Determinism contradicting the registry.
        let wrong_class = format!(
            r#"{{"schema_version": {SCHEMA_VERSION}, "artifact": "fig1", "scale": "quick",
                "seeds": 5, "determinism": "timing",
                "report": {{"rows": [{{"label": "IRN", "values": [["m", 1.0]]}}]}}}}"#
        );
        assert!(verify_artifact_json("fig1", &wrong_class).is_err());
    }
}
