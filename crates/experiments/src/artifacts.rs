//! The artifact registry: every figure/table the `repro` binary can
//! regenerate, as data.
//!
//! One source of truth for artifact names keeps the CLI, the JSON
//! emitter, the CI verifier, and the determinism tests agreeing on what
//! exists — a misspelled name is a hard error everywhere instead of
//! silent empty output.

use irn_harness::Harness;
use serde::json::{self, Value};
use serde::Serialize;

use crate::report::Report;
use crate::runners;
use crate::scale::Scale;

/// Version stamp of the JSON artifact envelope.
pub const SCHEMA_VERSION: u64 = 1;

/// One reproducible evaluation artifact (a figure or table).
pub struct Artifact {
    /// CLI name and JSON file stem, e.g. `"fig1"`.
    pub name: &'static str,
    /// False for the CPU-timing substitutes (`table1`/`table2`), whose
    /// numbers are wall-clock measurements and therefore not
    /// run-to-run reproducible; true for everything simulation-backed.
    pub deterministic: bool,
    runner: fn(Scale, &Harness) -> Report,
}

impl Artifact {
    /// Regenerate this artifact.
    pub fn run(&self, scale: Scale, harness: &Harness) -> Report {
        (self.runner)(scale, harness)
    }
}

/// Every artifact, in presentation order (the order `repro all` prints).
pub static ARTIFACTS: &[Artifact] = &[
    Artifact {
        name: "fig1",
        deterministic: true,
        runner: runners::fig1,
    },
    Artifact {
        name: "fig2",
        deterministic: true,
        runner: runners::fig2,
    },
    Artifact {
        name: "fig3",
        deterministic: true,
        runner: runners::fig3,
    },
    Artifact {
        name: "fig4",
        deterministic: true,
        runner: runners::fig4,
    },
    Artifact {
        name: "fig5",
        deterministic: true,
        runner: runners::fig5,
    },
    Artifact {
        name: "fig6",
        deterministic: true,
        runner: runners::fig6,
    },
    Artifact {
        name: "fig7",
        deterministic: true,
        runner: runners::fig7,
    },
    Artifact {
        name: "fig8",
        deterministic: true,
        runner: runners::fig8,
    },
    Artifact {
        name: "fig9",
        deterministic: true,
        runner: runners::fig9,
    },
    Artifact {
        name: "incast-cross",
        deterministic: true,
        runner: runners::incast_cross,
    },
    Artifact {
        name: "fig10",
        deterministic: true,
        runner: runners::fig10,
    },
    Artifact {
        name: "fig11",
        deterministic: true,
        runner: runners::fig11,
    },
    Artifact {
        name: "fig12",
        deterministic: true,
        runner: runners::fig12,
    },
    Artifact {
        name: "table1",
        deterministic: false,
        runner: |_, _| runners::table1(),
    },
    Artifact {
        name: "table2",
        deterministic: false,
        runner: |_, _| runners::table2(),
    },
    Artifact {
        name: "table3",
        deterministic: true,
        runner: runners::table3,
    },
    Artifact {
        name: "table4",
        deterministic: true,
        runner: runners::table4,
    },
    Artifact {
        name: "table5",
        deterministic: true,
        runner: runners::table5,
    },
    Artifact {
        name: "table6",
        deterministic: true,
        runner: runners::table6,
    },
    Artifact {
        name: "table7",
        deterministic: true,
        runner: runners::table7,
    },
    Artifact {
        name: "table8",
        deterministic: true,
        runner: runners::table8,
    },
    Artifact {
        name: "table9",
        deterministic: true,
        runner: runners::table9,
    },
    Artifact {
        name: "state-budget",
        deterministic: true,
        runner: |_, _| runners::state_budget_report(),
    },
];

/// Look an artifact up by CLI name.
pub fn find(name: &str) -> Option<&'static Artifact> {
    ARTIFACTS.iter().find(|a| a.name == name)
}

/// The names from `wanted` that name no artifact (and are not `all`).
pub fn unknown_names<'a>(wanted: &[&'a str]) -> Vec<&'a str> {
    wanted
        .iter()
        .filter(|n| **n != "all" && find(n).is_none())
        .copied()
        .collect()
}

/// Serialize one artifact as its JSON envelope (pretty-printed, with a
/// trailing newline). The envelope deliberately excludes job counts and
/// timings so the bytes depend only on `(artifact, scale, report)` —
/// `--jobs 1` and `--jobs 64` must emit identical files.
pub fn artifact_json(name: &str, scale: &str, report: &Report) -> String {
    let envelope = Value::Object(vec![
        ("schema_version".to_string(), SCHEMA_VERSION.to_json()),
        ("artifact".to_string(), name.to_json()),
        ("scale".to_string(), scale.to_json()),
        ("report".to_string(), report.to_json()),
    ]);
    let mut text = json::to_string_pretty(&envelope);
    text.push('\n');
    text
}

/// Validate one artifact's JSON text: parse it and check the envelope
/// shape. Returns a human-readable error on failure.
pub fn verify_artifact_json(name: &str, text: &str) -> Result<(), String> {
    let v = json::from_str(text).map_err(|e| format!("{name}: {e}"))?;
    if v.get("schema_version").and_then(Value::as_u64) != Some(SCHEMA_VERSION) {
        return Err(format!("{name}: missing or wrong schema_version"));
    }
    if v.get("artifact").and_then(Value::as_str) != Some(name) {
        return Err(format!("{name}: 'artifact' field does not match file name"));
    }
    let Some(report) = v.get("report") else {
        return Err(format!("{name}: no 'report' object"));
    };
    let Some(rows) = report.get("rows").and_then(Value::as_array) else {
        return Err(format!("{name}: report has no 'rows' array"));
    };
    if rows.is_empty() {
        return Err(format!("{name}: report has zero rows"));
    }
    for row in rows {
        if row.get("label").and_then(Value::as_str).is_none() {
            return Err(format!("{name}: row without a label"));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::Row;

    #[test]
    fn registry_names_are_unique_and_findable() {
        for a in ARTIFACTS {
            assert!(std::ptr::eq(find(a.name).unwrap(), a));
        }
        let mut names: Vec<&str> = ARTIFACTS.iter().map(|a| a.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), ARTIFACTS.len());
    }

    #[test]
    fn unknown_names_flags_only_misspellings() {
        assert!(unknown_names(&["fig1", "all", "table9"]).is_empty());
        assert_eq!(
            unknown_names(&["fig13", "fig1", "tabel3"]),
            ["fig13", "tabel3"]
        );
    }

    #[test]
    fn envelope_round_trips_and_verifies() {
        let mut rep = Report::new("Figure 1", "t", "p");
        rep.add(Row::new("IRN").push("avg_slowdown", 2.5));
        let text = artifact_json("fig1", "quick", &rep);
        verify_artifact_json("fig1", &text).unwrap();
        // Round-trip at the value level: parse → re-render → re-parse.
        let v = json::from_str(&text).unwrap();
        assert_eq!(json::from_str(&json::to_string(&v)).unwrap(), v);
        // Mismatched name, broken text, empty rows all fail.
        assert!(verify_artifact_json("fig2", &text).is_err());
        assert!(verify_artifact_json("fig1", "{").is_err());
        let empty = artifact_json("fig1", "quick", &Report::new("f", "t", "p"));
        assert!(verify_artifact_json("fig1", &empty).is_err());
    }
}
