//! Two-phase artifacts: *plan* (expand a figure into cells) then
//! *assemble* (fold results back into a [`Report`]).
//!
//! Splitting every simulation-backed runner this way is what enables
//! cross-artifact scheduling: `repro all` concatenates the planned
//! cells of every requested artifact into **one** submission-ordered
//! batch, runs it on the executor once, and hands each artifact back
//! its own slice of the results. Because the executor returns results
//! in submission order and each assemble step is a pure function of its
//! slice, the rendered output is byte-identical to running the
//! artifacts sequentially — at any `--jobs` value — while the worker
//! pool never drains between artifacts (small artifacts no longer wait
//! for a fresh batch after a big one; the only tail is the global one).

use irn_core::RunResult;
use irn_harness::{Cell, Harness};

use crate::report::Report;

/// One artifact's schedulable half: the cells it needs run, plus the
/// deferred assembly that turns their results into its [`Report`].
pub struct Plan {
    cells: Vec<Cell>,
    /// Planned cell count, fixed at construction — stays valid after
    /// [`Plan::take_cells`] moves the cells into a global batch.
    cell_count: usize,
    assemble: Box<dyn FnOnce(Vec<RunResult>) -> Report + Send>,
}

impl Plan {
    /// Build a plan. `assemble` receives exactly one [`RunResult`] per
    /// planned cell, in cell order, and must be a pure function of them
    /// (byte-identical output across job counts relies on it).
    pub fn new(
        cells: Vec<Cell>,
        assemble: impl FnOnce(Vec<RunResult>) -> Report + Send + 'static,
    ) -> Plan {
        Plan {
            cell_count: cells.len(),
            cells,
            assemble: Box::new(assemble),
        }
    }

    /// The planned cells, in submission order (empty once `take_cells`
    /// has moved them into a batch).
    pub fn cells(&self) -> &[Cell] {
        &self.cells
    }

    /// Move the cells out for splicing into a larger batch, without
    /// cloning. [`Plan::cell_count`] — and the arity check in
    /// [`Plan::assemble`] — keep reflecting the planned count.
    pub(crate) fn take_cells(&mut self) -> Vec<Cell> {
        std::mem::take(&mut self.cells)
    }

    /// How many cells this plan contributes to a batch.
    pub fn cell_count(&self) -> usize {
        self.cell_count
    }

    /// Fold externally-run results (one per cell, in cell order) into
    /// the report.
    pub fn assemble(self, results: Vec<RunResult>) -> Report {
        assert_eq!(
            results.len(),
            self.cell_count,
            "plan needs one result per cell"
        );
        (self.assemble)(results)
    }

    /// Run this plan alone on `harness` (the single-artifact path).
    pub fn run(self, harness: &Harness) -> Report {
        let results = harness.run(&self.cells);
        self.assemble(results)
    }
}

impl std::fmt::Debug for Plan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Plan")
            .field("cells", &self.cell_count)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::Row;
    use irn_core::ExperimentConfig;

    fn toy_plan(n: usize) -> Plan {
        let cells: Vec<Cell> = (0..n)
            .map(|i| {
                Cell::new(
                    format!("c{i}"),
                    ExperimentConfig::quick(30).with_seed(i as u64),
                )
            })
            .collect();
        Plan::new(cells, move |results| {
            let mut rep = Report::new("toy", "t", "p");
            for (i, r) in results.iter().enumerate() {
                rep.add(Row::new(format!("c{i}")).push("events", r.events as f64));
            }
            rep
        })
    }

    #[test]
    fn run_equals_manual_assemble() {
        let h = Harness::new(2);
        let a = toy_plan(3).run(&h);
        let plan = toy_plan(3);
        let results = h.run(plan.cells());
        let b = plan.assemble(results);
        assert_eq!(a.render(), b.render());
    }

    #[test]
    #[should_panic(expected = "one result per cell")]
    fn assemble_rejects_wrong_arity() {
        let _ = toy_plan(2).assemble(Vec::new());
    }
}
