//! `repro` — regenerate the paper's figures and tables.
//!
//! ```text
//! repro [--full] [--seeds N] [--jobs N] [--json DIR] [--timing-json FILE] <artifact>... | all
//! repro [--full] [--seeds N] --list     # registry: name, class, seeds, cells
//! repro --verify-json DIR               # validate an emitted JSON directory
//! ```
//!
//! Quick scale runs a k=4 fat-tree (16 hosts) with hundreds of flows —
//! seconds per artifact. `--full` runs the paper's k=6/54-host default
//! with thousands of flows. Poisson-workload artifacts replicate every
//! cell over `--seeds` seeds (default 5) and report mean ± ci95.
//!
//! All requested artifacts are scheduled as **one global batch**: every
//! simulation cell of every artifact goes to the `--jobs` workers
//! (default: all cores) in a single submission-ordered queue, so the
//! pool never drains between artifacts. Reports still print in
//! presentation order and are byte-identical at any job count.
//! `--json DIR` additionally writes one schema-versioned JSON file per
//! artifact (format: docs/SCHEMA.md).
//!
//! Timing is determinism-class `timing` and stays out of the artifact
//! envelopes: per-artifact and batch-wide events/sec go to **stderr**,
//! and `--timing-json FILE` writes the same observations as a
//! `bench-trajectory-v1` JSON (per-artifact cells/events/CPU-seconds/
//! events-per-sec) for the CI's BENCH trend line.
//!
//! Exit codes: 0 success, 1 verification failure, 2 usage error
//! (including unknown artifact names).

use irn_experiments::artifacts::{self, ARTIFACTS};
use irn_experiments::{Harness, Scale};
use std::path::{Path, PathBuf};

struct Args {
    full: bool,
    seeds: Option<usize>,
    jobs: Option<usize>,
    json_dir: Option<PathBuf>,
    timing_json: Option<PathBuf>,
    list: bool,
    verify_dir: Option<PathBuf>,
    wanted: Vec<String>,
}

fn usage() -> ! {
    eprintln!(
        "usage: repro [--full] [--seeds N] [--jobs N] [--json DIR] [--timing-json FILE] \
         <artifact>... | all"
    );
    eprintln!("       repro [--full] [--seeds N] --list");
    eprintln!("       repro --verify-json DIR");
    eprintln!("artifacts:");
    for chunk in ARTIFACTS.chunks(8) {
        let names: Vec<&str> = chunk.iter().map(|a| a.name).collect();
        eprintln!("  {}", names.join(" "));
    }
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        full: false,
        seeds: None,
        jobs: None,
        json_dir: None,
        timing_json: None,
        list: false,
        verify_dir: None,
        wanted: Vec::new(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--full" => args.full = true,
            "--list" => args.list = true,
            "--jobs" => match it.next().and_then(|v| v.parse::<usize>().ok()) {
                Some(n) if n >= 1 => args.jobs = Some(n),
                _ => {
                    eprintln!("error: --jobs needs a positive integer");
                    usage();
                }
            },
            "--seeds" => match it.next().and_then(|v| v.parse::<usize>().ok()) {
                Some(n) if n >= 1 => args.seeds = Some(n),
                _ => {
                    eprintln!("error: --seeds needs a positive integer");
                    usage();
                }
            },
            "--json" => match it.next() {
                Some(dir) => args.json_dir = Some(PathBuf::from(dir)),
                None => {
                    eprintln!("error: --json needs a directory");
                    usage();
                }
            },
            "--timing-json" => match it.next() {
                Some(file) => args.timing_json = Some(PathBuf::from(file)),
                None => {
                    eprintln!("error: --timing-json needs a file path");
                    usage();
                }
            },
            "--verify-json" => match it.next() {
                Some(dir) => args.verify_dir = Some(PathBuf::from(dir)),
                None => {
                    eprintln!("error: --verify-json needs a directory");
                    usage();
                }
            },
            flag if flag.starts_with("--") => {
                eprintln!("error: unknown flag '{flag}'");
                usage();
            }
            name => args.wanted.push(name.to_string()),
        }
    }
    args
}

/// Check that every artifact exists in `dir` as parsable,
/// schema-conforming JSON. Prints one line per problem; failure
/// messages reference docs/SCHEMA.md.
fn verify_json_dir(dir: &Path) -> i32 {
    let mut failures = 0;
    for artifact in ARTIFACTS {
        let path = dir.join(format!("{}.json", artifact.name));
        let outcome = match std::fs::read_to_string(&path) {
            Err(e) => Err(format!(
                "{}: cannot read {}: {e}",
                artifact.name,
                path.display()
            )),
            Ok(text) => artifacts::verify_artifact_json(artifact.name, &text),
        };
        match outcome {
            Ok(()) => println!("ok   {}", path.display()),
            Err(msg) => {
                println!("FAIL {msg}");
                failures += 1;
            }
        }
    }
    if failures > 0 {
        eprintln!(
            "{failures} artifact(s) missing, unparsable, or schema-mismatched in {} \
             (schema reference: docs/SCHEMA.md)",
            dir.display()
        );
        1
    } else {
        0
    }
}

/// The registry as a table: name, determinism class, seed count, and
/// batch cell count at the active scale.
fn list_artifacts(scale: Scale) {
    println!(
        "{:<14} {:<14} {:>5}  {:>6}   (scale: {})",
        "artifact",
        "class",
        "seeds",
        "cells",
        scale.label()
    );
    for a in ARTIFACTS {
        let cells = a
            .plan(scale)
            .map_or_else(|| "-".to_string(), |p| p.cell_count().to_string());
        println!(
            "{:<14} {:<14} {:>5}  {:>6}",
            a.name,
            a.determinism.as_str(),
            a.seed_count(&scale),
            cells
        );
    }
}

fn main() {
    let args = parse_args();

    // Timing output only exists for artifact runs; accepting the flag
    // in --list/--verify-json modes would silently never write it.
    if args.timing_json.is_some() && (args.list || args.verify_dir.is_some()) {
        eprintln!("error: --timing-json requires running artifacts (not --list/--verify-json)");
        usage();
    }

    if let Some(dir) = &args.verify_dir {
        std::process::exit(verify_json_dir(dir));
    }

    let mut scale = if args.full {
        Scale::full()
    } else {
        Scale::quick()
    };
    if let Some(seeds) = args.seeds {
        scale = scale.with_seeds(seeds);
    }

    if args.list {
        list_artifacts(scale);
        return;
    }
    if args.wanted.is_empty() {
        usage();
    }

    // Fail loudly on misspelled artifact names instead of silently
    // printing nothing.
    let wanted: Vec<&str> = args.wanted.iter().map(String::as_str).collect();
    let unknown = artifacts::unknown_names(&wanted);
    if !unknown.is_empty() {
        for name in &unknown {
            eprintln!("error: unknown artifact '{name}'");
        }
        usage();
    }

    let harness = args.jobs.map_or_else(Harness::auto, Harness::new);
    let all = wanted.contains(&"all");
    let selected: Vec<&artifacts::Artifact> = ARTIFACTS
        .iter()
        .filter(|a| all || wanted.contains(&a.name))
        .collect();

    if let Some(dir) = &args.json_dir {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("error: cannot create {}: {e}", dir.display());
            std::process::exit(1);
        }
    }

    // One global batch across every selected artifact: all simulation
    // cells interleave on the worker pool, then reports assemble and
    // print in presentation order (byte-identical to sequential runs).
    let t = std::time::Instant::now();
    let batch = artifacts::run_batched(&selected, scale, &harness);
    // Batch time covers the executor pass only; the total additionally
    // includes the inline CPU-timing artifacts and report assembly.
    // The events/sec figure is the scheduler-throughput number the
    // BENCH trend line tracks (wall-clock class: stderr only).
    eprintln!(
        "   [global batch: {} cells across {} artifact(s): batch {:.1?}, total {:.1?}, jobs={}, \
         {} events, {:.2} Mev/s]",
        batch.cell_count,
        selected.len(),
        batch.batch_time,
        t.elapsed(),
        harness.jobs(),
        batch.total_events,
        batch.events_per_sec() / 1e6,
    );
    if let Some(file) = &args.timing_json {
        if let Some(dir) = file.parent().filter(|d| !d.as_os_str().is_empty()) {
            if let Err(e) = std::fs::create_dir_all(dir) {
                eprintln!("error: cannot create {}: {e}", dir.display());
                std::process::exit(1);
            }
        }
        let text = artifacts::timing_json(&batch, &scale, harness.jobs());
        if let Err(e) = std::fs::write(file, text) {
            eprintln!("error: cannot write {}: {e}", file.display());
            std::process::exit(1);
        }
    }

    for ((artifact, rep), timing) in selected.iter().zip(&batch.reports).zip(&batch.timing) {
        // Reports go to stdout; progress/timing to stderr so stdout
        // stays byte-identical run to run (for deterministic artifacts).
        print!("{}", rep.render());
        println!();
        if timing.cells > 0 {
            eprintln!(
                "   [{}: {} over {} seed(s); {} cells, {} events, {:.2} Mev/s]",
                artifact.name,
                artifact.determinism.as_str(),
                artifact.seed_count(&scale),
                timing.cells,
                timing.events,
                timing.events_per_sec() / 1e6,
            );
        } else {
            eprintln!(
                "   [{}: {} over {} seed(s)]",
                artifact.name,
                artifact.determinism.as_str(),
                artifact.seed_count(&scale)
            );
        }
        if let Some(dir) = &args.json_dir {
            let text = artifacts::artifact_json(artifact, &scale, rep);
            let path = dir.join(format!("{}.json", artifact.name));
            if let Err(e) = std::fs::write(&path, text) {
                eprintln!("error: cannot write {}: {e}", path.display());
                std::process::exit(1);
            }
        }
    }
}
