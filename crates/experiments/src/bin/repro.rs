//! `repro` — regenerate the paper's figures and tables.
//!
//! ```text
//! repro [--full] <artifact>...
//! repro all                  # every artifact at quick scale
//! repro --full fig1 table3   # selected artifacts at paper scale
//! ```
//!
//! Quick scale runs a k=4 fat-tree (16 hosts) with hundreds of flows —
//! seconds per artifact. `--full` runs the paper's k=6/54-host default
//! with thousands of flows (minutes for the sweeps).

use irn_experiments::{runners, Report, Scale};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let full = args.iter().any(|a| a == "--full");
    let scale = if full { Scale::full() } else { Scale::quick() };
    let wanted: Vec<&str> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .map(String::as_str)
        .collect();

    if wanted.is_empty() {
        eprintln!("usage: repro [--full] <artifact>... | all");
        eprintln!("artifacts: fig1 fig2 fig3 fig4 fig5 fig6 fig7 fig8 fig9 fig10 fig11 fig12");
        eprintln!("           incast-cross table1 table2 table3 table4 table5 table6 table7");
        eprintln!("           table8 table9 state-budget");
        std::process::exit(2);
    }

    let all = wanted.contains(&"all");
    let run = |name: &str, f: &dyn Fn() -> Report| {
        if all || wanted.contains(&name) {
            let t = std::time::Instant::now();
            let rep = f();
            print!("{}", rep.render());
            println!("   [{} in {:.1?}]\n", name, t.elapsed());
        }
    };

    run("fig1", &|| runners::fig1(scale));
    run("fig2", &|| runners::fig2(scale));
    run("fig3", &|| runners::fig3(scale));
    run("fig4", &|| runners::fig4(scale));
    run("fig5", &|| runners::fig5(scale));
    run("fig6", &|| runners::fig6(scale));
    run("fig7", &|| runners::fig7(scale));
    run("fig8", &|| runners::fig8(scale));
    run("fig9", &|| runners::fig9(scale));
    run("incast-cross", &|| runners::incast_cross(scale));
    run("fig10", &|| runners::fig10(scale));
    run("fig11", &|| runners::fig11(scale));
    run("fig12", &|| runners::fig12(scale));
    run("table1", &|| runners::table1());
    run("table2", &|| runners::table2());
    run("table3", &|| runners::table3(scale));
    run("table4", &|| runners::table4(scale));
    run("table5", &|| runners::table5(scale));
    run("table6", &|| runners::table6(scale));
    run("table7", &|| runners::table7(scale));
    run("table8", &|| runners::table8(scale));
    run("table9", &|| runners::table9(scale));
    run("state-budget", &|| runners::state_budget_report());
}
